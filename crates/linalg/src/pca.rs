//! Principal component analysis.
//!
//! Used by the calibration stack to build the eigenvector output basis of
//! the paper's Eq. (3): simulation outputs (one multivariate time series
//! per design point) are collected as rows, centered, and the leading
//! `pη` principal directions become the basis functions `φ_k`.

use crate::eigen::symmetric_eigen;
use crate::mat::Mat;

/// A fitted PCA model.
#[derive(Clone, Debug)]
pub struct Pca {
    /// Per-column means removed before decomposition.
    pub mean: Vec<f64>,
    /// Columns are principal directions (unit vectors in feature space),
    /// ordered by decreasing explained variance. `d × k`.
    pub components: Mat,
    /// Variance explained by each retained component.
    pub explained_variance: Vec<f64>,
    /// Total variance of the centered data (sum over all components,
    /// retained or not).
    pub total_variance: f64,
}

/// Fit PCA on `data` (rows = observations, columns = features), retaining
/// `k` components. `k` is clamped to `min(rows, cols)`.
///
/// For wide matrices (features ≫ observations, the common case for
/// time-series outputs) we diagonalize the `n × n` Gram matrix instead of
/// the `d × d` covariance, recovering feature-space directions from the
/// observation-space eigenvectors — an `O(n²d)` trick that keeps the
/// eigenproblem small.
pub fn pca(data: &Mat, k: usize) -> Pca {
    let n = data.nrows();
    let d = data.ncols();
    assert!(n > 0 && d > 0, "pca: empty data");
    let k = k.min(n).min(d);

    // Center.
    let mut mean = vec![0.0; d];
    for i in 0..n {
        for (m, &x) in mean.iter_mut().zip(data.row(i)) {
            *m += x;
        }
    }
    for m in &mut mean {
        *m /= n as f64;
    }
    let mut c = Mat::zeros(n, d);
    for i in 0..n {
        for j in 0..d {
            c[(i, j)] = data[(i, j)] - mean[j];
        }
    }

    let denom = (n.max(2) - 1) as f64;
    if d <= n {
        // Covariance route: S = CᵀC / (n-1), d × d.
        let s = c.transpose().matmul(&c).scale(1.0 / denom);
        let e = symmetric_eigen(&s);
        let total: f64 = e.values.iter().map(|v| v.max(0.0)).sum();
        let mut comp = Mat::zeros(d, k);
        for kk in 0..k {
            for r in 0..d {
                comp[(r, kk)] = e.vectors[(r, kk)];
            }
        }
        Pca {
            mean,
            components: comp,
            explained_variance: e.values[..k].iter().map(|v| v.max(0.0)).collect(),
            total_variance: total,
        }
    } else {
        // Gram route: G = CCᵀ / (n-1), n × n; if G u = λ u then
        // v = Cᵀu / ‖Cᵀu‖ is the matching feature-space direction.
        let g = c.matmul(&c.transpose()).scale(1.0 / denom);
        let e = symmetric_eigen(&g);
        let total: f64 = e.values.iter().map(|v| v.max(0.0)).sum();
        let mut comp = Mat::zeros(d, k);
        let mut expl = Vec::with_capacity(k);
        for kk in 0..k {
            let u = e.vectors.col(kk);
            let mut v = vec![0.0; d];
            for (i, &ui) in u.iter().enumerate().take(n) {
                if ui == 0.0 {
                    continue;
                }
                for (vj, &cij) in v.iter_mut().zip(c.row(i)) {
                    *vj += ui * cij;
                }
            }
            let nrm = crate::norm2(&v);
            if nrm > 1e-300 {
                for vj in &mut v {
                    *vj /= nrm;
                }
            }
            for r in 0..d {
                comp[(r, kk)] = v[r];
            }
            expl.push(e.values[kk].max(0.0));
        }
        Pca { mean, components: comp, explained_variance: expl, total_variance: total }
    }
}

impl Pca {
    /// Number of retained components.
    pub fn k(&self) -> usize {
        self.components.ncols()
    }

    /// Project a single observation onto the retained components,
    /// returning its `k` scores.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.mean.len(), "pca transform: length mismatch");
        let centered: Vec<f64> = x.iter().zip(&self.mean).map(|(a, m)| a - m).collect();
        (0..self.k())
            .map(|kk| (0..centered.len()).map(|j| centered[j] * self.components[(j, kk)]).sum())
            .collect()
    }

    /// Reconstruct an observation from its scores.
    pub fn inverse_transform(&self, scores: &[f64]) -> Vec<f64> {
        assert_eq!(scores.len(), self.k(), "pca inverse: score length mismatch");
        let d = self.mean.len();
        let mut x = self.mean.clone();
        for (kk, &s) in scores.iter().enumerate() {
            for (j, xj) in x.iter_mut().enumerate().take(d) {
                *xj += s * self.components[(j, kk)];
            }
        }
        x
    }

    /// Fraction of total variance captured by the retained components.
    pub fn explained_fraction(&self) -> f64 {
        if self.total_variance <= 0.0 {
            return 1.0;
        }
        self.explained_variance.iter().sum::<f64>() / self.total_variance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Points on a line y = 2x have all their variance along (1,2)/√5.
    #[test]
    fn recovers_dominant_direction() {
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                let t = i as f64 * 0.3 - 3.0;
                vec![t, 2.0 * t]
            })
            .collect();
        let p = pca(&Mat::from_rows(&rows), 1);
        let dir = p.components.col(0);
        let ratio = dir[1] / dir[0];
        assert!((ratio - 2.0).abs() < 1e-8, "direction ratio {ratio}");
        assert!(p.explained_fraction() > 0.999999);
    }

    #[test]
    fn transform_inverse_round_trip_full_rank() {
        let rows = vec![
            vec![1.0, 0.0, 2.0],
            vec![0.0, 1.0, 1.0],
            vec![2.0, 2.0, 0.0],
            vec![1.0, 3.0, 1.0],
        ];
        let m = Mat::from_rows(&rows);
        let p = pca(&m, 3);
        for row in &rows {
            let rec = p.inverse_transform(&p.transform(row));
            for (a, b) in row.iter().zip(&rec) {
                assert!((a - b).abs() < 1e-8);
            }
        }
    }

    /// Wide-matrix (Gram) route must agree with the covariance route on
    /// explained variance of the leading component.
    #[test]
    fn gram_route_matches_covariance_route() {
        // 3 observations, 10 features.
        let rows: Vec<Vec<f64>> =
            (0..3).map(|i| (0..10).map(|j| ((i * 7 + j * 3) % 11) as f64).collect()).collect();
        let m = Mat::from_rows(&rows);
        let wide = pca(&m, 2); // d > n, Gram route
                               // Force covariance route by transposing twice (same data, pad rows).
                               // Instead check reconstruction quality: rank ≤ 2 suffices for 3 pts.
        for row in &rows {
            let rec = wide.inverse_transform(&wide.transform(row));
            for (a, b) in row.iter().zip(&rec) {
                assert!((a - b).abs() < 1e-6, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn k_clamped() {
        let m = Mat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let p = pca(&m, 10);
        assert_eq!(p.k(), 2);
    }

    #[test]
    fn mean_is_removed() {
        let m = Mat::from_rows(&[vec![10.0, 20.0], vec![12.0, 22.0]]);
        let p = pca(&m, 1);
        assert!((p.mean[0] - 11.0).abs() < 1e-12);
        assert!((p.mean[1] - 21.0).abs() < 1e-12);
    }
}
