//! Small dense linear algebra for the epiflow calibration stack.
//!
//! The Gaussian-process emulator and Bayesian calibration machinery
//! (see `epiflow-calibrate`) need covariance factorizations, triangular
//! solves, and eigen-bases for principal-component output representations.
//! No linear-algebra crate is in the approved offline dependency set, so
//! this crate implements exactly the operations required:
//!
//! * [`Mat`] — a dense row-major `f64` matrix with the usual arithmetic.
//! * [`cholesky`] — Cholesky factorization with optional jitter for
//!   near-singular covariance matrices.
//! * [`lu`] — LU decomposition with partial pivoting, determinants and
//!   general linear solves.
//! * [`eigen`] — symmetric eigendecomposition via the cyclic Jacobi method.
//! * [`pca`] — principal component analysis built on the eigen module,
//!   used to construct the `pη = 5` eigenvector output basis of the
//!   paper's Eq. (3).
//!
//! Everything is deterministic and allocation-conscious; the matrices in
//! the calibration loop are at most a few hundred rows, so cache-friendly
//! row-major storage with straightforward triple loops is both simpler and
//! faster than blocked algorithms at this scale.

pub mod cholesky;
pub mod eigen;
pub mod lu;
pub mod mat;
pub mod pca;

pub use cholesky::{cholesky, cholesky_jitter, Cholesky};
pub use eigen::{symmetric_eigen, SymmetricEigen};
pub use lu::{lu, Lu};
pub use mat::Mat;
pub use pca::{pca, Pca};

/// Machine-epsilon-scale tolerance used across the crate for
/// "is this effectively zero" decisions.
pub const EPS: f64 = 1e-12;

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Mean of a slice. Returns 0.0 for an empty slice.
#[inline]
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Sample variance (denominator `n - 1`). Returns 0.0 for slices of
/// length < 2.
pub fn variance(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (a.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(a: &[f64]) -> f64 {
    variance(a).sqrt()
}

/// Linearly spaced grid of `n` points from `lo` to `hi` inclusive.
pub fn linspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    match n {
        0 => Vec::new(),
        1 => vec![lo],
        _ => {
            let step = (hi - lo) / (n - 1) as f64;
            (0..n).map(|i| lo + step * i as f64).collect()
        }
    }
}

/// Empirical quantile of a sample using linear interpolation between
/// order statistics (type-7, the numpy default). `q` must lie in `[0, 1]`.
///
/// # Panics
/// Panics if `xs` is empty or `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile level out of range");
    let mut s = xs.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (s.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        s[lo]
    } else {
        let w = pos - lo as f64;
        s[lo] * (1.0 - w) + s[hi] * w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn norm_of_unit_axes() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < EPS);
    }

    #[test]
    fn mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < EPS);
        // Sample variance with n-1 denominator: 32/7.
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-10);
    }

    #[test]
    fn empty_and_singleton_stats() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
    }

    #[test]
    fn linspace_endpoints_and_count() {
        let g = linspace(0.0, 1.0, 5);
        assert_eq!(g.len(), 5);
        assert!((g[0] - 0.0).abs() < EPS);
        assert!((g[4] - 1.0).abs() < EPS);
        assert!((g[2] - 0.5).abs() < EPS);
        assert!(linspace(1.0, 2.0, 0).is_empty());
        assert_eq!(linspace(1.0, 2.0, 1), vec![1.0]);
    }

    #[test]
    fn quantile_median_and_extremes() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert!((quantile(&xs, 0.5) - 3.0).abs() < EPS);
        assert!((quantile(&xs, 0.0) - 1.0).abs() < EPS);
        assert!((quantile(&xs, 1.0) - 5.0).abs() < EPS);
        // Interpolated quartile.
        assert!((quantile(&xs, 0.25) - 2.0).abs() < EPS);
    }
}
