//! Dense row-major matrix type.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense row-major matrix of `f64`.
///
/// Row-major storage keeps the inner loops of matrix products and
/// factorizations walking contiguous memory, which is the dominant
/// performance concern at the (≤ few hundred rows) sizes the calibration
/// stack uses.
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a flat row-major slice.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows_flat(rows: usize, cols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), rows * cols, "from_rows_flat: size mismatch");
        Mat { rows, cols, data: data.to_vec() }
    }

    /// Build from nested row vectors.
    ///
    /// # Panics
    /// Panics if rows have differing lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Mat { rows: r, cols: c, data }
    }

    /// Build a column vector (n × 1).
    pub fn col_vec(v: &[f64]) -> Self {
        Mat { rows: v.len(), cols: 1, data: v.to_vec() }
    }

    /// A diagonal matrix from the given diagonal entries.
    pub fn diag(d: &[f64]) -> Self {
        let mut m = Mat::zeros(d.len(), d.len());
        for (i, &x) in d.iter().enumerate() {
            m[(i, i)] = x;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` out as a `Vec`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// The flat row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Transpose.
    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// Uses the i-k-j loop order so the inner loop streams over contiguous
    /// rows of both the accumulator and `rhs` (see The Rust Performance
    /// Book's guidance on memory access patterns).
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Mat) -> Mat {
        assert_eq!(self.cols, rhs.rows, "matmul: dimension mismatch");
        let mut out = Mat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = out.row_mut(i);
                for (o, &r) in orow.iter_mut().zip(rrow) {
                    *o += a * r;
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    /// Panics if `v.len() != self.ncols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec: dimension mismatch");
        (0..self.rows).map(|i| crate::dot(self.row(i), v)).collect()
    }

    /// Scale every entry by `s`.
    pub fn scale(&self, s: f64) -> Mat {
        Mat { rows: self.rows, cols: self.cols, data: self.data.iter().map(|x| x * s).collect() }
    }

    /// Maximum absolute entry (∞-norm of the flattened data).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, x| m.max(x.abs()))
    }

    /// True when the matrix is square and symmetric to within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Mat {
    type Output = Mat;
    fn add(self, rhs: &Mat) -> Mat {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "add: shape mismatch");
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect(),
        }
    }
}

impl Sub for &Mat {
    type Output = Mat;
    fn sub(self, rhs: &Mat) -> Mat {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "sub: shape mismatch");
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect(),
        }
    }
}

impl Mul for &Mat {
    type Output = Mat;
    fn mul(self, rhs: &Mat) -> Mat {
        self.matmul(rhs)
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:>10.4} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_neutral() {
        let a = Mat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Mat::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known() {
        let a = Mat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Mat::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Mat::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn matmul_rect() {
        let a = Mat::from_rows(&[vec![1.0, 0.0, 2.0]]);
        let b = Mat::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.nrows(), 1);
        assert_eq!(c.ncols(), 1);
        assert_eq!(c[(0, 0)], 7.0);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Mat::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.ncols(), 2);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn matvec_known() {
        let a = Mat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn add_sub_scale() {
        let a = Mat::from_rows(&[vec![1.0, 2.0]]);
        let b = Mat::from_rows(&[vec![3.0, 5.0]]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn symmetry_check() {
        let s = Mat::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        assert!(s.is_symmetric(0.0));
        let ns = Mat::from_rows(&[vec![2.0, 1.0], vec![0.0, 2.0]]);
        assert!(!ns.is_symmetric(1e-9));
        let rect = Mat::zeros(2, 3);
        assert!(!rect.is_symmetric(1.0));
    }

    #[test]
    fn diag_and_col() {
        let d = Mat::diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d.col(1), vec![0.0, 2.0, 0.0]);
        assert_eq!(d[(2, 2)], 3.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_mismatch_panics() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
