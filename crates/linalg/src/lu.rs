//! LU decomposition with partial pivoting.

use crate::mat::Mat;

/// Packed LU factorization `P·A = L·U` with partial pivoting.
///
/// `L` (unit lower) and `U` (upper) are stored in one matrix; `perm`
/// records the row permutation and `sign` its parity (for determinants).
#[derive(Clone, Debug)]
pub struct Lu {
    lu: Mat,
    perm: Vec<usize>,
    sign: f64,
}

/// Error: the matrix is singular to working precision (or not square).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LuError {
    NotSquare,
    Singular { col: usize },
}

impl std::fmt::Display for LuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LuError::NotSquare => write!(f, "lu: matrix not square"),
            LuError::Singular { col } => write!(f, "lu: singular at column {col}"),
        }
    }
}

impl std::error::Error for LuError {}

/// Factor `a` as `P·A = L·U`.
pub fn lu(a: &Mat) -> Result<Lu, LuError> {
    if a.nrows() != a.ncols() {
        return Err(LuError::NotSquare);
    }
    let n = a.nrows();
    let mut m = a.clone();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut sign = 1.0;

    for k in 0..n {
        // Partial pivot: largest |entry| in column k at/below the diagonal.
        let mut p = k;
        let mut best = m[(k, k)].abs();
        for i in (k + 1)..n {
            let v = m[(i, k)].abs();
            if v > best {
                best = v;
                p = i;
            }
        }
        if best < 1e-300 {
            return Err(LuError::Singular { col: k });
        }
        if p != k {
            perm.swap(p, k);
            sign = -sign;
            for j in 0..n {
                let tmp = m[(k, j)];
                m[(k, j)] = m[(p, j)];
                m[(p, j)] = tmp;
            }
        }
        let pivot = m[(k, k)];
        for i in (k + 1)..n {
            let f = m[(i, k)] / pivot;
            m[(i, k)] = f;
            for j in (k + 1)..n {
                let mkj = m[(k, j)];
                m[(i, j)] -= f * mkj;
            }
        }
    }
    Ok(Lu { lu: m, perm, sign })
}

impl Lu {
    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        let n = self.lu.nrows();
        self.sign * (0..n).map(|i| self.lu[(i, i)]).product::<f64>()
    }

    /// Solve `A·x = b`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.lu.nrows();
        assert_eq!(b.len(), n, "lu solve: length mismatch");
        // Apply permutation, then forward/back substitution.
        let mut y: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 0..n {
            for k in 0..i {
                let lik = self.lu[(i, k)];
                y[i] -= lik * y[k];
            }
        }
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                let uik = self.lu[(i, k)];
                y[i] -= uik * y[k];
            }
            y[i] /= self.lu[(i, i)];
        }
        y
    }

    /// Inverse of the original matrix (column-by-column solve).
    pub fn inverse(&self) -> Mat {
        let n = self.lu.nrows();
        let mut inv = Mat::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e);
            e[j] = 0.0;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        inv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn det_known() {
        let a = Mat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert!((lu(&a).unwrap().det() - (-2.0)).abs() < 1e-12);
    }

    #[test]
    fn det_identity() {
        assert!((lu(&Mat::identity(4)).unwrap().det() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_known() {
        // x + y = 3, 2x - y = 0  =>  x = 1, y = 2.
        let a = Mat::from_rows(&[vec![1.0, 1.0], vec![2.0, -1.0]]);
        let x = lu(&a).unwrap().solve(&[3.0, 0.0]);
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero in the (0,0) position forces a row swap.
        let a = Mat::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = lu(&a).unwrap().solve(&[5.0, 7.0]);
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_round_trip() {
        let a = Mat::from_rows(&[vec![2.0, 1.0, 0.0], vec![1.0, 3.0, 1.0], vec![0.0, 1.0, 2.0]]);
        let inv = lu(&a).unwrap().inverse();
        let prod = a.matmul(&inv);
        assert!((&prod - &Mat::identity(3)).max_abs() < 1e-10);
    }

    #[test]
    fn singular_detected() {
        let a = Mat::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(matches!(lu(&a), Err(LuError::Singular { .. })));
    }

    #[test]
    fn non_square_detected() {
        assert_eq!(lu(&Mat::zeros(2, 3)).unwrap_err(), LuError::NotSquare);
    }
}
