//! Cholesky factorization and triangular solves.
//!
//! The GP emulator forms covariance matrices `K = R + nugget·I` that are
//! symmetric positive definite in exact arithmetic but can be numerically
//! borderline when design points nearly coincide; [`cholesky_jitter`]
//! retries with growing diagonal jitter, which is the standard GP-library
//! treatment (GPML, GPy, and GPMSA all do this).

use crate::mat::Mat;

/// A lower-triangular Cholesky factor `L` with `L·Lᵀ = A`.
#[derive(Clone, Debug)]
pub struct Cholesky {
    l: Mat,
}

/// Errors from the factorization.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CholeskyError {
    /// The matrix is not square.
    NotSquare,
    /// A non-positive pivot was encountered (matrix not positive definite).
    NotPositiveDefinite { pivot: usize },
}

impl std::fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CholeskyError::NotSquare => write!(f, "cholesky: matrix not square"),
            CholeskyError::NotPositiveDefinite { pivot } => {
                write!(f, "cholesky: non-positive pivot at index {pivot}")
            }
        }
    }
}

impl std::error::Error for CholeskyError {}

/// Factor a symmetric positive-definite matrix `A = L·Lᵀ`.
///
/// Only the lower triangle of `a` is read, so callers may pass matrices
/// whose upper triangle is stale.
pub fn cholesky(a: &Mat) -> Result<Cholesky, CholeskyError> {
    if a.nrows() != a.ncols() {
        return Err(CholeskyError::NotSquare);
    }
    let n = a.nrows();
    let mut l = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            // sum = A[i][j] - Σ_{k<j} L[i][k] L[j][k]
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(CholeskyError::NotPositiveDefinite { pivot: i });
                }
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Ok(Cholesky { l })
}

/// Factor with escalating diagonal jitter: tries `A`, then
/// `A + jitter·I` with `jitter = j0, 10·j0, …` up to `max_tries` times.
///
/// Returns the factor and the jitter actually used (0.0 if none needed).
pub fn cholesky_jitter(
    a: &Mat,
    j0: f64,
    max_tries: usize,
) -> Result<(Cholesky, f64), CholeskyError> {
    match cholesky(a) {
        Ok(c) => return Ok((c, 0.0)),
        Err(CholeskyError::NotSquare) => return Err(CholeskyError::NotSquare),
        Err(_) => {}
    }
    let n = a.nrows();
    let mut jitter = j0;
    let mut last = CholeskyError::NotPositiveDefinite { pivot: 0 };
    for _ in 0..max_tries {
        let mut aj = a.clone();
        for i in 0..n {
            aj[(i, i)] += jitter;
        }
        match cholesky(&aj) {
            Ok(c) => return Ok((c, jitter)),
            Err(e) => last = e,
        }
        jitter *= 10.0;
    }
    Err(last)
}

impl Cholesky {
    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Mat {
        &self.l
    }

    /// Solve `L·y = b` (forward substitution).
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.nrows();
        assert_eq!(b.len(), n, "solve_lower: length mismatch");
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            let row = self.l.row(i);
            for k in 0..i {
                s -= row[k] * y[k];
            }
            y[i] = s / row[i];
        }
        y
    }

    /// Solve `Lᵀ·x = y` (back substitution).
    pub fn solve_upper(&self, y: &[f64]) -> Vec<f64> {
        let n = self.l.nrows();
        assert_eq!(y.len(), n, "solve_upper: length mismatch");
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for (k, &xk) in x.iter().enumerate().skip(i + 1) {
                s -= self.l[(k, i)] * xk;
            }
            x[i] = s / self.l[(i, i)];
        }
        x
    }

    /// Solve `A·x = b` where `A = L·Lᵀ`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        self.solve_upper(&self.solve_lower(b))
    }

    /// Solve `A·X = B` column-by-column.
    pub fn solve_mat(&self, b: &Mat) -> Mat {
        let n = self.l.nrows();
        assert_eq!(b.nrows(), n, "solve_mat: row mismatch");
        let mut x = Mat::zeros(n, b.ncols());
        for j in 0..b.ncols() {
            let col = self.solve(&b.col(j));
            for i in 0..n {
                x[(i, j)] = col[i];
            }
        }
        x
    }

    /// `log det A = 2 Σ log L[i][i]`.
    pub fn log_det(&self) -> f64 {
        (0..self.l.nrows()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Quadratic form `bᵀ A⁻¹ b`, computed stably as `‖L⁻¹b‖²`.
    pub fn quad_form(&self, b: &[f64]) -> f64 {
        let y = self.solve_lower(b);
        crate::dot(&y, &y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Mat {
        // A = Bᵀ·B + I for a fixed B, guaranteed SPD.
        Mat::from_rows(&[vec![4.0, 2.0, 0.6], vec![2.0, 5.0, 1.0], vec![0.6, 1.0, 3.0]])
    }

    #[test]
    fn reconstructs_a() {
        let a = spd3();
        let c = cholesky(&a).unwrap();
        let rec = c.l().matmul(&c.l().transpose());
        assert!((&rec - &a).max_abs() < 1e-10);
    }

    #[test]
    fn factor_is_lower_triangular() {
        let c = cholesky(&spd3()).unwrap();
        for i in 0..3 {
            for j in (i + 1)..3 {
                assert_eq!(c.l()[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn solve_matches_direct() {
        let a = spd3();
        let c = cholesky(&a).unwrap();
        let b = [1.0, -2.0, 0.5];
        let x = c.solve(&b);
        let back = a.matvec(&x);
        for (bi, backi) in b.iter().zip(&back) {
            assert!((bi - backi).abs() < 1e-10);
        }
    }

    #[test]
    fn log_det_known() {
        // det(diag(2,3,4)) = 24.
        let a = Mat::diag(&[2.0, 3.0, 4.0]);
        let c = cholesky(&a).unwrap();
        assert!((c.log_det() - 24.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn quad_form_identity() {
        let a = Mat::identity(3);
        let c = cholesky(&a).unwrap();
        assert!((c.quad_form(&[1.0, 2.0, 2.0]) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Mat::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(cholesky(&a), Err(CholeskyError::NotPositiveDefinite { .. })));
    }

    #[test]
    fn rejects_non_square() {
        assert_eq!(cholesky(&Mat::zeros(2, 3)).unwrap_err(), CholeskyError::NotSquare);
    }

    #[test]
    fn jitter_rescues_singular() {
        // Rank-1 matrix: vvᵀ with v = (1,1); singular, needs jitter.
        let a = Mat::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
        let (c, jitter) = cholesky_jitter(&a, 1e-10, 12).unwrap();
        assert!(jitter > 0.0);
        let rec = c.l().matmul(&c.l().transpose());
        // Reconstruction matches A up to the jitter on the diagonal.
        assert!((rec[(0, 1)] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn jitter_zero_when_unneeded() {
        let (_, jitter) = cholesky_jitter(&spd3(), 1e-10, 5).unwrap();
        assert_eq!(jitter, 0.0);
    }
}
