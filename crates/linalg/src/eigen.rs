//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! Jacobi rotation is slower asymptotically than tridiagonal QR but it is
//! short, numerically robust, and produces highly orthogonal eigenvectors —
//! a good fit for the ≤ few-hundred-dimensional covariance matrices the
//! calibration stack diagonalizes.

use crate::mat::Mat;

/// Result of a symmetric eigendecomposition: `A = V · diag(λ) · Vᵀ`,
/// with eigenvalues sorted in descending order and eigenvectors stored
/// as the columns of `vectors`.
#[derive(Clone, Debug)]
pub struct SymmetricEigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Column `k` is the eigenvector for `values[k]`.
    pub vectors: Mat,
}

/// Decompose a symmetric matrix.
///
/// # Panics
/// Panics if the matrix is not square or not symmetric (to 1e-8 relative
/// to its largest entry).
pub fn symmetric_eigen(a: &Mat) -> SymmetricEigen {
    let n = a.nrows();
    assert_eq!(n, a.ncols(), "symmetric_eigen: matrix not square");
    let scale = a.max_abs().max(1.0);
    assert!(a.is_symmetric(1e-8 * scale), "symmetric_eigen: matrix not symmetric");

    let mut m = a.clone();
    let mut v = Mat::identity(n);

    // Cyclic sweeps over the strict upper triangle until off-diagonal mass
    // is negligible. 30 sweeps is far beyond what Jacobi needs (typically
    // < 10 even for n = 500); treat exhaustion as convergence-at-tolerance.
    for _sweep in 0..30 {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() <= 1e-14 * scale {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                // Classic Jacobi rotation angle.
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Apply rotation to rows/cols p and q of m.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                // Accumulate eigenvectors.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Extract and sort descending.
    let mut idx: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    idx.sort_by(|&a, &b| diag[b].partial_cmp(&diag[a]).expect("NaN eigenvalue"));

    let values: Vec<f64> = idx.iter().map(|&i| diag[i]).collect();
    let mut vectors = Mat::zeros(n, n);
    for (newcol, &oldcol) in idx.iter().enumerate() {
        for r in 0..n {
            vectors[(r, newcol)] = v[(r, oldcol)];
        }
    }
    SymmetricEigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix() {
        let e = symmetric_eigen(&Mat::diag(&[3.0, 1.0, 2.0]));
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 2.0).abs() < 1e-10);
        assert!((e.values[2] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let e = symmetric_eigen(&Mat::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]));
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        // Eigenvector for 3 is (1,1)/√2 up to sign.
        let v0 = e.vectors.col(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-8);
        assert!((v0[0] - v0[1]).abs() < 1e-8);
    }

    #[test]
    fn reconstruction() {
        let a = Mat::from_rows(&[vec![4.0, 1.0, 0.5], vec![1.0, 3.0, 0.2], vec![0.5, 0.2, 5.0]]);
        let e = symmetric_eigen(&a);
        let lam = Mat::diag(&e.values);
        let rec = e.vectors.matmul(&lam).matmul(&e.vectors.transpose());
        assert!((&rec - &a).max_abs() < 1e-9);
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let a =
            Mat::from_rows(&[vec![2.0, -1.0, 0.0], vec![-1.0, 2.0, -1.0], vec![0.0, -1.0, 2.0]]);
        let e = symmetric_eigen(&a);
        let vtv = e.vectors.transpose().matmul(&e.vectors);
        assert!((&vtv - &Mat::identity(3)).max_abs() < 1e-9);
    }

    #[test]
    fn tridiagonal_known_spectrum() {
        // The 1D Laplacian tridiag(-1, 2, -1) of size n has eigenvalues
        // 2 - 2cos(kπ/(n+1)).
        let n = 6;
        let mut a = Mat::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = 2.0;
            if i + 1 < n {
                a[(i, i + 1)] = -1.0;
                a[(i + 1, i)] = -1.0;
            }
        }
        let e = symmetric_eigen(&a);
        let mut expect: Vec<f64> = (1..=n)
            .map(|k| 2.0 - 2.0 * (k as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos())
            .collect();
        expect.sort_by(|a, b| b.partial_cmp(a).unwrap());
        for (got, want) in e.values.iter().zip(&expect) {
            assert!((got - want).abs() < 1e-9, "got {got}, want {want}");
        }
    }

    #[test]
    #[should_panic(expected = "not symmetric")]
    fn rejects_asymmetric() {
        symmetric_eigen(&Mat::from_rows(&[vec![1.0, 2.0], vec![0.0, 1.0]]));
    }
}
