//! Data-volume accounting (Tables I and II).
//!
//! The paper reports raw (individual-level) and summarized output sizes
//! per workflow. We compute both from first principles:
//!
//! * raw: one ~24-byte line per state transition ("multi-billion
//!   entries, about 5 TB" for calibration at national scale);
//! * summary: days × health states × 3 counts × 4 bytes per
//!   ⟨cell, region, replicate⟩, plus county-level rows;
//! * input: person-trait and contact-network CSV sizes.

use serde::{Deserialize, Serialize};

/// Volume accounting for one workflow run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkflowVolume {
    pub cells: usize,
    pub regions: usize,
    pub replicates: usize,
    /// Total transitions across all simulations.
    pub total_transitions: u64,
    /// Simulated days per run.
    pub days: usize,
    /// Health states in the disease model.
    pub health_states: usize,
    /// Counties covered (for county-level summary rows).
    pub counties: usize,
}

/// The derived byte counts.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct VolumeReport {
    pub n_simulations: usize,
    pub raw_bytes: u64,
    pub summary_bytes: u64,
    /// Entries in the aggregate output (days × states × 3 per sim).
    pub summary_entries: u64,
}

/// Bytes per raw transition line (tick,pid,state,cause ≈ 24 ASCII bytes).
pub const RAW_BYTES_PER_TRANSITION: u64 = 24;

/// Bytes per summary count (one 4-byte integer).
pub const SUMMARY_BYTES_PER_COUNT: u64 = 4;

impl WorkflowVolume {
    /// Compute the report.
    pub fn report(&self) -> VolumeReport {
        let n_simulations = self.cells * self.regions * self.replicates;
        let per_sim_state_entries = (self.days * self.health_states * 3) as u64;
        let per_sim_county_entries = (self.days * self.counties * self.health_states) as u64;
        let summary_entries =
            n_simulations as u64 * (per_sim_state_entries + per_sim_county_entries);
        VolumeReport {
            n_simulations,
            raw_bytes: self.total_transitions * RAW_BYTES_PER_TRANSITION,
            summary_bytes: summary_entries * SUMMARY_BYTES_PER_COUNT,
            summary_entries,
        }
    }

    /// The paper's Table-I rows at *national deployment scale*: derives
    /// transitions from an assumed attack rate over the full US
    /// population (≈300M nodes), for checking our accounting against
    /// the published numbers.
    pub fn paper_scale(
        cells: usize,
        replicates: usize,
        attack_rate: f64,
        transitions_per_case: f64,
    ) -> WorkflowVolume {
        let us_population: f64 = 300e6;
        let per_sim_transitions = us_population / 51.0 * attack_rate * transitions_per_case;
        WorkflowVolume {
            cells,
            regions: 51,
            replicates,
            total_transitions: (per_sim_transitions * (cells * 51 * replicates) as f64) as u64,
            days: 365,
            health_states: 90,
            counties: 0, // Table I counts the state-level aggregate only
        }
    }
}

/// Input-data sizes (Table II rows).
pub mod input {
    /// Bytes per person-trait CSV row.
    pub const PERSON_ROW_BYTES: u64 = 48;
    /// Bytes per contact-network CSV row.
    pub const EDGE_ROW_BYTES: u64 = 32;

    /// Person + network CSV size for a region.
    pub fn region_bytes(persons: u64, edges: u64) -> u64 {
        persons * PERSON_ROW_BYTES + edges * EDGE_ROW_BYTES
    }

    /// National one-time transfer (Table II: 2 TB for traits +
    /// networks): 300M persons and the week-long contact networks the
    /// typical-day network is projected from (7.9B edges × 7 days).
    pub fn national_bytes() -> u64 {
        region_bytes(300_000_000, 7 * 7_900_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_simulation_counts() {
        let econ = WorkflowVolume::paper_scale(12, 15, 0.2, 6.0);
        assert_eq!(econ.report().n_simulations, 9180);
        let calib = WorkflowVolume::paper_scale(300, 1, 0.2, 6.0);
        assert_eq!(calib.report().n_simulations, 15_300);
    }

    #[test]
    fn table_i_raw_sizes_order_of_magnitude() {
        // Economic workflow: paper says ≈3 TB raw, ≈1e9 aggregate
        // entries ≈ 2.5 GB summary.
        let econ = WorkflowVolume::paper_scale(12, 15, 0.20, 6.0);
        let r = econ.report();
        let tb = r.raw_bytes as f64 / 1e12;
        assert!((0.5..10.0).contains(&tb), "economic raw {tb} TB");
        let entries = r.summary_entries as f64;
        assert!((0.3e9..3e9).contains(&entries), "summary entries {entries}");
        let gb = r.summary_bytes as f64 / 1e9;
        assert!((1.0..6.0).contains(&gb), "summary {gb} GB");
    }

    #[test]
    fn calibration_raw_bigger_than_prediction() {
        // Table I: calibration 5 TB > prediction 1 TB (more sims, though
        // each run shorter — here equal-length runs, so count dominates).
        let calib = WorkflowVolume::paper_scale(300, 1, 0.2, 6.0).report();
        let pred = WorkflowVolume::paper_scale(12, 15, 0.2, 6.0).report();
        assert!(calib.raw_bytes > pred.raw_bytes);
    }

    #[test]
    fn report_from_measured_transitions() {
        let v = WorkflowVolume {
            cells: 2,
            regions: 3,
            replicates: 4,
            total_transitions: 1000,
            days: 100,
            health_states: 15,
            counties: 10,
        };
        let r = v.report();
        assert_eq!(r.n_simulations, 24);
        assert_eq!(r.raw_bytes, 24_000);
        assert_eq!(r.summary_entries, 24 * (100 * 15 * 3 + 100 * 10 * 15) as u64);
    }

    #[test]
    fn national_input_is_about_2tb() {
        let bytes = input::national_bytes();
        let tb = bytes as f64 / 1e12;
        assert!((0.2..3.0).contains(&tb), "national input {tb} TB");
    }
}
