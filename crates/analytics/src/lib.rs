//! Post-simulation analytics (paper §II, Fig. 3–5 step [4], §VII).
//!
//! * [`targets`] — forecast-target extraction from simulation output:
//!   daily confirmed cases, hospitalizations, ventilations, deaths at
//!   state or county level, in the paper's three-counts form
//!   (new / cumulative / current).
//! * [`ensemble`] — ensembles across replicates and cells: quantile
//!   bands, medians, the uncertainty quantification behind Fig. 17.
//! * [`costs`] — the medical-cost model of case study 1 ([9]):
//!   per-patient costs by maximum severity (attended / hospitalized /
//!   ventilated), totaled per scenario.
//! * [`volume`] — raw/summary output volume accounting (Tables I–II).

pub mod costs;
pub mod ensemble;
pub mod targets;
pub mod volume;

pub use costs::{CostModel, CostReport};
pub use ensemble::{ensemble_band, EnsembleBand};
pub use targets::{ForecastTargets, ThreeCounts};
pub use volume::{VolumeReport, WorkflowVolume};
