//! Ensembles across replicates: the uncertainty quantification layer.
//!
//! "The ensemble of the model configurations and the simulation output
//! provides uncertainty quantification on the predictions."

/// Quantile band over an ensemble of time series (Fig. 17's blue
//  median + yellow 95% band).
#[derive(Clone, Debug, PartialEq)]
pub struct EnsembleBand {
    pub median: Vec<f64>,
    pub lo: Vec<f64>,
    pub hi: Vec<f64>,
    pub mean: Vec<f64>,
}

/// Compute a quantile band over replicate series. Series may differ in
/// length; the band spans the longest, with shorter series simply
/// absent from later time points.
///
/// # Panics
/// Panics if the ensemble is empty or quantiles are out of order.
pub fn ensemble_band(series: &[Vec<f64>], lo_q: f64, hi_q: f64) -> EnsembleBand {
    assert!(!series.is_empty(), "empty ensemble");
    assert!((0.0..=1.0).contains(&lo_q) && (0.0..=1.0).contains(&hi_q) && lo_q <= hi_q);
    let t_max = series.iter().map(|s| s.len()).max().expect("non-empty");
    let mut median = Vec::with_capacity(t_max);
    let mut lo = Vec::with_capacity(t_max);
    let mut hi = Vec::with_capacity(t_max);
    let mut mean = Vec::with_capacity(t_max);
    let mut col = Vec::with_capacity(series.len());
    for t in 0..t_max {
        col.clear();
        for s in series {
            if let Some(&v) = s.get(t) {
                col.push(v);
            }
        }
        median.push(epiflow_linalg_quantile(&col, 0.5));
        lo.push(epiflow_linalg_quantile(&col, lo_q));
        hi.push(epiflow_linalg_quantile(&col, hi_q));
        mean.push(col.iter().sum::<f64>() / col.len() as f64);
    }
    EnsembleBand { median, lo, hi, mean }
}

// Local quantile to avoid a linalg dependency for one function.
fn epiflow_linalg_quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty());
    let mut s = xs.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("NaN in ensemble"));
    let pos = q * (s.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        s[lo]
    } else {
        let w = pos - lo as f64;
        s[lo] * (1.0 - w) + s[hi] * w
    }
}

impl EnsembleBand {
    /// Fraction of `observed` inside [lo, hi].
    pub fn coverage(&self, observed: &[f64]) -> f64 {
        let n = observed.len().min(self.lo.len());
        if n == 0 {
            return 0.0;
        }
        (0..n).filter(|&i| observed[i] >= self.lo[i] && observed[i] <= self.hi[i]).count() as f64
            / n as f64
    }

    /// Band width at each time point.
    pub fn width(&self) -> Vec<f64> {
        self.lo.iter().zip(&self.hi).map(|(l, h)| h - l).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_ensemble_collapses() {
        let series = vec![vec![3.0; 5]; 10];
        let b = ensemble_band(&series, 0.025, 0.975);
        assert!(b.median.iter().all(|&m| (m - 3.0).abs() < 1e-12));
        assert!(b.width().iter().all(|&w| w < 1e-12));
        assert_eq!(b.mean, vec![3.0; 5]);
    }

    #[test]
    fn band_ordering_holds() {
        let series: Vec<Vec<f64>> =
            (0..30).map(|i| (0..8).map(|t| (i * t) as f64 * 0.1).collect()).collect();
        let b = ensemble_band(&series, 0.1, 0.9);
        for t in 0..8 {
            assert!(b.lo[t] <= b.median[t] && b.median[t] <= b.hi[t]);
        }
    }

    #[test]
    fn wider_quantiles_wider_band() {
        let series: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let narrow = ensemble_band(&series, 0.25, 0.75);
        let wide = ensemble_band(&series, 0.025, 0.975);
        assert!(wide.width()[0] > narrow.width()[0]);
    }

    #[test]
    fn coverage_metric() {
        let series: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64; 4]).collect();
        let b = ensemble_band(&series, 0.05, 0.95);
        // A series inside the band everywhere.
        assert_eq!(b.coverage(&[50.0, 50.0, 50.0, 50.0]), 1.0);
        // Entirely outside.
        assert_eq!(b.coverage(&[1000.0; 4]), 0.0);
        // Half in.
        assert_eq!(b.coverage(&[50.0, 1000.0, 50.0, 1000.0]), 0.5);
    }

    #[test]
    fn ragged_series_tolerated() {
        let series = vec![vec![1.0, 2.0, 3.0], vec![1.0, 2.0]];
        let b = ensemble_band(&series, 0.0, 1.0);
        assert_eq!(b.median.len(), 3);
        assert_eq!(b.median[2], 3.0);
    }

    #[test]
    #[should_panic(expected = "empty ensemble")]
    fn rejects_empty() {
        ensemble_band(&[], 0.1, 0.9);
    }
}
