//! Medical-cost model (case study 1, [9]).
//!
//! "The medical costs include costs incurred by COVID-19 patients for
//! medical attention, hospitalization, ventilator support, etc. For
//! each patient, the total costs depend on the disease severity."
//!
//! We charge each patient by the care events they generate: an
//! outpatient medical-attention visit, a hospital admission (plus a
//! daily bed rate), and ventilator support. Unit costs default to the
//! FAIR-Health-style 2020 estimates used by the paper's companion
//! economic study.

use epiflow_epihiper::covid::states;
use epiflow_epihiper::SimOutput;
use serde::{Deserialize, Serialize};

/// Unit costs in 2020 US dollars.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Outpatient medical-attention visit.
    pub attended_visit: f64,
    /// Hospital admission (fixed component).
    pub hospital_admission: f64,
    /// Hospital bed per day.
    pub hospital_day: f64,
    /// Ventilator support per admission.
    pub ventilation: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            attended_visit: 500.0,
            hospital_admission: 15_000.0,
            hospital_day: 2_500.0,
            ventilation: 45_000.0,
        }
    }
}

/// A cost breakdown for one simulation run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CostReport {
    pub n_attended: u64,
    pub n_hospitalized: u64,
    pub n_ventilated: u64,
    pub hospital_bed_days: u64,
    pub outpatient_cost: f64,
    pub hospital_cost: f64,
    pub ventilation_cost: f64,
}

impl CostReport {
    /// Total medical cost.
    pub fn total(&self) -> f64 {
        self.outpatient_cost + self.hospital_cost + self.ventilation_cost
    }

    /// Sum two reports (e.g. across regions or replicates).
    pub fn add(&self, other: &CostReport) -> CostReport {
        CostReport {
            n_attended: self.n_attended + other.n_attended,
            n_hospitalized: self.n_hospitalized + other.n_hospitalized,
            n_ventilated: self.n_ventilated + other.n_ventilated,
            hospital_bed_days: self.hospital_bed_days + other.hospital_bed_days,
            outpatient_cost: self.outpatient_cost + other.outpatient_cost,
            hospital_cost: self.hospital_cost + other.hospital_cost,
            ventilation_cost: self.ventilation_cost + other.ventilation_cost,
        }
    }

    /// Scale (e.g. divide by replicate count for a mean, or multiply by
    /// the population scale factor to report real-world dollars).
    pub fn scale(&self, f: f64) -> CostReport {
        CostReport {
            n_attended: (self.n_attended as f64 * f).round() as u64,
            n_hospitalized: (self.n_hospitalized as f64 * f).round() as u64,
            n_ventilated: (self.n_ventilated as f64 * f).round() as u64,
            hospital_bed_days: (self.hospital_bed_days as f64 * f).round() as u64,
            outpatient_cost: self.outpatient_cost * f,
            hospital_cost: self.hospital_cost * f,
            ventilation_cost: self.ventilation_cost * f,
        }
    }
}

impl CostModel {
    /// Compute costs from a COVID-19-model simulation output.
    pub fn evaluate(&self, output: &SimOutput) -> CostReport {
        // Care events: transitions into the attended / hospitalized /
        // ventilated states (both recovery and death paths).
        let count = |s: epiflow_epihiper::StateId| -> u64 {
            output.daily_new(s).iter().map(|&x| x as u64).sum()
        };
        let n_attended =
            count(states::ATTENDED) + count(states::ATTENDED_H) + count(states::ATTENDED_D);
        let n_hospitalized = count(states::HOSPITALIZED) + count(states::HOSPITALIZED_D);
        let n_ventilated = count(states::VENTILATED) + count(states::VENTILATED_D);
        // Bed-days: occupancy integrated over time.
        let bed_days: u64 = output
            .occupancy(states::HOSPITALIZED)
            .iter()
            .zip(output.occupancy(states::HOSPITALIZED_D))
            .map(|(a, b)| (a + b) as u64)
            .sum();

        CostReport {
            n_attended,
            n_hospitalized,
            n_ventilated,
            hospital_bed_days: bed_days,
            outpatient_cost: n_attended as f64 * self.attended_visit,
            hospital_cost: n_hospitalized as f64 * self.hospital_admission
                + bed_days as f64 * self.hospital_day,
            ventilation_cost: n_ventilated as f64 * self.ventilation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epiflow_epihiper::covid::covid19_model;
    use epiflow_epihiper::{InterventionSet, SimConfig, Simulation};
    use epiflow_synthpop::network::ContactEdge;
    use epiflow_synthpop::{ActivityType, ContactNetwork};

    fn epidemic_output(seed: u64) -> SimOutput {
        let n = 200u32;
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if (u * 7 + v) % 5 == 0 {
                    edges.push(ContactEdge {
                        u,
                        v,
                        start: 480,
                        duration: 480,
                        ctx_u: ActivityType::Work,
                        ctx_v: ActivityType::Work,
                        weight: 1.0,
                    });
                }
            }
        }
        let net = ContactNetwork { n_nodes: n as usize, edges };
        let mut sim = Simulation::new(
            &net,
            covid19_model(),
            (0..n).map(|i| (i % 5) as u8).collect(),
            vec![0; n as usize],
            InterventionSet::new(),
            SimConfig { ticks: 150, seed, initial_infections: 8, ..Default::default() },
        );
        sim.model.transmissibility = 0.6;
        sim.run().output
    }

    #[test]
    fn costs_track_severity_counts() {
        let out = epidemic_output(1);
        let model = CostModel::default();
        let report = model.evaluate(&out);
        assert!(report.n_attended > 0, "epidemic must produce attended cases");
        assert_eq!(report.outpatient_cost, report.n_attended as f64 * 500.0);
        assert!(report.total() >= report.outpatient_cost);
        // Severity pyramid: attended ≥ hospitalized ≥ ventilated.
        assert!(report.n_attended >= report.n_hospitalized);
        assert!(report.n_hospitalized >= report.n_ventilated);
    }

    #[test]
    fn bed_days_at_least_admissions() {
        let out = epidemic_output(2);
        let report = CostModel::default().evaluate(&out);
        if report.n_hospitalized > 0 {
            assert!(report.hospital_bed_days >= report.n_hospitalized);
        }
    }

    #[test]
    fn bigger_epidemic_costs_more() {
        // Zero transmissibility vs real epidemic.
        let real = CostModel::default().evaluate(&epidemic_output(3));
        let n = 50;
        let net = ContactNetwork { n_nodes: n, edges: vec![] };
        let mut sim = Simulation::new(
            &net,
            covid19_model(),
            vec![2; n],
            vec![0; n],
            InterventionSet::new(),
            SimConfig { ticks: 60, seed: 3, initial_infections: 1, ..Default::default() },
        );
        let tiny = CostModel::default().evaluate(&sim.run().output);
        assert!(real.total() > tiny.total());
    }

    #[test]
    fn add_and_scale() {
        let a = CostReport {
            n_attended: 10,
            n_hospitalized: 2,
            n_ventilated: 1,
            hospital_bed_days: 12,
            outpatient_cost: 5000.0,
            hospital_cost: 60_000.0,
            ventilation_cost: 45_000.0,
        };
        let sum = a.add(&a);
        assert_eq!(sum.n_attended, 20);
        assert_eq!(sum.total(), 2.0 * a.total());
        let half = sum.scale(0.5);
        assert_eq!(half.n_attended, 10);
        assert!((half.total() - a.total()).abs() < 1e-9);
    }

    #[test]
    fn empty_output_costs_nothing() {
        let report = CostModel::default().evaluate(&SimOutput::default());
        assert_eq!(report.total(), 0.0);
        assert_eq!(report.n_attended, 0);
    }
}
