//! Forecast-target extraction.
//!
//! "From the individual-level output data, we can aggregate simulation
//! results to the county level for different health states … daily
//! counts of symptomatic cases, hospitalizations, ventilations, and
//! deaths are used in our predictions."

use epiflow_epihiper::covid::states;
use epiflow_epihiper::{SimOutput, StateId};

/// The paper's three counts for one health state over time.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ThreeCounts {
    /// Transitions into the state per day.
    pub new: Vec<u32>,
    /// Running total of `new`.
    pub cumulative: Vec<u64>,
    /// Occupancy at end of each day.
    pub current: Vec<u32>,
}

impl ThreeCounts {
    /// Extract for one state from a simulation output.
    pub fn from_output(output: &SimOutput, state: StateId) -> Self {
        ThreeCounts {
            new: output.daily_new(state),
            cumulative: output.cumulative(state),
            current: output.occupancy(state),
        }
    }
}

/// The standard forecasting targets of the COVID-19 model.
#[derive(Clone, Debug, Default)]
pub struct ForecastTargets {
    /// Symptomatic cases (the "confirmed case" analog pre-ascertainment).
    pub cases: ThreeCounts,
    /// Hospitalizations (recovery + death paths combined).
    pub hospitalizations: ThreeCounts,
    /// Ventilations (recovery + death paths combined).
    pub ventilations: ThreeCounts,
    /// Deaths.
    pub deaths: ThreeCounts,
}

fn combine(a: ThreeCounts, b: ThreeCounts) -> ThreeCounts {
    let n = a.new.len().max(b.new.len());
    let get32 = |v: &Vec<u32>, i: usize| v.get(i).copied().unwrap_or(0);
    let get64 = |v: &Vec<u64>, i: usize| v.get(i).copied().unwrap_or(0);
    ThreeCounts {
        new: (0..n).map(|i| get32(&a.new, i) + get32(&b.new, i)).collect(),
        cumulative: (0..n).map(|i| get64(&a.cumulative, i) + get64(&b.cumulative, i)).collect(),
        current: (0..n).map(|i| get32(&a.current, i) + get32(&b.current, i)).collect(),
    }
}

impl ForecastTargets {
    /// Extract all targets from a COVID-19-model simulation output.
    pub fn from_covid_output(output: &SimOutput) -> Self {
        ForecastTargets {
            cases: ThreeCounts::from_output(output, states::SYMPTOMATIC),
            hospitalizations: combine(
                ThreeCounts::from_output(output, states::HOSPITALIZED),
                ThreeCounts::from_output(output, states::HOSPITALIZED_D),
            ),
            ventilations: combine(
                ThreeCounts::from_output(output, states::VENTILATED),
                ThreeCounts::from_output(output, states::VENTILATED_D),
            ),
            deaths: ThreeCounts::from_output(output, states::DEATH),
        }
    }

    /// County-level daily new symptomatic cases.
    pub fn county_cases(output: &SimOutput, county: usize) -> Vec<u32> {
        output.county_daily_new(county, states::SYMPTOMATIC)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epiflow_epihiper::covid::covid19_model;
    use epiflow_epihiper::{InterventionSet, SimConfig, Simulation};
    use epiflow_synthpop::network::ContactEdge;
    use epiflow_synthpop::{ActivityType, ContactNetwork};

    fn covid_run() -> SimOutput {
        let n = 150u32;
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if (u + v) % 4 == 0 {
                    edges.push(ContactEdge {
                        u,
                        v,
                        start: 480,
                        duration: 480,
                        ctx_u: ActivityType::Work,
                        ctx_v: ActivityType::Work,
                        weight: 1.0,
                    });
                }
            }
        }
        let net = ContactNetwork { n_nodes: n as usize, edges };
        let mut sim = Simulation::new(
            &net,
            covid19_model(),
            // Mix of age groups so severity paths are exercised.
            (0..n).map(|i| (i % 5) as u8).collect(),
            (0..n).map(|i| (i % 3) as u16).collect(),
            InterventionSet::new(),
            SimConfig { ticks: 120, seed: 4, initial_infections: 6, ..Default::default() },
        );
        sim.model.transmissibility = 0.6;
        sim.run().output
    }

    #[test]
    fn three_counts_consistency() {
        let out = covid_run();
        let t = ThreeCounts::from_output(&out, states::SYMPTOMATIC);
        // cumulative = prefix sum of new.
        let mut acc = 0u64;
        for (i, &n) in t.new.iter().enumerate() {
            acc += n as u64;
            assert_eq!(t.cumulative[i], acc);
        }
        assert_eq!(t.new.len(), t.current.len());
    }

    #[test]
    fn epidemic_produces_all_targets() {
        let out = covid_run();
        let targets = ForecastTargets::from_covid_output(&out);
        let total_cases = *targets.cases.cumulative.last().unwrap();
        assert!(total_cases > 20, "cases {total_cases}");
        let total_hosp = *targets.hospitalizations.cumulative.last().unwrap();
        assert!(total_hosp >= 1, "hospitalizations {total_hosp}");
        assert!(total_hosp < total_cases, "hospitalizations ≤ cases");
    }

    #[test]
    fn deaths_do_not_exceed_hospitalizations_plus_direct() {
        let out = covid_run();
        let t = ForecastTargets::from_covid_output(&out);
        let deaths = *t.deaths.cumulative.last().unwrap();
        let cases = *t.cases.cumulative.last().unwrap();
        assert!(deaths <= cases);
    }

    #[test]
    fn county_cases_partition_state_cases() {
        let out = covid_run();
        let state_new = out.daily_new(states::SYMPTOMATIC);
        let mut summed = vec![0u32; state_new.len()];
        for county in 0..3 {
            for (i, c) in ForecastTargets::county_cases(&out, county).iter().enumerate() {
                summed[i] += c;
            }
        }
        assert_eq!(summed, state_new);
    }

    #[test]
    fn combine_zero_extends() {
        let a = ThreeCounts { new: vec![1, 2], cumulative: vec![1, 3], current: vec![1, 1] };
        let b = ThreeCounts { new: vec![5], cumulative: vec![5], current: vec![5] };
        let c = combine(a, b);
        assert_eq!(c.new, vec![6, 2]);
        assert_eq!(c.cumulative, vec![6, 3]);
    }
}
