//! Cluster specifications (Table II) and availability windows.

use serde::{Deserialize, Serialize};

/// Which cluster a workflow step runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Site {
    /// Rivanna HPC Facility at the University of Virginia.
    Home,
    /// Bridges HPC Facility at the Pittsburgh Supercomputing Center.
    Remote,
}

/// A cluster's hardware configuration (Table II), with whole-node
/// allocation as the paper's policy ("we intentionally avoided using
/// partial nodes").
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    pub site: Site,
    pub name: String,
    pub nodes: usize,
    pub cpus_per_node: usize,
    pub cores_per_cpu: usize,
    pub ram_gb_per_node: usize,
    /// Daily availability window in seconds-of-day `[start, end)`;
    /// `None` = always available. The remote cluster is dedicated to the
    /// workflows from 10 pm to 8 am.
    pub window: Option<(u32, u32)>,
    /// Queue-contention multiplier on effective task runtimes: 1.0 for a
    /// dedicated reservation (the nightly Bridges window), above 1.0 for
    /// a shared general-purpose queue where jobs co-schedule with other
    /// users' work.
    pub contention: f64,
}

impl ClusterSpec {
    /// Bridges (remote super-computing cluster) per Table II.
    pub fn bridges() -> Self {
        ClusterSpec {
            site: Site::Remote,
            name: "Bridges (PSC)".into(),
            nodes: 720,
            cpus_per_node: 2,
            cores_per_cpu: 14,
            ram_gb_per_node: 128,
            // 22:00 .. 08:00 (wraps midnight).
            window: Some((22 * 3600, 8 * 3600)),
            contention: 1.0, // dedicated to the workflows inside the window
        }
    }

    /// Rivanna (home cluster) per Table II.
    pub fn rivanna() -> Self {
        ClusterSpec {
            site: Site::Home,
            name: "Rivanna (UVA)".into(),
            nodes: 50,
            cpus_per_node: 2,
            cores_per_cpu: 20,
            ram_gb_per_node: 384,
            window: None,
            contention: 1.6, // shared institutional queue, no reservation
        }
    }

    /// Cores per node.
    pub fn cores_per_node(&self) -> usize {
        self.cpus_per_node * self.cores_per_cpu
    }

    /// Total cores.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_node()
    }

    /// Length of the daily window in seconds (86400 when unconstrained).
    pub fn window_secs(&self) -> u32 {
        match self.window {
            None => 86_400,
            Some((start, end)) => {
                if end >= start {
                    end - start
                } else {
                    86_400 - start + end
                }
            }
        }
    }

    /// Runtime multiplier for a task calibrated against `reference`
    /// when re-planned onto this cluster: relative per-node core count
    /// (whole-node allocation, so a node-sized rank gets this cluster's
    /// cores) times this cluster's queue contention. This is the
    /// failover cost model — Bridges → Rivanna comes out above 1.0
    /// because the shared home queue more than cancels Rivanna's extra
    /// cores per node.
    pub fn failover_slowdown(&self, reference: &ClusterSpec) -> f64 {
        self.contention * reference.cores_per_node() as f64 / self.cores_per_node() as f64
    }

    /// Is the cluster available at a given second-of-day?
    pub fn available_at(&self, second_of_day: u32) -> bool {
        let s = second_of_day % 86_400;
        match self.window {
            None => true,
            Some((start, end)) => {
                if end >= start {
                    s >= start && s < end
                } else {
                    s >= start || s < end
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bridges_matches_table_ii() {
        let b = ClusterSpec::bridges();
        assert_eq!(b.nodes, 720);
        assert_eq!(b.cores_per_node(), 28);
        assert_eq!(b.total_cores(), 20_160); // "over 20,000 cores"
        assert_eq!(b.ram_gb_per_node, 128);
    }

    #[test]
    fn rivanna_matches_table_ii() {
        let r = ClusterSpec::rivanna();
        assert_eq!(r.nodes, 50);
        assert_eq!(r.cores_per_node(), 40);
        assert_eq!(r.ram_gb_per_node, 384);
        assert!(r.available_at(12 * 3600));
    }

    #[test]
    fn nightly_window_wraps_midnight() {
        let b = ClusterSpec::bridges();
        assert_eq!(b.window_secs(), 10 * 3600); // "10 hours a day"
        assert!(b.available_at(23 * 3600)); // 11 pm
        assert!(b.available_at(2 * 3600)); // 2 am
        assert!(b.available_at(7 * 3600 + 3599)); // 7:59:59 am
        assert!(!b.available_at(8 * 3600)); // 8 am sharp
        assert!(!b.available_at(12 * 3600)); // noon
        assert!(!b.available_at(21 * 3600 + 3599)); // 9:59:59 pm
        assert!(b.available_at(22 * 3600)); // 10 pm sharp
    }

    #[test]
    fn failover_slowdown_home_is_slower() {
        let remote = ClusterSpec::bridges();
        let home = ClusterSpec::rivanna();
        let s = home.failover_slowdown(&remote);
        // 1.6 contention × 28/40 relative cores = 1.12.
        assert!((s - 1.12).abs() < 1e-9, "slowdown {s}");
        assert!(s > 1.0, "failover must cost runtime, not gain it");
        // A dedicated cluster failing over to itself costs nothing.
        assert_eq!(remote.failover_slowdown(&remote), 1.0);
    }

    #[test]
    fn non_wrapping_window() {
        let c = ClusterSpec { window: Some((9 * 3600, 17 * 3600)), ..ClusterSpec::rivanna() };
        assert_eq!(c.window_secs(), 8 * 3600);
        assert!(c.available_at(10 * 3600));
        assert!(!c.available_at(18 * 3600));
    }

    #[test]
    fn day_offsets_normalize() {
        let b = ClusterSpec::bridges();
        // Second 23:00 on day 3.
        assert!(b.available_at(3 * 86_400 + 23 * 3600));
    }
}
