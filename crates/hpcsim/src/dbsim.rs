//! Per-region population database simulation.
//!
//! The real system runs one PostgreSQL server per region (paper §V,
//! Step 1: "Split the overall database so that we have one database per
//! region … each such database occupies one node of the system"), with
//! simulations loading population data through a bounded number of
//! connections at run time. Snapshots of the databases are created when
//! populations are built and instantiated at run-time to speed startup.

use epiflow_surveillance::RegionId;

/// A simulated per-region PostgreSQL server.
#[derive(Clone, Debug)]
pub struct PopulationDb {
    pub region: RegionId,
    /// Maximum simultaneous connections B(r).
    pub max_connections: usize,
    /// Currently held connections.
    in_use: usize,
    /// Lifetime peak (for utilization reporting).
    peak: usize,
    /// Total acquire calls that were refused.
    refused: u64,
    /// Rows in the person-trait table (drives startup cost).
    pub rows: u64,
    /// Whether the exhaustion fault hook has fired.
    exhausted: bool,
    /// Whether this is a cold-standby replica (see
    /// [`PopulationDb::standby`]).
    standby: bool,
}

/// Error returned when the connection bound would be exceeded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConnectionsExhausted {
    pub region: RegionId,
    pub max_connections: usize,
}

impl std::fmt::Display for ConnectionsExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "region {} database refused connection (bound {})",
            self.region, self.max_connections
        )
    }
}

impl std::error::Error for ConnectionsExhausted {}

impl PopulationDb {
    /// Create a database for a region's population table.
    pub fn new(region: RegionId, rows: u64, max_connections: usize) -> Self {
        assert!(max_connections > 0, "database needs at least one connection");
        PopulationDb {
            region,
            max_connections,
            in_use: 0,
            peak: 0,
            refused: 0,
            rows,
            exhausted: false,
            standby: false,
        }
    }

    /// A cold-standby replica for the region: a fresh server restored
    /// on the alternate resource when the primary's circuit breaker is
    /// open. It starts with its full connection bound (no leaked
    /// connections — nothing has ever run against it), so the fault
    /// hooks that degraded the primary do not apply.
    pub fn standby(region: RegionId, rows: u64, max_connections: usize) -> Self {
        PopulationDb { standby: true, ..PopulationDb::new(region, rows, max_connections) }
    }

    /// Whether this database is a cold-standby replica.
    pub fn is_standby(&self) -> bool {
        self.standby
    }

    /// Fault hook: connection exhaustion (leaked connections from
    /// crashed jobs, a runaway analytics session). The bound drops to
    /// `ceil(max_connections × keep_fraction)`, never below 1; already
    /// held connections stay held, so `in_use` may transiently exceed
    /// the new bound and further acquires are refused until it drains.
    pub fn exhaust(&mut self, keep_fraction: f64) {
        let keep = (self.max_connections as f64 * keep_fraction.clamp(0.0, 1.0)).ceil() as usize;
        self.max_connections = keep.max(1);
        self.exhausted = true;
    }

    /// Whether [`PopulationDb::exhaust`] has fired on this database.
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }

    /// Startup time in seconds. Cold start parses and loads the CSV
    /// (~1 µs/row at PostgreSQL COPY speeds); snapshot restore is an
    /// order of magnitude cheaper — the paper's motivation for
    /// snapshotting ("to speed up the start of the population
    /// databases, snapshots … are instantiated at run-time").
    pub fn startup_secs(&self, from_snapshot: bool) -> f64 {
        let per_row = if from_snapshot { 0.1e-6 } else { 1.0e-6 };
        2.0 + self.rows as f64 * per_row
    }

    /// Acquire a connection.
    pub fn acquire(&mut self) -> Result<(), ConnectionsExhausted> {
        if self.in_use >= self.max_connections {
            self.refused += 1;
            return Err(ConnectionsExhausted {
                region: self.region,
                max_connections: self.max_connections,
            });
        }
        self.in_use += 1;
        self.peak = self.peak.max(self.in_use);
        Ok(())
    }

    /// Acquire `n` connections atomically (a job needs all or nothing).
    pub fn acquire_many(&mut self, n: usize) -> Result<(), ConnectionsExhausted> {
        if self.in_use + n > self.max_connections {
            self.refused += 1;
            return Err(ConnectionsExhausted {
                region: self.region,
                max_connections: self.max_connections,
            });
        }
        self.in_use += n;
        self.peak = self.peak.max(self.in_use);
        Ok(())
    }

    /// Release a connection.
    ///
    /// # Panics
    /// Panics if no connection is held (a release/acquire imbalance is a
    /// workflow bug worth failing loudly on).
    pub fn release(&mut self) {
        assert!(self.in_use > 0, "release without acquire");
        self.in_use -= 1;
    }

    /// Release `n` connections.
    pub fn release_many(&mut self, n: usize) {
        assert!(self.in_use >= n, "release_many without matching acquires");
        self.in_use -= n;
    }

    /// Connections currently held.
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Peak concurrent connections observed.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Number of refused acquires.
    pub fn refused(&self) -> u64 {
        self.refused
    }

    /// The per-region concurrent-task bound implied by this database
    /// for jobs needing `conns_per_task` connections each (the B(T[r])
    /// of §V, Assumption 3/4).
    pub fn task_bound(&self, conns_per_task: usize) -> usize {
        self.max_connections / conns_per_task.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_cycle() {
        let mut db = PopulationDb::new(3, 1_000_000, 4);
        for _ in 0..4 {
            db.acquire().unwrap();
        }
        assert_eq!(db.in_use(), 4);
        assert!(db.acquire().is_err());
        db.release();
        db.acquire().unwrap();
        assert_eq!(db.peak(), 4);
        assert_eq!(db.refused(), 1);
    }

    #[test]
    fn acquire_many_all_or_nothing() {
        let mut db = PopulationDb::new(0, 100, 5);
        db.acquire_many(3).unwrap();
        assert!(db.acquire_many(3).is_err());
        assert_eq!(db.in_use(), 3, "failed bulk acquire must not leak");
        db.acquire_many(2).unwrap();
        db.release_many(5);
        assert_eq!(db.in_use(), 0);
    }

    #[test]
    #[should_panic(expected = "release without acquire")]
    fn release_imbalance_panics() {
        let mut db = PopulationDb::new(0, 100, 2);
        db.release();
    }

    #[test]
    fn standby_replica_starts_clean() {
        let mut primary = PopulationDb::new(2, 100, 8);
        primary.exhaust(0.25);
        let standby = PopulationDb::standby(2, 100, 8);
        assert!(standby.is_standby());
        assert!(!standby.exhausted());
        assert_eq!(standby.max_connections, 8, "standby keeps the full bound");
        assert!(standby.max_connections > primary.max_connections);
        assert_eq!(standby.startup_secs(true), primary.startup_secs(true));
    }

    #[test]
    fn snapshot_startup_much_faster() {
        let db = PopulationDb::new(4, 20_000_000, 8); // CA-scale rows
        let cold = db.startup_secs(false);
        let snap = db.startup_secs(true);
        assert!(cold > 5.0 * snap, "cold {cold} vs snapshot {snap}");
    }

    #[test]
    fn exhaustion_shrinks_bound_but_keeps_held_connections() {
        let mut db = PopulationDb::new(2, 100, 8);
        db.acquire_many(6).unwrap();
        db.exhaust(0.5); // bound drops to 4, 6 still held
        assert!(db.exhausted());
        assert_eq!(db.max_connections, 4);
        assert_eq!(db.in_use(), 6);
        assert!(db.acquire().is_err());
        db.release_many(3);
        db.acquire().unwrap(); // 3 held < 4: headroom again
        assert_eq!(db.task_bound(4), 1);
    }

    #[test]
    fn exhaustion_never_drops_below_one_connection() {
        let mut db = PopulationDb::new(2, 100, 8);
        db.exhaust(0.0);
        assert_eq!(db.max_connections, 1);
    }

    #[test]
    fn task_bound_derivation() {
        let db = PopulationDb::new(1, 100, 12);
        assert_eq!(db.task_bound(4), 3);
        assert_eq!(db.task_bound(5), 2);
        assert_eq!(db.task_bound(0), 12);
    }
}
