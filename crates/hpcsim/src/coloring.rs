//! The r-relaxed coloring problem (§V).
//!
//! The DB-access constraint is formalized as a new vertex coloring
//! variant: assign each task (vertex) a color (time slot) such that no
//! vertex shares its color with more than `r` of its conflict-graph
//! neighbors. With `r = 1` this is classical proper coloring, so all
//! hardness results carry over; the paper's Step-1 decomposition (one
//! database per region) turns the graph into a disjoint union of
//! cliques, for which the greedy algorithm is exact.

/// An undirected conflict graph over tasks.
#[derive(Clone, Debug, Default)]
pub struct ConflictGraph {
    n: usize,
    adj: Vec<Vec<u32>>,
}

impl ConflictGraph {
    /// An empty graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        ConflictGraph { n, adj: vec![Vec::new(); n] }
    }

    /// Add a conflict edge (idempotent input not checked; duplicate
    /// edges would double-count in the relaxation, so callers must not
    /// add them twice).
    pub fn add_edge(&mut self, u: u32, v: u32) {
        assert!(u != v, "no self conflicts");
        assert!((u as usize) < self.n && (v as usize) < self.n);
        self.adj[u as usize].push(v);
        self.adj[v as usize].push(u);
    }

    /// Build the per-region clique union of the paper's Step 1: tasks
    /// of the same region all conflict pairwise.
    pub fn region_cliques(task_regions: &[usize]) -> Self {
        let n = task_regions.len();
        let mut g = ConflictGraph::new(n);
        let max_region = task_regions.iter().copied().max().unwrap_or(0);
        let mut by_region: Vec<Vec<u32>> = vec![Vec::new(); max_region + 1];
        for (i, &r) in task_regions.iter().enumerate() {
            by_region[r].push(i as u32);
        }
        for members in &by_region {
            for (i, &a) in members.iter().enumerate() {
                for &b in &members[i + 1..] {
                    g.add_edge(a, b);
                }
            }
        }
        g
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Neighbors of `v`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adj[v as usize]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: u32) -> usize {
        self.adj[v as usize].len()
    }
}

/// Greedy r-relaxed coloring: vertices in the given order take the
/// smallest color used by at most `r` of their already-colored
/// neighbors. Returns one color per vertex.
///
/// For a disjoint union of cliques of sizes `s_i`, greedy uses exactly
/// `max_i ceil(s_i / (r + 1))` colors — optimal.
pub fn greedy_relaxed_coloring(graph: &ConflictGraph, order: &[u32], r: usize) -> Vec<u32> {
    assert_eq!(order.len(), graph.len(), "order must be a permutation");
    let mut color = vec![u32::MAX; graph.len()];
    let mut neighbor_color_count: Vec<std::collections::HashMap<u32, usize>> =
        vec![std::collections::HashMap::new(); graph.len()];

    for &v in order {
        // Count colors among already-colored neighbors of v.
        let counts = &neighbor_color_count[v as usize];
        let mut c = 0u32;
        loop {
            if counts.get(&c).copied().unwrap_or(0) <= r {
                break;
            }
            c += 1;
        }
        color[v as usize] = c;
        for &u in graph.neighbors(v) {
            *neighbor_color_count[u as usize].entry(c).or_insert(0) += 1;
        }
    }
    color
}

/// Check that `color` is a valid r-relaxed coloring: every vertex has at
/// most `r` same-colored neighbors.
pub fn validate_relaxed_coloring(graph: &ConflictGraph, color: &[u32], r: usize) -> bool {
    if color.len() != graph.len() {
        return false;
    }
    (0..graph.len() as u32).all(|v| {
        let same =
            graph.neighbors(v).iter().filter(|&&u| color[u as usize] == color[v as usize]).count();
        same <= r
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity_order(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }

    #[test]
    fn r1_on_triangle_is_proper_ish() {
        // r = 1 allows one same-color neighbor: a triangle needs 2
        // colors (pair + single), not 3.
        let mut g = ConflictGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 2);
        let c = greedy_relaxed_coloring(&g, &identity_order(3), 1);
        assert!(validate_relaxed_coloring(&g, &c, 1));
        let distinct: std::collections::HashSet<u32> = c.iter().copied().collect();
        assert_eq!(distinct.len(), 2);
    }

    #[test]
    fn r0_is_classical_coloring() {
        let mut g = ConflictGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 2);
        let c = greedy_relaxed_coloring(&g, &identity_order(3), 0);
        assert!(validate_relaxed_coloring(&g, &c, 0));
        let distinct: std::collections::HashSet<u32> = c.iter().copied().collect();
        assert_eq!(distinct.len(), 3, "triangle needs 3 proper colors");
    }

    #[test]
    fn clique_color_count_is_ceil_s_over_r_plus_1() {
        // Clique of 10 with r = 2 → ceil(10/3) = 4 colors.
        let regions = vec![0usize; 10];
        let g = ConflictGraph::region_cliques(&regions);
        let c = greedy_relaxed_coloring(&g, &identity_order(10), 2);
        assert!(validate_relaxed_coloring(&g, &c, 2));
        let max = *c.iter().max().unwrap();
        assert_eq!(max + 1, 4);
    }

    #[test]
    fn region_cliques_are_independent() {
        // Two regions: their colorings don't interact.
        let regions = vec![0, 0, 0, 1, 1, 1];
        let g = ConflictGraph::region_cliques(&regions);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 2);
        let c = greedy_relaxed_coloring(&g, &identity_order(6), 1);
        assert!(validate_relaxed_coloring(&g, &c, 1));
        // Each clique of 3 with r=1 needs 2 colors; the union still 2.
        assert_eq!(*c.iter().max().unwrap() + 1, 2);
    }

    #[test]
    fn validator_catches_violations() {
        let mut g = ConflictGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        // Vertex 1 has two same-colored neighbors: invalid for r = 1.
        assert!(!validate_relaxed_coloring(&g, &[0, 0, 0], 1));
        assert!(validate_relaxed_coloring(&g, &[0, 0, 0], 2));
        assert!(!validate_relaxed_coloring(&g, &[0, 0], 1), "wrong length");
    }

    #[test]
    fn order_affects_greedy_but_not_validity() {
        let regions = vec![0usize; 7];
        let g = ConflictGraph::region_cliques(&regions);
        let fwd = greedy_relaxed_coloring(&g, &identity_order(7), 1);
        let rev: Vec<u32> = (0..7u32).rev().collect();
        let bwd = greedy_relaxed_coloring(&g, &rev, 1);
        assert!(validate_relaxed_coloring(&g, &fwd, 1));
        assert!(validate_relaxed_coloring(&g, &bwd, 1));
    }

    #[test]
    fn empty_graph() {
        let g = ConflictGraph::new(0);
        let c = greedy_relaxed_coloring(&g, &[], 1);
        assert!(c.is_empty());
        assert!(validate_relaxed_coloring(&g, &c, 1));
        assert!(g.is_empty());
    }

    #[test]
    #[should_panic(expected = "self conflicts")]
    fn rejects_self_loop() {
        let mut g = ConflictGraph::new(2);
        g.add_edge(1, 1);
    }
}
