//! An event-driven Slurm-like executor (§IV).
//!
//! The mapping heuristic hands Slurm an *ordering and chunking* of
//! tasks; "Slurm further does a certain amount of real-time
//! optimization". We model that as work-conserving in-order dispatch
//! with limited lookahead: the job array is scanned in order each time
//! nodes free up, and a task starts as soon as enough whole nodes are
//! free and its region's database has connection headroom. The nightly
//! availability window bounds how much of a workload completes.

use crate::cluster::ClusterSpec;
use crate::task::Task;
use epiflow_surveillance::RegionId;
use std::collections::HashMap;

/// Result of a Slurm execution run.
#[derive(Clone, Debug)]
pub struct SlurmStats {
    /// Tasks that finished inside the window.
    pub completed: usize,
    /// Tasks that never started (window exhausted).
    pub unstarted: usize,
    /// Wall-clock seconds from window open to last completion.
    pub makespan_secs: f64,
    /// Node-seconds of useful work done.
    pub busy_node_secs: f64,
    /// Peak concurrently-busy nodes (the effective reservation size).
    pub peak_nodes: usize,
    /// EC = busy / (peak_nodes × makespan): utilization of the CPU
    /// hours actually allocated, matching Fig. 9's metric.
    pub utilization: f64,
    /// Per-task start times (s since window open), `None` if unstarted.
    pub start_times: Vec<Option<f64>>,
}

/// The executor.
pub struct SlurmSim {
    pub cluster: ClusterSpec,
    /// Lookahead depth: how many queued jobs may be scanned past a
    /// blocked head-of-line job (Slurm backfill-ish). 0 = strict FIFO.
    pub lookahead: usize,
}

impl SlurmSim {
    /// A simulator on the given cluster with moderate backfill.
    pub fn new(cluster: ClusterSpec) -> Self {
        SlurmSim { cluster, lookahead: 1024 }
    }

    /// Execute `order` (indices into `tasks`) within one nightly window.
    /// `db_bound(region)` caps concurrently running tasks per region.
    pub fn run<F>(&self, tasks: &[Task], order: &[usize], db_bound: F) -> SlurmStats
    where
        F: Fn(RegionId) -> usize,
    {
        let window = self.cluster.window_secs() as f64;
        let total_nodes = self.cluster.nodes;
        let mut free_nodes = total_nodes;
        let mut running: Vec<(f64, usize)> = Vec::new(); // (end_time, task index)
        let mut region_running: HashMap<RegionId, usize> = HashMap::new();
        let mut queue: std::collections::VecDeque<usize> = order.iter().copied().collect();
        let mut start_times: Vec<Option<f64>> = vec![None; tasks.len()];
        let mut now = 0.0f64;
        let mut busy = 0.0f64;
        let mut completed = 0usize;
        let mut last_completion = 0.0f64;
        let mut peak_nodes = 0usize;

        loop {
            // Dispatch: scan up to `lookahead` queued jobs for ones that
            // can start now.
            let mut dispatched = true;
            while dispatched {
                dispatched = false;
                let scan = queue.len().min(self.lookahead + 1);
                for qi in 0..scan {
                    let ti = queue[qi];
                    let t = &tasks[ti];
                    let bound = db_bound(t.region).max(1);
                    let region_ok =
                        region_running.get(&t.region).copied().unwrap_or(0) < bound;
                    // A job must also be able to finish before the
                    // window closes (Slurm would not start a job whose
                    // time limit exceeds the reservation).
                    let fits_window = now + t.actual_secs <= window;
                    if t.nodes <= free_nodes && region_ok && fits_window {
                        free_nodes -= t.nodes;
                        *region_running.entry(t.region).or_insert(0) += 1;
                        running.push((now + t.actual_secs, ti));
                        peak_nodes = peak_nodes.max(total_nodes - free_nodes);
                        start_times[ti] = Some(now);
                        queue.remove(qi);
                        dispatched = true;
                        break;
                    }
                }
            }

            if running.is_empty() {
                break; // nothing running and nothing dispatchable
            }
            // Advance to the next completion.
            let (idx, &(end, ti)) = running
                .iter()
                .enumerate()
                .min_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).expect("NaN end time"))
                .expect("non-empty running set");
            running.swap_remove(idx);
            now = end;
            let t = &tasks[ti];
            free_nodes += t.nodes;
            *region_running.get_mut(&t.region).expect("running region") -= 1;
            busy += t.actual_secs * t.nodes as f64;
            completed += 1;
            last_completion = now;
        }

        let makespan = last_completion;
        SlurmStats {
            completed,
            unstarted: queue.len(),
            makespan_secs: makespan,
            busy_node_secs: busy,
            peak_nodes,
            utilization: if makespan > 0.0 && peak_nodes > 0 {
                busy / (peak_nodes as f64 * makespan)
            } else {
                1.0
            },
            start_times,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cluster(nodes: usize, window_hours: u32) -> ClusterSpec {
        ClusterSpec {
            nodes,
            window: Some((0, window_hours * 3600)),
            ..ClusterSpec::rivanna()
        }
    }

    fn task(id: u32, region: RegionId, nodes: usize, secs: f64) -> Task {
        Task {
            id,
            region,
            cell: 0,
            replicate: 0,
            nodes,
            est_secs: secs,
            actual_secs: secs,
            db_connections: 1,
        }
    }

    #[test]
    fn completes_everything_that_fits() {
        let tasks: Vec<Task> = (0..10).map(|i| task(i, i as usize % 3, 2, 600.0)).collect();
        let sim = SlurmSim::new(small_cluster(10, 10));
        let order: Vec<usize> = (0..10).collect();
        let stats = sim.run(&tasks, &order, |_| 100);
        assert_eq!(stats.completed, 10);
        assert_eq!(stats.unstarted, 0);
        // 10 tasks × 2 nodes on 10 nodes = 2 waves of 600 s.
        assert!((stats.makespan_secs - 1200.0).abs() < 1e-9);
        assert!((stats.utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn window_cuts_off_excess_work() {
        // 1-hour window, each task takes 45 min on the full machine:
        // only one completes.
        let tasks: Vec<Task> = (0..5).map(|i| task(i, 0, 4, 2700.0)).collect();
        let sim = SlurmSim::new(small_cluster(4, 1));
        let order: Vec<usize> = (0..5).collect();
        let stats = sim.run(&tasks, &order, |_| 100);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.unstarted, 4);
    }

    #[test]
    fn db_bound_serializes_same_region() {
        // 4 one-node tasks of one region, bound 1: they run one at a
        // time even though the machine has room.
        let tasks: Vec<Task> = (0..4).map(|i| task(i, 7, 1, 100.0)).collect();
        let sim = SlurmSim::new(small_cluster(8, 10));
        let order: Vec<usize> = (0..4).collect();
        let stats = sim.run(&tasks, &order, |_| 1);
        assert_eq!(stats.completed, 4);
        assert!((stats.makespan_secs - 400.0).abs() < 1e-9);
    }

    #[test]
    fn backfill_lets_small_jobs_jump_blocked_head() {
        // Head job needs 8 nodes (busy machine); with lookahead the
        // 1-node jobs behind it run meanwhile.
        let mut tasks = vec![task(0, 0, 6, 1000.0)];
        tasks.push(task(1, 1, 8, 500.0)); // blocked until task 0 done
        tasks.extend((2..6).map(|i| task(i, 2, 1, 100.0)));
        let sim = SlurmSim::new(small_cluster(8, 10));
        let order: Vec<usize> = (0..6).collect();
        let stats = sim.run(&tasks, &order, |_| 100);
        assert_eq!(stats.completed, 6);
        // The small jobs started before task 1.
        let t1_start = stats.start_times[1].unwrap();
        for i in 2..6 {
            assert!(stats.start_times[i].unwrap() < t1_start);
        }
    }

    #[test]
    fn strict_fifo_blocks_behind_head() {
        let mut tasks = vec![task(0, 0, 6, 1000.0)];
        tasks.push(task(1, 1, 8, 500.0));
        tasks.extend((2..6).map(|i| task(i, 2, 1, 100.0)));
        let mut sim = SlurmSim::new(small_cluster(8, 10));
        sim.lookahead = 0;
        let order: Vec<usize> = (0..6).collect();
        let stats = sim.run(&tasks, &order, |_| 100);
        let t1_start = stats.start_times[1].unwrap();
        for i in 2..6 {
            assert!(stats.start_times[i].unwrap() >= t1_start);
        }
    }

    #[test]
    fn utilization_reflects_stragglers() {
        // One long task at the end leaves the machine mostly idle.
        let mut tasks: Vec<Task> = (0..8).map(|i| task(i, i as usize, 1, 100.0)).collect();
        tasks.push(task(8, 8, 1, 2000.0));
        let sim = SlurmSim::new(small_cluster(8, 10));
        let order: Vec<usize> = (0..9).collect();
        let stats = sim.run(&tasks, &order, |_| 100);
        assert!(stats.utilization < 0.3, "utilization {}", stats.utilization);
    }

    #[test]
    fn empty_order() {
        let sim = SlurmSim::new(small_cluster(4, 10));
        let stats = sim.run(&[], &[], |_| 1);
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.makespan_secs, 0.0);
    }
}
