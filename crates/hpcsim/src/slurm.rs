//! An event-driven Slurm-like executor (§IV).
//!
//! The mapping heuristic hands Slurm an *ordering and chunking* of
//! tasks; "Slurm further does a certain amount of real-time
//! optimization". We model that as work-conserving in-order dispatch
//! with limited lookahead: the job array is scanned in order each time
//! nodes free up, and a task starts as soon as enough whole nodes are
//! free and its region's database has connection headroom. The nightly
//! availability window bounds how much of a workload completes.

use crate::cluster::ClusterSpec;
use crate::task::Task;
use epiflow_surveillance::RegionId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Tick-level checkpoint/restart policy for simulation tasks (the
/// epihiper engine's snapshot/resume, seen from the scheduler's side).
///
/// With checkpointing off, a preempted task restarts from scratch and
/// every node-second since its start is destroyed. With it on, the task
/// writes a snapshot every `interval_ticks` ticks, and on the
/// preemption signal gets `grace_secs` to write one final snapshot
/// (cost `write_cost_secs`): if the grace window covers the write, work
/// up to the signal survives; otherwise the task falls back to its last
/// periodic snapshot and loses at most one interval. A requeued task
/// resumes from its saved tick, so its next attempt only runs the
/// remaining ticks.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CheckpointPolicy {
    /// Master switch; `false` reproduces classic restart-from-scratch
    /// behaviour byte-for-byte.
    pub enabled: bool,
    /// Ticks between periodic snapshot writes.
    pub interval_ticks: u32,
    /// Simulated ticks per task (converts wall-clock to tick progress).
    pub ticks_per_task: u32,
    /// Wall-clock cost of writing one snapshot, in seconds.
    pub write_cost_secs: f64,
    /// Seconds between the preemption signal and the kill (Slurm
    /// `GraceTime`): the budget for the final snapshot write.
    pub grace_secs: f64,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy {
            enabled: false,
            interval_ticks: 16,
            ticks_per_task: 256,
            write_cost_secs: 15.0,
            grace_secs: 30.0,
        }
    }
}

impl CheckpointPolicy {
    /// Checkpointing enabled with the given snapshot interval.
    pub fn every(interval_ticks: u32) -> Self {
        CheckpointPolicy { enabled: true, interval_ticks: interval_ticks.max(1), ..Self::default() }
    }
}

/// One resume event: a preempted task retained a snapshot and will
/// restart from `tick` instead of from scratch.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResumePoint {
    /// Index of the task in the submitted array.
    pub task: u32,
    /// Tick the retained snapshot resumes from.
    pub tick: u32,
}

/// Result of a Slurm execution run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SlurmStats {
    /// Tasks that finished inside the window.
    pub completed: usize,
    /// Tasks that never started (window exhausted).
    pub unstarted: usize,
    /// Wall-clock seconds from window open to last completion.
    pub makespan_secs: f64,
    /// Node-seconds of useful work done.
    pub busy_node_secs: f64,
    /// Peak concurrently-busy nodes (the effective reservation size).
    pub peak_nodes: usize,
    /// EC = busy / (peak_nodes × makespan): utilization of the CPU
    /// hours actually allocated, matching Fig. 9's metric.
    pub utilization: f64,
    /// Per-task start times (s since window open), `None` if unstarted.
    pub start_times: Vec<Option<f64>>,
    /// Task executions killed by node failures and re-queued (one task
    /// preempted twice counts twice).
    pub preempted: usize,
    /// Node-seconds of work destroyed by preemption (restarts redo the
    /// full task).
    pub lost_node_secs: f64,
    /// Node-seconds of preempted work preserved by checkpoints (would
    /// have been lost without them). Always 0 with checkpointing off.
    #[serde(default)]
    pub recovered_node_secs: f64,
    /// Task dispatches that resumed from a snapshot rather than
    /// starting from tick 0.
    #[serde(default)]
    pub resumes: usize,
    /// Snapshot lineage: each preemption that retained a checkpoint,
    /// with the tick its next attempt resumes from.
    #[serde(default)]
    pub resume_log: Vec<ResumePoint>,
}

impl SlurmStats {
    /// Did every submitted task finish inside the window?
    pub fn finished_all(&self) -> bool {
        self.unstarted == 0
    }

    /// Health signal for the cluster's circuit breaker: the run counts
    /// as a failure once it lost work to preemption or left tasks
    /// unstarted.
    pub fn healthy(&self) -> bool {
        self.finished_all() && self.preempted == 0
    }
}

/// A fault-injection event: `nodes` compute nodes drop out of the
/// machine at `at_secs` (counted from window open) and never return
/// during the window — the paper's mid-level node-loss scenario. Jobs
/// running on lost nodes are killed and re-queued at the head of the
/// job array (Slurm requeue-on-node-fail behaviour).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NodeFailure {
    pub at_secs: f64,
    pub nodes: usize,
}

/// The executor.
pub struct SlurmSim {
    pub cluster: ClusterSpec,
    /// Lookahead depth: how many queued jobs may be scanned past a
    /// blocked head-of-line job (Slurm backfill-ish). 0 = strict FIFO.
    pub lookahead: usize,
    /// Checkpoint/restart policy applied to every task (disabled by
    /// default — classic restart-from-scratch).
    pub checkpoint: CheckpointPolicy,
}

impl SlurmSim {
    /// A simulator on the given cluster with moderate backfill.
    pub fn new(cluster: ClusterSpec) -> Self {
        SlurmSim { cluster, lookahead: 1024, checkpoint: CheckpointPolicy::default() }
    }

    /// Execute `order` (indices into `tasks`) within one nightly window.
    /// `db_bound(region)` caps concurrently running tasks per region.
    pub fn run<F>(&self, tasks: &[Task], order: &[usize], db_bound: F) -> SlurmStats
    where
        F: Fn(RegionId) -> usize,
    {
        self.run_with_faults(tasks, order, db_bound, &[])
    }

    /// Like [`SlurmSim::run`], with node-failure events injected. When a
    /// failure fires, the lost nodes are taken from the idle pool first;
    /// if that is not enough, the most recently started jobs are killed
    /// (they lose the least work), their surviving nodes return to the
    /// pool, and the killed jobs are re-queued at the head of the job
    /// array to restart from scratch. With an empty `failures` slice the
    /// schedule is identical to `run`.
    ///
    /// When [`SlurmSim::checkpoint`] is enabled, a killed job keeps the
    /// work covered by its last snapshot (see [`CheckpointPolicy`]) and
    /// its requeued attempt only runs the remaining ticks; the preserved
    /// node-seconds are reported in
    /// [`SlurmStats::recovered_node_secs`] and the per-task resume
    /// ticks in [`SlurmStats::resume_log`].
    pub fn run_with_faults<F>(
        &self,
        tasks: &[Task],
        order: &[usize],
        db_bound: F,
        failures: &[NodeFailure],
    ) -> SlurmStats
    where
        F: Fn(RegionId) -> usize,
    {
        let window = self.cluster.window_secs() as f64;
        let ckpt = self.checkpoint;
        let ticks_per_task = ckpt.ticks_per_task.max(1);
        let mut total_nodes = self.cluster.nodes;
        let mut free_nodes = total_nodes;
        // (end_time, start_time, task index, planned duration)
        let mut running: Vec<(f64, f64, usize, f64)> = Vec::new();
        let mut region_running: HashMap<RegionId, usize> = HashMap::new();
        let mut queue: std::collections::VecDeque<usize> = order.iter().copied().collect();
        let mut start_times: Vec<Option<f64>> = vec![None; tasks.len()];
        let mut now = 0.0f64;
        let mut busy = 0.0f64;
        let mut completed = 0usize;
        let mut last_completion = 0.0f64;
        let mut peak_nodes = 0usize;
        let mut preempted = 0usize;
        let mut lost_node_secs = 0.0f64;
        let mut recovered_node_secs = 0.0f64;
        let mut resumes = 0usize;
        let mut resume_log: Vec<ResumePoint> = Vec::new();
        // Ticks of each task already covered by a retained snapshot.
        let mut done_ticks: Vec<u32> = vec![0; tasks.len()];
        let mut pending_failures: Vec<NodeFailure> = failures.to_vec();
        pending_failures.sort_by(|a, b| a.at_secs.partial_cmp(&b.at_secs).expect("NaN failure"));
        let mut next_failure = 0usize;

        loop {
            // Dispatch: scan up to `lookahead` queued jobs for ones that
            // can start now.
            let mut dispatched = true;
            while dispatched {
                dispatched = false;
                let scan = queue.len().min(self.lookahead + 1);
                for qi in 0..scan {
                    let ti = queue[qi];
                    let t = &tasks[ti];
                    let bound = db_bound(t.region).max(1);
                    let region_ok = region_running.get(&t.region).copied().unwrap_or(0) < bound;
                    // A resumed task only runs its remaining ticks.
                    // done_ticks == 0 takes the exact actual_secs path
                    // so classic behaviour is bit-identical.
                    let dur = if done_ticks[ti] == 0 {
                        t.actual_secs
                    } else {
                        t.actual_secs * (ticks_per_task - done_ticks[ti]) as f64
                            / ticks_per_task as f64
                    };
                    // A job must also be able to finish before the
                    // window closes (Slurm would not start a job whose
                    // time limit exceeds the reservation).
                    let fits_window = now + dur <= window;
                    if t.nodes <= free_nodes && region_ok && fits_window {
                        free_nodes -= t.nodes;
                        *region_running.entry(t.region).or_insert(0) += 1;
                        running.push((now + dur, now, ti, dur));
                        peak_nodes = peak_nodes.max(total_nodes - free_nodes);
                        start_times[ti] = Some(now);
                        if done_ticks[ti] > 0 {
                            resumes += 1;
                        }
                        queue.remove(qi);
                        dispatched = true;
                        break;
                    }
                }
            }

            if running.is_empty() {
                break; // nothing running and nothing dispatchable
            }
            // Next event: earliest completion, unless a node failure
            // fires first.
            let (idx, &(end, _start, _ti, _dur)) = running
                .iter()
                .enumerate()
                .min_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).expect("NaN end time"))
                .expect("non-empty running set");
            if next_failure < pending_failures.len()
                && pending_failures[next_failure].at_secs <= end
            {
                let fail = pending_failures[next_failure];
                next_failure += 1;
                now = now.max(fail.at_secs);
                let dead = fail.nodes.min(total_nodes);
                total_nodes -= dead;
                let from_idle = dead.min(free_nodes);
                free_nodes -= from_idle;
                let mut to_reclaim = dead - from_idle;
                let mut requeue: Vec<usize> = Vec::new();
                while to_reclaim > 0 {
                    // Kill the most recently started job (ties broken by
                    // task index, for determinism).
                    let (vi, _) = running
                        .iter()
                        .enumerate()
                        .max_by(|a, b| {
                            (a.1 .1, a.1 .2).partial_cmp(&(b.1 .1, b.1 .2)).expect("NaN start time")
                        })
                        .expect("reclaim exceeds running nodes");
                    let (_end, start, ti, _dur) = running.swap_remove(vi);
                    let t = &tasks[ti];
                    let killed_here = t.nodes.min(to_reclaim);
                    to_reclaim -= killed_here;
                    free_nodes += t.nodes - killed_here;
                    *region_running.get_mut(&t.region).expect("running region") -= 1;
                    start_times[ti] = None;
                    let elapsed = now - start;
                    let mut recovered_here = 0.0f64;
                    let mut write_charge = 0.0f64;
                    if ckpt.enabled {
                        // Tick progress this attempt, at the task's
                        // full-run rate.
                        let secs_per_tick = t.actual_secs / ticks_per_task as f64;
                        let remaining = ticks_per_task - done_ticks[ti];
                        let ran = ((elapsed / secs_per_tick) as u32).min(remaining);
                        let total = done_ticks[ti] + ran;
                        // A grace window long enough to cover the final
                        // snapshot write preserves everything up to the
                        // signal; otherwise fall back to the last
                        // periodic snapshot (floor to the interval).
                        let saved = if ckpt.grace_secs >= ckpt.write_cost_secs {
                            write_charge = ckpt.write_cost_secs;
                            total
                        } else {
                            done_ticks[ti].max(
                                total / ckpt.interval_ticks.max(1) * ckpt.interval_ticks.max(1),
                            )
                        };
                        recovered_here =
                            (saved - done_ticks[ti]) as f64 * secs_per_tick * t.nodes as f64;
                        if saved > 0 {
                            resume_log.push(ResumePoint { task: ti as u32, tick: saved });
                        }
                        done_ticks[ti] = saved;
                    }
                    // Preserved work is useful work: it will not be
                    // redone, so it counts toward busy node-seconds.
                    busy += recovered_here;
                    recovered_node_secs += recovered_here;
                    lost_node_secs +=
                        elapsed * t.nodes as f64 - recovered_here + write_charge * t.nodes as f64;
                    preempted += 1;
                    requeue.push(ti);
                }
                // Requeue preserving original relative order.
                requeue.sort_unstable();
                for ti in requeue.into_iter().rev() {
                    queue.push_front(ti);
                }
                continue;
            }
            let (end, _start, ti, dur) = running.swap_remove(idx);
            now = end;
            let t = &tasks[ti];
            free_nodes += t.nodes;
            *region_running.get_mut(&t.region).expect("running region") -= 1;
            // `dur` (not end − start) keeps the arithmetic identical to
            // the classic path for never-preempted tasks.
            busy += dur * t.nodes as f64;
            completed += 1;
            last_completion = now;
        }

        let makespan = last_completion;
        SlurmStats {
            completed,
            unstarted: queue.len(),
            makespan_secs: makespan,
            busy_node_secs: busy,
            peak_nodes,
            utilization: if makespan > 0.0 && peak_nodes > 0 {
                busy / (peak_nodes as f64 * makespan)
            } else {
                1.0
            },
            start_times,
            preempted,
            lost_node_secs,
            recovered_node_secs,
            resumes,
            resume_log,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cluster(nodes: usize, window_hours: u32) -> ClusterSpec {
        ClusterSpec { nodes, window: Some((0, window_hours * 3600)), ..ClusterSpec::rivanna() }
    }

    fn task(id: u32, region: RegionId, nodes: usize, secs: f64) -> Task {
        Task {
            id,
            region,
            cell: 0,
            replicate: 0,
            nodes,
            est_secs: secs,
            actual_secs: secs,
            db_connections: 1,
        }
    }

    #[test]
    fn completes_everything_that_fits() {
        let tasks: Vec<Task> = (0..10).map(|i| task(i, i as usize % 3, 2, 600.0)).collect();
        let sim = SlurmSim::new(small_cluster(10, 10));
        let order: Vec<usize> = (0..10).collect();
        let stats = sim.run(&tasks, &order, |_| 100);
        assert_eq!(stats.completed, 10);
        assert_eq!(stats.unstarted, 0);
        // 10 tasks × 2 nodes on 10 nodes = 2 waves of 600 s.
        assert!((stats.makespan_secs - 1200.0).abs() < 1e-9);
        assert!((stats.utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn window_cuts_off_excess_work() {
        // 1-hour window, each task takes 45 min on the full machine:
        // only one completes.
        let tasks: Vec<Task> = (0..5).map(|i| task(i, 0, 4, 2700.0)).collect();
        let sim = SlurmSim::new(small_cluster(4, 1));
        let order: Vec<usize> = (0..5).collect();
        let stats = sim.run(&tasks, &order, |_| 100);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.unstarted, 4);
    }

    #[test]
    fn db_bound_serializes_same_region() {
        // 4 one-node tasks of one region, bound 1: they run one at a
        // time even though the machine has room.
        let tasks: Vec<Task> = (0..4).map(|i| task(i, 7, 1, 100.0)).collect();
        let sim = SlurmSim::new(small_cluster(8, 10));
        let order: Vec<usize> = (0..4).collect();
        let stats = sim.run(&tasks, &order, |_| 1);
        assert_eq!(stats.completed, 4);
        assert!((stats.makespan_secs - 400.0).abs() < 1e-9);
    }

    #[test]
    fn backfill_lets_small_jobs_jump_blocked_head() {
        // Head job needs 8 nodes (busy machine); with lookahead the
        // 1-node jobs behind it run meanwhile.
        let mut tasks = vec![task(0, 0, 6, 1000.0)];
        tasks.push(task(1, 1, 8, 500.0)); // blocked until task 0 done
        tasks.extend((2..6).map(|i| task(i, 2, 1, 100.0)));
        let sim = SlurmSim::new(small_cluster(8, 10));
        let order: Vec<usize> = (0..6).collect();
        let stats = sim.run(&tasks, &order, |_| 100);
        assert_eq!(stats.completed, 6);
        // The small jobs started before task 1.
        let t1_start = stats.start_times[1].unwrap();
        for i in 2..6 {
            assert!(stats.start_times[i].unwrap() < t1_start);
        }
    }

    #[test]
    fn strict_fifo_blocks_behind_head() {
        let mut tasks = vec![task(0, 0, 6, 1000.0)];
        tasks.push(task(1, 1, 8, 500.0));
        tasks.extend((2..6).map(|i| task(i, 2, 1, 100.0)));
        let mut sim = SlurmSim::new(small_cluster(8, 10));
        sim.lookahead = 0;
        let order: Vec<usize> = (0..6).collect();
        let stats = sim.run(&tasks, &order, |_| 100);
        let t1_start = stats.start_times[1].unwrap();
        for i in 2..6 {
            assert!(stats.start_times[i].unwrap() >= t1_start);
        }
    }

    #[test]
    fn utilization_reflects_stragglers() {
        // One long task at the end leaves the machine mostly idle.
        let mut tasks: Vec<Task> = (0..8).map(|i| task(i, i as usize, 1, 100.0)).collect();
        tasks.push(task(8, 8, 1, 2000.0));
        let sim = SlurmSim::new(small_cluster(8, 10));
        let order: Vec<usize> = (0..9).collect();
        let stats = sim.run(&tasks, &order, |_| 100);
        assert!(stats.utilization < 0.3, "utilization {}", stats.utilization);
    }

    #[test]
    fn no_failures_matches_plain_run() {
        let tasks: Vec<Task> = (0..10).map(|i| task(i, i as usize % 3, 2, 600.0)).collect();
        let sim = SlurmSim::new(small_cluster(10, 10));
        let order: Vec<usize> = (0..10).collect();
        let a = sim.run(&tasks, &order, |_| 100);
        let b = sim.run_with_faults(&tasks, &order, |_| 100, &[]);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.makespan_secs, b.makespan_secs);
        assert_eq!(a.start_times, b.start_times);
        assert_eq!(b.preempted, 0);
        assert_eq!(b.lost_node_secs, 0.0);
    }

    #[test]
    fn node_failure_preempts_and_requeues() {
        // 4 nodes, two 2-node 1000 s jobs running side by side. At
        // t=500 two nodes die: the later job (index tie → higher id)
        // is killed and restarts on the surviving pair once job 0
        // finishes.
        let tasks: Vec<Task> = (0..2).map(|i| task(i, i as usize, 2, 1000.0)).collect();
        let sim = SlurmSim::new(small_cluster(4, 10));
        let stats = sim.run_with_faults(
            &tasks,
            &[0, 1],
            |_| 100,
            &[NodeFailure { at_secs: 500.0, nodes: 2 }],
        );
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.preempted, 1);
        assert!((stats.lost_node_secs - 1000.0).abs() < 1e-9); // 500 s × 2 nodes
        assert!((stats.makespan_secs - 2000.0).abs() < 1e-9);
        assert_eq!(stats.start_times[1], Some(1000.0));
    }

    #[test]
    fn failure_can_kill_the_whole_machine() {
        let tasks: Vec<Task> = (0..3).map(|i| task(i, 0, 2, 1000.0)).collect();
        let sim = SlurmSim::new(small_cluster(4, 10));
        let stats = sim.run_with_faults(
            &tasks,
            &[0, 1, 2],
            |_| 100,
            &[NodeFailure { at_secs: 100.0, nodes: 4 }],
        );
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.unstarted, 3);
        assert_eq!(stats.preempted, 2);
    }

    #[test]
    fn empty_order() {
        let sim = SlurmSim::new(small_cluster(4, 10));
        let stats = sim.run(&[], &[], |_| 1);
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.makespan_secs, 0.0);
    }

    /// The preemption scenario the module's classic tests exercise,
    /// with 100-tick tasks so tick arithmetic is round.
    fn preempt_scenario(
        checkpoint: CheckpointPolicy,
        fail_at: f64,
    ) -> (Vec<Task>, SlurmSim, SlurmStats) {
        let tasks: Vec<Task> = (0..2).map(|i| task(i, i as usize, 2, 1000.0)).collect();
        let mut sim = SlurmSim::new(small_cluster(4, 10));
        sim.checkpoint = checkpoint;
        let stats = sim.run_with_faults(
            &tasks,
            &[0, 1],
            |_| 100,
            &[NodeFailure { at_secs: fail_at, nodes: 2 }],
        );
        (tasks, sim, stats)
    }

    #[test]
    fn ckpt_enabled_without_faults_is_byte_identical_to_classic() {
        let tasks: Vec<Task> = (0..10).map(|i| task(i, i as usize % 3, 2, 600.0)).collect();
        let order: Vec<usize> = (0..10).collect();
        let classic = SlurmSim::new(small_cluster(10, 10));
        let mut with_ckpt = SlurmSim::new(small_cluster(10, 10));
        with_ckpt.checkpoint = CheckpointPolicy::every(16);
        let a = classic.run(&tasks, &order, |_| 100);
        let b = with_ckpt.run(&tasks, &order, |_| 100);
        assert_eq!(a, b, "checkpointing must be free when nothing is preempted");
        assert_eq!(b.recovered_node_secs, 0.0);
        assert_eq!(b.resumes, 0);
        assert!(b.resume_log.is_empty());
    }

    #[test]
    fn ckpt_disabled_policy_matches_classic_under_preemption() {
        // The disabled policy is the default, so this doubles as a
        // regression guard on the classic numbers.
        let (_, _, stats) = preempt_scenario(CheckpointPolicy::default(), 500.0);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.preempted, 1);
        assert!((stats.lost_node_secs - 1000.0).abs() < 1e-9);
        assert!((stats.makespan_secs - 2000.0).abs() < 1e-9);
        assert_eq!(stats.recovered_node_secs, 0.0);
        assert_eq!(stats.resumes, 0);
    }

    #[test]
    fn ckpt_preemption_resumes_from_snapshot() {
        // 100-tick tasks at 10 s/tick; generous grace covers the final
        // write, so the kill at t=500 retains all 50 ticks run.
        let policy = CheckpointPolicy {
            enabled: true,
            interval_ticks: 1,
            ticks_per_task: 100,
            write_cost_secs: 15.0,
            grace_secs: 30.0,
        };
        let (_, _, stats) = preempt_scenario(policy, 500.0);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.preempted, 1);
        assert_eq!(stats.resumes, 1);
        assert_eq!(stats.resume_log, vec![ResumePoint { task: 1, tick: 50 }]);
        // 50 ticks × 10 s × 2 nodes survive; only the final snapshot
        // write (15 s × 2 nodes) is wasted.
        assert!((stats.recovered_node_secs - 1000.0).abs() < 1e-9);
        assert!((stats.lost_node_secs - 30.0).abs() < 1e-9);
        // The resumed attempt runs 50 remaining ticks = 500 s starting
        // when task 0 finishes: makespan 1500 s, not the classic 2000.
        assert_eq!(stats.start_times[1], Some(1000.0));
        assert!((stats.makespan_secs - 1500.0).abs() < 1e-9);
        // Total useful work matches the no-fault run.
        assert!((stats.busy_node_secs - 4000.0).abs() < 1e-9);
    }

    #[test]
    fn ckpt_short_grace_falls_back_to_periodic_interval() {
        // Grace too short for the final write: the 50 ticks run round
        // down to the last periodic snapshot at tick 48.
        let policy = CheckpointPolicy {
            enabled: true,
            interval_ticks: 16,
            ticks_per_task: 100,
            write_cost_secs: 15.0,
            grace_secs: 5.0,
        };
        let (_, _, stats) = preempt_scenario(policy, 500.0);
        assert_eq!(stats.resume_log, vec![ResumePoint { task: 1, tick: 48 }]);
        assert!((stats.recovered_node_secs - 960.0).abs() < 1e-9);
        // 1000 lost − 960 recovered; no write charge (it never ran).
        assert!((stats.lost_node_secs - 40.0).abs() < 1e-9);
        // Remaining 52 ticks = 520 s after task 0's 1000 s.
        assert!((stats.makespan_secs - 1520.0).abs() < 1e-9);
    }

    #[test]
    fn ckpt_stats_serde_round_trip() {
        let policy = CheckpointPolicy::every(4);
        let (_, _, stats) =
            preempt_scenario(CheckpointPolicy { ticks_per_task: 100, ..policy }, 500.0);
        let json = serde_json::to_string(&stats).unwrap();
        let back: SlurmStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
    }
}
