//! Globus-like data transfers between the home and remote clusters.
//!
//! Only two properties of the real Globus service matter to the
//! workflow timeline: the volume moved (Table I/II accounting) and the
//! duration (a bandwidth + per-transfer overhead model; Globus streams
//! large files at near-line rate but pays checksumming and handshake
//! overheads per transfer).

use crate::cluster::Site;
use serde::{Deserialize, Serialize};

/// A link between the two sites.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GlobusLink {
    /// Sustained bandwidth in bytes/second.
    pub bandwidth_bps: f64,
    /// Fixed per-transfer overhead in seconds (handshake, checksum
    /// pipelining ramp-up).
    pub overhead_secs: f64,
}

impl Default for GlobusLink {
    fn default() -> Self {
        // Internet2 between UVA and PSC: ~1 GB/s sustained is
        // optimistic; 250 MB/s is a realistic Globus-observed rate.
        GlobusLink { bandwidth_bps: 250e6, overhead_secs: 30.0 }
    }
}

/// One executed transfer.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Transfer {
    pub from: Site,
    pub to: Site,
    pub bytes: u64,
    pub label: String,
    /// Start time, seconds on the workflow clock.
    pub start_secs: f64,
    pub duration_secs: f64,
}

impl GlobusLink {
    /// Transfer duration for a payload.
    pub fn duration_secs(&self, bytes: u64) -> f64 {
        self.overhead_secs + bytes as f64 / self.bandwidth_bps
    }

    /// Build a transfer record starting at `start_secs`.
    pub fn transfer(
        &self,
        from: Site,
        to: Site,
        bytes: u64,
        label: &str,
        start_secs: f64,
    ) -> Transfer {
        Transfer {
            from,
            to,
            bytes,
            label: label.to_string(),
            start_secs,
            duration_secs: self.duration_secs(bytes),
        }
    }
}

/// Seeded fault model for a link: each transfer attempt independently
/// drops mid-flight with probability `fail_prob`, and each completing
/// attempt independently straggles (congestion, checksum retransmits)
/// with probability `slow_prob`, stretching to `slow_factor ×` its
/// nominal duration. Outcomes are a pure function of `(seed, label,
/// attempt)` — no stream state — so a workflow resumed from a journal
/// replays exactly the outcomes the interrupted run saw.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkFaults {
    /// Per-attempt probability of a mid-flight drop.
    pub fail_prob: f64,
    pub seed: u64,
    /// Per-attempt probability a completing transfer straggles.
    pub slow_prob: f64,
    /// Duration multiplier for straggling transfers.
    pub slow_factor: f64,
}

impl Default for LinkFaults {
    fn default() -> Self {
        LinkFaults { fail_prob: 0.0, seed: 0, slow_prob: 0.0, slow_factor: 1.0 }
    }
}

/// FNV-1a over the label, mixed with the seed and attempt number, then
/// finished with the SplitMix64 avalanche.
fn mix(seed: u64, label: &str, attempt: u32) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for b in label.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h = h.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(attempt as u64 + 1));
    let mut z = h;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(z: u64) -> f64 {
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl LinkFaults {
    pub fn new(fail_prob: f64, seed: u64) -> Self {
        LinkFaults { fail_prob, seed, ..LinkFaults::default() }
    }

    /// Add a straggling-transfer mode: probability `slow_prob` of a
    /// completing attempt taking `slow_factor ×` its nominal time.
    pub fn with_slowdown(self, slow_prob: f64, slow_factor: f64) -> Self {
        LinkFaults { slow_prob, slow_factor, ..self }
    }

    /// Does attempt `attempt` of the transfer named `label` drop?
    pub fn attempt_fails(&self, label: &str, attempt: u32) -> bool {
        self.fail_prob > 0.0 && unit(mix(self.seed, label, attempt)) < self.fail_prob
    }

    /// Duration multiplier for attempt `attempt` of the transfer named
    /// `label` (1.0 unless the straggle draw fires).
    pub fn slowdown(&self, label: &str, attempt: u32) -> f64 {
        if self.slow_prob > 0.0
            && unit(mix(self.seed ^ 0x5851_F42D_4C95_7F2D, label, attempt)) < self.slow_prob
        {
            self.slow_factor
        } else {
            1.0
        }
    }

    /// Fraction of the payload moved before the drop, in [0.05, 0.95]
    /// (a drop at 0% or 100% would be indistinguishable from an instant
    /// retry or a success).
    pub fn failure_fraction(&self, label: &str, attempt: u32) -> f64 {
        0.05 + 0.90 * unit(mix(self.seed ^ 0xD1B5_4A32_D192_ED03, label, attempt))
    }
}

impl GlobusLink {
    /// One transfer attempt under a fault model: `Ok(duration_secs)` if
    /// it completes (possibly stretched by a straggle draw),
    /// `Err(wasted_secs)` if it drops partway through (handshake
    /// overhead plus the partial stream time is lost — Globus restarts
    /// failed transfers from checkpoint boundaries, modeled here as a
    /// full restart).
    pub fn attempt(
        &self,
        faults: &LinkFaults,
        label: &str,
        attempt: u32,
        bytes: u64,
    ) -> Result<f64, f64> {
        let full = self.duration_secs(bytes);
        if faults.attempt_fails(label, attempt) {
            let stream = full - self.overhead_secs;
            Err(self.overhead_secs + stream * faults.failure_fraction(label, attempt))
        } else {
            Ok(full * faults.slowdown(label, attempt))
        }
    }
}

/// A ledger of all transfers in a workflow run (drives the Table-II
/// data-movement rows).
#[derive(Clone, Debug, Default)]
pub struct TransferLedger {
    pub transfers: Vec<Transfer>,
}

impl TransferLedger {
    /// Record a transfer, returning its completion time.
    pub fn record(&mut self, t: Transfer) -> f64 {
        let end = t.start_secs + t.duration_secs;
        self.transfers.push(t);
        end
    }

    /// Total bytes moved in a direction.
    pub fn bytes_moved(&self, from: Site, to: Site) -> u64 {
        self.transfers.iter().filter(|t| t.from == from && t.to == to).map(|t| t.bytes).sum()
    }

    /// Total transfer wall-clock (sum of durations; transfers in this
    /// workflow are sequential hand-offs between stages).
    pub fn total_secs(&self) -> f64 {
        self.transfers.iter().map(|t| t.duration_secs).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_scales_with_size() {
        let link = GlobusLink::default();
        let small = link.duration_secs(100 * 1024 * 1024); // 100 MB config
        let big = link.duration_secs(3_500_000_000_000); // 3.5 TB raw output
        assert!(small < 60.0, "100MB should take under a minute, got {small}");
        assert!(big > 3.0 * 3600.0, "3.5TB should take hours, got {big}");
    }

    #[test]
    fn overhead_dominates_tiny_transfers() {
        let link = GlobusLink::default();
        let d = link.duration_secs(1);
        assert!((d - link.overhead_secs).abs() < 1e-3);
    }

    #[test]
    fn ledger_accounting() {
        let link = GlobusLink::default();
        let mut ledger = TransferLedger::default();
        let end1 = ledger.record(link.transfer(
            Site::Home,
            Site::Remote,
            8_700_000_000, // 8.7 GB daily configs (Table II max)
            "daily configs",
            0.0,
        ));
        ledger.record(link.transfer(Site::Remote, Site::Home, 200_000_000, "summaries", end1));
        assert_eq!(ledger.bytes_moved(Site::Home, Site::Remote), 8_700_000_000);
        assert_eq!(ledger.bytes_moved(Site::Remote, Site::Home), 200_000_000);
        assert_eq!(ledger.transfers.len(), 2);
        assert!(ledger.total_secs() > 0.0);
        // Second transfer starts when the first ends.
        assert!((ledger.transfers[1].start_secs - end1).abs() < 1e-9);
    }

    #[test]
    fn zero_fail_prob_never_fails() {
        let link = GlobusLink::default();
        let faults = LinkFaults::default();
        for attempt in 0..50 {
            assert!(link.attempt(&faults, "configs", attempt, 1_000_000).is_ok());
        }
    }

    #[test]
    fn faults_are_deterministic_and_attempt_dependent() {
        let faults = LinkFaults::new(0.5, 42);
        let outcomes: Vec<bool> = (0..64).map(|a| faults.attempt_fails("raw", a)).collect();
        let replay: Vec<bool> = (0..64).map(|a| faults.attempt_fails("raw", a)).collect();
        assert_eq!(outcomes, replay, "pure function of (seed, label, attempt)");
        assert!(outcomes.iter().any(|&f| f), "p=0.5 over 64 attempts should fail some");
        assert!(outcomes.iter().any(|&f| !f), "…and succeed some");
        // Different labels decorrelate.
        let other: Vec<bool> = (0..64).map(|a| faults.attempt_fails("summaries", a)).collect();
        assert_ne!(outcomes, other);
    }

    #[test]
    fn failed_attempt_wastes_less_than_a_full_transfer() {
        let link = GlobusLink::default();
        let faults = LinkFaults::new(1.0, 7);
        let bytes = 8_700_000_000u64;
        let full = link.duration_secs(bytes);
        for attempt in 0..8 {
            let wasted = link.attempt(&faults, "configs", attempt, bytes).unwrap_err();
            assert!(wasted > link.overhead_secs, "a drop still costs the handshake");
            assert!(wasted < full, "a drop costs less than completing");
        }
    }

    #[test]
    fn straggle_draw_stretches_but_never_fails() {
        let link = GlobusLink::default();
        let faults = LinkFaults::new(0.0, 3).with_slowdown(0.5, 8.0);
        let bytes = 1_000_000_000u64;
        let full = link.duration_secs(bytes);
        let durations: Vec<f64> =
            (0..64).map(|a| link.attempt(&faults, "configs", a, bytes).unwrap()).collect();
        let replay: Vec<f64> =
            (0..64).map(|a| link.attempt(&faults, "configs", a, bytes).unwrap()).collect();
        assert_eq!(durations, replay, "pure function of (seed, label, attempt)");
        assert!(durations.iter().any(|&d| (d - full).abs() < 1e-9), "some attempts run nominal");
        assert!(durations.iter().any(|&d| (d - 8.0 * full).abs() < 1e-9), "some straggle 8×");
        // Straggle and drop draws are decorrelated.
        let both = LinkFaults::new(0.5, 3).with_slowdown(0.5, 8.0);
        let slow: Vec<bool> = (0..64).map(|a| both.slowdown("x", a) > 1.0).collect();
        let fail: Vec<bool> = (0..64).map(|a| both.attempt_fails("x", a)).collect();
        assert_ne!(slow, fail);
    }

    #[test]
    fn one_time_2tb_network_transfer_is_hours_not_days() {
        // Table II: 2 TB one-time transfer of traits + networks.
        let link = GlobusLink::default();
        let d = link.duration_secs(2_000_000_000_000);
        assert!((3600.0..86_400.0).contains(&d), "2TB in {d} s");
    }
}
