//! Globus-like data transfers between the home and remote clusters.
//!
//! Only two properties of the real Globus service matter to the
//! workflow timeline: the volume moved (Table I/II accounting) and the
//! duration (a bandwidth + per-transfer overhead model; Globus streams
//! large files at near-line rate but pays checksumming and handshake
//! overheads per transfer).

use crate::cluster::Site;
use serde::{Deserialize, Serialize};

/// A link between the two sites.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GlobusLink {
    /// Sustained bandwidth in bytes/second.
    pub bandwidth_bps: f64,
    /// Fixed per-transfer overhead in seconds (handshake, checksum
    /// pipelining ramp-up).
    pub overhead_secs: f64,
}

impl Default for GlobusLink {
    fn default() -> Self {
        // Internet2 between UVA and PSC: ~1 GB/s sustained is
        // optimistic; 250 MB/s is a realistic Globus-observed rate.
        GlobusLink { bandwidth_bps: 250e6, overhead_secs: 30.0 }
    }
}

/// One executed transfer.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Transfer {
    pub from: Site,
    pub to: Site,
    pub bytes: u64,
    pub label: String,
    /// Start time, seconds on the workflow clock.
    pub start_secs: f64,
    pub duration_secs: f64,
}

impl GlobusLink {
    /// Transfer duration for a payload.
    pub fn duration_secs(&self, bytes: u64) -> f64 {
        self.overhead_secs + bytes as f64 / self.bandwidth_bps
    }

    /// Build a transfer record starting at `start_secs`.
    pub fn transfer(
        &self,
        from: Site,
        to: Site,
        bytes: u64,
        label: &str,
        start_secs: f64,
    ) -> Transfer {
        Transfer {
            from,
            to,
            bytes,
            label: label.to_string(),
            start_secs,
            duration_secs: self.duration_secs(bytes),
        }
    }
}

/// A ledger of all transfers in a workflow run (drives the Table-II
/// data-movement rows).
#[derive(Clone, Debug, Default)]
pub struct TransferLedger {
    pub transfers: Vec<Transfer>,
}

impl TransferLedger {
    /// Record a transfer, returning its completion time.
    pub fn record(&mut self, t: Transfer) -> f64 {
        let end = t.start_secs + t.duration_secs;
        self.transfers.push(t);
        end
    }

    /// Total bytes moved in a direction.
    pub fn bytes_moved(&self, from: Site, to: Site) -> u64 {
        self.transfers
            .iter()
            .filter(|t| t.from == from && t.to == to)
            .map(|t| t.bytes)
            .sum()
    }

    /// Total transfer wall-clock (sum of durations; transfers in this
    /// workflow are sequential hand-offs between stages).
    pub fn total_secs(&self) -> f64 {
        self.transfers.iter().map(|t| t.duration_secs).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_scales_with_size() {
        let link = GlobusLink::default();
        let small = link.duration_secs(100 * 1024 * 1024); // 100 MB config
        let big = link.duration_secs(3_500_000_000_000); // 3.5 TB raw output
        assert!(small < 60.0, "100MB should take under a minute, got {small}");
        assert!(big > 3.0 * 3600.0, "3.5TB should take hours, got {big}");
    }

    #[test]
    fn overhead_dominates_tiny_transfers() {
        let link = GlobusLink::default();
        let d = link.duration_secs(1);
        assert!((d - link.overhead_secs).abs() < 1e-3);
    }

    #[test]
    fn ledger_accounting() {
        let link = GlobusLink::default();
        let mut ledger = TransferLedger::default();
        let end1 = ledger.record(link.transfer(
            Site::Home,
            Site::Remote,
            8_700_000_000, // 8.7 GB daily configs (Table II max)
            "daily configs",
            0.0,
        ));
        ledger.record(link.transfer(Site::Remote, Site::Home, 200_000_000, "summaries", end1));
        assert_eq!(ledger.bytes_moved(Site::Home, Site::Remote), 8_700_000_000);
        assert_eq!(ledger.bytes_moved(Site::Remote, Site::Home), 200_000_000);
        assert_eq!(ledger.transfers.len(), 2);
        assert!(ledger.total_secs() > 0.0);
        // Second transfer starts when the first ends.
        assert!((ledger.transfers[1].start_secs - end1).abs() < 1e-9);
    }

    #[test]
    fn one_time_2tb_network_transfer_is_hours_not_days() {
        // Table II: 2 TB one-time transfer of traits + networks.
        let link = GlobusLink::default();
        let d = link.duration_secs(2_000_000_000_000);
        assert!((3600.0..86_400.0).contains(&d), "2TB in {d} s");
    }
}
