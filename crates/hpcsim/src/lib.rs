//! The two-cluster HPC environment simulator and the workflow mapping
//! machinery (paper §IV–§V) — the substrate under the paper's primary
//! contribution.
//!
//! * [`cluster`] — the home (Rivanna) and remote (Bridges) cluster
//!   specifications of Table II, whole-node allocation, and the nightly
//!   10pm–8am availability window.
//! * [`task`] — `⟨cell, region⟩` simulation tasks: node requirements by
//!   region size category (2/4/6), empirical runtimes with the paper's
//!   four variance sources.
//! * [`schedule`] — the workflow mapping problem (WMP): level-oriented
//!   2-D bin packing with database-access constraints; the **NFDT-DC**
//!   and **FFDT-DC** heuristics and the empirical-efficiency metric EC.
//! * [`coloring`] — the r-relaxed graph coloring formulation of the
//!   DB-access constraint, with the greedy algorithm and validators.
//! * [`slurm`] — an event-driven Slurm-like executor ("Slurm further
//!   does a certain amount of real-time optimization"): job arrays
//!   dispatched in plan order as nodes free up and DB bounds allow.
//! * [`dbsim`] — per-region PostgreSQL-analog population databases with
//!   bounded connection counts and snapshot-restore startup.
//! * [`globus`] — the Globus-like transfer model between the clusters.

pub mod cluster;
pub mod coloring;
pub mod dbsim;
pub mod globus;
pub mod schedule;
pub mod slurm;
pub mod task;

pub use cluster::{ClusterSpec, Site};
pub use coloring::{greedy_relaxed_coloring, validate_relaxed_coloring, ConflictGraph};
pub use dbsim::PopulationDb;
pub use globus::{GlobusLink, LinkFaults, Transfer};
pub use schedule::{pack, pack_arrival, pack_in_order, ExecStats, Level, LevelPlan, PackAlgo};
pub use slurm::{CheckpointPolicy, NodeFailure, ResumePoint, SlurmSim, SlurmStats};
pub use task::Task;
