//! Simulation tasks: the atomic jobs `⟨cell, region⟩` of the workflow
//! mapping problem (§V).
//!
//! Runtime variance follows the paper's four sources: (i) randomness in
//! the computation, (ii) triggered interventions spawning extra work,
//! (iii) processor allocation, and (iv) machine-specific randomness.
//! We model the empirical mean time per region as proportional to its
//! network size (Fig. 7 top / Fig. 8: "runtimes … strongly correlated
//! to the network size") with multiplicative lognormal-ish noise.

use epiflow_surveillance::{RegionId, RegionRegistry, Scale};
use serde::{Deserialize, Serialize};

/// One schedulable simulation job.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Unique id within a workload.
    pub id: u32,
    pub region: RegionId,
    pub cell: u32,
    pub replicate: u32,
    /// Compute nodes required (whole-node allocation; 2/4/6 by region
    /// size category).
    pub nodes: usize,
    /// Empirical mean runtime t(T[c,r]) in seconds.
    pub est_secs: f64,
    /// Realized runtime for execution simulation.
    pub actual_secs: f64,
    /// Database connections the job holds while running.
    pub db_connections: usize,
}

/// Deterministic per-task noise in `[lo, hi]` from a hash (keeps
/// workload generation free of RNG state).
fn hash_noise(seed: u64, a: u64, b: u64, lo: f64, hi: f64) -> f64 {
    let mut z = seed ^ a.wrapping_mul(0x9E3779B97F4A7C15) ^ b.wrapping_mul(0xC2B2AE3D27D4EB4F);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    let u = (z >> 11) as f64 / (1u64 << 53) as f64;
    lo + u * (hi - lo)
}

/// Workload generator parameters.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Cells per region.
    pub cells: u32,
    /// Replicates per cell.
    pub replicates: u32,
    /// Regions to include (defaults to all 51).
    pub regions: Vec<RegionId>,
    /// Seconds of runtime per simulated person (the Fig.-7-top linear
    /// coefficient). Bridges-era EpiHiper: CA ≈ 100–300 steps × ~3 s.
    pub secs_per_person: f64,
    /// Base runtime independent of size (startup, I/O).
    pub base_secs: f64,
    /// Multiplicative runtime noise half-width (0.3 ⇒ ±30%).
    pub noise: f64,
    /// DB connections per running job.
    pub db_connections_per_task: usize,
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            cells: 12,
            replicates: 15,
            regions: (0..51).collect(),
            // Chosen so CA (≈19.8k persons at scale 1/2000) lands at
            // ≈900 s, the paper's 300-step × 3 s figure.
            secs_per_person: 900.0 * 2000.0 / 39_500_000.0,
            base_secs: 30.0,
            noise: 0.30,
            db_connections_per_task: 4,
            seed: 0xC0FFEE,
        }
    }
}

impl WorkloadSpec {
    /// Generate the task list for one nightly workflow over `registry`
    /// at `scale`: `cells × |regions| × replicates` tasks, Assumption 1
    /// (all cells of a region share the empirical mean time) baked in.
    pub fn generate(&self, registry: &RegionRegistry, scale: Scale) -> Vec<Task> {
        let mut tasks =
            Vec::with_capacity(self.cells as usize * self.regions.len() * self.replicates as usize);
        let mut id = 0u32;
        // Cell-major order: this is the *arrival order* of the nightly
        // job stream (configuration files are written cell by cell), so
        // consecutive tasks span the full range of region sizes.
        for cell in 0..self.cells {
            for &region in &self.regions {
                let persons = registry.node_count(region, scale);
                let est = self.base_secs + self.secs_per_person * persons as f64;
                let nodes = registry.size_category(region).compute_nodes();
                for replicate in 0..self.replicates {
                    let jitter = hash_noise(
                        self.seed,
                        (region as u64) << 32 | cell as u64,
                        replicate as u64,
                        1.0 - self.noise,
                        1.0 + self.noise,
                    );
                    tasks.push(Task {
                        id,
                        region,
                        cell,
                        replicate,
                        nodes,
                        est_secs: est,
                        actual_secs: est * jitter,
                        db_connections: self.db_connections_per_task,
                    });
                    id += 1;
                }
            }
        }
        tasks
    }

    /// Total simulation count (the Table-I `# Simulations` column).
    pub fn n_simulations(&self) -> usize {
        self.cells as usize * self.regions.len() * self.replicates as usize
    }
}

/// Table-I workload presets.
impl WorkloadSpec {
    /// Economic workflow: 12 cells × 51 states × 15 replicates = 9180.
    pub fn economic() -> Self {
        WorkloadSpec { cells: 12, replicates: 15, ..Default::default() }
    }

    /// Prediction workflow: 12 × 51 × 15 = 9180.
    pub fn prediction() -> Self {
        WorkloadSpec { cells: 12, replicates: 15, ..Default::default() }
    }

    /// Calibration workflow: 300 × 51 × 1 = 15300.
    pub fn calibration() -> Self {
        WorkloadSpec { cells: 300, replicates: 1, ..Default::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_counts() {
        assert_eq!(WorkloadSpec::economic().n_simulations(), 9180);
        assert_eq!(WorkloadSpec::prediction().n_simulations(), 9180);
        assert_eq!(WorkloadSpec::calibration().n_simulations(), 15_300);
    }

    #[test]
    fn generate_produces_expected_count() {
        let reg = RegionRegistry::new();
        let spec = WorkloadSpec { cells: 2, replicates: 3, ..Default::default() };
        let tasks = spec.generate(&reg, Scale::default());
        assert_eq!(tasks.len(), 2 * 51 * 3);
        // Unique ids.
        let mut ids: Vec<u32> = tasks.iter().map(|t| t.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), tasks.len());
    }

    #[test]
    fn bigger_regions_run_longer_and_get_more_nodes() {
        let reg = RegionRegistry::new();
        let spec = WorkloadSpec { cells: 1, replicates: 1, ..Default::default() };
        let tasks = spec.generate(&reg, Scale::default());
        let ca = tasks.iter().find(|t| reg.region(t.region).abbrev == "CA").unwrap();
        let wy = tasks.iter().find(|t| reg.region(t.region).abbrev == "WY").unwrap();
        assert!(ca.est_secs > 10.0 * wy.est_secs);
        assert_eq!(ca.nodes, 6);
        assert_eq!(wy.nodes, 2);
    }

    #[test]
    fn assumption_one_same_est_within_region() {
        let reg = RegionRegistry::new();
        let spec = WorkloadSpec { cells: 3, replicates: 2, ..Default::default() };
        let tasks = spec.generate(&reg, Scale::default());
        let va: Vec<&Task> = tasks.iter().filter(|t| reg.region(t.region).abbrev == "VA").collect();
        assert!(va.windows(2).all(|w| w[0].est_secs == w[1].est_secs));
    }

    #[test]
    fn actual_times_vary_but_bounded() {
        let reg = RegionRegistry::new();
        let spec = WorkloadSpec { cells: 4, replicates: 4, noise: 0.3, ..Default::default() };
        let tasks = spec.generate(&reg, Scale::default());
        let mut distinct = std::collections::HashSet::new();
        for t in &tasks {
            let ratio = t.actual_secs / t.est_secs;
            assert!((0.7..=1.3).contains(&ratio), "ratio {ratio}");
            distinct.insert((t.actual_secs * 1000.0) as u64);
        }
        assert!(distinct.len() > tasks.len() / 2, "noise should differ per task");
    }

    #[test]
    fn generation_deterministic() {
        let reg = RegionRegistry::new();
        let spec = WorkloadSpec { cells: 2, replicates: 2, ..Default::default() };
        assert_eq!(spec.generate(&reg, Scale::default()), spec.generate(&reg, Scale::default()));
    }

    #[test]
    fn ca_runtime_matches_paper_order_of_magnitude() {
        // §VI: CA ≈ 100–300 steps × ~3 s ⇒ 300–900 s.
        let reg = RegionRegistry::new();
        let spec = WorkloadSpec { cells: 1, replicates: 1, noise: 0.0, ..Default::default() };
        let tasks = spec.generate(&reg, Scale::default());
        let ca = tasks.iter().find(|t| reg.region(t.region).abbrev == "CA").unwrap();
        assert!((300.0..1500.0).contains(&ca.est_secs), "CA estimated runtime {} s", ca.est_secs);
    }
}
