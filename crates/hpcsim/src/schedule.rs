//! The workflow mapping problem and the level-oriented packing
//! heuristics (§V).
//!
//! Think of nodes on the X-axis and time on the Y-axis: tasks are
//! rectangles (width = nodes, height = runtime). Tasks are taken in
//! non-increasing runtime order and packed into **levels**; within a
//! level all tasks start together ("packed so that their bottoms
//! align") and the level's height is its slowest task.
//!
//! * **NFDT-DC** (next-fit decreasing time, DB-constrained): the next
//!   task goes on the *current* level if it fits and DB constraints
//!   hold; otherwise the level is closed and a new one opened.
//! * **FFDT-DC** (first-fit decreasing time, DB-constrained): the next
//!   task goes on the *first* level that can take it; only if none can
//!   is a new level started.
//!
//! The paper's utilization collapse (44–56% initially vs ≈96% deployed)
//! is the contrast between two configurations: the deployed
//! **FFDT-DC with largest-jobs-first ordering** ([`pack`]) and the
//! initial runs "without this scheduling scheme" — next-fit packing in
//! **arrival order** ([`pack_arrival`]), where mixed task heights
//! within a level leave most of each level's rectangle idle, and DB
//! constraints close levels early.

use crate::task::Task;
use epiflow_surveillance::RegionId;
use std::collections::HashMap;

/// Which packer to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PackAlgo {
    NfdtDc,
    FfdtDc,
}

/// One level of the packing.
#[derive(Clone, Debug, Default)]
pub struct Level {
    /// Indices into the workload's task vector.
    pub tasks: Vec<usize>,
    /// Nodes in use.
    pub width: usize,
    /// Estimated height (max est_secs).
    pub height_est: f64,
    /// Per-region concurrent-task counts (the DB constraint state).
    pub region_count: HashMap<RegionId, usize>,
}

/// A full level plan.
#[derive(Clone, Debug, Default)]
pub struct LevelPlan {
    pub levels: Vec<Level>,
    pub total_nodes: usize,
}

/// Execution statistics (the EC metric of §V).
#[derive(Clone, Debug, PartialEq)]
pub struct ExecStats {
    /// Total wall-clock seconds until the last task completed.
    pub makespan_secs: f64,
    /// Σ actual_secs × nodes over all tasks.
    pub busy_node_secs: f64,
    /// EC = busy / (allocated_nodes × makespan). Fig. 9 measures the
    /// "percent of CPU hours *allocated* that were actually used", so
    /// the denominator is the reservation (the widest level), not the
    /// whole machine.
    pub utilization: f64,
    /// Nodes reserved for the run (max level width).
    pub allocated_nodes: usize,
    /// Number of levels executed.
    pub n_levels: usize,
}

/// Pack `tasks` onto a machine with `total_nodes` nodes, bounding each
/// region's concurrent tasks by `db_bound(region)`.
///
/// Returns the plan; task order inside is by non-increasing `est_secs`
/// (ties broken by id for determinism).
pub fn pack<F>(tasks: &[Task], total_nodes: usize, db_bound: F, algo: PackAlgo) -> LevelPlan
where
    F: Fn(RegionId) -> usize,
{
    let mut order: Vec<usize> = (0..tasks.len()).collect();
    order.sort_by(|&a, &b| {
        tasks[b]
            .est_secs
            .partial_cmp(&tasks[a].est_secs)
            .expect("NaN runtime")
            .then(tasks[a].id.cmp(&tasks[b].id))
    });
    pack_in_order(tasks, &order, total_nodes, db_bound, algo)
}

/// Pack in *arrival order* — the paper's initial configuration, before
/// largest-jobs-first was adopted ("our initial workflow runs without
/// this scheduling scheme led to utilization numbers between 44.237%
/// and 55.579%"). Mixed task heights within a level make the level as
/// tall as its slowest task while most of its rectangle sits idle.
pub fn pack_arrival<F>(tasks: &[Task], total_nodes: usize, db_bound: F, algo: PackAlgo) -> LevelPlan
where
    F: Fn(RegionId) -> usize,
{
    let order: Vec<usize> = (0..tasks.len()).collect();
    pack_in_order(tasks, &order, total_nodes, db_bound, algo)
}

/// Pack with an explicit task order.
pub fn pack_in_order<F>(
    tasks: &[Task],
    order: &[usize],
    total_nodes: usize,
    db_bound: F,
    algo: PackAlgo,
) -> LevelPlan
where
    F: Fn(RegionId) -> usize,
{
    assert!(total_nodes > 0, "machine must have nodes");
    assert_eq!(order.len(), tasks.len(), "order must cover every task");

    let mut levels: Vec<Level> = Vec::new();
    let fits = |level: &Level, t: &Task, bound: usize, total_nodes: usize| {
        level.width + t.nodes <= total_nodes
            && level.region_count.get(&t.region).copied().unwrap_or(0) < bound
    };
    let place = |level: &mut Level, ti: usize, t: &Task| {
        level.tasks.push(ti);
        level.width += t.nodes;
        level.height_est = level.height_est.max(t.est_secs);
        *level.region_count.entry(t.region).or_insert(0) += 1;
    };

    for &ti in order {
        let t = &tasks[ti];
        assert!(t.nodes <= total_nodes, "task {} needs more nodes than the machine has", t.id);
        let bound = db_bound(t.region).max(1);
        match algo {
            PackAlgo::NfdtDc => {
                let ok = levels.last().map(|l| fits(l, t, bound, total_nodes)).unwrap_or(false);
                if !ok {
                    levels.push(Level::default());
                }
                let level = levels.last_mut().expect("just ensured");
                place(level, ti, t);
            }
            PackAlgo::FfdtDc => {
                let slot = levels.iter().position(|l| fits(l, t, bound, total_nodes));
                let level = match slot {
                    Some(i) => &mut levels[i],
                    None => {
                        levels.push(Level::default());
                        levels.last_mut().expect("just pushed")
                    }
                };
                place(level, ti, t);
            }
        }
    }
    LevelPlan { levels, total_nodes }
}

impl LevelPlan {
    /// Number of tasks packed.
    pub fn n_tasks(&self) -> usize {
        self.levels.iter().map(|l| l.tasks.len()).sum()
    }

    /// Estimated makespan: sum of level heights.
    pub fn est_makespan(&self) -> f64 {
        self.levels.iter().map(|l| l.height_est).sum()
    }

    /// Simulate execution with the tasks' *actual* runtimes: levels run
    /// in sequence (job-array chunks with a barrier), each level's
    /// duration is its slowest realized task.
    pub fn execute(&self, tasks: &[Task]) -> ExecStats {
        let mut makespan = 0.0f64;
        let mut busy = 0.0f64;
        for level in &self.levels {
            let mut height = 0.0f64;
            for &ti in &level.tasks {
                let t = &tasks[ti];
                busy += t.actual_secs * t.nodes as f64;
                height = height.max(t.actual_secs);
            }
            makespan += height;
        }
        let allocated = self.levels.iter().map(|l| l.width).max().unwrap_or(0);
        let utilization = if makespan > 0.0 && allocated > 0 {
            busy / (allocated as f64 * makespan)
        } else {
            1.0
        };
        ExecStats {
            makespan_secs: makespan,
            busy_node_secs: busy,
            utilization,
            allocated_nodes: allocated,
            n_levels: self.levels.len(),
        }
    }

    /// Verify invariants: every task exactly once, widths within the
    /// machine, DB bounds respected per level.
    pub fn validate<F>(&self, tasks: &[Task], db_bound: F) -> Result<(), String>
    where
        F: Fn(RegionId) -> usize,
    {
        let mut seen = vec![false; tasks.len()];
        for (li, level) in self.levels.iter().enumerate() {
            let mut width = 0usize;
            let mut counts: HashMap<RegionId, usize> = HashMap::new();
            for &ti in &level.tasks {
                if seen[ti] {
                    return Err(format!("task {ti} placed twice"));
                }
                seen[ti] = true;
                width += tasks[ti].nodes;
                *counts.entry(tasks[ti].region).or_insert(0) += 1;
            }
            if width > self.total_nodes {
                return Err(format!("level {li} width {width} > {}", self.total_nodes));
            }
            for (r, c) in counts {
                if c > db_bound(r).max(1) {
                    return Err(format!("level {li}: region {r} has {c} concurrent tasks"));
                }
            }
        }
        if !seen.iter().all(|&s| s) {
            return Err("some tasks were never placed".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(id: u32, region: RegionId, nodes: usize, secs: f64) -> Task {
        Task {
            id,
            region,
            cell: 0,
            replicate: 0,
            nodes,
            est_secs: secs,
            actual_secs: secs,
            db_connections: 1,
        }
    }

    fn uniform_tasks(n: u32, nodes: usize, secs: f64) -> Vec<Task> {
        (0..n).map(|i| task(i, (i % 4) as usize, nodes, secs)).collect()
    }

    #[test]
    fn perfect_fill_gives_full_utilization() {
        // 16 identical tasks of 2 nodes on an 8-node machine: 4 levels,
        // utilization 1.0.
        let tasks = uniform_tasks(16, 2, 100.0);
        for algo in [PackAlgo::NfdtDc, PackAlgo::FfdtDc] {
            let plan = pack(&tasks, 8, |_| 100, algo);
            plan.validate(&tasks, |_| 100).unwrap();
            let stats = plan.execute(&tasks);
            assert!((stats.utilization - 1.0).abs() < 1e-12, "{algo:?}: {stats:?}");
            assert_eq!(stats.n_levels, 4);
        }
    }

    #[test]
    fn db_bound_respected() {
        // 8 tasks all one region, bound 2, machine fits 4 → levels of 2.
        let tasks: Vec<Task> = (0..8).map(|i| task(i, 0, 1, 50.0)).collect();
        for algo in [PackAlgo::NfdtDc, PackAlgo::FfdtDc] {
            let plan = pack(&tasks, 4, |_| 2, algo);
            plan.validate(&tasks, |_| 2).unwrap();
            for level in &plan.levels {
                assert!(level.tasks.len() <= 2);
            }
        }
    }

    #[test]
    fn ffdt_decreasing_beats_nfdt_arrival() {
        // The paper's headline contrast: the deployed FFDT-DC with
        // largest-first ordering vs the initial NFDT-DC in arrival
        // order. Cell-major arrival interleaves big and small regions,
        // so arrival-order levels pair 1000-second giants with
        // 100-second dwarfs.
        let mut tasks = Vec::new();
        let mut id = 0;
        for cell in 0..12u32 {
            let _ = cell;
            for region in 0..8usize {
                let secs = if region < 2 { 1000.0 } else { 100.0 };
                let nodes = if region < 2 { 6 } else { 2 };
                tasks.push(task(id, region, nodes, secs));
                id += 1;
            }
        }
        let nf = pack_arrival(&tasks, 24, |_| 16, PackAlgo::NfdtDc);
        let ff = pack(&tasks, 24, |_| 16, PackAlgo::FfdtDc);
        nf.validate(&tasks, |_| 16).unwrap();
        ff.validate(&tasks, |_| 16).unwrap();
        let nf_stats = nf.execute(&tasks);
        let ff_stats = ff.execute(&tasks);
        assert!(
            ff_stats.utilization > nf_stats.utilization + 0.2,
            "FFDT {} vs NFDT {}",
            ff_stats.utilization,
            nf_stats.utilization
        );
        assert!(ff_stats.makespan_secs < nf_stats.makespan_secs);
        assert!(ff_stats.utilization > 0.85, "deployed config: {}", ff_stats.utilization);
    }

    #[test]
    fn decreasing_order_within_plan() {
        let tasks: Vec<Task> =
            (0..10).map(|i| task(i, i as usize % 3, 1, (i as f64 + 1.0) * 10.0)).collect();
        let plan = pack(&tasks, 100, |_| 100, PackAlgo::FfdtDc);
        // Everything fits one level; the first placed is the longest.
        assert_eq!(plan.levels.len(), 1);
        assert_eq!(plan.levels[0].tasks[0], 9);
    }

    #[test]
    fn wide_task_forces_new_level() {
        let tasks = vec![task(0, 0, 6, 100.0), task(1, 1, 6, 90.0), task(2, 2, 6, 80.0)];
        let plan = pack(&tasks, 8, |_| 10, PackAlgo::FfdtDc);
        assert_eq!(plan.levels.len(), 3, "6-node tasks cannot share an 8-node machine");
    }

    #[test]
    fn execute_accounts_actuals_not_estimates() {
        let mut tasks = uniform_tasks(4, 2, 100.0);
        tasks[0].actual_secs = 200.0; // slow outlier stretches its level
        let plan = pack(&tasks, 8, |_| 10, PackAlgo::FfdtDc);
        let stats = plan.execute(&tasks);
        assert!((stats.makespan_secs - 200.0).abs() < 1e-9);
        assert!(stats.utilization < 1.0);
    }

    #[test]
    fn est_makespan_sums_levels() {
        let tasks = vec![task(0, 0, 4, 100.0), task(1, 1, 4, 60.0)];
        let plan = pack(&tasks, 4, |_| 10, PackAlgo::NfdtDc);
        assert_eq!(plan.levels.len(), 2);
        assert!((plan.est_makespan() - 160.0).abs() < 1e-9);
    }

    #[test]
    fn validate_catches_overwidth() {
        let tasks = vec![task(0, 0, 4, 10.0), task(1, 1, 4, 10.0)];
        let mut plan = pack(&tasks, 8, |_| 10, PackAlgo::FfdtDc);
        plan.total_nodes = 4; // corrupt
        assert!(plan.validate(&tasks, |_| 10).is_err());
    }

    #[test]
    #[should_panic(expected = "more nodes than the machine")]
    fn rejects_oversized_task() {
        let tasks = vec![task(0, 0, 100, 10.0)];
        pack(&tasks, 8, |_| 10, PackAlgo::FfdtDc);
    }

    #[test]
    fn empty_workload() {
        let plan = pack(&[], 8, |_| 10, PackAlgo::FfdtDc);
        assert_eq!(plan.n_tasks(), 0);
        let stats = plan.execute(&[]);
        assert_eq!(stats.makespan_secs, 0.0);
        assert_eq!(stats.utilization, 1.0);
    }
}
