//! Ensemble-context benchmark — fresh-build vs shared-context nightly
//! design, machine-readable.
//!
//! The nightly production shape is *many runs, one model*: a study
//! design fans cells × replicates against a single immutable contact
//! network. The pre-ensemble runner paid the network build — CSR
//! arrays, partitioning, attribute derivation — once per *replicate*;
//! the [`EnsembleRunner`] pays it once per ⟨region, partition count⟩
//! and shares an `Arc<SimContext>` (plus pooled per-worker scratch)
//! across the whole grid.
//!
//! This bench runs the same design both ways at several replicate
//! counts and emits `BENCH_ensemble.json` with wall times, runs/sec,
//! the setup fraction of each path, and the speedup. Every compared
//! pair is first asserted byte-identical (same seeds ⇒ same
//! `SimOutput`) — the speedup is only meaningful if the fast path is
//! exact. The JSON is validated by re-parsing before it is written.
//!
//! `--smoke` shrinks the region and the replicate ladder and skips the
//! performance assertion so CI can verify the harness end-to-end in
//! seconds.

use epiflow_bench::region;
use epiflow_core::runner::run_cell;
use epiflow_core::{CellConfig, CellRunSummary, EnsembleRunner, StudyDesign};
use epiflow_epihiper::covid::covid19_model;
use epiflow_epihiper::{InterventionSet, SimConfig, Simulation};
use epiflow_surveillance::RegionRegistry;
use rayon::prelude::*;
use serde::{Number, Value};
use std::time::Instant;

const N_PARTITIONS: usize = 4;
const BASE_SEED: u64 = 0x2026_0807;

/// Wall time of one fresh `Simulation::new` — the per-replicate setup
/// cost the shared context amortizes away (CSR build + partitioning +
/// attribute derivation, no tick loop).
fn fresh_setup_secs(data: &epiflow_synthpop::builder::RegionData, days: u32) -> f64 {
    let age: Vec<u8> =
        data.population.persons.iter().map(|p| p.age_group().index() as u8).collect();
    let county: Vec<u16> = data.population.persons.iter().map(|p| p.county).collect();
    let t0 = Instant::now();
    let sim = Simulation::new(
        &data.network,
        covid19_model(),
        age,
        county,
        InterventionSet::default(),
        SimConfig {
            ticks: days,
            n_partitions: N_PARTITIONS,
            epsilon: 16,
            record_transitions: false,
            ..Default::default()
        },
    );
    let secs = t0.elapsed().as_secs_f64();
    drop(sim);
    secs
}

/// The pre-ensemble path: every ⟨cell, replicate⟩ job builds the
/// network from scratch inside `run_cell`, fanned over rayon exactly
/// like the shared path so the comparison isolates setup cost.
fn run_design_fresh(
    data: &epiflow_synthpop::builder::RegionData,
    design: &StudyDesign,
    base_seed: u64,
) -> Vec<CellRunSummary> {
    let jobs: Vec<(usize, u32)> = design
        .cells
        .iter()
        .enumerate()
        .flat_map(|(i, _)| (0..design.replicates).map(move |r| (i, r)))
        .collect();
    jobs.par_iter()
        .map(|&(ci, rep)| run_cell(data, &design.cells[ci], rep, N_PARTITIONS, false, base_seed))
        .collect()
}

/// Byte-level equality of two design runs: per-day aggregate outputs
/// and the calibration observable, job by job.
fn identical(a: &[CellRunSummary], b: &[CellRunSummary]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.cell == y.cell
                && x.replicate == y.replicate
                && x.output == y.output
                && x.log_cum_symptomatic == y.log_cum_symptomatic
        })
}

fn path_value(secs: f64, runs: usize, setup_secs: f64) -> Value {
    let secs = secs.max(1e-9);
    Value::Map(vec![
        ("elapsed_secs".into(), Value::Num(Number::F(secs))),
        ("runs_per_sec".into(), Value::Num(Number::F(runs as f64 / secs))),
        ("setup_fraction".into(), Value::Num(Number::F((setup_secs / secs).min(1.0)))),
    ])
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (per, days, n_cells, rep_ladder): (f64, u32, usize, &[u32]) =
        if smoke { (20_000.0, 10, 2, &[1, 2]) } else { (50.0, 20, 4, &[1, 4, 16]) };

    println!("=== Ensemble-context benchmark (fresh vs shared) ===");
    println!("mode: {}\n", if smoke { "smoke" } else { "full" });

    let registry = RegionRegistry::new();
    let data = region(&registry, "DE", per);
    let stats = data.network.stats();
    println!("region DE @ 1/{per}: {} persons, {} edges", data.population.len(), stats.edges);

    let base = CellConfig {
        days,
        initial_infections: (data.population.len() / 100).max(3),
        ..CellConfig::default()
    };
    let mut design = StudyDesign::lhs_prior(n_cells, &base, 0xD5);

    // Per-replicate setup cost of the fresh path (median of 3).
    let mut setups: Vec<f64> = (0..3).map(|_| fresh_setup_secs(&data, days)).collect();
    setups.sort_by(f64::total_cmp);
    let per_run_setup = setups[1];

    // One-time cost of the shared path.
    let t0 = Instant::now();
    let runner = EnsembleRunner::new(&data, N_PARTITIONS);
    let ctx_secs = t0.elapsed().as_secs_f64();
    println!(
        "setup: fresh {:.1} ms per run, shared context {:.1} ms once\n",
        per_run_setup * 1e3,
        ctx_secs * 1e3
    );

    let mut rows = Vec::new();
    let mut max_speedup = 0.0f64;
    for &reps in rep_ladder {
        design.replicates = reps;
        let runs = design.cells.len() * reps as usize;

        let t0 = Instant::now();
        let fresh = run_design_fresh(&data, &design, BASE_SEED);
        let fresh_secs = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let shared = runner.run_design(&design, BASE_SEED);
        let shared_secs = t0.elapsed().as_secs_f64();

        let same = identical(&fresh, &shared);
        assert!(same, "shared-context outputs diverge from fresh-build at {reps} replicates");

        let speedup = fresh_secs / shared_secs.max(1e-9);
        max_speedup = max_speedup.max(speedup);
        println!(
            "{runs:>3} runs ({} cells x {reps} reps): fresh {:.3}s  shared {:.3}s  \
             speedup {:.2}x  (fresh setup share {:.0}%)",
            design.cells.len(),
            fresh_secs,
            shared_secs,
            speedup,
            (runs as f64 * per_run_setup / fresh_secs).min(1.0) * 100.0
        );

        rows.push(Value::Map(vec![
            ("replicates".into(), Value::Num(Number::U(reps as u64))),
            ("runs".into(), Value::Num(Number::U(runs as u64))),
            ("fresh".into(), path_value(fresh_secs, runs, runs as f64 * per_run_setup)),
            ("shared".into(), path_value(shared_secs, runs, ctx_secs)),
            ("speedup".into(), Value::Num(Number::F(speedup))),
            ("outputs_identical".into(), Value::Bool(same)),
        ]));
    }

    let doc = Value::Map(vec![
        ("benchmark".into(), Value::Str("ensemble_context".into())),
        ("smoke".into(), Value::Bool(smoke)),
        ("region".into(), Value::Str("DE".into())),
        ("persons".into(), Value::Num(Number::U(data.population.len() as u64))),
        ("edges".into(), Value::Num(Number::U(stats.edges as u64))),
        ("n_partitions".into(), Value::Num(Number::U(N_PARTITIONS as u64))),
        ("cells".into(), Value::Num(Number::U(design.cells.len() as u64))),
        ("days".into(), Value::Num(Number::U(days as u64))),
        ("fresh_setup_secs_per_run".into(), Value::Num(Number::F(per_run_setup))),
        ("context_build_secs".into(), Value::Num(Number::F(ctx_secs))),
        ("by_replicates".into(), Value::Seq(rows)),
        ("max_speedup".into(), Value::Num(Number::F(max_speedup))),
    ]);

    let json = serde_json::to_string_pretty(&doc).expect("serialize benchmark report");
    // Round-trip before writing: the artifact must stay machine-readable.
    let parsed = serde_json::parse_value(&json).expect("re-parse benchmark JSON");
    for key in ["benchmark", "by_replicates", "max_speedup"] {
        assert!(
            matches!(&parsed, Value::Map(m) if m.iter().any(|(k, _)| k == key)),
            "benchmark JSON missing key `{key}`"
        );
    }
    std::fs::write("BENCH_ensemble.json", &json).expect("write BENCH_ensemble.json");
    println!("\nwrote BENCH_ensemble.json ({} bytes)", json.len());

    if !smoke {
        assert!(
            max_speedup >= 1.1,
            "shared-context speedup {max_speedup:.2}x below the 1.1x target"
        );
        println!("target met: shared context {max_speedup:.2}x >= 1.1x at best replicate count");
    }
}
