//! Figures 13–14 — cumulative confirmed-case time series.
//!
//! Fig. 13: county-level cumulative curves for California, whose sum is
//! the state curve. Fig. 14: state-level cumulative curves — "highly
//! noisy and often time-delayed", the calibration inputs.

use epiflow_bench::sparkline;
use epiflow_surveillance::{GroundTruth, GroundTruthConfig, RegionRegistry};

fn main() {
    let reg = RegionRegistry::new();
    let gt = GroundTruth::generate(&reg, &GroundTruthConfig::default());

    println!("Figure 13 — California county-level cumulative confirmed cases\n");
    let ca = reg.by_abbrev("CA").unwrap().id;
    let cases = gt.region(ca);
    println!("{:>8} {:>10} {:>10}  cumulative curve", "county", "total", "first day");
    for c in cases.counties.iter().take(12) {
        let cum = c.series.cumulative();
        let first = c.series.daily.iter().position(|&x| x > 0.0);
        println!(
            "{:>8} {:>10.0} {:>10}  {}",
            c.fips,
            cum.last().unwrap(),
            first.map_or("—".into(), |d| d.to_string()),
            sparkline(&cum.iter().step_by(5).copied().collect::<Vec<_>>())
        );
    }
    let state = cases.state_series().cumulative();
    println!(
        "{:>8} {:>10.0} {:>10}  {}  (sum of {} county curves)",
        "STATE",
        state.last().unwrap(),
        "",
        sparkline(&state.iter().step_by(5).copied().collect::<Vec<_>>()),
        cases.counties.len()
    );

    println!("\nFigure 14 — state-level cumulative confirmed cases\n");
    println!("{:>6} {:>12}  cumulative curve", "state", "total");
    for abbrev in ["NY", "CA", "TX", "FL", "VA", "WY"] {
        let id = reg.by_abbrev(abbrev).unwrap().id;
        let cum = gt.region(id).state_series().cumulative();
        println!(
            "{:>6} {:>12.0}  {}",
            abbrev,
            cum.last().unwrap(),
            sparkline(&cum.iter().step_by(5).copied().collect::<Vec<_>>())
        );
    }

    println!(
        "\ncounties with ≥1 reported case: {} of {}  [paper: 2772 of 3000+ as of 2020-04-22]",
        gt.counties_with_cases(),
        reg.total_counties()
    );

    // Noise diagnostics: weekday dip magnitude in the NY daily series.
    let ny = reg.by_abbrev("NY").unwrap().id;
    let daily = gt.region(ny).state_series();
    let smooth = daily.smooth7();
    let raw_noise: f64 =
        daily.daily.iter().zip(&smooth.daily).skip(60).map(|(r, s)| (r - s).abs()).sum::<f64>()
            / smooth.daily.iter().skip(60).sum::<f64>().max(1.0);
    println!(
        "NY daily-series relative reporting noise: {:.1}%  [paper: \"highly noisy\" feeds]",
        raw_noise * 100.0
    );
}
