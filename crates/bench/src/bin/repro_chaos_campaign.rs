//! Chaos-campaign reproduction — cross-cluster failover under fire.
//!
//! Three exhibits:
//!
//! 1. A total remote-cluster loss one minute into the execute step,
//!    run through the classic engine (which can only shed cells) and
//!    the failover engine (which re-plans the night onto the home
//!    cluster at its slower contended rate and delivers every cell).
//! 2. A kill/resume check: the failover night is resumed from every
//!    persisted journal prefix and must reproduce the uninterrupted
//!    report byte for byte.
//! 3. A fault-intensity sweep: many seeded nights per intensity in
//!    parallel, reporting within-window success rates and the
//!    failover / hedge / re-route / shed counters per intensity.
//! 4. A preempt-heavy campaign swept across checkpoint policies: with
//!    no grace window the snapshot interval (64 / 16 / 4 ticks)
//!    bounds the recomputation, and with a grace window long enough
//!    for one final write a preemption loses only that write — not a
//!    night of work.

use epiflow_core::CombinedWorkflow;
use epiflow_hpcsim::slurm::{CheckpointPolicy, NodeFailure};
use epiflow_hpcsim::task::WorkloadSpec;
use epiflow_orchestrator::{
    timeline_text, CampaignSpec, DeadlinePolicy, FailoverPolicy, FaultPlan, FaultProfile, Journal,
    NightlySpec, RunResult,
};
use epiflow_surveillance::{RegionRegistry, Scale};

fn remote_kill_workflow(failover: bool) -> CombinedWorkflow {
    CombinedWorkflow {
        workload: WorkloadSpec { cells: 2, replicates: 2, ..WorkloadSpec::prediction() },
        faults: FaultPlan {
            seed: 42,
            node_failures: vec![NodeFailure { at_secs: 60.0, nodes: 720 }],
            ..FaultPlan::default()
        },
        deadline: DeadlinePolicy { shed_cells: true },
        failover: if failover { FailoverPolicy::on() } else { FailoverPolicy::default() },
        ..Default::default()
    }
}

fn show(name: &str, run: &RunResult) {
    let c = run.report.counters();
    println!(
        "  {name:<18} within-window: {:<5}  shed cells: {:<2}  failovers: {}  hedges: {}  \
         re-routes: {}  retries: {}  cycle: {:.1} h",
        run.report.within_window,
        c.shed_cells,
        c.failovers,
        c.hedges,
        c.reroutes,
        c.retries,
        run.report.cycle_secs / 3600.0,
    );
}

fn main() {
    let reg = RegionRegistry::new();
    let scale = Scale::default();

    println!("=== Exhibit 1: total remote loss at t+60 s, 204-task night ===\n");
    let classic = remote_kill_workflow(false).engine(&reg, scale).run();
    let failover = remote_kill_workflow(true).engine(&reg, scale).run();
    show("classic engine", &classic);
    show("failover engine", &failover);
    println!("\n  failover night timeline:\n");
    print!("{}", timeline_text(&failover.report.timeline));
    println!(
        "\n  re-planned steps: {:?}\n  event stream (JSONL, resilience lines):\n",
        failover.report.failover_steps
    );
    for line in failover.events_jsonl().lines() {
        if line.contains("failed_over") || line.contains("breaker") || line.contains("counters") {
            println!("    {line}");
        }
    }

    println!("\n=== Exhibit 2: kill/resume mid-failover ===\n");
    let engine = remote_kill_workflow(true).engine(&reg, scale);
    let full = engine.run();
    let full_json = serde_json::to_string(&full.report).unwrap();
    let mut all_identical = true;
    for k in 0..=full.journal.entries.len() {
        let (recovered, _) = Journal::recover_jsonl(&full.journal.prefix(k).to_jsonl()).unwrap();
        let resumed = engine.resume(&recovered);
        let identical = serde_json::to_string(&resumed.report).unwrap() == full_json;
        all_identical &= identical;
        println!(
            "  resume after {k}/7 steps: {} live steps, report byte-identical: {identical}",
            resumed.live_steps.len()
        );
    }
    assert!(all_identical, "resume must be byte-identical for every prefix");

    println!("\n=== Exhibit 3: chaos campaign, 16 nights per intensity ===\n");
    let spec = CampaignSpec {
        nightly: NightlySpec { failover: FailoverPolicy::on(), ..NightlySpec::default() },
        tasks: engine.env.tasks.clone(),
        region_rows: engine.env.region_rows.clone(),
        deadline: DeadlinePolicy { shed_cells: true },
        intensities: vec![0.0, 0.25, 0.5, 0.75, 1.0],
        nights_per_intensity: 16,
        base_seed: 2021,
        profile: FaultProfile::Mixed,
    };
    let report = spec.run();
    print!("{}", report.table_text());
    println!(
        "\n  shed distribution per intensity (cells shed in a night × nights): {:?}",
        report.per_intensity.iter().map(|i| &i.shed_distribution).collect::<Vec<_>>()
    );
    println!(
        "\n(the same campaign re-run is bit-identical for the fixed seed: {})",
        report == spec.run()
    );

    println!("\n=== Exhibit 4: preempt-heavy nights, checkpoint-policy sweep ===\n");
    println!(
        "  {:<16} {:>8} {:>9} {:>9} {:>10}",
        "policy", "preempt", "lost-nh", "saved-nh", "in-window"
    );
    let hard = |n: u32| CheckpointPolicy { grace_secs: 0.0, ..CheckpointPolicy::every(n) };
    for (label, policy) in [
        ("off", CheckpointPolicy::default()),
        ("64, no grace", hard(64)),
        ("16, no grace", hard(16)),
        ("4, no grace", hard(4)),
        ("16 + grace", CheckpointPolicy::every(16)),
    ] {
        let spec = CampaignSpec {
            nightly: NightlySpec {
                failover: FailoverPolicy::on(),
                checkpoint: policy,
                ..NightlySpec::default()
            },
            tasks: engine.env.tasks.clone(),
            region_rows: engine.env.region_rows.clone(),
            deadline: DeadlinePolicy { shed_cells: true },
            intensities: vec![1.0],
            nights_per_intensity: 16,
            base_seed: 2021,
            profile: FaultProfile::PreemptHeavy,
        };
        let i = &spec.run().per_intensity[0];
        println!(
            "  {:<16} {:>8} {:>9.1} {:>9.1} {:>9.0}%",
            label,
            i.preemptions,
            i.node_seconds_lost / 3600.0,
            i.node_seconds_recovered / 3600.0,
            i.success_rate * 100.0,
        );
    }
    println!(
        "\n(node-hours; the fault draw is identical across rows — only the checkpoint\n \
         policy changes, so lost-nh is the recomputation each policy still pays. With a\n \
         grace window covering the final snapshot write, a preemption loses only that\n \
         write; without one, the snapshot interval bounds the loss.)"
    );
}
