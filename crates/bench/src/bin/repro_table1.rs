//! Table I — representative workflow scale and output volumes.
//!
//! Reproduces the cells × states × replicates → #simulations arithmetic
//! exactly, and the raw/summary volume columns from the paper's own
//! accounting (national population, 365-day runs, 90 health states,
//! 3 counts), with the per-simulation transition count measured from a
//! real scaled run and extrapolated to national scale.

use epiflow_analytics::volume::WorkflowVolume;
use epiflow_bench::{fmt_bytes, print_row, region, run_covid};
use epiflow_epihiper::InterventionSet;
use epiflow_surveillance::RegionRegistry;

fn main() {
    let reg = RegionRegistry::new();

    // Measure transitions/person from one real scaled run (VA, 120 d).
    let va = region(&reg, "VA", 4000.0);
    let result = run_covid(&va, InterventionSet::new(), 120, 4, 1);
    let transitions: u64 = result.output.new_counts.iter().flatten().map(|&x| x as u64).sum();
    let per_person = transitions as f64 / va.population.len() as f64;
    println!(
        "measured: {} transitions over {} persons ⇒ {:.2} transitions/person\n",
        transitions,
        va.population.len(),
        per_person
    );

    // Attack-rate-equivalent: transitions/person = attack × path length.
    // The paper's runs used calibrated attack rates; we extrapolate with
    // the measured value directly.
    let rows = [("Economic", 12usize, 15u32), ("Prediction", 12, 15), ("Calibration", 300, 1)];
    let widths = [12, 7, 8, 11, 13, 11, 11];
    println!("Table I — workflow scale and data volumes (paper values in brackets)");
    print_row(
        &["Workflow", "#Cells", "#States", "#Replicates", "#Simulations", "Raw", "Summary"],
        &widths,
    );
    let paper = [("3.0TB", "5.0GB"), ("1.0TB", "2.5GB"), ("5.0TB", "4.0GB")];
    for ((name, cells, reps), (praw, psum)) in rows.iter().zip(paper) {
        let per_sim_transitions = 300e6 / 51.0 * per_person;
        let v = WorkflowVolume {
            cells: *cells,
            regions: 51,
            replicates: *reps as usize,
            total_transitions: (per_sim_transitions * (*cells as f64) * 51.0 * (*reps as f64))
                as u64,
            days: 365,
            health_states: 90,
            counties: 0,
        };
        let r = v.report();
        print_row(
            &[
                name,
                &cells.to_string(),
                "51",
                &reps.to_string(),
                &r.n_simulations.to_string(),
                &format!("{} [{praw}]", fmt_bytes(r.raw_bytes)),
                &format!("{} [{psum}]", fmt_bytes(r.summary_bytes)),
            ],
            &widths,
        );
    }
    println!(
        "\nsimulation counts match the paper exactly; volumes are derived from the\n\
         measured transitions/person at national population and agree in order of\n\
         magnitude with the published TB/GB figures."
    );
}
