//! Figures 15–17 — case study 3: calibrating the agent-based model for
//! Virginia and predicting forward.
//!
//! * Fig. 15: prior vs posterior designs — after calibration, TAU and
//!   SYMP tighten and become negatively correlated; SH concentrates
//!   toward lower values; VHI stays ≈ unchanged.
//! * Fig. 16: the GP emulator's 95% band against the ground truth
//!   (goodness-of-fit visualization); we report band coverage.
//! * Fig. 17: the 8-week-ahead prediction — median + 95% band over the
//!   cumulative confirmed-case count.

use epiflow_bench::sparkline;
use epiflow_calibrate::{GpmsaCalibration, GpmsaConfig, MetropolisConfig};
use epiflow_core::runner::run_cell;
use epiflow_core::{CalibrationWorkflow, CellConfig, PredictionWorkflow};
use epiflow_surveillance::{RegionRegistry, Scale};
use epiflow_synthpop::{build_region, BuildConfig};

fn main() {
    let reg = RegionRegistry::new();
    let va = reg.by_abbrev("VA").unwrap().id;
    let data = build_region(
        &reg,
        va,
        &BuildConfig { scale: Scale::one_per(2000.0), seed: 0x5EED, ..Default::default() },
    );
    println!(
        "Virginia at 1/2000 scale: {} persons, {} contact edges\n",
        data.population.len(),
        data.network.n_edges()
    );

    // Ground truth: a hidden parameter configuration simulated with a
    // different replicate seed — the observed "reported" curve.
    let base = CellConfig {
        days: 70,
        sc_start: 30, // case study: SC from March 16
        sh_start: 45, // SH from March 31
        sh_end: 200,  // expires June 10, beyond horizon
        initial_infections: 12,
        ..Default::default()
    };
    let truth = [0.30, 0.65, 0.55, 0.45]; // TAU, SYMP, SH, VHI
                                          // The observed curve: the replicate-mean of the hidden configuration,
                                          // standing in for the (smoothed) surveillance series.
    let truth_cell = CellConfig::from_theta(990, &truth, &base);
    let mut observed = vec![0.0f64; base.days as usize];
    let obs_reps = 5u32;
    for rep in 0..obs_reps {
        let run = run_cell(&data, &truth_cell, rep, 4, false, 0x0B5);
        for (o, l) in observed.iter_mut().zip(&run.log_cum_symptomatic) {
            *o += l / obs_reps as f64;
        }
    }

    // Calibration: 100-configuration LHS prior, as in the case study.
    let wf = CalibrationWorkflow {
        n_prior_cells: 100,
        base: base.clone(),
        n_posterior: 100,
        gpmsa: GpmsaConfig {
            mcmc: MetropolisConfig {
                iterations: 4000,
                burn_in: 1000,
                seed: 21,
                ..Default::default()
            },
            gibbs_sweeps: 3,
            ..Default::default()
        },
        ..Default::default()
    };
    let result = wf.run(&data, &observed);

    // ---- Figure 15: prior vs posterior marginals ---------------------
    println!("Figure 15 — prior vs posterior design (100 configurations each)\n");
    let names = ["TAU", "SYMP", "SH", "VHI"];
    let prior = &result.prior_thetas;
    let post = result.posterior_thetas();
    let stat = |samples: &[Vec<f64>], k: usize| {
        let n = samples.len() as f64;
        let m = samples.iter().map(|s| s[k]).sum::<f64>() / n;
        let v = samples.iter().map(|s| (s[k] - m).powi(2)).sum::<f64>() / (n - 1.0);
        (m, v.sqrt())
    };
    println!(
        "{:>6} {:>9} {:>9} {:>12} {:>12} {:>10} {:>8}",
        "param", "prior μ", "prior σ", "posterior μ", "posterior σ", "shrinkage", "truth"
    );
    for (k, name) in names.iter().enumerate() {
        let (pm, ps) = stat(prior, k);
        let (qm, qs) = stat(&post, k);
        println!(
            "{name:>6} {pm:>9.3} {ps:>9.3} {qm:>12.3} {qs:>12.3} {:>9.0}% {:>8.3}",
            (1.0 - qs / ps) * 100.0,
            truth[k]
        );
    }
    let corr = result.posterior.theta.correlation(0, 1);
    println!(
        "\nposterior corr(TAU, SYMP) = {corr:.3}  [paper: negatively correlated]\n\
         posterior acceptance rate = {:.2}\n",
        result.posterior.theta.acceptance
    );

    // ---- Figure 16: emulator band vs ground truth --------------------
    let calib = GpmsaCalibration::new(&result.emulator, &observed, GpmsaConfig::default());
    let band = calib.predictive_band(&result.posterior, 300, 0.025, 0.975, 77);
    println!("Figure 16 — emulated 95% band vs ground truth (log cumulative cases)\n");
    println!("  truth : {}", sparkline(&observed));
    println!("  median: {}", sparkline(&band.median));
    println!(
        "  band coverage of ground truth: {:.0}%  [good fit ⇔ truth inside the green curves]\n",
        band.coverage(&observed) * 100.0
    );

    // ---- Figure 17: prediction with uncertainty ----------------------
    let pred = PredictionWorkflow {
        replicates: 5,
        horizon_days: base.days + 56, // 8 more weeks
        n_partitions: 4,
        seed: 0x9ED,
    };
    let configs: Vec<CellConfig> = result.posterior_configs.iter().take(20).cloned().collect();
    let res = pred.run(&data, &configs);
    println!("Figure 17 — VA cumulative case prediction, 8 weeks past day {}\n", base.days);
    println!("  median: {}", sparkline(&res.cumulative_band.median));
    println!("  day       cases: median [lo95, hi95]");
    for day in [70usize, 84, 98, 112, 125] {
        println!(
            "  {day:>3}  {:>14.0} [{:.0}, {:.0}]",
            res.cumulative_band.median[day],
            res.cumulative_band.lo[day],
            res.cumulative_band.hi[day]
        );
    }
    let d = (base.days + 55) as usize;
    println!(
        "\n  8-week-ahead cumulative cases: median {:.0}, 95% band [{:.0}, {:.0}]",
        res.cumulative_band.median[d], res.cumulative_band.lo[d], res.cumulative_band.hi[d]
    );
    // Hold-out check: simulate the truth forward and see if it lands in
    // the band (a check the paper could only do retrospectively).
    let forward = run_cell(
        &data,
        &CellConfig { days: base.days + 56, ..CellConfig::from_theta(991, &truth, &base) },
        3,
        4,
        false,
        0x0B5,
    );
    let truth_fwd: Vec<f64> = forward.log_cum_symptomatic.iter().map(|l| l.exp() - 1.0).collect();
    println!(
        "  held-out truth at 8 weeks: {:.0} → inside band: {}",
        truth_fwd[d],
        truth_fwd[d] >= res.cumulative_band.lo[d] && truth_fwd[d] <= res.cumulative_band.hi[d]
    );
}
