//! Engine scan-mode benchmark — frontier vs reference, machine-readable.
//!
//! Runs the EpiHiper core on two synthetic networks that bracket the
//! frontier scan's operating envelope and emits `BENCH_engine.json`:
//!
//! * **sparse** — a large ring-with-chords network where the epidemic
//!   is a travelling wave, so the active frontier is a sliver of the
//!   node set. This is the case the frontier scan exists for; the
//!   acceptance target is a ≥3× speedup over the reference scan.
//! * **dense** — a heavily-seeded random graph with a long infectious
//!   period, holding nearly every susceptible node on the frontier for
//!   the whole run. This is the worst case for the frontier
//!   bookkeeping; the acceptance target is ≤5% regression.
//!
//! Both cases first run with transition recording on in both scan
//! modes and assert the outputs are byte-identical (the engine's
//! headline invariant), then time each mode over several repetitions
//! and report nodes/s, edges/s, per-tick frontier occupancy, and the
//! speedup. The JSON is validated by re-parsing before it is written.
//!
//! `--smoke` shrinks both networks and skips the performance
//! assertions so CI can verify the harness end-to-end in seconds.

use epiflow_epihiper::disease::sir_model;
use epiflow_epihiper::{InterventionSet, SimConfig, SimResult, Simulation};
use epiflow_synthpop::network::ContactEdge;
use epiflow_synthpop::{ActivityType, ContactNetwork};
use serde::{Number, Value};

/// Deterministic splitmix64 for network synthesis (no RNG dependency;
/// the engine's own draws come from its counter-based streams).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn edge(u: u32, v: u32) -> ContactEdge {
    let (u, v) = if u < v { (u, v) } else { (v, u) };
    ContactEdge {
        u,
        v,
        start: 480,
        duration: 480,
        ctx_u: ActivityType::Work,
        ctx_v: ActivityType::Work,
        weight: 1.0,
    }
}

/// Ring of `n` nodes, each linked to its next 4 neighbors, plus a
/// sprinkle of long-range chords (~0.5% of nodes). An epidemic seeded
/// at a few points travels as a narrow wave: frontier occupancy stays
/// tiny while the reference scan keeps paying for the whole ring.
fn sparse_ring(n: u32) -> ContactNetwork {
    let mut edges = Vec::with_capacity(n as usize * 4 + n as usize / 200);
    for u in 0..n {
        for k in 1..=4u32 {
            edges.push(edge(u, (u + k) % n));
        }
    }
    let mut st = 0xC0FFEE_u64;
    for _ in 0..(n / 200) {
        let a = (splitmix64(&mut st) % n as u64) as u32;
        let b = (splitmix64(&mut st) % n as u64) as u32;
        if a != b {
            edges.push(edge(a, b));
        }
    }
    ContactNetwork { n_nodes: n as usize, edges }
}

/// Random graph with mean degree ~20. Combined with heavy seeding and
/// a long infectious period this keeps the frontier near-full, so the
/// frontier scan does all the reference work *plus* its bookkeeping.
fn dense_random(n: u32) -> ContactNetwork {
    let mut st = 0xD15EA5E_u64;
    let mut edges = Vec::with_capacity(n as usize * 10);
    for u in 0..n {
        for _ in 0..10 {
            let v = (splitmix64(&mut st) % n as u64) as u32;
            if v != u {
                edges.push(edge(u, v));
            }
        }
    }
    ContactNetwork { n_nodes: n as usize, edges }
}

struct Case {
    name: &'static str,
    net: ContactNetwork,
    beta: f64,
    infectious_days: f64,
    ticks: u32,
    initial_infections: usize,
}

fn simulate(case: &Case, reference_scan: bool, record_transitions: bool) -> SimResult {
    let n = case.net.n_nodes;
    let mut sim = Simulation::new(
        &case.net,
        sir_model(case.beta, case.infectious_days),
        vec![2; n],
        vec![0; n],
        InterventionSet::default(),
        SimConfig {
            ticks: case.ticks,
            seed: 7,
            n_partitions: 4,
            epsilon: 16,
            initial_infections: case.initial_infections,
            record_transitions,
            reference_scan,
            ..Default::default()
        },
    );
    sim.run()
}

/// Best-of-`reps` wall time for both scan modes, interleaved so that
/// machine-load noise lands on both modes alike. Returns
/// `(frontier, reference)` with the telemetry of each mode's fastest
/// run.
fn time_modes(case: &Case, reps: usize) -> (SimResult, SimResult) {
    let mut best_fr: Option<SimResult> = None;
    let mut best_rf: Option<SimResult> = None;
    for _ in 0..reps {
        let fr = simulate(case, false, false);
        if best_fr.as_ref().is_none_or(|b| fr.elapsed < b.elapsed) {
            best_fr = Some(fr);
        }
        let rf = simulate(case, true, false);
        if best_rf.as_ref().is_none_or(|b| rf.elapsed < b.elapsed) {
            best_rf = Some(rf);
        }
    }
    (best_fr.expect("reps >= 1"), best_rf.expect("reps >= 1"))
}

fn mode_value(case: &Case, r: &SimResult) -> Value {
    let secs = r.elapsed.as_secs_f64().max(1e-9);
    let node_ticks = case.net.n_nodes as u64 * r.ticks_run as u64;
    Value::Map(vec![
        ("elapsed_secs".into(), Value::Num(Number::F(secs))),
        ("nodes_per_sec".into(), Value::Num(Number::F(node_ticks as f64 / secs))),
        ("edges_scanned".into(), Value::Num(Number::U(r.stats.total_edges_scanned()))),
        (
            "edges_per_sec".into(),
            Value::Num(Number::F(r.stats.total_edges_scanned() as f64 / secs)),
        ),
    ])
}

fn run_case(case: &Case, reps: usize) -> (Value, f64, bool) {
    println!(
        "--- {} : {} nodes, {} edges, {} ticks ---",
        case.name,
        case.net.n_nodes,
        case.net.edges.len(),
        case.ticks
    );

    // Equivalence check: both modes with the full transition log.
    let fr_chk = simulate(case, false, true);
    let rf_chk = simulate(case, true, true);
    let identical = fr_chk.output.transitions == rf_chk.output.transitions
        && fr_chk.output.new_counts == rf_chk.output.new_counts
        && fr_chk.output.current_counts == rf_chk.output.current_counts;
    assert!(identical, "{}: frontier and reference outputs diverge", case.name);
    println!(
        "  outputs identical across scan modes ({} transitions)",
        fr_chk.output.transitions.len()
    );

    let (frontier, reference) = time_modes(case, reps);
    let speedup = reference.elapsed.as_secs_f64() / frontier.elapsed.as_secs_f64().max(1e-9);
    let occupancy = frontier.stats.mean_frontier_occupancy(case.net.n_nodes);
    println!(
        "  frontier {:.3}s  reference {:.3}s  speedup {:.2}x  mean occupancy {:.1}%",
        frontier.elapsed.as_secs_f64(),
        reference.elapsed.as_secs_f64(),
        speedup,
        occupancy * 100.0
    );

    let occ_by_tick: Vec<Value> = frontier
        .stats
        .frontier_nodes
        .iter()
        .map(|&f| Value::Num(Number::F(f as f64 / case.net.n_nodes.max(1) as f64)))
        .collect();

    let v = Value::Map(vec![
        ("nodes".into(), Value::Num(Number::U(case.net.n_nodes as u64))),
        ("edges".into(), Value::Num(Number::U(case.net.edges.len() as u64))),
        ("ticks".into(), Value::Num(Number::U(case.ticks as u64))),
        ("outputs_identical".into(), Value::Bool(identical)),
        ("total_infected".into(), Value::Num(Number::U(fr_chk.output.total_infections() as u64))),
        ("frontier".into(), mode_value(case, &frontier)),
        ("reference".into(), mode_value(case, &reference)),
        ("speedup".into(), Value::Num(Number::F(speedup))),
        ("mean_frontier_occupancy".into(), Value::Num(Number::F(occupancy))),
        ("frontier_occupancy_by_tick".into(), Value::Seq(occ_by_tick)),
    ]);
    (v, speedup, identical)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (sparse_n, dense_n, reps) = if smoke { (2_000, 1_000, 1) } else { (120_000, 20_000, 5) };

    println!("=== Engine scan-mode benchmark (frontier vs reference) ===");
    println!("mode: {}\n", if smoke { "smoke" } else { "full" });

    let sparse = Case {
        name: "sparse_wave",
        net: sparse_ring(sparse_n),
        beta: 0.8,
        infectious_days: 5.0,
        ticks: if smoke { 30 } else { 120 },
        initial_infections: 3,
    };
    let dense = Case {
        name: "dense_saturated",
        net: dense_random(dense_n),
        beta: 0.05,
        infectious_days: 90.0,
        ticks: if smoke { 20 } else { 60 },
        initial_infections: dense_n as usize / 10,
    };

    let (sparse_v, sparse_speedup, _) = run_case(&sparse, reps);
    let (dense_v, dense_speedup, _) = run_case(&dense, reps);

    let doc = Value::Map(vec![
        ("benchmark".into(), Value::Str("engine_scan_mode".into())),
        ("smoke".into(), Value::Bool(smoke)),
        ("n_partitions".into(), Value::Num(Number::U(4))),
        ("sparse".into(), sparse_v),
        ("dense".into(), dense_v),
    ]);

    let json = serde_json::to_string_pretty(&doc).expect("serialize benchmark report");
    // Round-trip before writing: the artifact must stay machine-readable.
    let parsed = serde_json::parse_value(&json).expect("re-parse benchmark JSON");
    for key in ["benchmark", "sparse", "dense"] {
        assert!(
            matches!(&parsed, Value::Map(m) if m.iter().any(|(k, _)| k == key)),
            "benchmark JSON missing key `{key}`"
        );
    }
    std::fs::write("BENCH_engine.json", &json).expect("write BENCH_engine.json");
    println!("\nwrote BENCH_engine.json ({} bytes)", json.len());

    if !smoke {
        assert!(
            sparse_speedup >= 3.0,
            "sparse frontier speedup {sparse_speedup:.2}x below the 3x target"
        );
        assert!(
            dense_speedup >= 0.95,
            "dense worst case regressed {:.1}% (>5% budget)",
            (1.0 / dense_speedup - 1.0) * 100.0
        );
        println!("targets met: sparse {sparse_speedup:.2}x >= 3x, dense within 5% budget");
    }
}
