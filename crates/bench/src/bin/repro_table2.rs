//! Table II — cluster configurations and the data moved between them.

use epiflow_analytics::volume::input;
use epiflow_bench::fmt_bytes;
use epiflow_core::CombinedWorkflow;
use epiflow_hpcsim::ClusterSpec;
use epiflow_surveillance::{RegionRegistry, Scale};

fn print_cluster(c: &ClusterSpec) {
    println!("  {}", c.name);
    println!("    # Allocated nodes : {}", c.nodes);
    println!("    # CPUs/node       : {}", c.cpus_per_node);
    println!("    # Cores/CPU       : {}", c.cores_per_cpu);
    println!("    RAM per node      : {} GB", c.ram_gb_per_node);
    println!("    Total cores       : {}", c.total_cores());
    if let Some((s, e)) = c.window {
        println!(
            "    Nightly window    : {:02}:00 – {:02}:00 ({} h)",
            s / 3600,
            e / 3600,
            c.window_secs() / 3600
        );
    }
}

fn main() {
    println!("Table II — cluster configuration (paper values reproduced exactly)\n");
    print_cluster(&ClusterSpec::bridges());
    println!();
    print_cluster(&ClusterSpec::rivanna());

    println!("\nData volumes:");
    println!(
        "  user traits + contact networks (one time) : {}  [paper: 2 TB]",
        fmt_bytes(input::national_bytes())
    );

    let reg = RegionRegistry::new();
    let report = CombinedWorkflow::default().run(&reg, Scale::default());
    let configs =
        report.transfers.bytes_moved(epiflow_hpcsim::Site::Home, epiflow_hpcsim::Site::Remote);
    println!(
        "  daily simulation configurations           : {}  [paper: 100 MB – 8.7 GB]",
        fmt_bytes(configs)
    );
    println!(
        "  raw simulation outputs generated per day  : {}  [paper: 20 GB – 3.5 TB]",
        fmt_bytes(report.raw_output_bytes)
    );
    println!(
        "  summarized outputs per day                : {}  [paper: 120 MB – 70 GB]",
        fmt_bytes(report.summary_bytes)
    );
    println!(
        "\nnightly prediction workload: {} simulations, {} completed, utilization {:.1}%",
        report.n_tasks,
        report.slurm.completed,
        report.slurm.utilization * 100.0
    );
}
