//! Figure 8 — variance in per-state runtimes across cells for one
//! representative day of simulation.
//!
//! Runs several cells (configurations) for every region and reports the
//! min / median / max runtime per state. The reproduction targets: the
//! strong correlation of runtime with network size, and visible spread
//! across cells within each state.

use epiflow_bench::{region, run_covid, sparkline};
use epiflow_epihiper::covid::states;
use epiflow_epihiper::interventions::{SchoolClosure, StayAtHome, VoluntaryHomeIsolation};
use epiflow_epihiper::InterventionSet;
use epiflow_surveillance::RegionRegistry;
use rayon::prelude::*;

fn cell_interventions(cell: u32) -> InterventionSet {
    // Cells vary compliance, which varies triggered work and runtime.
    let compliance = 0.3 + 0.15 * cell as f64;
    InterventionSet::new()
        .with(Box::new(VoluntaryHomeIsolation {
            symptomatic: states::SYMPTOMATIC,
            compliance,
            duration: 14,
        }))
        .with(Box::new(SchoolClosure { start: 30, end: u32::MAX }))
        .with(Box::new(StayAtHome::new(40, 100, compliance)))
}

fn main() {
    let reg = RegionRegistry::new();
    let cells = 4u32;
    let ticks = 100;

    println!("Figure 8 — runtime variance across cells per state (s, {} cells)", cells);
    println!("{:>6} {:>9} {:>9} {:>9} {:>9}  cells", "state", "nodes", "min", "median", "max");

    let mut rows: Vec<(String, usize, Vec<f64>)> = reg
        .regions()
        .par_iter()
        .map(|r| {
            let data = region(&reg, r.abbrev, 4000.0);
            let mut times: Vec<f64> = (0..cells)
                .map(|c| {
                    run_covid(&data, cell_interventions(c), ticks, 2, c as u64)
                        .elapsed
                        .as_secs_f64()
                })
                .collect();
            times.sort_by(|a, b| a.partial_cmp(b).unwrap());
            (r.abbrev.to_string(), data.network.n_nodes, times)
        })
        .collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));

    for (abbrev, nodes, times) in &rows {
        println!(
            "{:>6} {:>9} {:>9.4} {:>9.4} {:>9.4}  {}",
            abbrev,
            nodes,
            times[0],
            times[times.len() / 2],
            times[times.len() - 1],
            sparkline(times)
        );
    }

    // Correlation of median runtime with node count.
    let n = rows.len() as f64;
    let mx = rows.iter().map(|r| r.1 as f64).sum::<f64>() / n;
    let my = rows.iter().map(|r| r.2[r.2.len() / 2]).sum::<f64>() / n;
    let cov: f64 = rows.iter().map(|r| (r.1 as f64 - mx) * (r.2[r.2.len() / 2] - my)).sum();
    let vx: f64 = rows.iter().map(|r| (r.1 as f64 - mx).powi(2)).sum();
    let vy: f64 = rows.iter().map(|r| (r.2[r.2.len() / 2] - my).powi(2)).sum();
    println!(
        "\nmedian-runtime vs network-size correlation r = {:.3}\n\
         [paper: runtimes vary across cells and are strongly correlated to network size]",
        cov / (vx.sqrt() * vy.sqrt())
    );
}
