//! Figure 7 — EpiHiper runtime characteristics.
//!
//! (top)    *measured*: runtime vs network size at a fixed
//!          processing-unit count — the paper reports linear growth;
//! (middle) strong scaling: runtime vs processing units for three
//!          medium-to-large networks. Wall-clock scaling cannot be
//!          measured on a single-core host, so this panel projects
//!          runtimes with the BSP/MPI cost model of
//!          `epihiper::scaling`, calibrated to the *measured* serial
//!          throughput of this machine and fed the *real* ghost-edge
//!          structure of each partitioning (see DESIGN.md §3);
//! (bottom) runtime vs intervention stack — base (VHI+SC+SH), +RO,
//!          +TA, +PS, +D1CT, +D2CT — projected at deployment scale from
//!          epidemic activity profiles measured in real runs; the paper
//!          reports D2CT ≈ +300%.

use epiflow_bench::{print_row, region, run_covid};
use epiflow_epihiper::covid::states;
use epiflow_epihiper::interventions::base_case;
use epiflow_epihiper::partition::partition_network;
use epiflow_epihiper::scaling::{
    intervention_tick_cost, partition_profile, projected_tick_secs, ActivityProfile, MpiCostModel,
    Stack,
};
use epiflow_epihiper::InterventionSet;
use epiflow_surveillance::RegionRegistry;

fn median_secs(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn main() {
    let reg = RegionRegistry::new();
    let ticks = 120;
    let reps = 3;

    // --- (top) measured: runtime vs network size ----------------------
    println!("Fig. 7 (top) — measured runtime vs network size, 4 processing units");
    print_row(&["state", "nodes", "edges", "runtime (s)"], &[6, 9, 11, 12]);
    let mut sizes = Vec::new();
    for abbrev in ["VT", "WV", "CT", "MD", "VA", "PA", "CA"] {
        let data = region(&reg, abbrev, 2000.0);
        let times: Vec<f64> = (0..reps)
            .map(|s| run_covid(&data, InterventionSet::new(), ticks, 4, s).elapsed.as_secs_f64())
            .collect();
        let t = median_secs(times);
        print_row(
            &[
                abbrev,
                &data.network.n_nodes.to_string(),
                &data.network.n_edges().to_string(),
                &format!("{t:.3}"),
            ],
            &[6, 9, 11, 12],
        );
        sizes.push((data.network.n_edges() as f64, t));
    }
    let n = sizes.len() as f64;
    let mx = sizes.iter().map(|s| s.0).sum::<f64>() / n;
    let my = sizes.iter().map(|s| s.1).sum::<f64>() / n;
    let cov: f64 = sizes.iter().map(|s| (s.0 - mx) * (s.1 - my)).sum();
    let vx: f64 = sizes.iter().map(|s| (s.0 - mx) * (s.0 - mx)).sum();
    let vy: f64 = sizes.iter().map(|s| (s.1 - my) * (s.1 - my)).sum();
    println!(
        "  runtime/size correlation r = {:.3}  [paper: linear ⇒ r ≈ 1]\n",
        cov / (vx.sqrt() * vy.sqrt())
    );

    // --- calibrate the cost model from a measured serial run ----------
    let calib_data = region(&reg, "VA", 500.0);
    let serial = median_secs(
        (0..reps)
            .map(|s| {
                run_covid(&calib_data, InterventionSet::new(), ticks, 1, s).elapsed.as_secs_f64()
            })
            .collect(),
    );
    let model =
        MpiCostModel::default().calibrate_per_edge(serial, calib_data.network.n_edges() * 2, ticks);
    println!(
        "cost model calibrated on measured serial run: {:.1} ns/in-edge\n",
        model.per_edge_secs * 1e9
    );

    // --- (middle) projected strong scaling ----------------------------
    println!("Fig. 7 (middle) — strong scaling (projected, real partition structure)");
    let pus = [1usize, 2, 4, 8, 16, 32, 64, 128, 256];
    let header: Vec<String> =
        std::iter::once("state".to_string()).chain(pus.iter().map(|p| format!("PU={p}"))).collect();
    let hrefs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let widths = vec![6usize, 8, 8, 8, 8, 8, 8, 8, 8, 8];
    print_row(&hrefs, &widths);
    for abbrev in ["MD", "VA", "CA"] {
        let data = region(&reg, abbrev, 500.0);
        let mut row = vec![abbrev.to_string()];
        let mut best = (1usize, f64::MAX);
        for &p in &pus {
            let parts = partition_network(&data.network, p, 16);
            let profile = partition_profile(&data.network, &parts);
            let t = projected_tick_secs(&profile, &model) * ticks as f64;
            if t < best.1 {
                best = (p, t);
            }
            row.push(format!("{t:.3}"));
        }
        let refs: Vec<&str> = row.iter().map(|s| s.as_str()).collect();
        print_row(&refs, &widths);
        println!("        └ sweet spot at PU={} (larger networks saturate later)", best.0);
    }
    println!(
        "  [paper: more PUs help, returns diminish at a size-dependent point, and\n\
         \u{20}  oversubscription becomes slower as messaging costs dominate]\n"
    );

    // --- (bottom) intervention ladder ---------------------------------
    // Measure epidemic activity under the base stack, then project the
    // per-stack runtime at deployment scale (4 nodes × 28 ranks, the
    // paper's medium-region allocation; mean degree 26 as in the
    // national networks).
    println!("Fig. 7 (bottom) — runtime by intervention stack (projected at deployment scale)");
    let data = region(&reg, "VA", 500.0);
    let res = run_covid(&data, base_case(states::SYMPTOMATIC, 30, 40, 100, 0.5, 0.6), ticks, 1, 1);
    let occ_sym = res.output.occupancy(states::SYMPTOMATIC);
    let occ_asym = res.output.occupancy(states::ASYMPTOMATIC);
    let mean = |v: &[u32]| v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64;
    // Scale the measured prevalence *fractions* up to a deployment-size
    // region with the paper's contact density.
    let n_deploy = 6_000_000usize;
    let frac_sym = mean(&occ_sym) / data.population.len() as f64;
    let frac_asym = mean(&occ_asym) / data.population.len() as f64;
    let activity = ActivityProfile {
        mean_symptomatic: frac_sym * n_deploy as f64,
        mean_asymptomatic: frac_asym * n_deploy as f64,
        mean_degree: 26.0,
        n_nodes: n_deploy,
    };
    println!(
        "  measured activity profile: {:.2}% symptomatic, {:.2}% asymptomatic on average",
        frac_sym * 100.0,
        frac_asym * 100.0
    );
    let ranks = 112; // 4 nodes × 28 cores
    let base_tick = n_deploy as f64 * activity.mean_degree * MpiCostModel::default().per_edge_secs
        / ranks as f64;
    print_row(&["stack", "tick (ms)", "vs base"], &[16, 11, 9]);
    let stacks: [(&str, Stack); 6] = [
        ("base(VHI+SC+SH)", Stack::Base),
        ("base+RO", Stack::Ro),
        ("base+TA", Stack::Ta),
        ("base+PS", Stack::Ps { period_days: 14.0 }),
        ("base+D1CT", Stack::D1ct { detection: 0.5 }),
        ("base+D2CT", Stack::D2ct { detection: 0.5 }),
    ];
    for (name, stack) in stacks {
        let extra = intervention_tick_cost(stack, &activity, &MpiCostModel::default(), ranks)
            / ranks as f64;
        let t = base_tick + extra;
        print_row(
            &[name, &format!("{:.2}", t * 1e3), &format!("{:.2}×", t / base_tick)],
            &[16, 11, 9],
        );
    }
    println!("  [paper: RO and TA marginal; PS and D1CT significant; D2CT ≈ +300%]");
}
