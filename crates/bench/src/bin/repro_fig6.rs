//! Figure 6 — node and edge counts of the contact network per US state.
//!
//! Builds all 51 synthetic regions at the default 1/2000 scale and
//! prints them in the paper's order (ascending by size, WY … CA). The
//! paper's y-axis is node count × 10M and edge count × 100M at full
//! scale; ours are scaled by 1/2000, so the *shape* (the state-size
//! spread and the ≈10× edge/node ratio ordering) is the reproduction
//! target.

use epiflow_surveillance::{RegionRegistry, Scale};
use epiflow_synthpop::{build_region, BuildConfig};
use rayon::prelude::*;

fn main() {
    let reg = RegionRegistry::new();
    let scale = Scale::default();

    let mut rows: Vec<(String, usize, usize)> = reg
        .regions()
        .par_iter()
        .map(|r| {
            let data =
                build_region(&reg, r.id, &BuildConfig { scale, seed: 0x516, ..Default::default() });
            (r.abbrev.to_string(), data.network.n_nodes, data.network.n_edges())
        })
        .collect();
    rows.sort_by_key(|r| r.1);

    println!("Figure 6 — contact network sizes per state (scale 1/2000)");
    println!("{:>5}  {:>10}  {:>12}  {:>10}", "state", "nodes", "edges", "edges/node");
    let mut total_nodes = 0usize;
    let mut total_edges = 0usize;
    for (abbrev, nodes, edges) in &rows {
        println!(
            "{:>5}  {:>10}  {:>12}  {:>10.2}",
            abbrev,
            nodes,
            edges,
            *edges as f64 / *nodes as f64
        );
        total_nodes += nodes;
        total_edges += edges;
    }
    println!(
        "\nUS total: {} nodes, {} edges (paper at full scale: ≈300M nodes, 7.9B edges\n\
         ⇒ at 1/2000: ≈150k nodes; edge/node ratio ≈ 26 in the paper's networks,\n\
         lower here because sub-location contact budgets are tuned for sparse scaled nets)",
        total_nodes, total_edges
    );
    let (smallest, largest) = (rows.first().unwrap(), rows.last().unwrap());
    println!(
        "smallest {} ({} nodes) vs largest {} ({} nodes): ratio {:.0}×  [paper: WY vs CA ≈ 68×]",
        smallest.0,
        smallest.1,
        largest.0,
        largest.1,
        largest.1 as f64 / smallest.1 as f64
    );
}
