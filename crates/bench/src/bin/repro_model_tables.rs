//! Figure 12 + Tables III–IV — the COVID-19 disease model.
//!
//! Prints the builtin PTTS: states with Table-IV transmission
//! attributes, and the age-stratified progression table with dwell-time
//! distributions (Table III). Also Monte-Carlo-derives the implied
//! infection-fatality and hospitalization rates per age group, which
//! the paper's tables encode implicitly.

use epiflow_epihiper::covid::{covid19_model, states};
use epiflow_epihiper::disease::{DwellTime, N_AGE_GROUPS};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dwell_str(d: &DwellTime) -> String {
    match d {
        DwellTime::Fixed { days } => format!("fixed {days}d"),
        DwellTime::Normal { mean, sd } => format!("N({mean},{sd})"),
        DwellTime::Discrete { .. } => "discrete 1..10".to_string(),
    }
}

fn main() {
    let m = covid19_model();
    println!("Figure 12 / Table IV — health states ({} total)\n", m.n_states());
    println!("{:>16} {:>11} {:>14}", "state", "infectivity", "susceptibility");
    for s in &m.states {
        println!("{:>16} {:>11.2} {:>14.2}", s.name, s.infectivity, s.susceptibility);
    }
    println!("\ntransmissibility τ = {}   [Table IV: 0.18]", m.transmissibility);
    println!(
        "transmission edges: {} (S, RxFailure) × (P, Sympt, Asympt) → Exposed\n",
        m.transmissions.len()
    );

    println!("Table III — age-stratified progression (age groups 0-4, 5-17, 18-49, 50-64, 65+)\n");
    println!(
        "{:>16} {:>16}  {:>38}  dwell (group 0 / group 4)",
        "from", "to", "prob per age group"
    );
    for p in &m.progressions {
        let probs: Vec<String> = p.prob.iter().map(|x| format!("{x:.4}")).collect();
        println!(
            "{:>16} {:>16}  {:>38}  {} / {}",
            m.state_name(p.from),
            m.state_name(p.to),
            probs.join(" "),
            dwell_str(&p.dwell[0]),
            dwell_str(&p.dwell[N_AGE_GROUPS - 1]),
        );
    }

    // Implied severity by age (Monte Carlo over the PTTS).
    println!("\nImplied per-infection outcome rates by age group (Monte Carlo, n=50000):\n");
    println!("{:>8} {:>12} {:>12} {:>12}", "age", "hospital", "ventilator", "death");
    let labels = ["0-4", "5-17", "18-49", "50-64", "65+"];
    let mut rng = StdRng::seed_from_u64(42);
    for (g, label) in labels.iter().enumerate() {
        let n = 50_000;
        let mut hosp = 0u32;
        let mut vent = 0u32;
        let mut death = 0u32;
        for _ in 0..n {
            let mut s = states::EXPOSED;
            let mut seen_hosp = false;
            let mut seen_vent = false;
            while let Some((next, _)) = m.sample_progression(s, g, &mut rng) {
                s = next;
                match s {
                    states::HOSPITALIZED | states::HOSPITALIZED_D => seen_hosp = true,
                    states::VENTILATED | states::VENTILATED_D => seen_vent = true,
                    _ => {}
                }
            }
            hosp += seen_hosp as u32;
            vent += seen_vent as u32;
            death += (s == states::DEATH) as u32;
        }
        println!(
            "{:>8} {:>11.2}% {:>11.2}% {:>11.3}%",
            label,
            hosp as f64 / n as f64 * 100.0,
            vent as f64 / n as f64 * 100.0,
            death as f64 / n as f64 * 100.0
        );
    }
    println!(
        "\n[the monotone age gradient — seniors ≈20× child hospitalization risk — is the\n\
         Table-III structure the scheduling and cost studies depend on]"
    );
}
