//! Figures 1–2 — the combined workflow and its multi-day timeline.
//!
//! Runs one full calibration-night followed by one prediction-night on
//! the orchestrator's DAG engine, printing the Fig.-2-style schedule of
//! automated and human steps on each cluster. The timeline is rendered
//! directly from the engine's event stream and journal, so this
//! reproduction and the engine cannot drift apart.

use epiflow_core::CombinedWorkflow;
use epiflow_hpcsim::task::WorkloadSpec;
use epiflow_orchestrator::{timeline_text, EngineEvent, RunResult, TimelineEvent};
use epiflow_surveillance::{RegionRegistry, Scale};

/// Build the Fig.-2 timeline from the engine's event stream: completed
/// steps come from the journal (which records the event the engine
/// emitted for each completion), in `StepCompleted` order.
fn timeline_from_events(run: &RunResult) -> Vec<TimelineEvent> {
    let mut events: Vec<TimelineEvent> = run
        .events
        .iter()
        .filter_map(|e| match e {
            EngineEvent::StepCompleted { step, .. } | EngineEvent::StepReplayed { step, .. } => {
                run.journal.entries.iter().find(|j| j.step == *step).map(|j| j.event.clone())
            }
            _ => None,
        })
        .collect();
    events.sort_by(|a, b| a.start_secs.partial_cmp(&b.start_secs).expect("NaN start"));
    events
}

fn show_cycle(run: &RunResult) {
    print!("{}", timeline_text(&timeline_from_events(run)));
    let retries: usize =
        run.events.iter().filter(|e| matches!(e, EngineEvent::AttemptFailed { .. })).count();
    let completed = run.report.slurm.as_ref().map(|s| s.completed).unwrap_or(0);
    println!(
        "\n  simulations: {} submitted, {} completed inside the window; \
         within-window: {}; retries: {}\n",
        run.report.n_tasks, completed, run.report.within_window, retries
    );
}

fn main() {
    let reg = RegionRegistry::new();
    let scale = Scale::default();

    println!("=== Day 0–3: calibration cycle (300 cells × 51 regions × 1 replicate) ===\n");
    let calib = CombinedWorkflow { workload: WorkloadSpec::calibration(), ..Default::default() }
        .engine(&reg, scale)
        .run();
    show_cycle(&calib);

    println!("=== Day 3–6: prediction cycle (12 cells × 51 regions × 15 replicates) ===\n");
    let pred = CombinedWorkflow { workload: WorkloadSpec::prediction(), ..Default::default() }
        .engine(&reg, scale)
        .run();
    show_cycle(&pred);

    println!(
        "  end-to-end cycle: {:.1} h calibration + {:.1} h prediction\n\
         (paper Fig. 2: a Wednesday-to-Wednesday cadence with nightly 10 pm–8 am compute)",
        calib.report.cycle_secs / 3600.0,
        pred.report.cycle_secs / 3600.0
    );
}
