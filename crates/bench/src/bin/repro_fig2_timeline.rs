//! Figures 1–2 — the combined workflow and its multi-day timeline.
//!
//! Runs one full calibration-night followed by one prediction-night,
//! printing the Fig.-2-style schedule of automated and human steps on
//! each cluster.

use epiflow_core::CombinedWorkflow;
use epiflow_hpcsim::task::WorkloadSpec;
use epiflow_surveillance::{RegionRegistry, Scale};

fn main() {
    let reg = RegionRegistry::new();
    let scale = Scale::default();

    println!("=== Day 0–3: calibration cycle (300 cells × 51 regions × 1 replicate) ===\n");
    let calib = CombinedWorkflow {
        workload: WorkloadSpec::calibration(),
        ..Default::default()
    }
    .run(&reg, scale);
    print!("{}", calib.timeline_text());
    println!(
        "\n  simulations: {} submitted, {} completed inside the window; within-window: {}\n",
        calib.n_tasks, calib.slurm.completed, calib.within_window
    );

    println!("=== Day 3–6: prediction cycle (12 cells × 51 regions × 15 replicates) ===\n");
    let pred = CombinedWorkflow {
        workload: WorkloadSpec::prediction(),
        ..Default::default()
    }
    .run(&reg, scale);
    print!("{}", pred.timeline_text());
    println!(
        "\n  simulations: {} submitted, {} completed inside the window; within-window: {}",
        pred.n_tasks, pred.slurm.completed, pred.within_window
    );
    println!(
        "\n  end-to-end cycle: {:.1} h calibration + {:.1} h prediction\n\
         (paper Fig. 2: a Wednesday-to-Wednesday cadence with nightly 10 pm–8 am compute)",
        calib.cycle_secs / 3600.0,
        pred.cycle_secs / 3600.0
    );
}
