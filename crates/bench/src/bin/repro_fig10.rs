//! Figure 10 — memory required over simulation steps.
//!
//! (left)  Virginia cells with different intervention compliances: the
//!         in-run memory growth steps up at intervention time points,
//!         and higher compliance ⇒ more scheduled changes ⇒ more memory.
//! (right) one cell per state: final memory strongly correlated with
//!         the initial (network-size-driven) requirement.

use epiflow_bench::{region, run_covid, sparkline};
use epiflow_epihiper::covid::states;
use epiflow_epihiper::interventions::{SchoolClosure, StayAtHome, VoluntaryHomeIsolation};
use epiflow_epihiper::InterventionSet;
use epiflow_surveillance::RegionRegistry;
use rayon::prelude::*;

fn stack(compliance: f64) -> InterventionSet {
    InterventionSet::new()
        .with(Box::new(VoluntaryHomeIsolation {
            symptomatic: states::SYMPTOMATIC,
            compliance,
            duration: 14,
        }))
        .with(Box::new(SchoolClosure { start: 30, end: u32::MAX }))
        .with(Box::new(StayAtHome::new(40, 120, compliance)))
}

fn main() {
    let reg = RegionRegistry::new();
    let ticks = 150;

    println!("Fig. 10 (left) — VA memory by simulation step for varying compliance\n");
    let va = region(&reg, "VA", 2000.0);
    println!(
        "{:>11} {:>12} {:>12} {:>8}  trajectory",
        "compliance", "start (MB)", "end (MB)", "growth"
    );
    for compliance in [0.2, 0.4, 0.6, 0.8] {
        let res = run_covid(&va, stack(compliance), ticks, 4, 1);
        let mem: Vec<f64> = res.output.memory_bytes.iter().map(|&b| b as f64 / 1e6).collect();
        println!(
            "{:>11.1} {:>12.2} {:>12.2} {:>7.1}%  {}",
            compliance,
            mem[0],
            mem[mem.len() - 1],
            (mem[mem.len() - 1] / mem[0] - 1.0) * 100.0,
            sparkline(&mem)
        );
    }
    println!("  [paper: higher compliance ⇒ more scheduled changes ⇒ more memory]\n");

    println!("Fig. 10 (right) — per-state memory: initial vs final\n");
    let mut rows: Vec<(String, f64, f64)> = reg
        .regions()
        .par_iter()
        .map(|r| {
            let data = region(&reg, r.abbrev, 4000.0);
            let res = run_covid(&data, stack(0.5), 120, 2, 2);
            let first = res.output.memory_bytes[0] as f64 / 1e6;
            let last = *res.output.memory_bytes.last().unwrap() as f64 / 1e6;
            (r.abbrev.to_string(), first, last)
        })
        .collect();
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    println!("{:>6} {:>12} {:>12}", "state", "start (MB)", "end (MB)");
    for (abbrev, first, last) in rows.iter().step_by(5) {
        println!("{abbrev:>6} {first:>12.3} {last:>12.3}");
    }
    // Correlation initial vs final.
    let n = rows.len() as f64;
    let mx = rows.iter().map(|r| r.1).sum::<f64>() / n;
    let my = rows.iter().map(|r| r.2).sum::<f64>() / n;
    let cov: f64 = rows.iter().map(|r| (r.1 - mx) * (r.2 - my)).sum();
    let vx: f64 = rows.iter().map(|r| (r.1 - mx).powi(2)).sum();
    let vy: f64 = rows.iter().map(|r| (r.2 - my).powi(2)).sum();
    println!(
        "\ninitial-vs-final memory correlation r = {:.3}\n\
         [paper: final requirements strongly correlated with initial (network size)]",
        cov / (vx.sqrt() * vy.sqrt())
    );
}
