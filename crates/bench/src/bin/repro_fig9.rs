//! Figure 9 — CDFs of nightly CPU utilization on the remote cluster.
//!
//! Left panel: 9 workflow days simulating all 51 regions. Right panel:
//! 24 days simulating many cells for Virginia only. Both executed with
//! FFDT-DC ordering (the deployed configuration); the NFDT-DC ordering
//! is run on the same workloads for the paper's before/after contrast
//! (initial runs: 44.237%–55.579% utilization; final: medians 96.698%
//! and 95.534%).

use epiflow_hpcsim::schedule::{pack, pack_arrival, PackAlgo};
use epiflow_hpcsim::slurm::SlurmSim;
use epiflow_hpcsim::task::WorkloadSpec;
use epiflow_hpcsim::ClusterSpec;
use epiflow_surveillance::{RegionRegistry, Scale};

/// Execute one nightly workload.
///
/// `deployed = true` is the paper's final configuration: FFDT-DC with
/// largest jobs first, handed to Slurm job arrays that do real-time
/// (backfill) optimization. `false` is the initial configuration:
/// next-fit chunks in arrival order, dispatched chunk-by-chunk with a
/// barrier per chunk — the rigid srun-per-level submission the group
/// started with.
fn run_day(reg: &RegionRegistry, spec: &WorkloadSpec, deployed: bool) -> f64 {
    let tasks = spec.generate(reg, Scale::default());
    let bound = |_r: usize| 16usize;
    if deployed {
        let plan = pack(&tasks, ClusterSpec::bridges().nodes, bound, PackAlgo::FfdtDc);
        plan.validate(&tasks, bound).expect("valid plan");
        let order: Vec<usize> = plan.levels.iter().flat_map(|l| l.tasks.iter().copied()).collect();
        SlurmSim::new(ClusterSpec::bridges()).run(&tasks, &order, bound).utilization
    } else {
        let plan = pack_arrival(&tasks, ClusterSpec::bridges().nodes, bound, PackAlgo::NfdtDc);
        plan.validate(&tasks, bound).expect("valid plan");
        plan.execute(&tasks).utilization
    }
}

fn cdf_line(name: &str, mut xs: Vec<f64>) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q = |p: f64| xs[((xs.len() - 1) as f64 * p).round() as usize] * 100.0;
    println!(
        "{name:<24} n={:<3} min={:6.2}%  p25={:6.2}%  median={:6.2}%  p75={:6.2}%  max={:6.2}%",
        xs.len(),
        q(0.0),
        q(0.25),
        q(0.5),
        q(0.75),
        q(1.0)
    );
}

fn main() {
    let reg = RegionRegistry::new();

    // Left: 9 all-state workflow days (different nightly workloads).
    let mut ff_all = Vec::new();
    let mut nf_all = Vec::new();
    for day in 0..9u64 {
        let spec = WorkloadSpec {
            cells: 10 + (day % 3) as u32,
            replicates: 15,
            seed: 0xF16 + day,
            ..WorkloadSpec::prediction()
        };
        ff_all.push(run_day(&reg, &spec, true));
        nf_all.push(run_day(&reg, &spec, false));
    }

    // Right: 24 Virginia-only days with many cells.
    let va = reg.by_abbrev("VA").unwrap().id;
    let mut ff_va = Vec::new();
    let mut nf_va = Vec::new();
    for day in 0..24u64 {
        let spec = WorkloadSpec {
            cells: 250 + (day % 5) as u32 * 25,
            replicates: 1,
            regions: vec![va],
            seed: 0x7A + day,
            ..WorkloadSpec::calibration()
        };
        ff_va.push(run_day(&reg, &spec, true));
        nf_va.push(run_day(&reg, &spec, false));
    }

    println!("Figure 9 — remote-cluster utilization CDFs\n");
    println!("(left) all-51-region workflow days:");
    cdf_line("  FFDT-DC (deployed)", ff_all.clone());
    cdf_line("  NFDT-DC (initial)", nf_all.clone());
    println!("  [paper: FFDT-DC median 96.698%; NFDT-DC initial runs 44.237%–55.579%]\n");
    println!("(right) Virginia-only workflow days:");
    cdf_line("  FFDT-DC (deployed)", ff_va.clone());
    cdf_line("  NFDT-DC (initial)", nf_va.clone());
    println!("  [paper: FFDT-DC median 95.534%]");

    let med = |mut v: Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    println!(
        "\nheadline: FFDT-DC improves utilization over NFDT-DC by {:.1} points (all-state) \
         and {:.1} points (VA-only)",
        (med(ff_all) - med(nf_all)) * 100.0,
        (med(ff_va) - med(nf_va)) * 100.0
    );
}
