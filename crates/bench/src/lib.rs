//! Shared helpers for the benchmark harness and the `repro_*` binaries
//! (one per table/figure of the paper; see DESIGN.md §5 and
//! EXPERIMENTS.md).

use epiflow_epihiper::covid::covid19_model;
use epiflow_epihiper::{InterventionSet, SimConfig, SimResult, Simulation};
use epiflow_surveillance::{RegionRegistry, Scale};
use epiflow_synthpop::builder::RegionData;
use epiflow_synthpop::{build_region, BuildConfig};

/// Build one region at `1/per` scale with a fixed seed.
pub fn region(registry: &RegionRegistry, abbrev: &str, per: f64) -> RegionData {
    let id = registry.by_abbrev(abbrev).unwrap_or_else(|| panic!("unknown region {abbrev}")).id;
    build_region(
        registry,
        id,
        &BuildConfig { scale: Scale::one_per(per), seed: 0x5EED, ..Default::default() },
    )
}

/// Run a COVID-19 simulation on a region with the given interventions
/// and tick/partition settings. Transmissibility is raised to 0.35 so
/// scaled-down networks still produce brisk epidemics (sparser networks
/// need a higher per-contact rate for the same R).
pub fn run_covid(
    data: &RegionData,
    interventions: InterventionSet,
    ticks: u32,
    n_partitions: usize,
    seed: u64,
) -> SimResult {
    run_covid_mode(data, interventions, ticks, n_partitions, seed, false)
}

/// [`run_covid`] with an explicit scan-mode switch: `reference_scan =
/// true` runs the pre-frontier full-range scan for A/B benchmarking.
pub fn run_covid_mode(
    data: &RegionData,
    interventions: InterventionSet,
    ticks: u32,
    n_partitions: usize,
    seed: u64,
    reference_scan: bool,
) -> SimResult {
    let n = data.population.len();
    let age: Vec<u8> =
        data.population.persons.iter().map(|p| p.age_group().index() as u8).collect();
    let county: Vec<u16> = data.population.persons.iter().map(|p| p.county).collect();
    let mut sim = Simulation::new(
        &data.network,
        covid19_model(),
        age,
        county,
        interventions,
        SimConfig {
            ticks,
            seed,
            n_partitions,
            epsilon: 16,
            initial_infections: (n / 400).max(5),
            record_transitions: false,
            reference_scan,
            ..Default::default()
        },
    );
    sim.model.transmissibility = 0.35;
    sim.run()
}

/// Format a byte count human-readably.
pub fn fmt_bytes(b: u64) -> String {
    let f = b as f64;
    if f >= 1e12 {
        format!("{:.1} TB", f / 1e12)
    } else if f >= 1e9 {
        format!("{:.1} GB", f / 1e9)
    } else if f >= 1e6 {
        format!("{:.1} MB", f / 1e6)
    } else if f >= 1e3 {
        format!("{:.1} KB", f / 1e3)
    } else {
        format!("{b} B")
    }
}

/// Simple fixed-width right-aligned table printer.
pub fn print_row(cols: &[&str], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in cols.iter().zip(widths) {
        line.push_str(&format!("{c:>w$}  ", w = w));
    }
    println!("{}", line.trim_end());
}

/// An ASCII sparkline for quick curve shapes in terminal output.
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    let min = values.iter().cloned().fold(f64::MAX, f64::min);
    let span = (max - min).max(1e-12);
    values.iter().map(|v| BARS[(((v - min) / span) * 7.0).round() as usize]).collect()
}

/// Re-export `Scale` for binaries.
pub use epiflow_surveillance::Scale as BenchScale;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_bytes_scales() {
        assert_eq!(fmt_bytes(500), "500 B");
        assert_eq!(fmt_bytes(2_500_000), "2.5 MB");
        assert_eq!(fmt_bytes(3_000_000_000_000), "3.0 TB");
    }

    #[test]
    fn region_helper_builds() {
        let reg = RegionRegistry::new();
        let de = region(&reg, "DE", 20_000.0);
        assert!(de.population.len() > 10);
    }

    #[test]
    fn sparkline_monotone() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.chars().count(), 4);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
    }
}
