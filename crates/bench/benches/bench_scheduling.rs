//! Criterion: the WMP packers and the Slurm executor on the paper's
//! nightly workloads (9,180 and 15,300 tasks).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epiflow_hpcsim::schedule::{pack, pack_arrival, PackAlgo};
use epiflow_hpcsim::slurm::SlurmSim;
use epiflow_hpcsim::task::WorkloadSpec;
use epiflow_hpcsim::ClusterSpec;
use epiflow_surveillance::{RegionRegistry, Scale};

fn packers(c: &mut Criterion) {
    let reg = RegionRegistry::new();
    let mut group = c.benchmark_group("pack");
    group.sample_size(10);
    for (name, spec) in [
        ("prediction-9180", WorkloadSpec::prediction()),
        ("calibration-15300", WorkloadSpec::calibration()),
    ] {
        let tasks = spec.generate(&reg, Scale::default());
        group.bench_with_input(BenchmarkId::new("ffdt", name), &tasks, |b, tasks| {
            b.iter(|| pack(tasks, 720, |_| 16, PackAlgo::FfdtDc));
        });
        group.bench_with_input(BenchmarkId::new("nfdt_arrival", name), &tasks, |b, tasks| {
            b.iter(|| pack_arrival(tasks, 720, |_| 16, PackAlgo::NfdtDc));
        });
    }
    group.finish();
}

fn slurm_execution(c: &mut Criterion) {
    let reg = RegionRegistry::new();
    let tasks = WorkloadSpec::prediction().generate(&reg, Scale::default());
    let plan = pack(&tasks, 720, |_| 16, PackAlgo::FfdtDc);
    let order: Vec<usize> = plan.levels.iter().flat_map(|l| l.tasks.iter().copied()).collect();
    let mut group = c.benchmark_group("slurm");
    group.sample_size(10);
    group.bench_function("execute_nightly_9180", |b| {
        b.iter(|| SlurmSim::new(ClusterSpec::bridges()).run(&tasks, &order, |_| 16));
    });
    group.finish();
}

fn workload_generation(c: &mut Criterion) {
    let reg = RegionRegistry::new();
    c.bench_function("generate_workload_15300", |b| {
        b.iter(|| WorkloadSpec::calibration().generate(&reg, Scale::default()));
    });
}

criterion_group!(benches, packers, slurm_execution, workload_generation);
criterion_main!(benches);
