//! Criterion: the metapopulation model — the "cheap to run" property
//! that lets it sit inside the MCMC loop (Appendix E).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epiflow_metapop::{MetapopModel, Mixing, Scenario, SeirParams};
use epiflow_surveillance::RegionRegistry;

fn no_distancing() -> Scenario {
    Scenario {
        name: "none".into(),
        distancing_start: None,
        distancing_end: 0,
        beta_multiplier: 1.0,
    }
}

fn virginia_model(n_counties: usize) -> (MetapopModel, Vec<f64>) {
    let reg = RegionRegistry::new();
    let va = reg.by_abbrev("VA").unwrap().id;
    let counties: Vec<f64> =
        reg.counties(va).iter().take(n_counties).map(|c| c.population as f64).collect();
    let pops: Vec<u64> = counties.iter().map(|&p| p as u64).collect();
    let seeds: Vec<f64> = counties.iter().map(|p| (p / 2e5).clamp(0.5, 20.0)).collect();
    (
        MetapopModel::new(
            SeirParams::default().with_r0(2.5),
            Mixing::gravity(&pops, 0.8),
            counties,
        ),
        seeds,
    )
}

fn deterministic(c: &mut Criterion) {
    let mut group = c.benchmark_group("metapop_rk4");
    group.sample_size(20);
    for n in [10usize, 50, 133] {
        let (model, seeds) = virginia_model(n);
        group.bench_with_input(BenchmarkId::from_parameter(format!("{n}-counties")), &n, |b, _| {
            b.iter(|| model.run_deterministic(180, &seeds, &no_distancing(), 2));
        });
    }
    group.finish();
}

fn stochastic(c: &mut Criterion) {
    let (model, seeds) = virginia_model(50);
    c.bench_function("metapop_tauleap_50c_180d", |b| {
        b.iter(|| model.run_stochastic(180, &seeds, &no_distancing(), 1));
    });
}

criterion_group!(benches, deterministic, stochastic);
criterion_main!(benches);
