//! Criterion: the calibration stack — GP fit, emulator prediction, and
//! the MCMC loop (the compute profile behind the Fig. 4 workflow's
//! home-cluster stage).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epiflow_calibrate::{
    Emulator, GpModel, GpmsaCalibration, GpmsaConfig, MetropolisConfig, ParamSpace,
};

fn toy_sim(theta: &[f64], t_len: usize) -> Vec<f64> {
    (0..t_len).map(|t| theta[1] / (1.0 + (-theta[0] * (t as f64 - 25.0)).exp())).collect()
}

fn space() -> ParamSpace {
    ParamSpace::new(&[("rate", 0.05, 0.4), ("plateau", 4.0, 16.0)])
}

fn gp_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("gp_fit");
    group.sample_size(10);
    for n in [25usize, 100] {
        let sp = space();
        let x: Vec<Vec<f64>> = sp.sample_lhs(n, 1).iter().map(|p| sp.to_unit(p)).collect();
        let y: Vec<f64> = x.iter().map(|p| (p[0] * 6.0).sin() + p[1]).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| GpModel::fit(&x, &y, 7));
        });
    }
    group.finish();
}

fn emulator_predict(c: &mut Criterion) {
    let sp = space();
    let designs = sp.sample_lhs(60, 2);
    let outputs: Vec<Vec<f64>> = designs.iter().map(|d| toy_sim(d, 70)).collect();
    let em = Emulator::fit(sp, &designs, &outputs, 5, 3);
    c.bench_function("emulator_predict_70d", |b| {
        b.iter(|| em.predict(&[0.2, 9.0]));
    });
}

fn gpmsa_mcmc(c: &mut Criterion) {
    let sp = space();
    let designs = sp.sample_lhs(50, 4);
    let outputs: Vec<Vec<f64>> = designs.iter().map(|d| toy_sim(d, 50)).collect();
    let em = Emulator::fit(sp, &designs, &outputs, 5, 5);
    let observed = toy_sim(&[0.22, 9.5], 50);
    let mut group = c.benchmark_group("gpmsa");
    group.sample_size(10);
    group.bench_function("mcmc_500_iters", |b| {
        b.iter(|| {
            let cal = GpmsaCalibration::new(
                &em,
                &observed,
                GpmsaConfig {
                    mcmc: MetropolisConfig {
                        iterations: 500,
                        burn_in: 100,
                        seed: 9,
                        ..Default::default()
                    },
                    gibbs_sweeps: 1,
                    ..Default::default()
                },
            );
            cal.run()
        });
    });
    group.finish();
}

criterion_group!(benches, gp_fit, emulator_predict, gpmsa_mcmc);
criterion_main!(benches);
