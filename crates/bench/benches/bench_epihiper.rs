//! Criterion: EpiHiper tick-loop throughput vs network size
//! (the measured substrate under Fig. 7 top).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use epiflow_bench::{region, run_covid, run_covid_mode};
use epiflow_epihiper::InterventionSet;
use epiflow_surveillance::RegionRegistry;

fn bench_sizes(c: &mut Criterion) {
    let reg = RegionRegistry::new();
    let mut group = c.benchmark_group("epihiper_size");
    group.sample_size(10);
    for abbrev in ["VT", "MD", "CA"] {
        let data = region(&reg, abbrev, 2000.0);
        group.throughput(Throughput::Elements(data.network.n_edges() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!(
                "{abbrev}-{}n-{}e",
                data.network.n_nodes,
                data.network.n_edges()
            )),
            &data,
            |b, data| {
                b.iter(|| run_covid(data, InterventionSet::new(), 60, 4, 1));
            },
        );
    }
    group.finish();
}

fn bench_ticks(c: &mut Criterion) {
    let reg = RegionRegistry::new();
    let data = region(&reg, "VA", 2000.0);
    let mut group = c.benchmark_group("epihiper_horizon");
    group.sample_size(10);
    for ticks in [30u32, 120, 300] {
        group.bench_with_input(BenchmarkId::from_parameter(ticks), &ticks, |b, &t| {
            b.iter(|| run_covid(&data, InterventionSet::new(), t, 4, 1));
        });
    }
    group.finish();
}

/// Frontier vs reference scan on the same region: the A/B pair behind
/// `BENCH_engine.json` (see `repro_bench_engine` for the synthetic
/// envelope cases).
fn bench_scan_modes(c: &mut Criterion) {
    let reg = RegionRegistry::new();
    let data = region(&reg, "VA", 2000.0);
    let mut group = c.benchmark_group("epihiper_scan_mode");
    group.sample_size(10);
    for (name, reference) in [("frontier", false), ("reference", true)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &reference, |b, &r| {
            b.iter(|| run_covid_mode(&data, InterventionSet::new(), 60, 4, 1, r));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sizes, bench_ticks, bench_scan_modes);
criterion_main!(benches);
