//! Criterion: measured intervention-stack overhead (the in-process part
//! of Fig. 7 bottom; the national-scale multipliers are projected by
//! `repro_fig7` from the BSP cost model).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epiflow_bench::{region, run_covid};
use epiflow_epihiper::covid::states;
use epiflow_epihiper::interventions::{base_case, ContactTracing, TestAndIsolate};
use epiflow_epihiper::InterventionSet;
use epiflow_surveillance::RegionRegistry;

fn stacks(c: &mut Criterion) {
    let reg = RegionRegistry::new();
    let data = region(&reg, "VA", 1000.0);
    let mut group = c.benchmark_group("intervention_stack");
    group.sample_size(10);

    let base = || base_case(states::SYMPTOMATIC, 30, 40, 100, 0.5, 0.6);
    group.bench_function(BenchmarkId::from_parameter("base"), |b| {
        b.iter(|| run_covid(&data, base(), 100, 4, 1));
    });
    group.bench_function(BenchmarkId::from_parameter("base+TA"), |b| {
        b.iter(|| {
            let mut set = base();
            set.push(Box::new(TestAndIsolate {
                asymptomatic: states::ASYMPTOMATIC,
                detection: 0.3,
                duration: 14,
                start: 20,
            }));
            run_covid(&data, set, 100, 4, 1)
        });
    });
    for distance in [1u8, 2] {
        group.bench_function(BenchmarkId::from_parameter(format!("base+D{distance}CT")), |b| {
            b.iter(|| {
                let mut set = base();
                set.push(Box::new(ContactTracing {
                    symptomatic: states::SYMPTOMATIC,
                    detection: 0.5,
                    compliance: 0.8,
                    duration: 14,
                    distance,
                }));
                run_covid(&data, set, 100, 4, 1)
            });
        });
    }
    group.finish();
}

fn no_interventions_baseline(c: &mut Criterion) {
    let reg = RegionRegistry::new();
    let data = region(&reg, "VA", 1000.0);
    c.bench_function("no_interventions", |b| {
        b.iter(|| run_covid(&data, InterventionSet::new(), 100, 4, 1));
    });
}

criterion_group!(benches, stacks, no_interventions_baseline);
criterion_main!(benches);
