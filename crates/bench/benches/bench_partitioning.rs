//! Criterion: network partitioning cost (§VI: partitioning California
//! costs more than a typical simulation run, which is why partitions
//! are computed once and cached).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epiflow_bench::{region, run_covid};
use epiflow_epihiper::partition::{partition_network, Partitioning};
use epiflow_epihiper::InterventionSet;
use epiflow_surveillance::RegionRegistry;

fn partition_cost(c: &mut Criterion) {
    let reg = RegionRegistry::new();
    let mut group = c.benchmark_group("partitioning");
    group.sample_size(20);
    for abbrev in ["MD", "CA"] {
        let data = region(&reg, abbrev, 1000.0);
        for parts in [8usize, 64] {
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("{abbrev}-p{parts}")),
                &parts,
                |b, &p| {
                    b.iter(|| partition_network(&data.network, p, 16));
                },
            );
        }
    }
    group.finish();
}

fn cache_round_trip(c: &mut Criterion) {
    let reg = RegionRegistry::new();
    let data = region(&reg, "CA", 1000.0);
    let plan = partition_network(&data.network, 64, 16);
    let cached = plan.to_cache_string();
    c.bench_function("partition_cache_parse", |b| {
        b.iter(|| Partitioning::from_cache_string(&cached).unwrap());
    });
}

/// The §VI claim in bench form: one partitioning vs one simulation run.
fn partition_vs_run(c: &mut Criterion) {
    let reg = RegionRegistry::new();
    let data = region(&reg, "CA", 1000.0);
    let mut group = c.benchmark_group("partition_vs_simulation");
    group.sample_size(10);
    group.bench_function("partition_CA", |b| {
        b.iter(|| partition_network(&data.network, 168, 16));
    });
    group.bench_function("simulate_CA_300_ticks", |b| {
        b.iter(|| run_covid(&data, InterventionSet::new(), 300, 4, 1));
    });
    group.finish();
}

criterion_group!(benches, partition_cost, cache_round_trip, partition_vs_run);
criterion_main!(benches);
