//! Criterion: synthetic population + contact network construction
//! (the one-time pipeline behind Fig. 6 and the 2 TB Table-II input).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epiflow_surveillance::{RegionRegistry, Scale};
use epiflow_synthpop::ipf::ipf;
use epiflow_synthpop::{build_region, BuildConfig};

fn build_regions(c: &mut Criterion) {
    let reg = RegionRegistry::new();
    let mut group = c.benchmark_group("build_region");
    group.sample_size(10);
    for (abbrev, per) in [("VT", 2000.0), ("VA", 2000.0), ("VA", 500.0)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{abbrev}-1per{per}")),
            &per,
            |b, &per| {
                let id = reg.by_abbrev(abbrev).unwrap().id;
                b.iter(|| {
                    build_region(
                        &reg,
                        id,
                        &BuildConfig { scale: Scale::one_per(per), seed: 1, ..Default::default() },
                    )
                });
            },
        );
    }
    group.finish();
}

fn ipf_convergence(c: &mut Criterion) {
    let seed: Vec<Vec<f64>> =
        (0..5).map(|i| (0..6).map(|j| 1.0 + ((i * 7 + j * 3) % 5) as f64).collect()).collect();
    let rows = vec![100.0, 200.0, 400.0, 180.0, 120.0];
    let cols = vec![250.0, 300.0, 120.0, 130.0, 100.0, 100.0];
    c.bench_function("ipf_5x6", |b| {
        b.iter(|| ipf(&seed, &rows, &cols, 1e-8, 500));
    });
}

criterion_group!(benches, build_regions, ipf_convergence);
criterion_main!(benches);
