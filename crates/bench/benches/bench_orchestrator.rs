//! Engine event-loop overhead for the 9180-task nightly prediction DAG,
//! with and without fault injection.
//!
//! The orchestrator is a planning-level simulator, so its own overhead
//! must stay negligible next to the workload it models: one nightly
//! cycle — pack, Slurm event loop over 9180 tasks, transfers, journal —
//! should run in milliseconds. The faulty variant adds a mid-level node
//! crash, transfer drops (retried per policy), stragglers, and DB
//! exhaustion with deadline shedding enabled, exercising every fault
//! path the engine has.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epiflow_core::CombinedWorkflow;
use epiflow_hpcsim::slurm::NodeFailure;
use epiflow_orchestrator::{DeadlinePolicy, Engine, FaultPlan, LinkFaults};
use epiflow_surveillance::{RegionRegistry, Scale};
use std::hint::black_box;

fn quiet_engine() -> Engine {
    let reg = RegionRegistry::new();
    CombinedWorkflow::default().engine(&reg, Scale::default())
}

fn faulty_engine() -> Engine {
    let reg = RegionRegistry::new();
    let wf = CombinedWorkflow {
        faults: FaultPlan {
            seed: 0xC0FFEE,
            link: LinkFaults::new(0.3, 7),
            node_failures: vec![NodeFailure { at_secs: 4.0 * 3600.0, nodes: 120 }],
            db_exhaust_prob: 0.1,
            db_keep_fraction: 0.5,
            straggler_prob: 0.02,
            straggler_factor: 3.0,
        },
        deadline: DeadlinePolicy { shed_cells: true },
        ..Default::default()
    };
    wf.engine(&reg, Scale::default())
}

fn bench_nightly_dag(c: &mut Criterion) {
    let mut group = c.benchmark_group("orchestrator_nightly_9180");
    group.sample_size(10);

    let quiet = quiet_engine();
    group.bench_with_input(BenchmarkId::new("run", "quiet"), &quiet, |b, engine| {
        b.iter(|| black_box(engine.run().report.cycle_secs))
    });

    let faulty = faulty_engine();
    group.bench_with_input(BenchmarkId::new("run", "faulty"), &faulty, |b, engine| {
        b.iter(|| black_box(engine.run().report.cycle_secs))
    });

    // Checkpoint-resume from a mid-cycle journal: the replayed prefix
    // must cost (almost) nothing compared to re-executing it.
    let journal = quiet.run().journal;
    let prefix = journal.prefix(4); // through the Slurm execute step
    group.bench_with_input(BenchmarkId::new("resume", "after-execute"), &quiet, |b, engine| {
        b.iter(|| black_box(engine.resume(&prefix).report.cycle_secs))
    });

    group.finish();
}

criterion_group!(benches, bench_nightly_dag);
criterion_main!(benches);
