//! Engine event-loop overhead for the 9180-task nightly prediction DAG,
//! with and without fault injection.
//!
//! The orchestrator is a planning-level simulator, so its own overhead
//! must stay negligible next to the workload it models: one nightly
//! cycle — pack, Slurm event loop over 9180 tasks, transfers, journal —
//! should run in milliseconds. The faulty variant adds a mid-level node
//! crash, transfer drops (retried per policy), stragglers, and DB
//! exhaustion with deadline shedding enabled, exercising every fault
//! path the engine has.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epiflow_core::CombinedWorkflow;
use epiflow_hpcsim::slurm::NodeFailure;
use epiflow_hpcsim::task::WorkloadSpec;
use epiflow_orchestrator::{
    CampaignSpec, DeadlinePolicy, Engine, FailoverPolicy, FaultPlan, FaultProfile, LinkFaults,
    NightlySpec,
};
use epiflow_surveillance::{RegionRegistry, Scale};
use std::hint::black_box;

fn quiet_engine() -> Engine {
    let reg = RegionRegistry::new();
    CombinedWorkflow::default().engine(&reg, Scale::default())
}

fn faulty_engine() -> Engine {
    let reg = RegionRegistry::new();
    let wf = CombinedWorkflow {
        faults: FaultPlan {
            seed: 0xC0FFEE,
            link: LinkFaults::new(0.3, 7),
            node_failures: vec![NodeFailure { at_secs: 4.0 * 3600.0, nodes: 120 }],
            db_exhaust_prob: 0.1,
            db_keep_fraction: 0.5,
            straggler_prob: 0.02,
            straggler_factor: 3.0,
            ..FaultPlan::default()
        },
        deadline: DeadlinePolicy { shed_cells: true },
        ..Default::default()
    };
    wf.engine(&reg, Scale::default())
}

fn failover_engine() -> Engine {
    let reg = RegionRegistry::new();
    let mut wf = CombinedWorkflow {
        faults: FaultPlan {
            seed: 0xC0FFEE,
            // Total remote loss 2 h into the window: the whole night
            // re-plans onto the home cluster.
            node_failures: vec![NodeFailure { at_secs: 2.0 * 3600.0, nodes: 720 }],
            ..FaultPlan::default()
        },
        deadline: DeadlinePolicy { shed_cells: true },
        failover: FailoverPolicy::on(),
        ..Default::default()
    };
    // The 50-node home cluster cannot absorb the full 9180-task night;
    // bench the failover path on the workload it can carry.
    wf.workload = WorkloadSpec { cells: 2, replicates: 2, ..WorkloadSpec::prediction() };
    wf.engine(&reg, Scale::default())
}

fn bench_nightly_dag(c: &mut Criterion) {
    let mut group = c.benchmark_group("orchestrator_nightly_9180");
    group.sample_size(10);

    let quiet = quiet_engine();
    group.bench_with_input(BenchmarkId::new("run", "quiet"), &quiet, |b, engine| {
        b.iter(|| black_box(engine.run().report.cycle_secs))
    });

    let faulty = faulty_engine();
    group.bench_with_input(BenchmarkId::new("run", "faulty"), &faulty, |b, engine| {
        b.iter(|| black_box(engine.run().report.cycle_secs))
    });

    let failover = failover_engine();
    group.bench_with_input(BenchmarkId::new("run", "failover"), &failover, |b, engine| {
        b.iter(|| black_box(engine.run().report.cycle_secs))
    });

    // Checkpoint-resume from a mid-cycle journal: the replayed prefix
    // must cost (almost) nothing compared to re-executing it.
    let journal = quiet.run().journal;
    let prefix = journal.prefix(4); // through the Slurm execute step
    group.bench_with_input(BenchmarkId::new("resume", "after-execute"), &quiet, |b, engine| {
        b.iter(|| black_box(engine.resume(&prefix).report.cycle_secs))
    });

    group.finish();
}

fn bench_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("orchestrator_campaign");
    group.sample_size(10);

    // A 3-intensity × 4-night sweep of the 204-task night with failover
    // on — the rayon fan-out path the chaos harness uses.
    let reg = RegionRegistry::new();
    let wf = CombinedWorkflow {
        workload: WorkloadSpec { cells: 2, replicates: 2, ..WorkloadSpec::prediction() },
        ..Default::default()
    };
    let engine = wf.engine(&reg, Scale::default());
    let spec = CampaignSpec {
        nightly: NightlySpec { failover: FailoverPolicy::on(), ..NightlySpec::default() },
        tasks: engine.env.tasks.clone(),
        region_rows: engine.env.region_rows.clone(),
        deadline: DeadlinePolicy { shed_cells: true },
        intensities: vec![0.0, 0.5, 1.0],
        nights_per_intensity: 4,
        base_seed: 99,
        profile: FaultProfile::Mixed,
    };
    group.bench_with_input(BenchmarkId::new("run", "3x4-nights"), &spec, |b, spec| {
        b.iter(|| black_box(spec.run().per_intensity.len()))
    });

    group.finish();
}

criterion_group!(benches, bench_nightly_dag, bench_campaign);
criterion_main!(benches);
