//! Surveillance data layer: the 51-region registry (50 US states + DC),
//! county structure, confirmed-case time series, and a ground-truth
//! generator standing in for the NYT / JHU / UVA dashboard feeds the
//! paper calibrates against.
//!
//! The paper's workflows consume county-level daily confirmed case counts
//! for "over 3000 counties" starting 2020-01-21. We cannot ship that
//! proprietary-pipeline-adjacent data, so [`groundtruth`] synthesizes it:
//! a hidden-parameter epidemic process per county plus a realistic
//! observation model (reporting delay, under-ascertainment, weekday
//! effects, negative-binomial noise). Because the generating parameters
//! are known, integration tests can verify that calibration *recovers*
//! them — a check the real system could never run.

pub mod casedata;
pub mod groundtruth;
pub mod regions;

pub use casedata::{CaseSeries, CountySeries, RegionCases};
pub use groundtruth::{GroundTruth, GroundTruthConfig};
pub use regions::{County, Region, RegionId, RegionRegistry, Scale, SizeCategory};
