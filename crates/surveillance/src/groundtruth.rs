//! Synthetic ground-truth generator.
//!
//! Stands in for the confirmed-case feeds (NYT, JHU, UVA dashboard) the
//! paper calibrates against. Each county runs a hidden-parameter discrete
//! renewal epidemic; an observation model then produces the reported
//! series with the pathologies the paper highlights in Fig. 14
//! ("incidence curves are highly noisy and often time-delayed"):
//!
//! * under-ascertainment (only a fraction of infections are confirmed),
//! * a discrete reporting delay kernel,
//! * multiplicative weekday effects (weekend dips),
//! * negative-binomial-style overdispersed count noise.
//!
//! Because the generator's parameters are known, calibration code can be
//! validated against recoverable truth.

use crate::casedata::{CaseSeries, CountySeries, RegionCases};
use crate::regions::{RegionId, RegionRegistry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Gamma};
use serde::{Deserialize, Serialize};

/// Hidden epidemic + observation parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GroundTruthConfig {
    /// Basic reproduction number before any intervention.
    pub r0: f64,
    /// Day the stay-at-home-like suppression begins.
    pub intervention_day: usize,
    /// Multiplier on transmission after `intervention_day` (e.g. 0.4).
    pub intervention_effect: f64,
    /// Fraction of infections that are eventually confirmed.
    pub ascertainment: f64,
    /// Mean reporting delay in days.
    pub report_delay_mean: f64,
    /// Weekend reporting multiplier (< 1 ⇒ weekend dip).
    pub weekend_factor: f64,
    /// Negative-binomial-like dispersion: variance = mean·(1 + mean/k).
    /// Larger k ⇒ closer to Poisson.
    pub dispersion_k: f64,
    /// Number of days to generate.
    pub days: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GroundTruthConfig {
    fn default() -> Self {
        GroundTruthConfig {
            r0: 2.5,
            intervention_day: 60,
            intervention_effect: 0.45,
            ascertainment: 0.25,
            report_delay_mean: 5.0,
            weekend_factor: 0.7,
            dispersion_k: 10.0,
            days: 200,
            seed: 20200121,
        }
    }
}

/// Ground truth for the whole country: true infections plus the observed
/// (noisy) confirmed-case series per county.
#[derive(Clone, Debug)]
pub struct GroundTruth {
    pub config: GroundTruthConfig,
    /// Per-region observed case data.
    pub observed: Vec<RegionCases>,
    /// Per-region true (latent) daily infection counts, state level.
    pub true_infections: Vec<CaseSeries>,
}

/// Discretized generation-interval kernel (mean ≈ 6.5 d, COVID-like),
/// normalized to sum to 1.
fn generation_kernel() -> Vec<f64> {
    // Gamma(shape=2.8, scale=2.3) discretized on days 1..=14.
    let shape = 2.8;
    let scale = 2.3;
    let pdf = |x: f64| {
        // Unnormalized gamma pdf; constant cancels on normalization.
        x.powf(shape - 1.0) * (-x / scale).exp()
    };
    let mut k: Vec<f64> = (1..=14).map(|d| pdf(d as f64)).collect();
    let s: f64 = k.iter().sum();
    for v in &mut k {
        *v /= s;
    }
    k
}

/// Discretized reporting-delay kernel with the given mean, on days 0..=13.
fn delay_kernel(mean: f64) -> Vec<f64> {
    // Geometric-ish decay matched to the mean: p(d) ∝ q^d with mean
    // q/(1-q) = mean ⇒ q = mean/(1+mean).
    let q = mean / (1.0 + mean);
    let mut k: Vec<f64> = (0..14).map(|d| q.powi(d)).collect();
    let s: f64 = k.iter().sum();
    for v in &mut k {
        *v /= s;
    }
    k
}

impl GroundTruth {
    /// Generate ground truth for every region in the registry.
    pub fn generate(registry: &RegionRegistry, config: &GroundTruthConfig) -> Self {
        let gen_kernel = generation_kernel();
        let del_kernel = delay_kernel(config.report_delay_mean);
        let mut observed = Vec::with_capacity(registry.len());
        let mut true_infections = Vec::with_capacity(registry.len());

        for region in registry.regions() {
            let mut rng = StdRng::seed_from_u64(
                config.seed ^ (region.id as u64).wrapping_mul(0x9E3779B97F4A7C15),
            );
            let mut counties = Vec::with_capacity(region.n_counties);
            let mut state_true = CaseSeries::default();

            for county in registry.counties(region.id) {
                let (truth, obs) =
                    simulate_county(county.population, config, &gen_kernel, &del_kernel, &mut rng);
                state_true = state_true.add(&truth);
                counties.push(CountySeries { fips: county.fips, series: obs });
            }
            observed.push(RegionCases { region: region.id, counties });
            true_infections.push(state_true);
        }

        GroundTruth { config: config.clone(), observed, true_infections }
    }

    /// Observed cases for one region.
    pub fn region(&self, id: RegionId) -> &RegionCases {
        &self.observed[id]
    }

    /// State-level observed cumulative curve for one region.
    pub fn state_cumulative(&self, id: RegionId) -> Vec<f64> {
        self.observed[id].state_series().cumulative()
    }

    /// Count of counties nationwide with ≥ 1 reported case (the paper
    /// reports 2772 of 3000+ as of 2020-04-22).
    pub fn counties_with_cases(&self) -> usize {
        self.observed.iter().map(|r| r.counties_with_cases()).sum()
    }
}

/// Simulate one county: renewal epidemic + observation model.
fn simulate_county(
    population: u64,
    config: &GroundTruthConfig,
    gen_kernel: &[f64],
    del_kernel: &[f64],
    rng: &mut StdRng,
) -> (CaseSeries, CaseSeries) {
    let n = population as f64;
    let days = config.days;
    let mut infections = vec![0.0f64; days];

    // Seeding: bigger counties are hit earlier and harder, mirroring the
    // real metro-first spread. Import day ~ inversely related to log pop.
    let import_day = (60.0 - 3.5 * n.max(10.0).ln()).clamp(5.0, 80.0) as usize;
    let import_size = (n / 100_000.0).clamp(0.2, 10.0);

    let mut susceptible = n;
    for t in 0..days {
        // Importation pulse over three days.
        let mut force = 0.0;
        if t >= import_day && t < import_day + 3 {
            force += import_size * rng.random_range(0.5..1.5);
        }
        // Renewal: force = R_t Σ g_s I_{t-s}.
        let rt = if t >= config.intervention_day {
            config.r0 * config.intervention_effect
        } else {
            config.r0
        };
        let mut conv = 0.0;
        for (s, g) in gen_kernel.iter().enumerate() {
            let lag = s + 1;
            if lag <= t {
                conv += g * infections[t - lag];
            }
        }
        force += rt * conv;
        // Susceptible depletion + mild stochasticity via gamma multiplier.
        let depletion = (susceptible / n).max(0.0);
        let noise = Gamma::new(20.0f64, 1.0 / 20.0).expect("valid gamma").sample(rng);
        let new_inf = (force * depletion * noise).min(susceptible);
        infections[t] = new_inf;
        susceptible -= new_inf;
    }

    // Observation model.
    let mut expected = vec![0.0f64; days];
    for t in 0..days {
        let inf = infections[t] * config.ascertainment;
        if inf <= 0.0 {
            continue;
        }
        for (d, w) in del_kernel.iter().enumerate() {
            if t + d < days {
                expected[t + d] += inf * w;
            }
        }
    }
    let mut reported = vec![0.0f64; days];
    for t in 0..days {
        let weekday = t % 7;
        let wk = if weekday == 5 || weekday == 6 { config.weekend_factor } else { 1.0 };
        let mu = expected[t] * wk;
        reported[t] = negbin_like(mu, config.dispersion_k, rng);
    }

    (CaseSeries::from_daily(infections), CaseSeries::from_daily(reported))
}

/// Overdispersed count draw with mean `mu` and variance `mu(1 + mu/k)`,
/// via the gamma-Poisson mixture (Poisson approximated by a rounded
/// normal above 30 for speed — indistinguishable at those counts).
fn negbin_like(mu: f64, k: f64, rng: &mut StdRng) -> f64 {
    if mu <= 0.0 {
        return 0.0;
    }
    let lambda = mu * Gamma::new(k, 1.0 / k).expect("valid gamma").sample(rng);
    if lambda < 30.0 {
        // Knuth Poisson.
        let l = (-lambda).exp();
        let mut kk = 0u32;
        let mut p = 1.0;
        loop {
            p *= rng.random_range(0.0..1.0);
            if p <= l {
                break;
            }
            kk += 1;
            if kk > 10_000 {
                break;
            }
        }
        kk as f64
    } else {
        let z: f64 = rand_distr::StandardNormal.sample(rng);
        (lambda + lambda.sqrt() * z).round().max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_registry_truth(days: usize) -> GroundTruth {
        let reg = RegionRegistry::new();
        let cfg = GroundTruthConfig { days, ..Default::default() };
        GroundTruth::generate(&reg, &cfg)
    }

    #[test]
    fn generates_all_regions_and_counties() {
        let gt = small_registry_truth(120);
        assert_eq!(gt.observed.len(), 51);
        let total: usize = gt.observed.iter().map(|r| r.counties.len()).sum();
        assert_eq!(total, 3140);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let reg = RegionRegistry::new();
        let cfg = GroundTruthConfig { days: 90, ..Default::default() };
        let a = GroundTruth::generate(&reg, &cfg);
        let b = GroundTruth::generate(&reg, &cfg);
        assert_eq!(a.state_cumulative(0), b.state_cumulative(0));
    }

    #[test]
    fn epidemic_actually_happens() {
        let gt = small_registry_truth(150);
        let reg = RegionRegistry::new();
        let ca = reg.by_abbrev("CA").unwrap().id;
        let total = gt.observed[ca].state_series().total();
        assert!(total > 1000.0, "CA should have a real outbreak, got {total}");
    }

    #[test]
    fn most_counties_report_cases() {
        let gt = small_registry_truth(200);
        let with = gt.counties_with_cases();
        // Paper: 2772 / 3000+ by late April. We expect the same order.
        assert!(with > 2200, "counties with cases: {with}");
    }

    #[test]
    fn intervention_bends_the_curve() {
        let reg = RegionRegistry::new();
        let strong =
            GroundTruthConfig { days: 160, intervention_effect: 0.3, ..Default::default() };
        let none = GroundTruthConfig { days: 160, intervention_effect: 1.0, ..Default::default() };
        let a = GroundTruth::generate(&reg, &strong);
        let b = GroundTruth::generate(&reg, &none);
        let ny = reg.by_abbrev("NY").unwrap().id;
        let ta = a.true_infections[ny].total();
        let tb = b.true_infections[ny].total();
        assert!(tb > ta * 1.5, "no-intervention {tb} vs intervention {ta}");
    }

    #[test]
    fn bigger_counties_seed_earlier() {
        let gt = small_registry_truth(200);
        let reg = RegionRegistry::new();
        let tx = reg.by_abbrev("TX").unwrap().id;
        let cases = &gt.observed[tx];
        let first_day = |s: &CaseSeries| s.daily.iter().position(|&x| x > 0.0);
        let big = first_day(&cases.counties[0].series);
        let small = first_day(&cases.counties[cases.counties.len() - 1].series);
        match (big, small) {
            (Some(b), Some(s)) => assert!(b <= s, "metro county first case {b} vs rural {s}"),
            (Some(_), None) => {} // rural county never reported: fine
            _ => panic!("largest county must report cases"),
        }
    }

    #[test]
    fn weekend_dip_visible_in_expected_counts() {
        // With strong weekend factor and high counts, the weekday mean
        // should exceed the weekend mean.
        let reg = RegionRegistry::new();
        let cfg = GroundTruthConfig { days: 200, weekend_factor: 0.4, ..Default::default() };
        let gt = GroundTruth::generate(&reg, &cfg);
        let ca = reg.by_abbrev("CA").unwrap().id;
        let s = gt.observed[ca].state_series();
        let mut weekday_sum = 0.0;
        let mut weekday_n = 0.0;
        let mut weekend_sum = 0.0;
        let mut weekend_n = 0.0;
        for (t, &v) in s.daily.iter().enumerate().skip(60) {
            if t % 7 == 5 || t % 7 == 6 {
                weekend_sum += v;
                weekend_n += 1.0;
            } else {
                weekday_sum += v;
                weekday_n += 1.0;
            }
        }
        assert!(weekday_sum / weekday_n > weekend_sum / weekend_n);
    }

    #[test]
    fn negbin_mean_tracks_mu() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 3000;
        let mu = 50.0;
        let mean: f64 = (0..n).map(|_| negbin_like(mu, 10.0, &mut rng)).sum::<f64>() / n as f64;
        assert!((mean - mu).abs() < 3.0, "sample mean {mean}");
    }

    #[test]
    fn kernels_normalized() {
        let g = generation_kernel();
        assert!((g.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        let d = delay_kernel(5.0);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Generation interval mean in a plausible range (4–9 days).
        let mean: f64 = g.iter().enumerate().map(|(i, w)| (i + 1) as f64 * w).sum();
        assert!((4.0..9.0).contains(&mean), "gen interval mean {mean}");
    }
}
