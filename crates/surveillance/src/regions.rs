//! The 51 regions (50 US states + DC) with 2020 populations and county
//! counts, plus the scaling convention mapping real populations to
//! simulated node counts.
//!
//! The paper partitions the US network "across all 50 states and
//! Washington DC" (≈300M nodes, 7.9B edges, 3140 counties). Region sizes
//! drive everything downstream: network sizes (Fig. 6), per-region job
//! sizing (small/medium/large = 2/4/6 nodes, §VI), runtime variance
//! (Fig. 8), and memory footprints (Fig. 10).

use serde::{Deserialize, Serialize};

/// Index of a region in the [`RegionRegistry`] (0..51).
pub type RegionId = usize;

/// Node-count scale: simulated persons = real population × `factor`.
///
/// The default 1/2000 gives ≈165k simulated persons for the whole US —
/// large enough to show every scaling phenomenon, small enough to sweep
/// nightly-workflow-sized experiments on one machine.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scale {
    /// Multiplicative factor applied to real population counts.
    pub factor: f64,
}

impl Scale {
    /// Scale by `1/denominator`.
    pub fn one_per(denominator: f64) -> Self {
        assert!(denominator > 0.0, "scale denominator must be positive");
        Scale { factor: 1.0 / denominator }
    }

    /// Apply to a real-world count, with a floor of 1.
    pub fn apply(&self, real: u64) -> usize {
        ((real as f64 * self.factor).round() as usize).max(1)
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::one_per(2000.0)
    }
}

/// Node-count size category used for whole-node job allocation (§VI):
/// small regions get 2 compute nodes, medium 4, large 6.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SizeCategory {
    Small,
    Medium,
    Large,
}

impl SizeCategory {
    /// Compute nodes allocated per the paper's categorization.
    pub fn compute_nodes(&self) -> usize {
        match self {
            SizeCategory::Small => 2,
            SizeCategory::Medium => 4,
            SizeCategory::Large => 6,
        }
    }
}

/// One of the 51 regions.
///
/// `Serialize`-only: the `&'static str` name fields point into the
/// compiled-in region table, so there is nothing to deserialize into —
/// the registry is rebuilt with [`RegionRegistry::new`] instead.
#[derive(Clone, Debug, Serialize)]
pub struct Region {
    pub id: RegionId,
    /// Two-letter postal abbreviation.
    pub abbrev: &'static str,
    pub name: &'static str,
    /// Approximate 2020 census population.
    pub population: u64,
    /// Number of counties (or county-equivalents).
    pub n_counties: usize,
}

/// One county within a region.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct County {
    pub region: RegionId,
    /// Index within the region (0-based).
    pub index: usize,
    /// Synthetic FIPS-like code: `region_id * 1000 + index`.
    pub fips: u32,
    /// Approximate real population assigned to this county.
    pub population: u64,
}

/// (abbrev, name, 2020 population, county count). County counts sum to
/// 3140 (paper: "3140 counties across the USA").
const REGION_TABLE: [(&str, &str, u64, usize); 51] = [
    ("AL", "Alabama", 5_024_279, 67),
    ("AK", "Alaska", 733_391, 28),
    ("AZ", "Arizona", 7_151_502, 15),
    ("AR", "Arkansas", 3_011_524, 75),
    ("CA", "California", 39_538_223, 58),
    ("CO", "Colorado", 5_773_714, 64),
    ("CT", "Connecticut", 3_605_944, 8),
    ("DE", "Delaware", 989_948, 3),
    ("DC", "District of Columbia", 689_545, 1),
    ("FL", "Florida", 21_538_187, 67),
    ("GA", "Georgia", 10_711_908, 159),
    ("HI", "Hawaii", 1_455_271, 5),
    ("ID", "Idaho", 1_839_106, 44),
    ("IL", "Illinois", 12_812_508, 102),
    ("IN", "Indiana", 6_785_528, 92),
    ("IA", "Iowa", 3_190_369, 99),
    ("KS", "Kansas", 2_937_880, 105),
    ("KY", "Kentucky", 4_505_836, 120),
    ("LA", "Louisiana", 4_657_757, 64),
    ("ME", "Maine", 1_362_359, 16),
    ("MD", "Maryland", 6_177_224, 24),
    ("MA", "Massachusetts", 7_029_917, 14),
    ("MI", "Michigan", 10_077_331, 83),
    ("MN", "Minnesota", 5_706_494, 87),
    ("MS", "Mississippi", 2_961_279, 82),
    ("MO", "Missouri", 6_154_913, 115),
    ("MT", "Montana", 1_084_225, 56),
    ("NE", "Nebraska", 1_961_504, 93),
    ("NV", "Nevada", 3_104_614, 17),
    ("NH", "New Hampshire", 1_377_529, 10),
    ("NJ", "New Jersey", 9_288_994, 21),
    ("NM", "New Mexico", 2_117_522, 33),
    ("NY", "New York", 20_201_249, 62),
    ("NC", "North Carolina", 10_439_388, 100),
    ("ND", "North Dakota", 779_094, 53),
    ("OH", "Ohio", 11_799_448, 88),
    ("OK", "Oklahoma", 3_959_353, 77),
    ("OR", "Oregon", 4_237_256, 36),
    ("PA", "Pennsylvania", 13_002_700, 67),
    ("RI", "Rhode Island", 1_097_379, 5),
    ("SC", "South Carolina", 5_118_425, 46),
    ("SD", "South Dakota", 886_667, 65),
    ("TN", "Tennessee", 6_910_840, 95),
    ("TX", "Texas", 29_145_505, 254),
    ("UT", "Utah", 3_271_616, 29),
    ("VT", "Vermont", 643_077, 14),
    ("VA", "Virginia", 8_631_393, 133),
    ("WA", "Washington", 7_705_281, 39),
    ("WV", "West Virginia", 1_793_716, 55),
    ("WI", "Wisconsin", 5_893_718, 72),
    ("WY", "Wyoming", 576_851, 23),
];

/// Registry of all 51 regions and their counties.
#[derive(Clone, Debug)]
pub struct RegionRegistry {
    regions: Vec<Region>,
    counties: Vec<Vec<County>>,
}

impl RegionRegistry {
    /// Build the registry. County populations are a deterministic
    /// power-law split of the state population (rank-size rule,
    /// exponent ≈ 0.75), which reproduces the real skew where a few
    /// metro counties dominate each state.
    pub fn new() -> Self {
        let regions: Vec<Region> = REGION_TABLE
            .iter()
            .enumerate()
            .map(|(id, &(abbrev, name, population, n_counties))| Region {
                id,
                abbrev,
                name,
                population,
                n_counties,
            })
            .collect();

        let counties = regions
            .iter()
            .map(|r| {
                let n = r.n_counties;
                // Rank-size weights w_i = 1 / (i+1)^0.75, normalized.
                let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(0.75)).collect();
                let total: f64 = weights.iter().sum();
                let mut remaining = r.population;
                let mut out = Vec::with_capacity(n);
                for (i, w) in weights.iter().enumerate() {
                    let pop = if i + 1 == n {
                        remaining
                    } else {
                        let p = ((r.population as f64) * w / total).round() as u64;
                        let p = p.min(remaining);
                        remaining -= p;
                        p
                    };
                    out.push(County {
                        region: r.id,
                        index: i,
                        fips: (r.id as u32) * 1000 + i as u32,
                        population: pop,
                    });
                }
                out
            })
            .collect();

        RegionRegistry { regions, counties }
    }

    /// All regions, ordered by id (alphabetical by name).
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Region count (always 51).
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Look up a region by id.
    pub fn region(&self, id: RegionId) -> &Region {
        &self.regions[id]
    }

    /// Look up by postal abbreviation.
    pub fn by_abbrev(&self, abbrev: &str) -> Option<&Region> {
        self.regions.iter().find(|r| r.abbrev == abbrev)
    }

    /// Counties of a region.
    pub fn counties(&self, id: RegionId) -> &[County] {
        &self.counties[id]
    }

    /// Total county count across all regions.
    pub fn total_counties(&self) -> usize {
        self.counties.iter().map(|c| c.len()).sum()
    }

    /// Total US population.
    pub fn total_population(&self) -> u64 {
        self.regions.iter().map(|r| r.population).sum()
    }

    /// Simulated node count for a region at the given scale.
    pub fn node_count(&self, id: RegionId, scale: Scale) -> usize {
        scale.apply(self.regions[id].population)
    }

    /// The paper's small/medium/large categorization by network size.
    /// Thresholds chosen so the category counts are balanced like the
    /// deployment's: small < 2M people, large > 9M.
    pub fn size_category(&self, id: RegionId) -> SizeCategory {
        let pop = self.regions[id].population;
        if pop < 2_000_000 {
            SizeCategory::Small
        } else if pop <= 9_000_000 {
            SizeCategory::Medium
        } else {
            SizeCategory::Large
        }
    }
}

impl Default for RegionRegistry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_51_regions() {
        let reg = RegionRegistry::new();
        assert_eq!(reg.len(), 51);
    }

    #[test]
    fn county_total_is_3140() {
        let reg = RegionRegistry::new();
        assert_eq!(reg.total_counties(), 3140);
    }

    #[test]
    fn county_populations_sum_to_state() {
        let reg = RegionRegistry::new();
        for r in reg.regions() {
            let total: u64 = reg.counties(r.id).iter().map(|c| c.population).sum();
            assert_eq!(total, r.population, "county populations must partition {}", r.abbrev);
        }
    }

    #[test]
    fn counties_are_rank_ordered() {
        let reg = RegionRegistry::new();
        let va = reg.by_abbrev("VA").unwrap();
        let cs = reg.counties(va.id);
        // First county is the biggest (power-law head).
        assert!(cs[0].population > cs[cs.len() - 1].population);
        assert_eq!(cs.len(), 133);
    }

    #[test]
    fn lookup_by_abbrev() {
        let reg = RegionRegistry::new();
        assert_eq!(reg.by_abbrev("CA").unwrap().name, "California");
        assert_eq!(reg.by_abbrev("DC").unwrap().n_counties, 1);
        assert!(reg.by_abbrev("XX").is_none());
    }

    #[test]
    fn total_population_near_us_2020() {
        let reg = RegionRegistry::new();
        let t = reg.total_population();
        // 2020 apportionment population ≈ 331.4M.
        assert!(t > 330_000_000 && t < 333_000_000, "total {t}");
    }

    #[test]
    fn scale_default_gives_compact_networks() {
        let reg = RegionRegistry::new();
        let scale = Scale::default();
        let ca = reg.by_abbrev("CA").unwrap();
        let n = reg.node_count(ca.id, scale);
        assert!((19_000..21_000).contains(&n), "CA nodes {n}");
        // Smallest state still has at least a hamlet.
        let wy = reg.by_abbrev("WY").unwrap();
        assert!(reg.node_count(wy.id, scale) >= 250);
    }

    #[test]
    fn scale_floor_is_one() {
        assert_eq!(Scale::one_per(1e12).apply(5), 1);
    }

    #[test]
    fn size_categories_cover_expected_states() {
        let reg = RegionRegistry::new();
        let cat = |a: &str| reg.size_category(reg.by_abbrev(a).unwrap().id);
        assert_eq!(cat("WY"), SizeCategory::Small);
        assert_eq!(cat("VA"), SizeCategory::Medium);
        assert_eq!(cat("CA"), SizeCategory::Large);
        assert_eq!(cat("TX"), SizeCategory::Large);
        // All three categories are populated.
        let mut counts = [0usize; 3];
        for r in reg.regions() {
            match reg.size_category(r.id) {
                SizeCategory::Small => counts[0] += 1,
                SizeCategory::Medium => counts[1] += 1,
                SizeCategory::Large => counts[2] += 1,
            }
        }
        assert!(counts.iter().all(|&c| c > 5), "category counts {counts:?}");
    }

    #[test]
    fn node_allocation_follows_category() {
        assert_eq!(SizeCategory::Small.compute_nodes(), 2);
        assert_eq!(SizeCategory::Medium.compute_nodes(), 4);
        assert_eq!(SizeCategory::Large.compute_nodes(), 6);
    }

    #[test]
    fn fips_codes_unique() {
        let reg = RegionRegistry::new();
        let mut seen = std::collections::HashSet::new();
        for r in reg.regions() {
            for c in reg.counties(r.id) {
                assert!(seen.insert(c.fips), "duplicate fips {}", c.fips);
            }
        }
        assert_eq!(seen.len(), 3140);
    }
}
