//! Confirmed-case time series containers and transforms.
//!
//! Mirrors the shape of the feeds the paper ingests: county-level daily
//! confirmed case counts, rolled up to state level for calibration
//! (Figs. 13–14).

use crate::regions::RegionId;
use serde::{Deserialize, Serialize};

/// A daily case-count time series. Day 0 is the epoch of the study
/// (2020-01-21 in the paper).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CaseSeries {
    /// New confirmed cases per day.
    pub daily: Vec<f64>,
}

impl CaseSeries {
    /// Construct from daily incidence.
    pub fn from_daily(daily: Vec<f64>) -> Self {
        CaseSeries { daily }
    }

    /// Construct from a cumulative series (differences, clamped at 0 to
    /// absorb the negative revisions real feeds contain).
    pub fn from_cumulative(cum: &[f64]) -> Self {
        let mut daily = Vec::with_capacity(cum.len());
        let mut prev = 0.0;
        for &c in cum {
            daily.push((c - prev).max(0.0));
            prev = c;
        }
        CaseSeries { daily }
    }

    /// Length in days.
    pub fn len(&self) -> usize {
        self.daily.len()
    }

    /// True when no days are recorded.
    pub fn is_empty(&self) -> bool {
        self.daily.is_empty()
    }

    /// Cumulative counts.
    pub fn cumulative(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.daily.len());
        let mut acc = 0.0;
        for &d in &self.daily {
            acc += d;
            out.push(acc);
        }
        out
    }

    /// Total cases over the whole series.
    pub fn total(&self) -> f64 {
        self.daily.iter().sum()
    }

    /// Centered 7-day moving average (window shrinks at the edges), the
    /// standard smoothing for weekday reporting artifacts.
    pub fn smooth7(&self) -> CaseSeries {
        let n = self.daily.len();
        let mut out = vec![0.0; n];
        for (i, o) in out.iter_mut().enumerate() {
            let lo = i.saturating_sub(3);
            let hi = (i + 3).min(n.saturating_sub(1));
            let w = &self.daily[lo..=hi];
            *o = w.iter().sum::<f64>() / w.len() as f64;
        }
        CaseSeries { daily: out }
    }

    /// Element-wise sum of two series; the shorter one is zero-extended.
    pub fn add(&self, other: &CaseSeries) -> CaseSeries {
        let n = self.daily.len().max(other.daily.len());
        let mut out = vec![0.0; n];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.daily.get(i).copied().unwrap_or(0.0)
                + other.daily.get(i).copied().unwrap_or(0.0);
        }
        CaseSeries { daily: out }
    }

    /// Truncate to the first `days` days (no-op if already shorter).
    pub fn truncate(&self, days: usize) -> CaseSeries {
        CaseSeries { daily: self.daily.iter().take(days).copied().collect() }
    }

    /// Natural log of (cumulative + 1), the transform the paper's
    /// calibration applies ("logged reported case counts").
    pub fn log_cumulative(&self) -> Vec<f64> {
        self.cumulative().iter().map(|c| (c + 1.0).ln()).collect()
    }
}

/// Case series for one county.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CountySeries {
    pub fips: u32,
    pub series: CaseSeries,
}

/// All county series of one region, with a state-level rollup.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RegionCases {
    pub region: RegionId,
    pub counties: Vec<CountySeries>,
}

impl RegionCases {
    /// State-level rollup: sum of county curves (as in Fig. 13: "each
    /// state-level cumulative curve is obtained by summing its underlying
    /// county curves").
    pub fn state_series(&self) -> CaseSeries {
        let mut acc = CaseSeries::default();
        for c in &self.counties {
            acc = acc.add(&c.series);
        }
        acc
    }

    /// Number of counties with at least one recorded case.
    pub fn counties_with_cases(&self) -> usize {
        self.counties.iter().filter(|c| c.series.total() > 0.0).count()
    }

    /// Longest series length across counties.
    pub fn days(&self) -> usize {
        self.counties.iter().map(|c| c.series.len()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cumulative_round_trip() {
        let s = CaseSeries::from_daily(vec![1.0, 2.0, 0.0, 3.0]);
        let cum = s.cumulative();
        assert_eq!(cum, vec![1.0, 3.0, 3.0, 6.0]);
        let back = CaseSeries::from_cumulative(&cum);
        assert_eq!(back, s);
    }

    #[test]
    fn from_cumulative_clamps_revisions() {
        // A downward revision (8 -> 6) must not create negative incidence.
        let s = CaseSeries::from_cumulative(&[5.0, 8.0, 6.0, 9.0]);
        assert_eq!(s.daily, vec![5.0, 3.0, 0.0, 3.0]);
    }

    #[test]
    fn smooth7_preserves_constant_series() {
        let s = CaseSeries::from_daily(vec![4.0; 20]);
        let sm = s.smooth7();
        assert!(sm.daily.iter().all(|&x| (x - 4.0).abs() < 1e-12));
    }

    #[test]
    fn smooth7_damps_weekday_sawtooth() {
        // Period-7 sawtooth: raw variance is large, smoothed is ~0.
        let daily: Vec<f64> = (0..28).map(|i| if i % 7 == 0 { 70.0 } else { 0.0 }).collect();
        let s = CaseSeries::from_daily(daily);
        let sm = s.smooth7();
        let mid = &sm.daily[3..25];
        let spread = mid.iter().cloned().fold(f64::MIN, f64::max)
            - mid.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 1.0, "smoothed spread {spread}");
    }

    #[test]
    fn add_zero_extends() {
        let a = CaseSeries::from_daily(vec![1.0, 1.0]);
        let b = CaseSeries::from_daily(vec![1.0, 1.0, 1.0, 1.0]);
        assert_eq!(a.add(&b).daily, vec![2.0, 2.0, 1.0, 1.0]);
    }

    #[test]
    fn region_rollup_sums_counties() {
        let rc = RegionCases {
            region: 0,
            counties: vec![
                CountySeries { fips: 1, series: CaseSeries::from_daily(vec![1.0, 2.0]) },
                CountySeries { fips: 2, series: CaseSeries::from_daily(vec![0.0, 5.0, 1.0]) },
                CountySeries { fips: 3, series: CaseSeries::from_daily(vec![]) },
            ],
        };
        assert_eq!(rc.state_series().daily, vec![1.0, 7.0, 1.0]);
        assert_eq!(rc.counties_with_cases(), 2);
        assert_eq!(rc.days(), 3);
    }

    #[test]
    fn log_cumulative_monotone() {
        let s = CaseSeries::from_daily(vec![2.0, 3.0, 0.0, 10.0]);
        let lc = s.log_cumulative();
        assert!(lc.windows(2).all(|w| w[1] >= w[0]));
        assert!((lc[0] - 3.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn truncate_behaviour() {
        let s = CaseSeries::from_daily(vec![1.0, 2.0, 3.0]);
        assert_eq!(s.truncate(2).daily, vec![1.0, 2.0]);
        assert_eq!(s.truncate(10).daily, vec![1.0, 2.0, 3.0]);
    }
}
