//! The metapopulation SEIR(+P, Iₐ, H, D) model and its integrators.

use crate::mixing::Mixing;
use crate::params::{Scenario, SeirParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Compartment indices within one county's state vector.
const S: usize = 0;
const E: usize = 1;
const P: usize = 2;
const IA: usize = 3;
const IS: usize = 4;
const H: usize = 5;
const R: usize = 6;
const D: usize = 7;
/// Compartments per county.
const NC: usize = 8;

/// The configured model.
#[derive(Clone, Debug)]
pub struct MetapopModel {
    pub params: SeirParams,
    pub mixing: Mixing,
    /// County populations.
    pub populations: Vec<f64>,
}

/// Time series output: `series[day][county][compartment]` plus daily new
/// symptomatic cases (the calibration observable).
#[derive(Clone, Debug)]
pub struct MetapopOutput {
    pub series: Vec<Vec<[f64; NC]>>,
    /// New symptomatic cases per day per county (P → Iₛ flux).
    pub new_cases: Vec<Vec<f64>>,
}

impl MetapopOutput {
    /// Number of days.
    pub fn days(&self) -> usize {
        self.series.len()
    }

    /// Cumulative symptomatic cases per county at the end.
    pub fn final_cumulative_cases(&self) -> Vec<f64> {
        let n = self.new_cases.first().map_or(0, |r| r.len());
        let mut acc = vec![0.0; n];
        for day in &self.new_cases {
            for (a, &x) in acc.iter_mut().zip(day) {
                *a += x;
            }
        }
        acc
    }

    /// Daily new cases summed over counties.
    pub fn state_new_cases(&self) -> Vec<f64> {
        self.new_cases.iter().map(|day| day.iter().sum()).collect()
    }

    /// County time series of one compartment (by index constant).
    fn county_series(&self, county: usize, comp: usize) -> Vec<f64> {
        self.series.iter().map(|day| day[county][comp]).collect()
    }

    /// Hospital occupancy per day, summed over counties.
    pub fn hospital_occupancy(&self) -> Vec<f64> {
        self.series.iter().map(|day| day.iter().map(|c| c[H]).sum()).collect()
    }

    /// Cumulative deaths per day, summed over counties.
    pub fn deaths(&self) -> Vec<f64> {
        self.series.iter().map(|day| day.iter().map(|c| c[D]).sum()).collect()
    }

    /// Susceptible series for a county (mostly for tests).
    pub fn susceptible(&self, county: usize) -> Vec<f64> {
        self.county_series(county, S)
    }
}

impl MetapopModel {
    /// Build a model; `populations` and the mixing matrix must agree on
    /// the county count.
    pub fn new(params: SeirParams, mixing: Mixing, populations: Vec<f64>) -> Self {
        assert_eq!(mixing.len(), populations.len(), "mixing size must match county count");
        assert!(populations.iter().all(|&p| p > 0.0), "county populations must be positive");
        MetapopModel { params, mixing, populations }
    }

    /// Force of infection per county given the current state.
    ///
    /// Effective prevalence is computed at the *destination*: residents
    /// of `i` meet, in county `j`, the weighted infectious visitors from
    /// every county.
    fn force_of_infection(&self, state: &[[f64; NC]], beta: f64) -> Vec<f64> {
        let n = self.populations.len();
        let p = &self.params;
        // Infectious pressure present in each destination county.
        let mut pressure = vec![0.0; n];
        let mut n_eff = vec![0.0; n];
        for (k, sk) in state.iter().enumerate().take(n) {
            let infectious = sk[IS] + p.rel_presymptomatic * sk[P] + p.rel_asymptomatic * sk[IA];
            let row = self.mixing.row(k);
            for j in 0..n {
                pressure[j] += row[j] * infectious;
                n_eff[j] += row[j] * self.populations[k];
            }
        }
        (0..n)
            .map(|i| {
                let row = self.mixing.row(i);
                beta * (0..n)
                    .map(|j| if n_eff[j] > 0.0 { row[j] * pressure[j] / n_eff[j] } else { 0.0 })
                    .sum::<f64>()
            })
            .collect()
    }

    /// Time derivative of the full state. Returns (d_state, new_case_rate).
    fn derivative(&self, state: &[[f64; NC]], beta: f64) -> (Vec<[f64; NC]>, Vec<f64>) {
        let p = &self.params;
        let lambda = self.force_of_infection(state, beta);
        let n = self.populations.len();
        let mut d = vec![[0.0; NC]; n];
        let mut new_cases = vec![0.0; n];
        for i in 0..n {
            let s = state[i];
            let infection = lambda[i] * s[S];
            let e_out = p.sigma * s[E];
            let to_asym = e_out * p.asymptomatic_fraction;
            let to_pre = e_out * (1.0 - p.asymptomatic_fraction);
            let p_out = p.delta * s[P];
            let ia_out = p.gamma * s[IA];
            let is_out = p.gamma * s[IS];
            let to_hosp = is_out * p.hospitalization_fraction;
            let to_recover_direct = is_out - to_hosp;
            let h_out = p.eta * s[H];
            let to_death = h_out * p.hospital_fatality;

            d[i][S] = -infection;
            d[i][E] = infection - e_out;
            d[i][P] = to_pre - p_out;
            d[i][IA] = to_asym - ia_out;
            d[i][IS] = p_out - is_out;
            d[i][H] = to_hosp - h_out;
            d[i][R] = ia_out + to_recover_direct + (h_out - to_death);
            d[i][D] = to_death;
            new_cases[i] = p_out;
        }
        (d, new_cases)
    }

    /// Initial state: everyone susceptible except `seeds[i]` initial
    /// exposed per county.
    fn initial_state(&self, seeds: &[f64]) -> Vec<[f64; NC]> {
        assert_eq!(seeds.len(), self.populations.len(), "seed per county");
        self.populations
            .iter()
            .zip(seeds)
            .map(|(&n, &e0)| {
                let e0 = e0.min(n);
                let mut c = [0.0; NC];
                c[S] = n - e0;
                c[E] = e0;
                c
            })
            .collect()
    }

    /// Deterministic RK4 run for `days` days with `steps_per_day`
    /// substeps, under `scenario`'s time-varying β.
    pub fn run_deterministic(
        &self,
        days: u32,
        seeds: &[f64],
        scenario: &Scenario,
        steps_per_day: usize,
    ) -> MetapopOutput {
        assert!(steps_per_day > 0);
        let mut state = self.initial_state(seeds);
        let n = self.populations.len();
        let h = 1.0 / steps_per_day as f64;
        let mut series = Vec::with_capacity(days as usize);
        let mut new_cases = Vec::with_capacity(days as usize);

        for day in 0..days {
            let beta = self.params.beta * scenario.multiplier(day);
            let mut day_cases = vec![0.0; n];
            for _ in 0..steps_per_day {
                // RK4 on the state; case flux integrated with the k-average.
                let (k1, c1) = self.derivative(&state, beta);
                let s2 = add_scaled(&state, &k1, h / 2.0);
                let (k2, c2) = self.derivative(&s2, beta);
                let s3 = add_scaled(&state, &k2, h / 2.0);
                let (k3, c3) = self.derivative(&s3, beta);
                let s4 = add_scaled(&state, &k3, h);
                let (k4, c4) = self.derivative(&s4, beta);
                for i in 0..n {
                    for c in 0..NC {
                        state[i][c] +=
                            h / 6.0 * (k1[i][c] + 2.0 * k2[i][c] + 2.0 * k3[i][c] + k4[i][c]);
                        state[i][c] = state[i][c].max(0.0);
                    }
                    day_cases[i] += h / 6.0 * (c1[i] + 2.0 * c2[i] + 2.0 * c3[i] + c4[i]);
                }
            }
            series.push(state.clone());
            new_cases.push(day_cases);
        }
        MetapopOutput { series, new_cases }
    }

    /// Stochastic run: daily binomial tau-leap (each flux becomes a
    /// binomial draw with the ODE's per-day hazard).
    pub fn run_stochastic(
        &self,
        days: u32,
        seeds: &[f64],
        scenario: &Scenario,
        seed: u64,
    ) -> MetapopOutput {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut state = self.initial_state(seeds);
        let n = self.populations.len();
        let p = &self.params;
        let mut series = Vec::with_capacity(days as usize);
        let mut new_cases = Vec::with_capacity(days as usize);

        let binom = |count: f64, rate: f64, rng: &mut StdRng| -> f64 {
            let count = count.max(0.0).round() as u64;
            if count == 0 {
                return 0.0;
            }
            let prob = (1.0 - (-rate).exp()).clamp(0.0, 1.0);
            if count > 10_000 {
                // Normal approximation for large counts.
                let mean = count as f64 * prob;
                let var = mean * (1.0 - prob);
                let z: f64 = rand_distr::Distribution::sample(&rand_distr::StandardNormal, rng);
                (mean + var.sqrt() * z).round().clamp(0.0, count as f64)
            } else {
                (0..count).filter(|_| rng.random_bool(prob)).count() as f64
            }
        };

        for day in 0..days {
            let beta = self.params.beta * scenario.multiplier(day);
            let lambda = self.force_of_infection(&state, beta);
            let mut day_cases = vec![0.0; n];
            for i in 0..n {
                let infections = binom(state[i][S], lambda[i], &mut rng);
                let e_out = binom(state[i][E], p.sigma, &mut rng);
                let to_asym = (e_out * p.asymptomatic_fraction).round();
                let to_pre = e_out - to_asym;
                let p_out = binom(state[i][P], p.delta, &mut rng);
                let ia_out = binom(state[i][IA], p.gamma, &mut rng);
                let is_out = binom(state[i][IS], p.gamma, &mut rng);
                let to_hosp = (is_out * p.hospitalization_fraction).round();
                let h_out = binom(state[i][H], p.eta, &mut rng);
                let to_death = (h_out * p.hospital_fatality).round();

                state[i][S] -= infections;
                state[i][E] += infections - e_out;
                state[i][P] += to_pre - p_out;
                state[i][IA] += to_asym - ia_out;
                state[i][IS] += p_out - is_out;
                state[i][H] += to_hosp - h_out;
                state[i][R] += ia_out + (is_out - to_hosp) + (h_out - to_death);
                state[i][D] += to_death;
                for v in state[i].iter_mut() {
                    *v = v.max(0.0);
                }
                day_cases[i] = p_out;
            }
            series.push(state.clone());
            new_cases.push(day_cases);
        }
        MetapopOutput { series, new_cases }
    }
}

fn add_scaled(state: &[[f64; NC]], k: &[[f64; NC]], h: f64) -> Vec<[f64; NC]> {
    state
        .iter()
        .zip(k)
        .map(|(s, d)| {
            let mut out = [0.0; NC];
            for c in 0..NC {
                out[c] = s[c] + h * d[c];
            }
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_distancing() -> Scenario {
        Scenario {
            name: "none".into(),
            distancing_start: None,
            distancing_end: 0,
            beta_multiplier: 1.0,
        }
    }

    fn two_county_model() -> MetapopModel {
        MetapopModel::new(
            SeirParams::default().with_r0(2.5),
            Mixing::gravity(&[100_000, 50_000], 0.85),
            vec![100_000.0, 50_000.0],
        )
    }

    #[test]
    fn population_is_conserved() {
        let m = two_county_model();
        let out = m.run_deterministic(120, &[10.0, 0.0], &no_distancing(), 4);
        for day in &out.series {
            let total: f64 = day.iter().flat_map(|c| c.iter()).sum();
            assert!((total - 150_000.0).abs() < 1e-4, "total {total}");
        }
    }

    #[test]
    fn epidemic_peaks_and_declines() {
        let m = two_county_model();
        let out = m.run_deterministic(250, &[10.0, 0.0], &no_distancing(), 4);
        let cases = out.state_new_cases();
        let peak_day =
            cases.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert!(peak_day > 10 && peak_day < 240, "peak at {peak_day}");
        assert!(cases[249] < cases[peak_day] / 5.0, "epidemic must wane");
    }

    #[test]
    fn r0_controls_final_size() {
        let mk = |r0: f64| {
            let m = MetapopModel::new(
                SeirParams::default().with_r0(r0),
                Mixing::isolated(1),
                vec![100_000.0],
            );
            let out = m.run_deterministic(400, &[10.0], &no_distancing(), 4);
            out.final_cumulative_cases()[0]
        };
        let low = mk(1.3);
        let high = mk(3.0);
        assert!(high > low * 1.5, "R0 3.0 ({high}) ≫ R0 1.3 ({low})");
    }

    #[test]
    fn subcritical_epidemic_dies() {
        let m = MetapopModel::new(
            SeirParams::default().with_r0(0.7),
            Mixing::isolated(1),
            vec![100_000.0],
        );
        let out = m.run_deterministic(300, &[50.0], &no_distancing(), 4);
        let total = out.final_cumulative_cases()[0];
        assert!(total < 500.0, "subcritical total {total}");
    }

    #[test]
    fn infection_spreads_between_coupled_counties() {
        let m = two_county_model();
        let out = m.run_deterministic(200, &[10.0, 0.0], &no_distancing(), 4);
        let cum = out.final_cumulative_cases();
        assert!(cum[1] > 100.0, "coupled county must catch it, got {}", cum[1]);
    }

    #[test]
    fn isolated_counties_do_not_infect_each_other() {
        let m = MetapopModel::new(
            SeirParams::default().with_r0(2.5),
            Mixing::isolated(2),
            vec![100_000.0, 50_000.0],
        );
        let out = m.run_deterministic(200, &[10.0, 0.0], &no_distancing(), 4);
        let cum = out.final_cumulative_cases();
        assert!(cum[1] < 1e-9, "isolated county infected: {}", cum[1]);
    }

    #[test]
    fn distancing_scenario_reduces_attack() {
        let m = two_county_model();
        let worst = m.run_deterministic(200, &[10.0, 5.0], &no_distancing(), 4);
        let sd = Scenario {
            name: "sd".into(),
            distancing_start: Some(20),
            distancing_end: 200,
            beta_multiplier: 0.4,
        };
        let mitigated = m.run_deterministic(200, &[10.0, 5.0], &sd, 4);
        let w: f64 = worst.final_cumulative_cases().iter().sum();
        let s: f64 = mitigated.final_cumulative_cases().iter().sum();
        assert!(s < w * 0.6, "mitigated {s} vs worst {w}");
    }

    #[test]
    fn deaths_monotone_and_bounded() {
        let m = two_county_model();
        let out = m.run_deterministic(250, &[10.0, 0.0], &no_distancing(), 4);
        let deaths = out.deaths();
        assert!(deaths.windows(2).all(|w| w[1] >= w[0] - 1e-9), "deaths must not decrease");
        let cases: f64 = out.final_cumulative_cases().iter().sum();
        assert!(*deaths.last().unwrap() < cases, "fewer deaths than cases");
        assert!(*deaths.last().unwrap() > 0.0);
    }

    #[test]
    fn hospital_occupancy_lags_cases() {
        let m = two_county_model();
        let out = m.run_deterministic(250, &[10.0, 0.0], &no_distancing(), 4);
        let cases = out.state_new_cases();
        let hosp = out.hospital_occupancy();
        let case_peak =
            cases.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        let hosp_peak =
            hosp.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert!(hosp_peak >= case_peak, "hospital peak {hosp_peak} lags case peak {case_peak}");
    }

    #[test]
    fn stochastic_mean_tracks_deterministic() {
        let m = MetapopModel::new(
            SeirParams::default().with_r0(2.5),
            Mixing::isolated(1),
            vec![50_000.0],
        );
        let det = m.run_deterministic(150, &[20.0], &no_distancing(), 4);
        let det_total = det.final_cumulative_cases()[0];
        let n_reps = 10;
        let mean_total: f64 = (0..n_reps)
            .map(|s| {
                m.run_stochastic(150, &[20.0], &no_distancing(), s).final_cumulative_cases()[0]
            })
            .sum::<f64>()
            / n_reps as f64;
        let rel = (mean_total - det_total).abs() / det_total;
        assert!(rel < 0.25, "stochastic mean {mean_total} vs ODE {det_total}");
    }

    #[test]
    fn stochastic_replicates_differ() {
        let m = two_county_model();
        let a = m.run_stochastic(100, &[10.0, 0.0], &no_distancing(), 1);
        let b = m.run_stochastic(100, &[10.0, 0.0], &no_distancing(), 2);
        assert_ne!(a.state_new_cases(), b.state_new_cases());
        // Determinism per seed.
        let a2 = m.run_stochastic(100, &[10.0, 0.0], &no_distancing(), 1);
        assert_eq!(a.state_new_cases(), a2.state_new_cases());
    }

    #[test]
    fn seeds_capped_at_population() {
        let m = MetapopModel::new(SeirParams::default(), Mixing::isolated(1), vec![100.0]);
        let out = m.run_deterministic(10, &[1e9], &no_distancing(), 2);
        let total: f64 = out.series[0].iter().flat_map(|c| c.iter()).sum();
        assert!((total - 100.0).abs() < 1e-6);
    }
}
