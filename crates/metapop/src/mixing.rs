//! County-to-county mixing (commuting) matrices.

/// A row-stochastic mixing matrix: `m[i][j]` is the fraction of county
/// `i` residents whose daytime contacts happen in county `j`.
#[derive(Clone, Debug, PartialEq)]
pub struct Mixing {
    n: usize,
    m: Vec<f64>,
}

impl Mixing {
    /// Identity mixing: everyone stays home (no inter-county coupling).
    pub fn isolated(n: usize) -> Self {
        let mut m = vec![0.0; n * n];
        for i in 0..n {
            m[i * n + i] = 1.0;
        }
        Mixing { n, m }
    }

    /// Gravity mixing built from county populations: residents stay in
    /// their county with probability `stay`, and distribute the rest
    /// over other counties ∝ population / (1 + index-distance²) — the
    /// same kernel `synthpop` uses for commute flows, so the two model
    /// families see consistent geographies.
    pub fn gravity(populations: &[u64], stay: f64) -> Self {
        let n = populations.len();
        assert!(n > 0, "mixing needs at least one county");
        assert!((0.0..=1.0).contains(&stay), "stay must be a probability");
        let mut m = vec![0.0; n * n];
        for i in 0..n {
            let mut weights = vec![0.0; n];
            let mut total = 0.0;
            for (j, &pop) in populations.iter().enumerate() {
                if i == j {
                    continue;
                }
                let d = (i as f64 - j as f64).abs();
                weights[j] = pop as f64 / (1.0 + d * d);
                total += weights[j];
            }
            for j in 0..n {
                m[i * n + j] = if i == j {
                    if total > 0.0 {
                        stay
                    } else {
                        1.0
                    }
                } else if total > 0.0 {
                    (1.0 - stay) * weights[j] / total
                } else {
                    0.0
                };
            }
        }
        Mixing { n, m }
    }

    /// Number of counties.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Entry `m[i][j]`.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.m[i * self.n + j]
    }

    /// Row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.m[i * self.n..(i + 1) * self.n]
    }

    /// Verify row-stochasticity to within `tol`.
    pub fn is_row_stochastic(&self, tol: f64) -> bool {
        (0..self.n).all(|i| (self.row(i).iter().sum::<f64>() - 1.0).abs() <= tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolated_is_identity() {
        let m = Mixing::isolated(3);
        assert!(m.is_row_stochastic(1e-12));
        assert_eq!(m.at(0, 0), 1.0);
        assert_eq!(m.at(0, 1), 0.0);
    }

    #[test]
    fn gravity_rows_sum_to_one() {
        let m = Mixing::gravity(&[100_000, 50_000, 10_000, 200_000], 0.8);
        assert!(m.is_row_stochastic(1e-12));
        for i in 0..4 {
            assert!((m.at(i, i) - 0.8).abs() < 1e-12);
        }
    }

    #[test]
    fn gravity_prefers_big_near_counties() {
        // County 1 neighbors: big county 0 vs small county 2 at equal
        // distance — more flow to 0.
        let m = Mixing::gravity(&[500_000, 100_000, 20_000], 0.7);
        assert!(m.at(1, 0) > m.at(1, 2));
    }

    #[test]
    fn single_county_stays() {
        let m = Mixing::gravity(&[1000], 0.6);
        assert_eq!(m.at(0, 0), 1.0);
        assert!(m.is_row_stochastic(1e-12));
    }
}
