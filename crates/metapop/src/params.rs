//! SEIR parameters and intervention scenarios.

use serde::{Deserialize, Serialize};

/// Disease parameters for the metapopulation model. Defaults follow the
/// early-COVID-19 estimates the paper cites (R₀ ≈ 2.5, ~5-day latent
/// period, reduced but nonzero pre/asymptomatic transmissivity).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SeirParams {
    /// Transmission rate β (per day). R₀ ≈ β · infectious duration.
    pub beta: f64,
    /// 1 / latent period (E → P or Iₐ).
    pub sigma: f64,
    /// 1 / presymptomatic period (P → Iₛ).
    pub delta: f64,
    /// 1 / infectious period (Iₛ/Iₐ → outcome).
    pub gamma: f64,
    /// Fraction of infections that stay asymptomatic.
    pub asymptomatic_fraction: f64,
    /// Relative transmissivity of presymptomatic cases.
    pub rel_presymptomatic: f64,
    /// Relative transmissivity of asymptomatic cases.
    pub rel_asymptomatic: f64,
    /// Fraction of symptomatic cases hospitalized.
    pub hospitalization_fraction: f64,
    /// 1 / hospital stay duration.
    pub eta: f64,
    /// Fraction of hospitalized cases who die.
    pub hospital_fatality: f64,
}

impl Default for SeirParams {
    fn default() -> Self {
        SeirParams {
            beta: 0.5,
            sigma: 1.0 / 4.0,
            delta: 1.0 / 2.0,
            gamma: 1.0 / 5.0,
            asymptomatic_fraction: 0.35,
            rel_presymptomatic: 0.8,
            rel_asymptomatic: 0.6,
            hospitalization_fraction: 0.06,
            eta: 1.0 / 8.0,
            hospital_fatality: 0.15,
        }
    }
}

impl SeirParams {
    /// Approximate basic reproduction number implied by these
    /// parameters: the expected transmission integrated over the
    /// presymptomatic and infectious periods, mixing symptomatic and
    /// asymptomatic paths.
    pub fn r0(&self) -> f64 {
        let symptomatic_path = (1.0 - self.asymptomatic_fraction)
            * (self.rel_presymptomatic / self.delta + 1.0 / self.gamma);
        let asymptomatic_path = self.asymptomatic_fraction * self.rel_asymptomatic / self.gamma;
        self.beta * (symptomatic_path + asymptomatic_path)
    }

    /// Scale β to hit a target R₀ (used by the paper's economic study,
    /// which calibrates "towards R₀ = 2.5").
    pub fn with_r0(mut self, target: f64) -> Self {
        assert!(target > 0.0, "target R0 must be positive");
        let current = self.r0();
        self.beta *= target / current;
        self
    }
}

/// A transmissibility-modifying scenario: the case study models a
/// worst-case (no distancing) and four intense-social-distancing
/// variants differentiated by end date and reduction level.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    pub name: String,
    /// Day intense social distancing starts (None = never).
    pub distancing_start: Option<u32>,
    /// Day it ends (inclusive start, exclusive end).
    pub distancing_end: u32,
    /// Multiplier on β while distancing (e.g. 0.5 = 50% reduction).
    pub beta_multiplier: f64,
}

impl Scenario {
    /// The case study's five scenarios, with the paper's dates mapped to
    /// day offsets from the simulation epoch (2020-01-21): March 15 ≈
    /// day 54, April 30 ≈ day 100, June 10 ≈ day 141.
    pub fn case_study_set() -> Vec<Scenario> {
        vec![
            Scenario {
                name: "worst-case".into(),
                distancing_start: None,
                distancing_end: 0,
                beta_multiplier: 1.0,
            },
            Scenario {
                name: "sd-25pct-until-apr30".into(),
                distancing_start: Some(54),
                distancing_end: 100,
                beta_multiplier: 0.75,
            },
            Scenario {
                name: "sd-50pct-until-apr30".into(),
                distancing_start: Some(54),
                distancing_end: 100,
                beta_multiplier: 0.50,
            },
            Scenario {
                name: "sd-25pct-until-jun10".into(),
                distancing_start: Some(54),
                distancing_end: 141,
                beta_multiplier: 0.75,
            },
            Scenario {
                name: "sd-50pct-until-jun10".into(),
                distancing_start: Some(54),
                distancing_end: 141,
                beta_multiplier: 0.50,
            },
        ]
    }

    /// Effective β multiplier on a given day.
    pub fn multiplier(&self, day: u32) -> f64 {
        match self.distancing_start {
            Some(start) if day >= start && day < self.distancing_end => self.beta_multiplier,
            _ => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_r0_plausible() {
        let r0 = SeirParams::default().r0();
        assert!((1.5..4.0).contains(&r0), "R0 {r0}");
    }

    #[test]
    fn with_r0_hits_target() {
        let p = SeirParams::default().with_r0(2.5);
        assert!((p.r0() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn five_case_study_scenarios() {
        let s = Scenario::case_study_set();
        assert_eq!(s.len(), 5);
        assert_eq!(s[0].multiplier(60), 1.0); // worst case never distances
        assert_eq!(s[2].multiplier(60), 0.50); // within window
        assert_eq!(s[2].multiplier(10), 1.0); // before start
        assert_eq!(s[2].multiplier(100), 1.0); // after end (exclusive)
        assert_eq!(s[4].multiplier(120), 0.50); // longer window still on
    }

    #[test]
    fn serde_round_trip() {
        let p = SeirParams::default();
        let json = serde_json::to_string(&p).unwrap();
        let back: SeirParams = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
