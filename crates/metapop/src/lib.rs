//! County-level metapopulation SEIR model (paper case study 2).
//!
//! "We adopted a combination of mechanistic metapopulation and
//! agent-based modeling frameworks … Our model represents SEIR disease
//! dynamics across counties. The disease dynamics were modified to
//! reflect the transmissivity of asymptomatic and pre-symptomatic
//! COVID-19 patients."
//!
//! Compartments per county: S, E, P (presymptomatic), Iₐ (asymptomatic),
//! Iₛ (symptomatic), H (hospitalized), R, D. Counties are coupled by a
//! row-stochastic commuting matrix. Two integrators:
//!
//! * [`model::MetapopModel::run_deterministic`] — RK4 on the ODEs; cheap
//!   enough to sit inside an MCMC loop (the paper calibrates the
//!   metapopulation model by direct simulation, Appendix E).
//! * [`model::MetapopModel::run_stochastic`] — binomial tau-leap for
//!   uncertainty bands and small-count realism.
//!
//! Scenario support mirrors the case study's factorial: a worst-case
//! (no distancing) plus intense-social-distancing scenarios with
//! configurable end dates and transmissibility reductions.

pub mod mixing;
pub mod model;
pub mod params;

pub use mixing::Mixing;
pub use model::{MetapopModel, MetapopOutput};
pub use params::{Scenario, SeirParams};
