//! Bayesian model calibration (paper Appendix E).
//!
//! Two calibration paths, exactly as the paper runs them:
//!
//! * **Agent-based models** are too expensive to simulate inside an MCMC
//!   loop, so a **Gaussian-process emulator** is fitted to a limited
//!   number of runs at Latin-hypercube design points ([`lhs`]). The
//!   multivariate output (a logged cumulative case curve) is represented
//!   in a `pη = 5` eigenvector basis ([`emulator`], Eq. 3), with one GP
//!   per basis coefficient ([`gp`]). A GPMSA-style Bayesian framework
//!   ([`gpmsa`]) then explores the posterior of the calibration
//!   parameters θ, with a kernel-basis discrepancy term δ (Eq. 5,
//!   1-d normal kernels, sd 15 days, spaced 10 days apart) and an
//!   observation-error precision, via Metropolis-within-Gibbs MCMC
//!   ([`mcmc`]).
//! * **Metapopulation models** are cheap, so calibration simulates
//!   directly inside the MCMC loop ([`direct`], Eq. 6) with Gaussian
//!   noise whose standard deviation is 20% of the daily counts.
//!
//! Following common practice (and keeping the emulator reusable across
//! calibration runs), hyperparameters of each GP are fitted by MAP with
//! the GPMSA prior families (gamma on precisions, beta on correlations)
//! rather than jointly sampled — the modularized variant of the full
//! GPMSA posterior.

pub mod direct;
pub mod emulator;
pub mod gp;
pub mod gpmsa;
pub mod lhs;
pub mod mcmc;

pub use direct::{calibrate_direct, DirectPosterior};
pub use emulator::Emulator;
pub use gp::GpModel;
pub use gpmsa::{GpmsaCalibration, GpmsaConfig, Posterior};
pub use lhs::ParamSpace;
pub use mcmc::{Chain, MetropolisConfig};
