//! Parameter spaces and Latin hypercube sampling (McKay et al. [35]).
//!
//! The paper's case study 3: "We created a design of 100 configurations
//! (prior) with the Latin hypercube sampling method."

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A box-constrained parameter space with named dimensions.
#[derive(Clone, Debug, PartialEq)]
pub struct ParamSpace {
    names: Vec<String>,
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl ParamSpace {
    /// Build from `(name, lo, hi)` triples.
    ///
    /// # Panics
    /// Panics on empty input or inverted bounds.
    pub fn new(dims: &[(&str, f64, f64)]) -> Self {
        assert!(!dims.is_empty(), "parameter space needs at least one dimension");
        for (name, lo, hi) in dims {
            assert!(lo < hi, "dimension {name}: lo {lo} must be < hi {hi}");
        }
        ParamSpace {
            names: dims.iter().map(|d| d.0.to_string()).collect(),
            lo: dims.iter().map(|d| d.1).collect(),
            hi: dims.iter().map(|d| d.2).collect(),
        }
    }

    /// Number of dimensions.
    pub fn dim(&self) -> usize {
        self.names.len()
    }

    /// Dimension names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Index of a named dimension.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Map a unit-cube point into the real box.
    pub fn to_real(&self, unit: &[f64]) -> Vec<f64> {
        assert_eq!(unit.len(), self.dim(), "to_real: dimension mismatch");
        unit.iter()
            .zip(self.lo.iter().zip(&self.hi))
            .map(|(u, (lo, hi))| lo + u.clamp(0.0, 1.0) * (hi - lo))
            .collect()
    }

    /// Map a real point into the unit cube (clamped).
    pub fn to_unit(&self, real: &[f64]) -> Vec<f64> {
        assert_eq!(real.len(), self.dim(), "to_unit: dimension mismatch");
        real.iter()
            .zip(self.lo.iter().zip(&self.hi))
            .map(|(x, (lo, hi))| ((x - lo) / (hi - lo)).clamp(0.0, 1.0))
            .collect()
    }

    /// True when the real point lies inside the box.
    pub fn contains(&self, real: &[f64]) -> bool {
        real.len() == self.dim()
            && real.iter().zip(self.lo.iter().zip(&self.hi)).all(|(x, (lo, hi))| x >= lo && x <= hi)
    }

    /// Latin hypercube sample of `n` points, returned in real
    /// coordinates. Each dimension's range is divided into `n` strata;
    /// each stratum is hit exactly once, with a uniform jitter inside.
    pub fn sample_lhs(&self, n: usize, seed: u64) -> Vec<Vec<f64>> {
        assert!(n > 0, "need at least one sample");
        let d = self.dim();
        let mut rng = StdRng::seed_from_u64(seed);
        // Per-dimension stratified permutations.
        let mut strata: Vec<Vec<usize>> = (0..d)
            .map(|_| {
                let mut idx: Vec<usize> = (0..n).collect();
                // Fisher–Yates.
                for i in (1..n).rev() {
                    let j = rng.random_range(0..=i);
                    idx.swap(i, j);
                }
                idx
            })
            .collect();
        (0..n)
            .map(|i| {
                let unit: Vec<f64> = (0..d)
                    .map(|k| {
                        let stratum = strata[k][i];
                        (stratum as f64 + rng.random_range(0.0..1.0)) / n as f64
                    })
                    .collect();
                // `strata` not consumed; silence the borrow by reborrow.
                let _ = &mut strata;
                self.to_real(&unit)
            })
            .collect()
    }

    /// Uniform random sample (for comparisons with LHS in tests/benches).
    pub fn sample_uniform(&self, n: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let unit: Vec<f64> = (0..self.dim()).map(|_| rng.random_range(0.0..1.0)).collect();
                self.to_real(&unit)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space2() -> ParamSpace {
        ParamSpace::new(&[("tau", 0.1, 0.5), ("symp", 0.3, 0.9)])
    }

    #[test]
    fn round_trip_unit_real() {
        let s = space2();
        let real = vec![0.3, 0.6];
        let unit = s.to_unit(&real);
        let back = s.to_real(&unit);
        for (a, b) in real.iter().zip(&back) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!((unit[0] - 0.5).abs() < 1e-12);
        assert!((unit[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lhs_is_stratified_in_every_dimension() {
        let s = space2();
        let n = 50;
        let pts = s.sample_lhs(n, 7);
        assert_eq!(pts.len(), n);
        for k in 0..s.dim() {
            // Each of the n strata must contain exactly one point.
            let mut hits = vec![0usize; n];
            for p in &pts {
                let u = s.to_unit(p)[k];
                let stratum = ((u * n as f64).floor() as usize).min(n - 1);
                hits[stratum] += 1;
            }
            assert!(hits.iter().all(|&h| h == 1), "dim {k}: {hits:?}");
        }
    }

    #[test]
    fn lhs_within_bounds() {
        let s = space2();
        for p in s.sample_lhs(100, 3) {
            assert!(s.contains(&p), "{p:?} out of bounds");
        }
    }

    #[test]
    fn lhs_deterministic_per_seed() {
        let s = space2();
        assert_eq!(s.sample_lhs(20, 5), s.sample_lhs(20, 5));
        assert_ne!(s.sample_lhs(20, 5), s.sample_lhs(20, 6));
    }

    #[test]
    fn lhs_beats_uniform_on_1d_coverage() {
        // Max gap between sorted projections: LHS ≤ 2/n, uniform usually
        // worse.
        let s = ParamSpace::new(&[("x", 0.0, 1.0)]);
        let n = 40;
        let gap = |pts: Vec<Vec<f64>>| {
            let mut xs: Vec<f64> = pts.into_iter().map(|p| p[0]).collect();
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            xs.windows(2).map(|w| w[1] - w[0]).fold(0.0, f64::max)
        };
        let lhs_gap = gap(s.sample_lhs(n, 11));
        assert!(lhs_gap <= 2.0 / n as f64 + 1e-9, "LHS gap {lhs_gap}");
    }

    #[test]
    fn index_lookup() {
        let s = space2();
        assert_eq!(s.index_of("symp"), Some(1));
        assert_eq!(s.index_of("nope"), None);
    }

    #[test]
    #[should_panic(expected = "lo")]
    fn rejects_inverted_bounds() {
        ParamSpace::new(&[("bad", 1.0, 0.0)]);
    }

    #[test]
    fn contains_checks_bounds_and_dim() {
        let s = space2();
        assert!(s.contains(&[0.1, 0.3]));
        assert!(!s.contains(&[0.0, 0.3]));
        assert!(!s.contains(&[0.1]));
    }
}
