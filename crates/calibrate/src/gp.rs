//! Scalar-output Gaussian-process regression with the GPMSA correlation
//! function.
//!
//! Each basis coefficient `w_k(θ)` of the emulator gets a zero-mean GP
//! prior with the paper's covariance (Eq. 4):
//!
//! ```text
//! Cov(θ, θ′) = λ_w⁻¹ · ∏_k ρ_k^{4 (θ_k − θ′_k)²}  +  λ_n⁻¹ · 1{θ = θ′}
//! ```
//!
//! where λ_w is the marginal precision, ρ_k ∈ (0, 1) the per-dimension
//! correlation, and λ_n the nugget precision "so that interpolation is
//! not necessarily enforced". Hyperparameters are fitted by MAP under
//! the GPMSA prior families (gamma on precisions, beta on ρ) using a
//! seeded random search + coordinate polish — derivative-free, robust,
//! and cheap at design sizes ≤ a few hundred.

use epiflow_linalg::{cholesky_jitter, Cholesky, Mat};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hyperparameters of one GP.
#[derive(Clone, Debug, PartialEq)]
pub struct GpHyper {
    /// Per-dimension correlation ρ_k ∈ (0, 1).
    pub rho: Vec<f64>,
    /// Marginal precision λ_w.
    pub lambda_w: f64,
    /// Nugget precision λ_n.
    pub lambda_n: f64,
}

/// A fitted GP.
#[derive(Clone, Debug)]
pub struct GpModel {
    /// Design points in the unit cube, n × d.
    x: Mat,
    /// Centered/normalized responses.
    y: Vec<f64>,
    pub hyper: GpHyper,
    chol: Cholesky,
    /// K⁻¹ y, precomputed for prediction.
    alpha: Vec<f64>,
    y_mean: f64,
    y_scale: f64,
}

/// GPMSA correlation: ∏_k ρ_k^{4 (a_k − b_k)²}.
fn correlation(a: &[f64], b: &[f64], rho: &[f64]) -> f64 {
    let mut c = 1.0;
    for ((x, y), r) in a.iter().zip(b).zip(rho) {
        let d = x - y;
        c *= r.powf(4.0 * d * d);
    }
    c
}

fn build_cov(x: &Mat, h: &GpHyper) -> Mat {
    let n = x.nrows();
    let mut k = Mat::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            let c = correlation(x.row(i), x.row(j), &h.rho) / h.lambda_w;
            k[(i, j)] = c;
            k[(j, i)] = c;
        }
        k[(i, i)] += 1.0 / h.lambda_n;
    }
    k
}

/// Log posterior (up to constants): Gaussian marginal likelihood plus
/// the GPMSA priors — λ_w ~ Γ(5, 5), λ_n ~ Γ(3, 0.3), ρ_k ~ Beta(1, 0.1)
/// (favoring ρ near 1, i.e. smooth response surfaces).
fn log_posterior(x: &Mat, y: &[f64], h: &GpHyper) -> f64 {
    let k = build_cov(x, h);
    let Ok((chol, _)) = cholesky_jitter(&k, 1e-10, 8) else {
        return f64::NEG_INFINITY;
    };
    let loglik = -0.5 * (chol.log_det() + chol.quad_form(y));
    let lp_lw = 4.0 * h.lambda_w.ln() - 5.0 * h.lambda_w;
    let lp_ln = 2.0 * h.lambda_n.ln() - 0.3 * h.lambda_n;
    let lp_rho: f64 = h
        .rho
        .iter()
        .map(|r| {
            if *r <= 0.0 || *r >= 1.0 {
                f64::NEG_INFINITY
            } else {
                // Beta(1, 0.1): density ∝ (1-r)^{-0.9}.
                -0.9 * (1.0 - r).ln()
            }
        })
        .sum();
    loglik + lp_lw + lp_ln + lp_rho
}

impl GpModel {
    /// Fit on design points `x_unit` (each in the unit cube) and
    /// responses `y`. Responses are standardized internally.
    ///
    /// # Panics
    /// Panics on empty or mismatched input.
    pub fn fit(x_unit: &[Vec<f64>], y: &[f64], seed: u64) -> GpModel {
        assert!(!x_unit.is_empty(), "gp fit: empty design");
        assert_eq!(x_unit.len(), y.len(), "gp fit: x/y length mismatch");
        let n = x_unit.len();
        let d = x_unit[0].len();
        let x = Mat::from_rows(x_unit);

        // Standardize y (zero-mean GP assumption).
        let y_mean = epiflow_linalg::mean(y);
        let y_scale = epiflow_linalg::std_dev(y).max(1e-9);
        let ys: Vec<f64> = y.iter().map(|v| (v - y_mean) / y_scale).collect();

        // MAP search: random restarts then coordinate polish.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut best = GpHyper { rho: vec![0.5; d], lambda_w: 1.0, lambda_n: 1000.0 };
        let mut best_lp = log_posterior(&x, &ys, &best);
        for _ in 0..60 {
            let cand = GpHyper {
                rho: (0..d).map(|_| rng.random_range(0.05..0.999)).collect(),
                lambda_w: rng.random_range(0.2..5.0),
                lambda_n: 10f64.powf(rng.random_range(1.0..5.0)),
            };
            let lp = log_posterior(&x, &ys, &cand);
            if lp > best_lp {
                best_lp = lp;
                best = cand;
            }
        }
        // Coordinate polish: shrink step multiplicatively.
        let mut step = 0.5;
        for _ in 0..20 {
            let mut improved = false;
            for k in 0..d {
                for dir in [-1.0, 1.0] {
                    let mut cand = best.clone();
                    cand.rho[k] = (cand.rho[k] + dir * step * 0.5).clamp(0.01, 0.999);
                    let lp = log_posterior(&x, &ys, &cand);
                    if lp > best_lp {
                        best_lp = lp;
                        best = cand;
                        improved = true;
                    }
                }
            }
            for (field, factor) in [
                (0usize, 1.0 + step),
                (0, 1.0 / (1.0 + step)),
                (1, 1.0 + step),
                (1, 1.0 / (1.0 + step)),
            ] {
                let mut cand = best.clone();
                if field == 0 {
                    cand.lambda_w = (cand.lambda_w * factor).clamp(1e-3, 1e4);
                } else {
                    cand.lambda_n = (cand.lambda_n * factor).clamp(1.0, 1e8);
                }
                let lp = log_posterior(&x, &ys, &cand);
                if lp > best_lp {
                    best_lp = lp;
                    best = cand;
                    improved = true;
                }
            }
            if !improved {
                step *= 0.5;
                if step < 1e-3 {
                    break;
                }
            }
        }

        let k = build_cov(&x, &best);
        let (chol, _) = cholesky_jitter(&k, 1e-10, 10).expect("covariance factorizes");
        let alpha = chol.solve(&ys);
        let _ = n;
        GpModel { x, y: ys, hyper: best, chol, alpha, y_mean, y_scale }
    }

    /// Number of design points.
    pub fn n_design(&self) -> usize {
        self.x.nrows()
    }

    /// Predictive mean and variance at a unit-cube point.
    pub fn predict(&self, x_star: &[f64]) -> (f64, f64) {
        assert_eq!(x_star.len(), self.x.ncols(), "predict: dimension mismatch");
        let n = self.x.nrows();
        let mut kstar = vec![0.0; n];
        for (i, ks) in kstar.iter_mut().enumerate() {
            *ks = correlation(self.x.row(i), x_star, &self.hyper.rho) / self.hyper.lambda_w;
        }
        let mean_std = epiflow_linalg::dot(&kstar, &self.alpha);
        // var = k(x*,x*) + nugget − k*ᵀ K⁻¹ k*.
        let v = self.chol.solve(&kstar);
        let prior_var = 1.0 / self.hyper.lambda_w + 1.0 / self.hyper.lambda_n;
        let var_std = (prior_var - epiflow_linalg::dot(&kstar, &v)).max(1e-12);
        (self.y_mean + self.y_scale * mean_std, self.y_scale * self.y_scale * var_std)
    }

    /// Standardized training residual RMS (in-sample fit quality;
    /// nonzero because of the nugget).
    pub fn training_rmse(&self) -> f64 {
        let n = self.x.nrows();
        let mut sq = 0.0;
        for i in 0..n {
            let (m, _) = self.predict(self.x.row(i));
            let truth = self.y_mean + self.y_scale * self.y[i];
            sq += (m - truth) * (m - truth);
        }
        (sq / n as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_1d(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect()
    }

    #[test]
    fn correlation_properties() {
        let rho = vec![0.5, 0.8];
        assert_eq!(correlation(&[0.1, 0.2], &[0.1, 0.2], &rho), 1.0);
        let near = correlation(&[0.1, 0.2], &[0.15, 0.2], &rho);
        let far = correlation(&[0.1, 0.2], &[0.9, 0.2], &rho);
        assert!(near > far);
        assert!(far > 0.0);
    }

    #[test]
    fn interpolates_smooth_function() {
        let x = grid_1d(15);
        let y: Vec<f64> = x.iter().map(|p| (2.0 * std::f64::consts::PI * p[0]).sin()).collect();
        let gp = GpModel::fit(&x, &y, 1);
        // Predict off-grid.
        for &t in &[0.12, 0.37, 0.61, 0.88] {
            let (m, _) = gp.predict(&[t]);
            let truth = (2.0 * std::f64::consts::PI * t).sin();
            assert!((m - truth).abs() < 0.12, "at {t}: {m} vs {truth}");
        }
    }

    #[test]
    fn variance_grows_away_from_data() {
        let x = grid_1d(8); // covers [0,1]
        let y: Vec<f64> = x.iter().map(|p| p[0] * 2.0).collect();
        let gp = GpModel::fit(&x, &y, 2);
        let (_, v_near) = gp.predict(&[0.5]);
        // A 2-d trick isn't available; extrapolate outside the cube.
        let (_, v_far) = gp.predict(&[3.0]);
        assert!(v_far > v_near, "far var {v_far} <= near var {v_near}");
    }

    #[test]
    fn predicts_training_points_closely() {
        let x = grid_1d(10);
        let y: Vec<f64> = x.iter().map(|p| 3.0 * p[0] * p[0] - 1.0).collect();
        let gp = GpModel::fit(&x, &y, 3);
        assert!(gp.training_rmse() < 0.1, "rmse {}", gp.training_rmse());
    }

    #[test]
    fn handles_constant_response() {
        let x = grid_1d(6);
        let y = vec![5.0; 6];
        let gp = GpModel::fit(&x, &y, 4);
        let (m, _) = gp.predict(&[0.3]);
        assert!((m - 5.0).abs() < 1e-6);
    }

    #[test]
    fn two_dimensional_anisotropy() {
        // Response depends only on dim 0; after fitting, predictions
        // should vary much more along dim 0 than dim 1.
        let mut x = Vec::new();
        for i in 0..7 {
            for j in 0..7 {
                x.push(vec![i as f64 / 6.0, j as f64 / 6.0]);
            }
        }
        let y: Vec<f64> = x.iter().map(|p| (3.0 * p[0]).exp() / 10.0).collect();
        let gp = GpModel::fit(&x, &y, 5);
        let (m00, _) = gp.predict(&[0.2, 0.5]);
        let (m10, _) = gp.predict(&[0.8, 0.5]);
        let (m01, _) = gp.predict(&[0.2, 0.9]);
        assert!((m10 - m00).abs() > 5.0 * (m01 - m00).abs());
    }

    #[test]
    fn deterministic_fit_per_seed() {
        let x = grid_1d(8);
        let y: Vec<f64> = x.iter().map(|p| p[0].cos()).collect();
        let a = GpModel::fit(&x, &y, 9);
        let b = GpModel::fit(&x, &y, 9);
        assert_eq!(a.hyper, b.hyper);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_input() {
        GpModel::fit(&[vec![0.0], vec![1.0]], &[1.0], 0);
    }
}
