//! Metropolis MCMC utilities shared by both calibration paths.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, StandardNormal};

/// Random-walk Metropolis configuration.
#[derive(Clone, Debug)]
pub struct MetropolisConfig {
    /// Total iterations.
    pub iterations: usize,
    /// Burn-in iterations discarded from the chain.
    pub burn_in: usize,
    /// Keep every `thin`-th post-burn-in sample.
    pub thin: usize,
    /// Initial per-dimension proposal standard deviation (in the unit
    /// cube).
    pub step: f64,
    /// Adapt the step size toward ~30% acceptance during burn-in.
    pub adapt: bool,
    pub seed: u64,
}

impl Default for MetropolisConfig {
    fn default() -> Self {
        MetropolisConfig {
            iterations: 4000,
            burn_in: 1000,
            thin: 2,
            step: 0.08,
            adapt: true,
            seed: 1,
        }
    }
}

/// A finished chain.
#[derive(Clone, Debug)]
pub struct Chain {
    /// Kept samples (post burn-in, thinned).
    pub samples: Vec<Vec<f64>>,
    /// Log-posterior value of each kept sample.
    pub log_posts: Vec<f64>,
    /// Overall acceptance rate.
    pub acceptance: f64,
    /// Final adapted step size.
    pub final_step: f64,
}

impl Chain {
    /// Posterior mean per dimension.
    pub fn mean(&self) -> Vec<f64> {
        let d = self.samples.first().map_or(0, |s| s.len());
        let mut m = vec![0.0; d];
        for s in &self.samples {
            for (mi, &x) in m.iter_mut().zip(s) {
                *mi += x;
            }
        }
        for mi in &mut m {
            *mi /= self.samples.len().max(1) as f64;
        }
        m
    }

    /// Posterior standard deviation per dimension.
    pub fn std_dev(&self) -> Vec<f64> {
        let mean = self.mean();
        let d = mean.len();
        let n = self.samples.len().max(2);
        let mut v = vec![0.0; d];
        for s in &self.samples {
            for k in 0..d {
                let e = s[k] - mean[k];
                v[k] += e * e;
            }
        }
        v.iter().map(|x| (x / (n - 1) as f64).sqrt()).collect()
    }

    /// Pearson correlation between two dimensions of the chain.
    pub fn correlation(&self, a: usize, b: usize) -> f64 {
        let mean = self.mean();
        let sd = self.std_dev();
        if sd[a] == 0.0 || sd[b] == 0.0 {
            return 0.0;
        }
        let cov: f64 =
            self.samples.iter().map(|s| (s[a] - mean[a]) * (s[b] - mean[b])).sum::<f64>()
                / (self.samples.len().max(2) - 1) as f64;
        cov / (sd[a] * sd[b])
    }

    /// The maximum-a-posteriori sample of the kept chain.
    pub fn map_sample(&self) -> Option<&Vec<f64>> {
        self.log_posts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN log posterior"))
            .map(|(i, _)| &self.samples[i])
    }

    /// Draw `n` samples (with replacement) from the kept chain — the
    /// "posterior configurations" handed to the prediction workflow.
    pub fn resample(&self, n: usize, seed: u64) -> Vec<Vec<f64>> {
        assert!(!self.samples.is_empty(), "resample from empty chain");
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| self.samples[rng.random_range(0..self.samples.len())].clone()).collect()
    }
}

/// Random-walk Metropolis on `[0,1]^d` with reflecting boundaries.
///
/// `log_post` evaluates the (unnormalized) log posterior at a unit-cube
/// point; return `f64::NEG_INFINITY` for invalid states.
pub fn metropolis<F>(d: usize, log_post: F, config: &MetropolisConfig) -> Chain
where
    F: Fn(&[f64]) -> f64,
{
    assert!(d > 0, "need at least one dimension");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut current: Vec<f64> = (0..d).map(|_| rng.random_range(0.25..0.75)).collect();
    let mut current_lp = log_post(&current);
    // If the start is invalid, scan for a valid one.
    let mut tries = 0;
    while !current_lp.is_finite() && tries < 200 {
        current = (0..d).map(|_| rng.random_range(0.0..1.0)).collect();
        current_lp = log_post(&current);
        tries += 1;
    }
    assert!(current_lp.is_finite(), "could not find a valid starting point");

    let mut step = config.step;
    let mut accepted = 0usize;
    let mut window_accepted = 0usize;
    let mut samples = Vec::new();
    let mut log_posts = Vec::new();

    for it in 0..config.iterations {
        let mut proposal = current.clone();
        for p in proposal.iter_mut() {
            let z: f64 = StandardNormal.sample(&mut rng);
            let mut x = *p + step * z;
            // Reflect into [0, 1].
            while !(0.0..=1.0).contains(&x) {
                if x < 0.0 {
                    x = -x;
                }
                if x > 1.0 {
                    x = 2.0 - x;
                }
            }
            *p = x;
        }
        let lp = log_post(&proposal);
        let accept = lp.is_finite()
            && (lp >= current_lp || rng.random_range(0.0..1.0f64).ln() < lp - current_lp);
        if accept {
            current = proposal;
            current_lp = lp;
            accepted += 1;
            window_accepted += 1;
        }
        // Step adaptation during burn-in (Robbins–Monro-flavored).
        if config.adapt && it < config.burn_in && (it + 1) % 50 == 0 {
            let rate = window_accepted as f64 / 50.0;
            if rate < 0.2 {
                step *= 0.8;
            } else if rate > 0.45 {
                step *= 1.25;
            }
            step = step.clamp(1e-4, 0.5);
            window_accepted = 0;
        }
        if it >= config.burn_in && (it - config.burn_in).is_multiple_of(config.thin.max(1)) {
            samples.push(current.clone());
            log_posts.push(current_lp);
        }
    }

    Chain {
        samples,
        log_posts,
        acceptance: accepted as f64 / config.iterations as f64,
        final_step: step,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Gaussian target centered at (0.6, 0.4) with sd 0.05.
    fn gaussian_target(x: &[f64]) -> f64 {
        let c = [0.6, 0.4];
        -x.iter().zip(&c).map(|(xi, ci)| (xi - ci) * (xi - ci)).sum::<f64>()
            / (2.0 * 0.05f64.powi(2))
    }

    #[test]
    fn recovers_gaussian_mean() {
        let chain = metropolis(
            2,
            gaussian_target,
            &MetropolisConfig { iterations: 8000, burn_in: 2000, ..Default::default() },
        );
        let mean = chain.mean();
        assert!((mean[0] - 0.6).abs() < 0.02, "mean {mean:?}");
        assert!((mean[1] - 0.4).abs() < 0.02, "mean {mean:?}");
        let sd = chain.std_dev();
        assert!((sd[0] - 0.05).abs() < 0.02, "sd {sd:?}");
    }

    #[test]
    fn acceptance_reasonable_after_adaptation() {
        let chain = metropolis(2, gaussian_target, &MetropolisConfig::default());
        assert!((0.1..0.7).contains(&chain.acceptance), "acceptance {}", chain.acceptance);
    }

    #[test]
    fn correlated_target_detected() {
        // Strong negative correlation along x + y = 1.
        let target = |x: &[f64]| {
            let s = x[0] + x[1] - 1.0;
            let d = x[0] - x[1];
            -s * s / (2.0 * 0.02f64.powi(2)) - d * d / (2.0 * 0.3f64.powi(2))
        };
        let chain = metropolis(
            2,
            target,
            &MetropolisConfig { iterations: 12_000, burn_in: 3000, seed: 4, ..Default::default() },
        );
        let corr = chain.correlation(0, 1);
        assert!(corr < -0.6, "correlation {corr}");
    }

    #[test]
    fn map_sample_has_highest_density_in_chain() {
        let chain = metropolis(2, gaussian_target, &MetropolisConfig::default());
        let map = chain.map_sample().unwrap();
        let map_lp = gaussian_target(map);
        for s in &chain.samples {
            assert!(map_lp >= gaussian_target(s) - 1e-9);
        }
        // And it should sit close to the true mode.
        assert!((map[0] - 0.6).abs() < 0.05 && (map[1] - 0.4).abs() < 0.05);
    }

    #[test]
    fn resample_draws_from_chain() {
        let chain = metropolis(1, |x| gaussian_target(&[x[0], 0.4]), &MetropolisConfig::default());
        let draws = chain.resample(50, 3);
        assert_eq!(draws.len(), 50);
        for d in &draws {
            assert!(chain.samples.contains(d));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = MetropolisConfig { seed: 8, ..Default::default() };
        let a = metropolis(2, gaussian_target, &cfg);
        let b = metropolis(2, gaussian_target, &cfg);
        assert_eq!(a.samples, b.samples);
    }

    #[test]
    fn respects_bounds() {
        let chain = metropolis(2, gaussian_target, &MetropolisConfig::default());
        for s in &chain.samples {
            assert!(s.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn rejects_infeasible_region() {
        // Posterior only finite in the left half.
        let target = |x: &[f64]| if x[0] < 0.5 { 0.0 } else { f64::NEG_INFINITY };
        let chain = metropolis(1, target, &MetropolisConfig::default());
        assert!(chain.samples.iter().all(|s| s[0] < 0.5));
    }
}
