//! GPMSA-style Bayesian calibration of the agent-based model (Eq. 2):
//!
//! ```text
//! y = η(θ) + δ + ε
//! ```
//!
//! `η` is the emulated simulator at the best θ, `δ` a systematic
//! discrepancy expanded in 1-d normal kernels (sd 15 days, spaced 10
//! days apart, Eq. 5) with precision λ_δ, and `ε` i.i.d. observation
//! error with precision λ_ε. θ gets a uniform prior on its ranges;
//! precisions get gamma priors.
//!
//! Sampling is Metropolis-within-Gibbs: θ moves by random-walk
//! Metropolis with the discrepancy weights *marginalized analytically*
//! (δ enters linearly with a Gaussian prior, so the marginal likelihood
//! is Gaussian with covariance Σ(θ) + λ_δ⁻¹ D Dᵀ), and λ_ε, λ_δ are
//! drawn from their conditional gammas between θ sweeps.

use crate::emulator::Emulator;
use crate::mcmc::{metropolis, Chain, MetropolisConfig};
use epiflow_linalg::{cholesky_jitter, Mat};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Gamma};

/// Configuration of the calibration run.
#[derive(Clone, Debug)]
pub struct GpmsaConfig {
    /// Discrepancy kernel standard deviation in days (paper: 15).
    pub kernel_sd: f64,
    /// Kernel spacing in days (paper: 10).
    pub kernel_spacing: f64,
    /// MCMC settings for the θ chain.
    pub mcmc: MetropolisConfig,
    /// Gibbs sweeps for the precision parameters.
    pub gibbs_sweeps: usize,
}

impl Default for GpmsaConfig {
    fn default() -> Self {
        GpmsaConfig {
            kernel_sd: 15.0,
            kernel_spacing: 10.0,
            mcmc: MetropolisConfig::default(),
            gibbs_sweeps: 4,
        }
    }
}

/// The calibration posterior.
#[derive(Clone, Debug)]
pub struct Posterior {
    /// θ samples in real coordinates.
    pub theta: Chain,
    /// Posterior draw of the observation-error precision.
    pub lambda_eps: f64,
    /// Posterior draw of the discrepancy precision.
    pub lambda_delta: f64,
}

/// A calibration problem: an emulator plus an observed series.
pub struct GpmsaCalibration<'a> {
    pub emulator: &'a Emulator,
    pub observed: &'a [f64],
    pub config: GpmsaConfig,
    /// Discrepancy basis D (T × p_δ).
    basis: Mat,
}

/// Build the discrepancy basis: normal kernels over the time axis.
fn discrepancy_basis(t_len: usize, sd: f64, spacing: f64) -> Mat {
    let p_delta = ((t_len as f64 / spacing).ceil() as usize).max(1);
    let mut d = Mat::zeros(t_len, p_delta);
    for k in 0..p_delta {
        let center = k as f64 * spacing;
        for t in 0..t_len {
            let z = (t as f64 - center) / sd;
            d[(t, k)] = (-0.5 * z * z).exp();
        }
    }
    d
}

impl<'a> GpmsaCalibration<'a> {
    /// Set up a calibration of `emulator` against `observed` (same
    /// length as the emulator's output).
    pub fn new(emulator: &'a Emulator, observed: &'a [f64], config: GpmsaConfig) -> Self {
        assert_eq!(
            observed.len(),
            emulator.t_len,
            "observed series must match emulator output length"
        );
        let basis = discrepancy_basis(emulator.t_len, config.kernel_sd, config.kernel_spacing);
        GpmsaCalibration { emulator, observed, config, basis }
    }

    /// Number of discrepancy basis functions p_δ.
    pub fn p_delta(&self) -> usize {
        self.basis.ncols()
    }

    /// Marginal log-likelihood of θ (unit cube) given the precisions:
    /// `y − η(θ) ~ N(0, diag(em_var) + λ_ε⁻¹ I + λ_δ⁻¹ D Dᵀ)`.
    fn log_lik(&self, unit_theta: &[f64], lambda_eps: f64, lambda_delta: f64) -> f64 {
        let theta = self.emulator.space.to_real(unit_theta);
        let (mean, var) = self.emulator.predict(&theta);
        let t = self.emulator.t_len;
        let resid: Vec<f64> = self.observed.iter().zip(&mean).map(|(y, m)| y - m).collect();

        // Σ = diag(var + 1/λ_ε) + (1/λ_δ) D Dᵀ.
        let mut sigma = Mat::zeros(t, t);
        for i in 0..t {
            sigma[(i, i)] = var[i] + 1.0 / lambda_eps;
        }
        let p = self.basis.ncols();
        for i in 0..t {
            for j in i..t {
                let mut s = 0.0;
                for k in 0..p {
                    s += self.basis[(i, k)] * self.basis[(j, k)];
                }
                let add = s / lambda_delta;
                sigma[(i, j)] += add;
                if i != j {
                    sigma[(j, i)] += add;
                }
            }
        }
        match cholesky_jitter(&sigma, 1e-10, 8) {
            Ok((chol, _)) => -0.5 * (chol.log_det() + chol.quad_form(&resid)),
            Err(_) => f64::NEG_INFINITY,
        }
    }

    /// Conditional gamma draw for λ_ε given θ: with prior Γ(a, b), the
    /// posterior ignoring emulator/discrepancy variance is
    /// Γ(a + T/2, b + RSS/2) — a standard conjugate approximation.
    fn draw_lambda_eps(&self, unit_theta: &[f64], rng: &mut StdRng) -> f64 {
        let theta = self.emulator.space.to_real(unit_theta);
        let (mean, _) = self.emulator.predict(&theta);
        let rss: f64 = self.observed.iter().zip(&mean).map(|(y, m)| (y - m) * (y - m)).sum();
        let a = 2.0 + self.observed.len() as f64 / 2.0;
        let b = 0.1 + rss / 2.0;
        Gamma::new(a, 1.0 / b).expect("valid gamma").sample(rng)
    }

    /// Run the calibration.
    pub fn run(&self) -> Posterior {
        let d = self.emulator.space.dim();
        let mut rng = StdRng::seed_from_u64(self.config.mcmc.seed ^ 0xDE17A);

        // Initialize precisions from their priors' means.
        let mut lambda_eps = 5.0f64;
        let mut lambda_delta = 10.0f64;
        let mut theta_chain = None;

        for sweep in 0..self.config.gibbs_sweeps.max(1) {
            // θ | precisions.
            let mut cfg = self.config.mcmc.clone();
            cfg.seed = self.config.mcmc.seed.wrapping_add(sweep as u64);
            if sweep + 1 < self.config.gibbs_sweeps.max(1) {
                // Intermediate sweeps can be short; the final sweep
                // produces the reported chain.
                cfg.iterations = (cfg.iterations / 4).max(200);
                cfg.burn_in = (cfg.burn_in / 4).max(50);
            }
            let chain = metropolis(d, |u| self.log_lik(u, lambda_eps, lambda_delta), &cfg);
            // Precisions | θ (at the current MAP).
            if let Some(map) = chain.map_sample() {
                lambda_eps = self.draw_lambda_eps(map, &mut rng).max(1e-3);
                // λ_δ | d-weights integrated out: keep a weakly-updated
                // draw around its prior (discrepancy mass is small when
                // the emulator fits; gamma(3, 0.3) prior).
                let draw: f64 = Gamma::new(3.0, 1.0 / 0.3).expect("valid gamma").sample(&mut rng);
                lambda_delta = draw.max(1e-2);
            }
            theta_chain = Some(chain);
        }

        let chain = theta_chain.expect("at least one sweep");
        // Convert unit-cube samples to real coordinates.
        let real_samples: Vec<Vec<f64>> =
            chain.samples.iter().map(|u| self.emulator.space.to_real(u)).collect();
        Posterior {
            theta: Chain {
                samples: real_samples,
                log_posts: chain.log_posts,
                acceptance: chain.acceptance,
                final_step: chain.final_step,
            },
            lambda_eps,
            lambda_delta,
        }
    }

    /// Posterior-predictive quantile band at each time point, from
    /// emulator predictions at posterior θ draws plus observation noise
    /// (the Fig. 16/17 plot data).
    pub fn predictive_band(
        &self,
        posterior: &Posterior,
        n_draws: usize,
        lo_q: f64,
        hi_q: f64,
        seed: u64,
    ) -> PredictiveBand {
        let draws = posterior.theta.resample(n_draws, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBAD5EED);
        let t = self.emulator.t_len;
        let mut trajectories: Vec<Vec<f64>> = Vec::with_capacity(n_draws);
        let obs_var = 1.0 / posterior.lambda_eps;
        for theta in &draws {
            let (mean, var) = self.emulator.predict(theta);
            let traj: Vec<f64> = (0..t)
                .map(|i| {
                    let z: f64 = rand_distr::StandardNormal.sample(&mut rng);
                    mean[i] + (var[i] + obs_var).sqrt() * z
                })
                .collect();
            trajectories.push(traj);
        }
        let mut median = Vec::with_capacity(t);
        let mut lo = Vec::with_capacity(t);
        let mut hi = Vec::with_capacity(t);
        let mut col = vec![0.0; n_draws];
        for i in 0..t {
            for (j, traj) in trajectories.iter().enumerate() {
                col[j] = traj[i];
            }
            median.push(epiflow_linalg::quantile(&col, 0.5));
            lo.push(epiflow_linalg::quantile(&col, lo_q));
            hi.push(epiflow_linalg::quantile(&col, hi_q));
        }
        PredictiveBand { median, lo, hi }
    }
}

/// Median and quantile envelope of the posterior predictive.
#[derive(Clone, Debug)]
pub struct PredictiveBand {
    pub median: Vec<f64>,
    pub lo: Vec<f64>,
    pub hi: Vec<f64>,
}

impl PredictiveBand {
    /// Fraction of an observed series covered by the band.
    pub fn coverage(&self, observed: &[f64]) -> f64 {
        let n = observed.len().min(self.lo.len());
        if n == 0 {
            return 0.0;
        }
        let hits =
            (0..n).filter(|&i| observed[i] >= self.lo[i] && observed[i] <= self.hi[i]).count();
        hits as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lhs::ParamSpace;

    fn toy_sim(theta: &[f64], t_len: usize) -> Vec<f64> {
        let rate = theta[0];
        let plateau = theta[1];
        (0..t_len).map(|t| plateau / (1.0 + (-rate * (t as f64 - 25.0)).exp())).collect()
    }

    fn setup(t_len: usize) -> (Emulator, Vec<f64>, Vec<f64>) {
        let space = ParamSpace::new(&[("rate", 0.05, 0.4), ("plateau", 4.0, 16.0)]);
        let designs = space.sample_lhs(50, 21);
        let outputs: Vec<Vec<f64>> = designs.iter().map(|d| toy_sim(d, t_len)).collect();
        let em = Emulator::fit(space, &designs, &outputs, 5, 3);
        let truth = vec![0.22, 9.5];
        let observed = toy_sim(&truth, t_len);
        (em, observed, truth)
    }

    #[test]
    fn basis_shape_matches_paper() {
        // 70 days / spacing 10 → 7 kernels, the paper's p_δ = 7.
        let d = discrepancy_basis(70, 15.0, 10.0);
        assert_eq!(d.ncols(), 7);
        assert_eq!(d.nrows(), 70);
        // Kernel 0 peaks at t = 0.
        assert!(d[(0, 0)] > d[(30, 0)]);
    }

    #[test]
    fn recovers_known_parameters() {
        let (em, observed, truth) = setup(50);
        let cal = GpmsaCalibration::new(
            &em,
            &observed,
            GpmsaConfig {
                mcmc: MetropolisConfig {
                    iterations: 3000,
                    burn_in: 800,
                    seed: 17,
                    ..Default::default()
                },
                gibbs_sweeps: 2,
                ..Default::default()
            },
        );
        let post = cal.run();
        let mean = post.theta.mean();
        assert!(
            (mean[0] - truth[0]).abs() < 0.06,
            "rate: posterior {} vs truth {}",
            mean[0],
            truth[0]
        );
        assert!(
            (mean[1] - truth[1]).abs() < 1.2,
            "plateau: posterior {} vs truth {}",
            mean[1],
            truth[1]
        );
    }

    #[test]
    fn posterior_tighter_than_prior() {
        let (em, observed, _) = setup(50);
        let cal = GpmsaCalibration::new(
            &em,
            &observed,
            GpmsaConfig {
                mcmc: MetropolisConfig {
                    iterations: 2500,
                    burn_in: 600,
                    seed: 5,
                    ..Default::default()
                },
                gibbs_sweeps: 2,
                ..Default::default()
            },
        );
        let post = cal.run();
        let sd = post.theta.std_dev();
        // Prior sd of uniform on [0.05, 0.4] is 0.101; posterior must
        // shrink substantially (the Fig.-15 tightening).
        assert!(sd[0] < 0.05, "rate posterior sd {}", sd[0]);
    }

    #[test]
    fn predictive_band_covers_truth() {
        let (em, observed, _) = setup(50);
        let cal = GpmsaCalibration::new(
            &em,
            &observed,
            GpmsaConfig {
                mcmc: MetropolisConfig {
                    iterations: 2000,
                    burn_in: 500,
                    seed: 9,
                    ..Default::default()
                },
                gibbs_sweeps: 2,
                ..Default::default()
            },
        );
        let post = cal.run();
        let band = cal.predictive_band(&post, 200, 0.025, 0.975, 11);
        let cov = band.coverage(&observed);
        assert!(cov > 0.8, "coverage {cov}");
        // Band is ordered.
        for i in 0..band.lo.len() {
            assert!(band.lo[i] <= band.median[i] + 1e-9);
            assert!(band.median[i] <= band.hi[i] + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "match emulator output length")]
    fn rejects_wrong_length_observation() {
        let (em, observed, _) = setup(50);
        GpmsaCalibration::new(&em, &observed[..30], GpmsaConfig::default());
    }

    #[test]
    fn precisions_positive() {
        let (em, observed, _) = setup(40);
        let cal = GpmsaCalibration::new(
            &em,
            &observed,
            GpmsaConfig {
                mcmc: MetropolisConfig {
                    iterations: 800,
                    burn_in: 200,
                    seed: 2,
                    ..Default::default()
                },
                gibbs_sweeps: 2,
                ..Default::default()
            },
        );
        let post = cal.run();
        assert!(post.lambda_eps > 0.0);
        assert!(post.lambda_delta > 0.0);
    }
}
