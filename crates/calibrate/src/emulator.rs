//! Multivariate-output emulation through an eigenvector basis (Eq. 3).
//!
//! Simulation outputs (one time series per design point) are stacked as
//! rows, centered, and decomposed into `pη` principal components
//! (`φ_k`). Each basis coefficient `w_k(θ)` gets its own GP; prediction
//! reconstructs `η(θ) = φ₀ + Σ_k φ_k w_k(θ)`, with the residual variance
//! of the truncated basis (`w₀` in the paper's notation) folded into the
//! predictive variance.

use crate::gp::GpModel;
use crate::lhs::ParamSpace;
use epiflow_linalg::{pca, Mat, Pca};
use rayon::prelude::*;

/// A fitted multivariate emulator.
#[derive(Clone, Debug)]
pub struct Emulator {
    pub space: ParamSpace,
    pub pca: Pca,
    pub gps: Vec<GpModel>,
    /// Per-output-coordinate residual variance of the basis truncation.
    pub truncation_var: f64,
    /// Output length T.
    pub t_len: usize,
}

impl Emulator {
    /// Fit from `designs` (real-coordinate θ, one per row of `outputs`)
    /// and `outputs[i]` = the simulated series at `designs[i]`.
    ///
    /// `p_eta` basis functions are retained (the paper uses 5).
    pub fn fit(
        space: ParamSpace,
        designs: &[Vec<f64>],
        outputs: &[Vec<f64>],
        p_eta: usize,
        seed: u64,
    ) -> Emulator {
        assert_eq!(designs.len(), outputs.len(), "one output per design");
        assert!(designs.len() >= 4, "need at least 4 designs");
        let t_len = outputs[0].len();
        assert!(outputs.iter().all(|o| o.len() == t_len), "ragged outputs");

        let data = Mat::from_rows(outputs);
        let p = pca(&data, p_eta);

        // Scores per design point per component.
        let scores: Vec<Vec<f64>> = outputs.iter().map(|o| p.transform(o)).collect();
        let x_unit: Vec<Vec<f64>> = designs.iter().map(|d| space.to_unit(d)).collect();

        // One GP per retained component; fits are independent → rayon.
        let k = p.k();
        let gps: Vec<GpModel> = (0..k)
            .into_par_iter()
            .map(|kk| {
                let y: Vec<f64> = scores.iter().map(|s| s[kk]).collect();
                GpModel::fit(&x_unit, &y, seed ^ (kk as u64).wrapping_mul(0x9E37))
            })
            .collect();

        // Truncation residual: unexplained variance spread across T
        // coordinates (the paper's w₀ term).
        let unexplained = (p.total_variance - p.explained_variance.iter().sum::<f64>()).max(0.0);
        let truncation_var = unexplained / t_len.max(1) as f64;

        Emulator { space, pca: p, gps, truncation_var, t_len }
    }

    /// Number of retained basis functions.
    pub fn p_eta(&self) -> usize {
        self.gps.len()
    }

    /// Predict the output series at a real-coordinate θ: per-coordinate
    /// mean and variance.
    pub fn predict(&self, theta: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let unit = self.space.to_unit(theta);
        let k = self.gps.len();
        let mut w_mean = vec![0.0; k];
        let mut w_var = vec![0.0; k];
        for (kk, gp) in self.gps.iter().enumerate() {
            let (m, v) = gp.predict(&unit);
            w_mean[kk] = m;
            w_var[kk] = v;
        }
        let mean = self.pca.inverse_transform(&w_mean);
        // Var[η_t] = Σ_k φ_{t,k}² Var[w_k] + truncation.
        let mut var = vec![self.truncation_var; self.t_len];
        for (t, vt) in var.iter_mut().enumerate() {
            for (kk, wv) in w_var.iter().enumerate() {
                let phi = self.pca.components[(t, kk)];
                *vt += phi * phi * wv;
            }
        }
        (mean, var)
    }

    /// Leave-one-out-flavored quality check: mean absolute error of the
    /// emulator against the training outputs (in-sample; cheap sanity
    /// metric surfaced in calibration diagnostics).
    pub fn training_mae(&self, designs: &[Vec<f64>], outputs: &[Vec<f64>]) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for (d, o) in designs.iter().zip(outputs) {
            let (m, _) = self.predict(d);
            for (a, b) in m.iter().zip(o) {
                total += (a - b).abs();
                count += 1;
            }
        }
        total / count.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic "simulator": a logistic curve whose rate and plateau
    /// are the two parameters — the same qualitative shape as a logged
    /// cumulative epidemic curve.
    fn toy_sim(theta: &[f64], t_len: usize) -> Vec<f64> {
        let rate = theta[0];
        let plateau = theta[1];
        (0..t_len).map(|t| plateau / (1.0 + (-rate * (t as f64 - 30.0)).exp())).collect()
    }

    fn toy_space() -> ParamSpace {
        ParamSpace::new(&[("rate", 0.05, 0.3), ("plateau", 5.0, 15.0)])
    }

    fn fitted(n: usize, p_eta: usize) -> (Emulator, Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let space = toy_space();
        let designs = space.sample_lhs(n, 42);
        let outputs: Vec<Vec<f64>> = designs.iter().map(|d| toy_sim(d, 60)).collect();
        let em = Emulator::fit(space, &designs, &outputs, p_eta, 7);
        (em, designs, outputs)
    }

    #[test]
    fn reproduces_training_outputs() {
        let (em, designs, outputs) = fitted(40, 5);
        let mae = em.training_mae(&designs, &outputs);
        assert!(mae < 0.2, "training MAE {mae}");
    }

    #[test]
    fn predicts_held_out_points() {
        let (em, _, _) = fitted(40, 5);
        for theta in toy_space().sample_lhs(10, 99) {
            let truth = toy_sim(&theta, 60);
            let (mean, _) = em.predict(&theta);
            let mae: f64 = mean.iter().zip(&truth).map(|(a, b)| (a - b).abs()).sum::<f64>() / 60.0;
            assert!(mae < 0.5, "held-out MAE {mae} at {theta:?}");
        }
    }

    #[test]
    fn variance_positive_everywhere() {
        let (em, _, _) = fitted(30, 4);
        let (_, var) = em.predict(&[0.1, 10.0]);
        assert!(var.iter().all(|&v| v > 0.0));
        assert_eq!(var.len(), 60);
    }

    #[test]
    fn p_eta_respected_and_clamped() {
        let (em, _, _) = fitted(20, 5);
        assert_eq!(em.p_eta(), 5);
        let (em2, _, _) = fitted(6, 50);
        assert!(em2.p_eta() <= 6);
    }

    #[test]
    fn more_designs_help() {
        let space = toy_space();
        let eval = |n: usize| {
            let designs = space.sample_lhs(n, 1);
            let outputs: Vec<Vec<f64>> = designs.iter().map(|d| toy_sim(d, 60)).collect();
            let em = Emulator::fit(space.clone(), &designs, &outputs, 5, 2);
            let test = space.sample_lhs(15, 1234);
            test.iter()
                .map(|th| {
                    let truth = toy_sim(th, 60);
                    let (m, _) = em.predict(th);
                    m.iter().zip(&truth).map(|(a, b)| (a - b).abs()).sum::<f64>() / 60.0
                })
                .sum::<f64>()
                / 15.0
        };
        let small = eval(8);
        let big = eval(60);
        assert!(big < small, "8 designs MAE {small} vs 60 designs MAE {big}");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn rejects_ragged_outputs() {
        let space = toy_space();
        let designs = space.sample_lhs(5, 1);
        let mut outputs: Vec<Vec<f64>> = designs.iter().map(|d| toy_sim(d, 30)).collect();
        outputs[2].pop();
        Emulator::fit(space, &designs, &outputs, 3, 0);
    }
}
