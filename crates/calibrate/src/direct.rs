//! Direct (simulation-in-the-loop) calibration for the metapopulation
//! model (Appendix E, Eq. 6).
//!
//! "Unlike Agent-Based Models, the metapopulation model is cheap to run,
//! hence, calibration is carried out by directly simulating from the
//! model in the MCMC loop." The likelihood treats each county's observed
//! series as a noisy realization of the model with additive Gaussian
//! noise whose standard deviation is 20% of the daily case counts;
//! counties are independent, so the joint likelihood is the product of
//! per-county Gaussians. Priors on θ are uniform over their ranges;
//! updates are Metropolis.

use crate::lhs::ParamSpace;
use crate::mcmc::{metropolis, Chain, MetropolisConfig};

/// Posterior from a direct calibration.
#[derive(Clone, Debug)]
pub struct DirectPosterior {
    /// θ chain in real coordinates.
    pub theta: Chain,
    /// Number of likelihood evaluations (simulator calls).
    pub n_sim_calls: usize,
}

/// Eq.-(6) log-likelihood of one county series: Gaussian with
/// sd = `noise_frac` × observed (floored at 1 to avoid zero variance on
/// zero-count days).
pub fn county_log_lik(observed: &[f64], simulated: &[f64], noise_frac: f64) -> f64 {
    let n = observed.len().min(simulated.len());
    let mut ll = 0.0;
    for i in 0..n {
        let sd = (noise_frac * observed[i]).max(1.0);
        let z = (observed[i] - simulated[i]) / sd;
        ll += -0.5 * z * z - sd.ln();
    }
    ll
}

/// Calibrate a simulator against per-county observations.
///
/// `simulate(θ)` must return one series per county, aligned with
/// `observed`. Uses the 20%-of-count noise model unless overridden.
pub fn calibrate_direct<F>(
    space: &ParamSpace,
    simulate: F,
    observed: &[Vec<f64>],
    noise_frac: f64,
    config: &MetropolisConfig,
) -> DirectPosterior
where
    F: Fn(&[f64]) -> Vec<Vec<f64>>,
{
    assert!(!observed.is_empty(), "need at least one observed county");
    let calls = std::cell::Cell::new(0usize);
    let chain = metropolis(
        space.dim(),
        |unit| {
            calls.set(calls.get() + 1);
            let theta = space.to_real(unit);
            let sim = simulate(&theta);
            assert_eq!(sim.len(), observed.len(), "simulator must return one series per county");
            observed.iter().zip(&sim).map(|(o, s)| county_log_lik(o, s, noise_frac)).sum()
        },
        config,
    );
    let real_samples: Vec<Vec<f64>> = chain.samples.iter().map(|u| space.to_real(u)).collect();
    DirectPosterior {
        theta: Chain {
            samples: real_samples,
            log_posts: chain.log_posts,
            acceptance: chain.acceptance,
            final_step: chain.final_step,
        },
        n_sim_calls: calls.get(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-county toy simulator: exponential-growth curves whose rate is
    /// θ[0] and whose county-2 scale is θ[1].
    fn toy_sim(theta: &[f64]) -> Vec<Vec<f64>> {
        let rate = theta[0];
        let scale2 = theta[1];
        let series = |s: f64| (0..40).map(|t| s * (rate * t as f64).exp()).collect::<Vec<f64>>();
        vec![series(1.0), series(scale2)]
    }

    #[test]
    fn county_log_lik_prefers_match() {
        let obs = vec![10.0, 20.0, 40.0];
        let exact = county_log_lik(&obs, &obs, 0.2);
        let off = county_log_lik(&obs, &[12.0, 25.0, 55.0], 0.2);
        assert!(exact > off);
    }

    #[test]
    fn zero_days_do_not_blow_up() {
        let ll = county_log_lik(&[0.0, 0.0], &[0.5, 1.0], 0.2);
        assert!(ll.is_finite());
    }

    #[test]
    fn recovers_growth_rate() {
        let space = ParamSpace::new(&[("rate", 0.02, 0.2), ("scale2", 0.2, 3.0)]);
        let truth = [0.09, 1.4];
        let observed = toy_sim(&truth);
        let post = calibrate_direct(
            &space,
            toy_sim,
            &observed,
            0.2,
            &MetropolisConfig { iterations: 4000, burn_in: 1000, seed: 31, ..Default::default() },
        );
        let mean = post.theta.mean();
        assert!((mean[0] - truth[0]).abs() < 0.01, "rate {} vs {}", mean[0], truth[0]);
        assert!((mean[1] - truth[1]).abs() < 0.3, "scale {} vs {}", mean[1], truth[1]);
        assert!(post.n_sim_calls >= 4000, "one simulator call per iteration");
    }

    #[test]
    fn posterior_concentrates_vs_prior() {
        let space = ParamSpace::new(&[("rate", 0.02, 0.2), ("scale2", 0.2, 3.0)]);
        let observed = toy_sim(&[0.09, 1.4]);
        let post = calibrate_direct(
            &space,
            toy_sim,
            &observed,
            0.2,
            &MetropolisConfig { iterations: 3000, burn_in: 800, seed: 13, ..Default::default() },
        );
        let sd = post.theta.std_dev();
        // Uniform prior sd on [0.02, 0.2] is 0.052; the posterior should
        // be dramatically tighter.
        assert!(sd[0] < 0.01, "posterior rate sd {}", sd[0]);
    }

    #[test]
    #[should_panic(expected = "one series per county")]
    fn rejects_wrong_county_count() {
        let space = ParamSpace::new(&[("rate", 0.02, 0.2)]);
        let observed = vec![vec![1.0; 10]; 3];
        calibrate_direct(
            &space,
            |_| vec![vec![1.0; 10]; 2],
            &observed,
            0.2,
            &MetropolisConfig { iterations: 10, burn_in: 0, ..Default::default() },
        );
    }
}
