//! Contact network construction and the network data structure.
//!
//! From the visit list (the people–location graph `G_PL`) we derive the
//! day's contact network: simultaneous presence induces `G_max`, and
//! *sub-location contact modeling* thins it — each visitor contacts a
//! bounded number of co-present visitors, with longer temporal overlap
//! making a contact more likely. Household members form cliques with the
//! Home context. The result matches the paper's edge schema: the two
//! person ids, start time and duration of the interaction, and the
//! (possibly asymmetric) context of each endpoint — the clerk is Working
//! while the customer is Shopping.

use crate::activity::ActivityType;
use crate::assignment::Visit;
use crate::location::LocationKind;
use crate::person::Population;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One undirected contact edge (`u < v` by construction).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ContactEdge {
    pub u: u32,
    pub v: u32,
    /// Start minute of the interaction within the day.
    pub start: u16,
    /// Overlap duration in minutes.
    pub duration: u16,
    /// Context of `u` (e.g. Shopping) — may differ from `v`'s.
    pub ctx_u: ActivityType,
    /// Context of `v` (e.g. Work).
    pub ctx_v: ActivityType,
    /// Edge weight: transmission-relevant intensity (household edges are
    /// heavier than brief retail contacts).
    pub weight: f32,
}

/// A region's contact network for one representative day.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ContactNetwork {
    /// Number of persons (node ids are `0..n_nodes`).
    pub n_nodes: usize,
    pub edges: Vec<ContactEdge>,
}

/// Summary statistics used for Fig.-6-style reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NetworkStats {
    pub nodes: usize,
    pub edges: usize,
    pub mean_degree: f64,
    pub max_degree: usize,
    pub isolated: usize,
}

/// How many contacts one visit makes, by location kind — the
/// sub-location contact budget. Schools and workplaces are dense,
/// retail is sparse.
fn contact_budget(kind: LocationKind) -> usize {
    match kind {
        LocationKind::Workplace => 6,
        LocationKind::Shop => 2,
        LocationKind::OtherVenue => 3,
        LocationKind::SchoolK12 => 8,
        LocationKind::CollegeCampus => 6,
        LocationKind::Church => 4,
    }
}

/// Per-context edge weight (relative infection-transmission intensity).
fn context_weight(a: ActivityType, b: ActivityType) -> f32 {
    let w = |t: ActivityType| match t {
        ActivityType::Home => 1.0f32,
        ActivityType::Work => 0.5,
        ActivityType::School => 0.6,
        ActivityType::College => 0.5,
        ActivityType::Shopping => 0.2,
        ActivityType::Other => 0.3,
        ActivityType::Religion => 0.4,
    };
    (w(a) + w(b)) / 2.0
}

/// Derive the contact network for one day of the week from the visit
/// list plus household structure.
///
/// `day` is 0 = Monday … 6 = Sunday; the paper projects to Wednesday
/// (day 2) as the "typical day".
pub fn derive_network<R: Rng + ?Sized>(
    population: &Population,
    visits: &[Visit],
    locations: &crate::location::LocationModel,
    day: u8,
    rng: &mut R,
) -> ContactNetwork {
    let n = population.len();
    // Deduplicate by unordered pair, keeping the longest interaction.
    let mut edge_map: HashMap<(u32, u32), ContactEdge> = HashMap::new();

    // 1. Household cliques: full-day Home contacts.
    for members in &population.households {
        for (i, &a) in members.iter().enumerate() {
            for &b in &members[i + 1..] {
                let (u, v) = if a < b { (a, b) } else { (b, a) };
                edge_map.insert(
                    (u, v),
                    ContactEdge {
                        u,
                        v,
                        start: 0,
                        duration: 960, // waking cohabitation hours
                        ctx_u: ActivityType::Home,
                        ctx_v: ActivityType::Home,
                        weight: context_weight(ActivityType::Home, ActivityType::Home),
                    },
                );
            }
        }
    }

    // 2. Group the day's visits by location. BTreeMap keeps iteration
    // order deterministic so RNG consumption (and thus the network) is
    // reproducible for a fixed seed.
    let mut by_location: std::collections::BTreeMap<u32, Vec<&Visit>> =
        std::collections::BTreeMap::new();
    for v in visits.iter().filter(|v| v.day == day) {
        by_location.entry(v.location).or_default().push(v);
    }

    // 3. Sub-location contact sampling.
    for (loc_id, group) in &by_location {
        if group.len() < 2 {
            continue;
        }
        let kind = locations.location(*loc_id).kind;
        let budget = contact_budget(kind);
        for (i, visit) in group.iter().enumerate() {
            // Sample up to `budget` candidate partners; keep those with
            // temporal overlap. O(V · budget) instead of O(V²).
            for _ in 0..budget {
                let j = rng.random_range(0..group.len());
                if j == i {
                    continue;
                }
                let other = group[j];
                if other.person == visit.person {
                    continue;
                }
                let lo = visit.start.max(other.start);
                let hi = (visit.start + visit.duration).min(other.start + other.duration);
                if hi <= lo {
                    continue; // no temporal overlap: co-located but not co-present
                }
                let overlap = hi - lo;
                // Longer overlaps are likelier to produce real contact.
                let p = (overlap as f64 / 240.0).min(1.0);
                if !rng.random_bool(p) {
                    continue;
                }
                let (u, v, cu, cv) = if visit.person < other.person {
                    (visit.person, other.person, visit.activity, other.activity)
                } else {
                    (other.person, visit.person, other.activity, visit.activity)
                };
                let edge = ContactEdge {
                    u,
                    v,
                    start: lo,
                    duration: overlap,
                    ctx_u: cu,
                    ctx_v: cv,
                    weight: context_weight(cu, cv),
                };
                edge_map
                    .entry((u, v))
                    .and_modify(|e| {
                        if overlap > e.duration {
                            *e = edge;
                        }
                    })
                    .or_insert(edge);
            }
        }
    }

    let mut edges: Vec<ContactEdge> = edge_map.into_values().collect();
    // Deterministic ordering regardless of hash iteration order.
    edges.sort_by_key(|e| (e.u, e.v));
    ContactNetwork { n_nodes: n, edges }
}

impl ContactNetwork {
    /// Number of edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Degree of every node.
    pub fn degrees(&self) -> Vec<usize> {
        let mut d = vec![0usize; self.n_nodes];
        for e in &self.edges {
            d[e.u as usize] += 1;
            d[e.v as usize] += 1;
        }
        d
    }

    /// Summary statistics.
    pub fn stats(&self) -> NetworkStats {
        let d = self.degrees();
        let isolated = d.iter().filter(|&&x| x == 0).count();
        NetworkStats {
            nodes: self.n_nodes,
            edges: self.edges.len(),
            mean_degree: if self.n_nodes == 0 {
                0.0
            } else {
                2.0 * self.edges.len() as f64 / self.n_nodes as f64
            },
            max_degree: d.iter().copied().max().unwrap_or(0),
            isolated,
        }
    }

    /// Histogram of edge counts by (unordered) context pair label of the
    /// *first* endpoint — a quick view of the network's context mix.
    pub fn context_histogram(&self) -> HashMap<ActivityType, usize> {
        let mut h = HashMap::new();
        for e in &self.edges {
            *h.entry(e.ctx_u).or_insert(0) += 1;
        }
        h
    }

    /// Serialize edges to the CSV schema the paper describes: the two
    /// person ids, contexts, start time and duration.
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.edges.len() * 32);
        out.push_str("u,v,ctx_u,ctx_v,start,duration,weight\n");
        for e in &self.edges {
            out.push_str(&format!(
                "{},{},{},{},{},{},{:.3}\n",
                e.u,
                e.v,
                e.ctx_u.code(),
                e.ctx_v.code(),
                e.start,
                e.duration,
                e.weight
            ));
        }
        out
    }

    /// Parse a CSV produced by [`ContactNetwork::to_csv`].
    pub fn from_csv(n_nodes: usize, csv: &str) -> Result<ContactNetwork, String> {
        let mut edges = Vec::new();
        for (lineno, line) in csv.lines().enumerate().skip(1) {
            if line.trim().is_empty() {
                continue;
            }
            let f: Vec<&str> = line.split(',').collect();
            if f.len() != 7 {
                return Err(format!("line {}: expected 7 fields", lineno + 1));
            }
            let bad = |what: &str| format!("line {}: bad {what}", lineno + 1);
            let ctx = |s: &str, what: &str| -> Result<ActivityType, String> {
                s.parse::<u8>().ok().and_then(ActivityType::from_code).ok_or_else(|| bad(what))
            };
            edges.push(ContactEdge {
                u: f[0].parse().map_err(|_| bad("u"))?,
                v: f[1].parse().map_err(|_| bad("v"))?,
                ctx_u: ctx(f[2], "ctx_u")?,
                ctx_v: ctx(f[3], "ctx_v")?,
                start: f[4].parse().map_err(|_| bad("start"))?,
                duration: f[5].parse().map_err(|_| bad("duration"))?,
                weight: f[6].parse().map_err(|_| bad("weight"))?,
            });
        }
        Ok(ContactNetwork { n_nodes, edges })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::location::LocationModel;
    use crate::person::{Gender, Person};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mini_pop(n: u32, per_household: u32) -> Population {
        let persons: Vec<Person> = (0..n)
            .map(|i| Person {
                id: i,
                household: i / per_household,
                age: 30,
                gender: Gender::Female,
                county: 0,
                home_x: 0.0,
                home_y: 0.0,
            })
            .collect();
        let n_h = n.div_ceil(per_household);
        let mut households = vec![Vec::new(); n_h as usize];
        for p in &persons {
            households[p.household as usize].push(p.id);
        }
        Population { region: 0, persons, households }
    }

    #[test]
    fn households_become_cliques() {
        let pop = mini_pop(6, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let locs = LocationModel::generate(&[6], &mut rng);
        let net = derive_network(&pop, &[], &locs, 2, &mut rng);
        // Two households of 3: 2 * C(3,2) = 6 edges.
        assert_eq!(net.n_edges(), 6);
        for e in &net.edges {
            assert_eq!(e.ctx_u, ActivityType::Home);
            assert!(e.u < e.v);
            // Same household.
            assert_eq!(e.u / 3, e.v / 3);
        }
    }

    #[test]
    fn visits_on_other_days_ignored() {
        let pop = mini_pop(4, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let locs = LocationModel::generate(&[4], &mut rng);
        let loc = locs.in_county(0, LocationKind::Workplace)[0];
        let visits: Vec<Visit> = (0..4)
            .map(|i| Visit {
                person: i,
                location: loc,
                day: 0, // Monday
                start: 540,
                duration: 480,
                activity: ActivityType::Work,
            })
            .collect();
        let net = derive_network(&pop, &visits, &locs, 2, &mut rng); // Wednesday
        assert_eq!(net.n_edges(), 0);
    }

    #[test]
    fn coworkers_meet() {
        let pop = mini_pop(10, 1);
        let mut rng = StdRng::seed_from_u64(3);
        let locs = LocationModel::generate(&[10], &mut rng);
        let loc = locs.in_county(0, LocationKind::Workplace)[0];
        let visits: Vec<Visit> = (0..10)
            .map(|i| Visit {
                person: i,
                location: loc,
                day: 2,
                start: 540,
                duration: 480,
                activity: ActivityType::Work,
            })
            .collect();
        let net = derive_network(&pop, &visits, &locs, 2, &mut rng);
        assert!(net.n_edges() > 5, "expected workplace contacts, got {}", net.n_edges());
        for e in &net.edges {
            assert_eq!(e.ctx_u, ActivityType::Work);
            assert_eq!(e.duration, 480);
        }
    }

    #[test]
    fn no_temporal_overlap_no_edge() {
        let pop = mini_pop(2, 1);
        let mut rng = StdRng::seed_from_u64(4);
        let locs = LocationModel::generate(&[2], &mut rng);
        let loc = locs.in_county(0, LocationKind::Shop)[0];
        let visits = vec![
            Visit {
                person: 0,
                location: loc,
                day: 2,
                start: 500,
                duration: 60,
                activity: ActivityType::Shopping,
            },
            Visit {
                person: 1,
                location: loc,
                day: 2,
                start: 700,
                duration: 60,
                activity: ActivityType::Shopping,
            },
        ];
        let net = derive_network(&pop, &visits, &locs, 2, &mut rng);
        assert_eq!(net.n_edges(), 0);
    }

    #[test]
    fn asymmetric_contexts_preserved() {
        let pop = mini_pop(2, 1);
        let mut rng = StdRng::seed_from_u64(5);
        let locs = LocationModel::generate(&[2], &mut rng);
        let loc = locs.in_county(0, LocationKind::Shop)[0];
        // Person 0 shops while person 1 works the register, long overlap
        // so the contact fires with near-certainty across retries.
        let visits = vec![
            Visit {
                person: 0,
                location: loc,
                day: 2,
                start: 540,
                duration: 400,
                activity: ActivityType::Shopping,
            },
            Visit {
                person: 1,
                location: loc,
                day: 2,
                start: 500,
                duration: 480,
                activity: ActivityType::Work,
            },
        ];
        let net = derive_network(&pop, &visits, &locs, 2, &mut rng);
        assert_eq!(net.n_edges(), 1);
        let e = &net.edges[0];
        assert_eq!((e.u, e.v), (0, 1));
        assert_eq!(e.ctx_u, ActivityType::Shopping);
        assert_eq!(e.ctx_v, ActivityType::Work);
    }

    #[test]
    fn stats_and_degrees() {
        let pop = mini_pop(5, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let locs = LocationModel::generate(&[5], &mut rng);
        let net = derive_network(&pop, &[], &locs, 2, &mut rng);
        let s = net.stats();
        assert_eq!(s.nodes, 5);
        assert_eq!(s.edges, 10); // K5
        assert_eq!(s.max_degree, 4);
        assert_eq!(s.isolated, 0);
        assert!((s.mean_degree - 4.0).abs() < 1e-12);
    }

    #[test]
    fn csv_round_trip() {
        let pop = mini_pop(6, 3);
        let mut rng = StdRng::seed_from_u64(7);
        let locs = LocationModel::generate(&[6], &mut rng);
        let net = derive_network(&pop, &[], &locs, 2, &mut rng);
        let csv = net.to_csv();
        let back = ContactNetwork::from_csv(6, &csv).unwrap();
        assert_eq!(back.n_edges(), net.n_edges());
        assert_eq!(back.edges[0].ctx_u, ActivityType::Home);
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(ContactNetwork::from_csv(2, "h\n1,2\n").is_err());
        assert!(ContactNetwork::from_csv(2, "h\n0,1,9,0,0,10,1.0\n").is_err());
    }

    #[test]
    fn household_edges_heavier_than_retail() {
        assert!(
            context_weight(ActivityType::Home, ActivityType::Home)
                > context_weight(ActivityType::Shopping, ActivityType::Shopping)
        );
    }

    #[test]
    fn network_is_deterministic_given_seed() {
        let pop = mini_pop(20, 4);
        let locs = LocationModel::generate(&[20], &mut StdRng::seed_from_u64(8));
        let loc = locs.in_county(0, LocationKind::Workplace)[0];
        let visits: Vec<Visit> = (0..20)
            .map(|i| Visit {
                person: i,
                location: loc,
                day: 2,
                start: 540,
                duration: 300,
                activity: ActivityType::Work,
            })
            .collect();
        let a = derive_network(&pop, &visits, &locs, 2, &mut StdRng::seed_from_u64(42));
        let b = derive_network(&pop, &visits, &locs, 2, &mut StdRng::seed_from_u64(42));
        assert_eq!(a.edges, b.edges);
    }
}
