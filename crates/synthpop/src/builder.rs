//! End-to-end region builder: demographics → households → activities →
//! locations → assignment → contact network.
//!
//! [`build_region`] is the one-call entry point the workflows use. It is
//! deterministic given `(region, scale, seed)`.

use crate::activity::{assign_archetype, weekly_pattern, WeeklyPattern};
use crate::assignment::{assign_locations, CommuteFlows};
use crate::ipf::{integerize, ipf};
use crate::location::LocationModel;
use crate::network::{derive_network, ContactNetwork};
use crate::person::{AgeGroup, Gender, Person, Population};
use epiflow_surveillance::{RegionId, RegionRegistry, Scale};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Build configuration.
#[derive(Clone, Debug)]
pub struct BuildConfig {
    pub scale: Scale,
    pub seed: u64,
    /// Day of week to project the contact network onto (2 = Wednesday,
    /// the paper's "typical day").
    pub network_day: u8,
    /// Probability a worker stays in their home county.
    pub commute_stay_prob: f64,
}

impl Default for BuildConfig {
    fn default() -> Self {
        BuildConfig {
            scale: Scale::default(),
            seed: 0x5EED,
            network_day: 2,
            commute_stay_prob: 0.75,
        }
    }
}

/// The fully built region data.
#[derive(Clone, Debug)]
pub struct RegionData {
    pub region: RegionId,
    pub population: Population,
    pub locations: LocationModel,
    pub network: ContactNetwork,
}

/// Household size distribution (sizes 1..=6, ACS-like shares).
const HH_SIZE_SHARES: [f64; 6] = [0.28, 0.35, 0.15, 0.13, 0.06, 0.03];

/// Seed joint for IPF: age-group (rows) × household-size (cols).
/// Structural realities are encoded as near-zeros: children do not live
/// alone or in pairs without adults (handled in assembly), seniors rarely
/// live in 5–6-person homes.
fn ipf_seed() -> Vec<Vec<f64>> {
    vec![
        // Preschool: only in households of 2+.
        vec![0.0, 0.2, 1.5, 2.5, 1.5, 0.8],
        // School-age.
        vec![0.0, 0.3, 1.5, 2.8, 1.8, 1.0],
        // Adults 18–49: everywhere.
        vec![1.5, 2.5, 2.0, 2.0, 1.0, 0.5],
        // 50–64: mostly 1–2 person homes.
        vec![1.2, 2.8, 1.0, 0.6, 0.3, 0.2],
        // 65+: overwhelmingly 1–2 person homes.
        vec![1.5, 2.6, 0.5, 0.2, 0.1, 0.05],
    ]
}

/// Draw an age uniformly within an age group's range.
fn draw_age<R: Rng + ?Sized>(group: AgeGroup, rng: &mut R) -> u8 {
    match group {
        AgeGroup::Preschool => rng.random_range(0..=4),
        AgeGroup::School => rng.random_range(5..=17),
        AgeGroup::Adult => rng.random_range(18..=49),
        AgeGroup::Older => rng.random_range(50..=64),
        AgeGroup::Senior => rng.random_range(65..=95),
    }
}

/// Synthesize one county's persons and households from the IPF-fitted
/// age × household-size counts.
#[allow(clippy::too_many_arguments)]
fn synthesize_county<R: Rng + ?Sized>(
    county: u16,
    n_persons: usize,
    persons: &mut Vec<Person>,
    households: &mut Vec<Vec<u32>>,
    rng: &mut R,
) {
    if n_persons == 0 {
        return;
    }
    // IPF: rows = age groups (census-like marginals), cols = household
    // sizes (persons living in size-s homes).
    let age_targets: Vec<f64> =
        AgeGroup::ALL.iter().map(|g| g.us_share() * n_persons as f64).collect();
    let size_targets: Vec<f64> = HH_SIZE_SHARES
        .iter()
        .enumerate()
        .map(|(i, share)| {
            // Share of households → share of persons ∝ share · size.
            share * (i + 1) as f64
        })
        .collect();
    let st: f64 = size_targets.iter().sum();
    let size_targets: Vec<f64> = size_targets.iter().map(|s| s / st * n_persons as f64).collect();

    let fitted = ipf(&ipf_seed(), &age_targets, &size_targets, 1e-8, 500);
    let counts = integerize(&fitted.table, n_persons as u64);

    // Pools of persons-to-place per (age group, household size).
    // counts[g][s] persons of group g live in size-(s+1) households.
    let county_x = county as f32 * 2.0;
    // `s` indexes the inner dimension of `counts[g][s]`; enumerate()
    // would obscure that.
    #[allow(clippy::needless_range_loop)]
    for s in 0..6 {
        let size = s + 1;
        let mut pool: Vec<AgeGroup> = Vec::new();
        for (g, group) in AgeGroup::ALL.iter().enumerate() {
            for _ in 0..counts[g][s] {
                pool.push(*group);
            }
        }
        if pool.is_empty() {
            continue;
        }
        // Assemble households of `size`: ensure each multi-person home
        // with children also contains an adult, by sorting adults first
        // and dealing round-robin.
        pool.sort_by_key(|g| match g {
            AgeGroup::Adult | AgeGroup::Older | AgeGroup::Senior => 0,
            _ => 1,
        });
        let n_homes = pool.len().div_ceil(size);
        let mut home_members: Vec<Vec<AgeGroup>> = vec![Vec::with_capacity(size); n_homes];
        for (i, g) in pool.into_iter().enumerate() {
            home_members[i % n_homes].push(g);
        }
        for members in home_members {
            let hid = households.len() as u32;
            let hx = county_x + rng.random_range(0.0f32..1.0);
            let hy = rng.random_range(0.0f32..1.0);
            let mut ids = Vec::with_capacity(members.len());
            for group in members {
                let id = persons.len() as u32;
                persons.push(Person {
                    id,
                    household: hid,
                    age: draw_age(group, rng),
                    gender: if rng.random_bool(0.508) { Gender::Female } else { Gender::Male },
                    county,
                    home_x: hx,
                    home_y: hy,
                });
                ids.push(id);
            }
            households.push(ids);
        }
    }
}

/// Build the full synthetic population and contact network for a region.
pub fn build_region(
    registry: &RegionRegistry,
    region: RegionId,
    config: &BuildConfig,
) -> RegionData {
    let mut rng =
        StdRng::seed_from_u64(config.seed ^ (region as u64).wrapping_mul(0x9E3779B97F4A7C15));

    // Scaled per-county person counts.
    let county_persons: Vec<usize> =
        registry.counties(region).iter().map(|c| config.scale.apply(c.population)).collect();

    // 1–2. Demographics and households (IPF per county).
    let mut persons = Vec::new();
    let mut households = Vec::new();
    for (county, &n) in county_persons.iter().enumerate() {
        synthesize_county(county as u16, n, &mut persons, &mut households, &mut rng);
    }
    let population = Population { region, persons, households };

    // 3. Weekly activity patterns.
    let patterns: Vec<WeeklyPattern> = population
        .persons
        .iter()
        .map(|p| {
            let arch = assign_archetype(p, &mut rng);
            weekly_pattern(arch, &mut rng)
        })
        .collect();

    // 4. Locations.
    let locations = LocationModel::generate(&county_persons, &mut rng);

    // 5. Assignment.
    let flows = CommuteFlows::gravity(&county_persons, config.commute_stay_prob);
    let visits = assign_locations(&population, &patterns, &locations, &flows, &mut rng);

    // 6. Contact network for the configured day.
    let network = derive_network(&population, &visits, &locations, config.network_day, &mut rng);

    RegionData { region, population, locations, network }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> BuildConfig {
        BuildConfig { scale: Scale::one_per(20_000.0), seed: 7, ..Default::default() }
    }

    #[test]
    fn builds_a_small_state() {
        let reg = RegionRegistry::new();
        let wy = reg.by_abbrev("WY").unwrap().id;
        let data = build_region(&reg, wy, &small_config());
        assert!(data.population.len() > 10);
        assert!(data.network.n_edges() > 0);
        assert_eq!(data.network.n_nodes, data.population.len());
    }

    #[test]
    fn person_count_tracks_scale() {
        let reg = RegionRegistry::new();
        let va = reg.by_abbrev("VA").unwrap();
        let data = build_region(&reg, va.id, &small_config());
        let expect = va.population as f64 / 20_000.0;
        let got = data.population.len() as f64;
        // Integerization + per-county flooring allows a few % drift.
        assert!((got - expect).abs() / expect < 0.25, "expected ≈{expect}, got {got}");
    }

    #[test]
    fn deterministic() {
        let reg = RegionRegistry::new();
        let de = reg.by_abbrev("DE").unwrap().id;
        let a = build_region(&reg, de, &small_config());
        let b = build_region(&reg, de, &small_config());
        assert_eq!(a.population.len(), b.population.len());
        assert_eq!(a.network.edges, b.network.edges);
    }

    #[test]
    fn different_regions_differ() {
        let reg = RegionRegistry::new();
        let a = build_region(&reg, reg.by_abbrev("DE").unwrap().id, &small_config());
        let b = build_region(&reg, reg.by_abbrev("HI").unwrap().id, &small_config());
        assert_ne!(a.population.len(), b.population.len());
    }

    #[test]
    fn age_distribution_matches_marginals() {
        let reg = RegionRegistry::new();
        let md = reg.by_abbrev("MD").unwrap().id;
        let data = build_region(
            &reg,
            md,
            &BuildConfig { scale: Scale::one_per(5_000.0), seed: 11, ..Default::default() },
        );
        let hist = data.population.age_histogram();
        let total: usize = hist.iter().sum();
        for (i, group) in AgeGroup::ALL.iter().enumerate() {
            let got = hist[i] as f64 / total as f64;
            let want = group.us_share();
            assert!((got - want).abs() < 0.05, "{group:?}: got {got:.3}, want {want:.3}");
        }
    }

    #[test]
    fn children_never_live_alone() {
        let reg = RegionRegistry::new();
        let nh = reg.by_abbrev("NH").unwrap().id;
        let data = build_region(&reg, nh, &small_config());
        for members in &data.population.households {
            if members.len() == 1 {
                let p = data.population.person(members[0]);
                assert!(p.age >= 18, "child {} living alone", p.id);
            }
        }
    }

    #[test]
    fn mean_household_size_plausible() {
        let reg = RegionRegistry::new();
        let ct = reg.by_abbrev("CT").unwrap().id;
        let data = build_region(&reg, ct, &small_config());
        let m = data.population.mean_household_size();
        assert!((1.8..3.2).contains(&m), "mean household size {m}");
    }

    #[test]
    fn network_density_plausible() {
        let reg = RegionRegistry::new();
        let ri = reg.by_abbrev("RI").unwrap().id;
        let data = build_region(&reg, ri, &small_config());
        let s = data.network.stats();
        // Mean contact degree in single digits to low tens.
        assert!(s.mean_degree > 1.0 && s.mean_degree < 40.0, "mean degree {}", s.mean_degree);
    }

    #[test]
    fn household_ids_consistent() {
        let reg = RegionRegistry::new();
        let vt = reg.by_abbrev("VT").unwrap().id;
        let data = build_region(&reg, vt, &small_config());
        for (hid, members) in data.population.households.iter().enumerate() {
            for &pid in members {
                assert_eq!(data.population.person(pid).household as usize, hid);
            }
        }
    }
}
