//! Synthetic populations and contact networks (paper Appendix C).
//!
//! A synthetic population is a "digital twin" of a region's real
//! population. The construction follows the paper's pipeline:
//!
//! 1. **Base population** ([`ipf`], [`person`]) — iterative proportional
//!    fitting calibrates a joint demographic table to marginals; persons
//!    are synthesized from it and partitioned into households.
//! 2. **Activity sequences** ([`activity`]) — each person receives a
//!    week-long sequence of typed activities (Home, Work, Shopping,
//!    Other, School, College, Religion) via a CART-like demographic rule
//!    tree over survey-derived templates.
//! 3. **Locations** ([`location`]) — residences and activity locations are
//!    placed per county with heavy-tailed capacities.
//! 4. **Location assignment** ([`assignment`]) — every activity is mapped
//!    to a location; Work uses county-level commute flows, School uses
//!    school rosters, the rest anchor near home.
//! 5. **Contact network** ([`network`]) — co-occupancy at locations
//!    induces the people–location bipartite graph `G_PL`, from which
//!    `G_max` (simultaneous presence) is thinned by sub-location contact
//!    modeling into the contact network `G`, projected to a "typical
//!    Wednesday" `G_Wednesday` for simulation.
//!
//! [`builder::build_region`] runs the whole pipeline for one region at a
//! chosen [`Scale`](epiflow_surveillance::Scale).

pub mod activity;
pub mod assignment;
pub mod builder;
pub mod ipf;
pub mod location;
pub mod network;
pub mod person;

pub use activity::{Activity, ActivityType, WeeklyPattern};
pub use builder::{build_region, BuildConfig};
pub use location::{Location, LocationId, LocationKind, LocationModel};
pub use network::{ContactEdge, ContactNetwork, NetworkStats};
pub use person::{AgeGroup, Gender, Person, PersonId, Population};
