//! Spatially embedded locations.
//!
//! The paper's location model is "highly granular and rooted in data"
//! (Microsoft building footprints, HERE POIs, NCES schools, LandScan…).
//! We keep the *structure* — residences plus typed activity locations
//! with heavy-tailed capacities, embedded in a plane, organized by
//! county — and synthesize the instances.

use crate::activity::ActivityType;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Location identifier, unique within one region.
pub type LocationId = u32;

/// The kinds of non-residential locations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LocationKind {
    Workplace,
    Shop,
    OtherVenue,
    SchoolK12,
    CollegeCampus,
    Church,
}

impl LocationKind {
    /// The activity type served by this kind of location.
    pub fn serves(&self) -> ActivityType {
        match self {
            LocationKind::Workplace => ActivityType::Work,
            LocationKind::Shop => ActivityType::Shopping,
            LocationKind::OtherVenue => ActivityType::Other,
            LocationKind::SchoolK12 => ActivityType::School,
            LocationKind::CollegeCampus => ActivityType::College,
            LocationKind::Church => ActivityType::Religion,
        }
    }

    /// Which kind serves an activity type (Home has no location kind —
    /// residences are separate).
    pub fn for_activity(t: ActivityType) -> Option<LocationKind> {
        match t {
            ActivityType::Home => None,
            ActivityType::Work => Some(LocationKind::Workplace),
            ActivityType::Shopping => Some(LocationKind::Shop),
            ActivityType::Other => Some(LocationKind::OtherVenue),
            ActivityType::School => Some(LocationKind::SchoolK12),
            ActivityType::College => Some(LocationKind::CollegeCampus),
            ActivityType::Religion => Some(LocationKind::Church),
        }
    }

    /// Mean persons served per location of this kind, controlling how
    /// many locations a county gets.
    fn persons_per_location(&self) -> f64 {
        match self {
            LocationKind::Workplace => 25.0,
            LocationKind::Shop => 120.0,
            LocationKind::OtherVenue => 150.0,
            LocationKind::SchoolK12 => 450.0,
            LocationKind::CollegeCampus => 4000.0,
            LocationKind::Church => 300.0,
        }
    }
}

/// One activity location.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Location {
    pub id: LocationId,
    pub kind: LocationKind,
    /// County index within the region.
    pub county: u16,
    pub x: f32,
    pub y: f32,
    /// Relative attractiveness weight (heavy-tailed); larger locations
    /// draw proportionally more visitors.
    pub weight: f32,
}

/// All activity locations of a region, indexed for fast per-county,
/// per-kind sampling.
#[derive(Clone, Debug, Default)]
pub struct LocationModel {
    pub locations: Vec<Location>,
    /// `by_county_kind[county][kind_index]` → location ids.
    index: Vec<[Vec<LocationId>; 6]>,
}

fn kind_index(k: LocationKind) -> usize {
    match k {
        LocationKind::Workplace => 0,
        LocationKind::Shop => 1,
        LocationKind::OtherVenue => 2,
        LocationKind::SchoolK12 => 3,
        LocationKind::CollegeCampus => 4,
        LocationKind::Church => 5,
    }
}

const ALL_KINDS: [LocationKind; 6] = [
    LocationKind::Workplace,
    LocationKind::Shop,
    LocationKind::OtherVenue,
    LocationKind::SchoolK12,
    LocationKind::CollegeCampus,
    LocationKind::Church,
];

impl LocationModel {
    /// Synthesize locations for a region whose counties have the given
    /// (scaled) person counts. Each county is embedded in its own unit
    /// cell at `(county_index * 2, 0)`, so inter-county distances exceed
    /// intra-county ones.
    pub fn generate<R: Rng + ?Sized>(county_persons: &[usize], rng: &mut R) -> Self {
        let mut locations = Vec::new();
        let mut index: Vec<[Vec<LocationId>; 6]> = Vec::with_capacity(county_persons.len());

        for (county, &persons) in county_persons.iter().enumerate() {
            let mut slot: [Vec<LocationId>; 6] = Default::default();
            for kind in ALL_KINDS {
                // At least one location of each kind per county so every
                // activity can be placed.
                let n = ((persons as f64 / kind.persons_per_location()).ceil() as usize).max(1);
                for _ in 0..n {
                    let id = locations.len() as LocationId;
                    // Zipf-ish weight: u^{-0.5} with u ∈ (0,1] gives a
                    // heavy tail with finite mean.
                    let u: f64 = rng.random_range(0.0f64..1.0).max(1e-9);
                    locations.push(Location {
                        id,
                        kind,
                        county: county as u16,
                        x: county as f32 * 2.0 + rng.random_range(0.0f32..1.0),
                        y: rng.random_range(0.0f32..1.0),
                        weight: u.powf(-0.5) as f32,
                    });
                    slot[kind_index(kind)].push(id);
                }
            }
            index.push(slot);
        }
        LocationModel { locations, index }
    }

    /// Number of locations.
    pub fn len(&self) -> usize {
        self.locations.len()
    }

    /// True when no locations exist.
    pub fn is_empty(&self) -> bool {
        self.locations.is_empty()
    }

    /// Location by id.
    pub fn location(&self, id: LocationId) -> &Location {
        &self.locations[id as usize]
    }

    /// Candidate locations of a kind in a county.
    pub fn in_county(&self, county: u16, kind: LocationKind) -> &[LocationId] {
        &self.index[county as usize][kind_index(kind)]
    }

    /// Sample a location of `kind` in `county`, weighted by
    /// attractiveness. Falls back to county 0 if the county is unknown.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        county: u16,
        kind: LocationKind,
        rng: &mut R,
    ) -> LocationId {
        let county = if (county as usize) < self.index.len() { county } else { 0 };
        let ids = self.in_county(county, kind);
        assert!(!ids.is_empty(), "no {kind:?} locations in county {county}");
        let total: f32 = ids.iter().map(|&id| self.locations[id as usize].weight).sum();
        let mut draw = rng.random_range(0.0f32..total);
        for &id in ids {
            draw -= self.locations[id as usize].weight;
            if draw <= 0.0 {
                return id;
            }
        }
        *ids.last().expect("non-empty ids")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kinds_serve_matching_activities() {
        for kind in ALL_KINDS {
            assert_eq!(LocationKind::for_activity(kind.serves()), Some(kind));
        }
        assert_eq!(LocationKind::for_activity(ActivityType::Home), None);
    }

    #[test]
    fn every_county_gets_every_kind() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = LocationModel::generate(&[500, 40, 10_000], &mut rng);
        for county in 0..3u16 {
            for kind in ALL_KINDS {
                assert!(!m.in_county(county, kind).is_empty(), "county {county} missing {kind:?}");
            }
        }
    }

    #[test]
    fn location_counts_scale_with_population() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = LocationModel::generate(&[1000, 10_000], &mut rng);
        let small = m.in_county(0, LocationKind::Workplace).len();
        let big = m.in_county(1, LocationKind::Workplace).len();
        assert!(big > small * 5, "workplaces {small} vs {big}");
    }

    #[test]
    fn counties_spatially_separated() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = LocationModel::generate(&[100, 100], &mut rng);
        for loc in &m.locations {
            let cell = loc.county as f32 * 2.0;
            assert!(loc.x >= cell && loc.x < cell + 1.0);
        }
    }

    #[test]
    fn sampling_respects_county_and_kind() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = LocationModel::generate(&[2000, 2000], &mut rng);
        for _ in 0..200 {
            let id = m.sample(1, LocationKind::Shop, &mut rng);
            let loc = m.location(id);
            assert_eq!(loc.county, 1);
            assert_eq!(loc.kind, LocationKind::Shop);
        }
    }

    #[test]
    fn sampling_prefers_heavy_locations() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = LocationModel::generate(&[5000], &mut rng);
        let shops = m.in_county(0, LocationKind::Shop);
        assert!(shops.len() >= 2);
        // Empirically: the heaviest shop should be sampled more often
        // than a uniform share.
        let heaviest = *shops
            .iter()
            .max_by(|a, b| m.location(**a).weight.partial_cmp(&m.location(**b).weight).unwrap())
            .unwrap();
        let n = 3000;
        let hits = (0..n).filter(|_| m.sample(0, LocationKind::Shop, &mut rng) == heaviest).count();
        assert!(
            hits as f64 / n as f64 > 1.0 / shops.len() as f64,
            "heaviest sampled {hits}/{n} with {} shops",
            shops.len()
        );
    }

    #[test]
    fn unknown_county_falls_back() {
        let mut rng = StdRng::seed_from_u64(6);
        let m = LocationModel::generate(&[100], &mut rng);
        let id = m.sample(42, LocationKind::Church, &mut rng);
        assert_eq!(m.location(id).county, 0);
    }
}
