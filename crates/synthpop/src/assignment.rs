//! Location assignment: mapping every activity of every person to a
//! concrete location.
//!
//! Mirrors the paper's model: Work activities are assigned a *target
//! county* from commute-flow data (ACS in the paper; a gravity model
//! here), then a weighted location within it; School uses the school
//! roster of the home county; remaining activities anchor near home.
//! Work/School/College anchors are stable per person; errands re-sample
//! per activity.

use crate::activity::{ActivityType, WeeklyPattern};
use crate::location::{LocationId, LocationKind, LocationModel};
use crate::person::Population;
use rand::Rng;

/// One visit of a person to a location: the atoms of the people–location
/// bipartite graph `G_PL`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Visit {
    pub person: u32,
    pub location: LocationId,
    /// Day of week, 0 = Monday.
    pub day: u8,
    /// Start minute within the day.
    pub start: u16,
    pub duration: u16,
    pub activity: ActivityType,
}

/// County-to-county commute flow matrix (row-stochastic).
///
/// A gravity model: workers stay in their home county with high
/// probability, otherwise commute to another county with probability
/// proportional to its size and inversely to (1 + distance), where
/// distance is the county-index gap (counties are embedded on a line).
#[derive(Clone, Debug)]
pub struct CommuteFlows {
    /// `flows[home]` → cumulative distribution over work counties.
    cdf: Vec<Vec<f64>>,
}

impl CommuteFlows {
    /// Build from county population sizes.
    pub fn gravity(county_persons: &[usize], stay_prob: f64) -> Self {
        let n = county_persons.len();
        assert!(n > 0, "commute flows need at least one county");
        let mut cdf = Vec::with_capacity(n);
        for home in 0..n {
            let mut w = vec![0.0; n];
            let mut total = 0.0;
            for (other, &pop) in county_persons.iter().enumerate() {
                if other == home {
                    continue;
                }
                let dist = (other as f64 - home as f64).abs();
                w[other] = pop as f64 / (1.0 + dist * dist);
                total += w[other];
            }
            // Normalize off-county mass to (1 - stay_prob).
            let mut c = Vec::with_capacity(n);
            let mut acc = 0.0;
            for (other, wo) in w.iter().enumerate() {
                let p = if other == home {
                    stay_prob
                } else if total > 0.0 {
                    (1.0 - stay_prob) * wo / total
                } else {
                    0.0
                };
                acc += p;
                c.push(acc);
            }
            // Guard against floating-point undershoot.
            if let Some(last) = c.last_mut() {
                *last = 1.0;
            }
            cdf.push(c);
        }
        CommuteFlows { cdf }
    }

    /// Sample a work county for a resident of `home`.
    pub fn sample_work_county<R: Rng + ?Sized>(&self, home: u16, rng: &mut R) -> u16 {
        let row = &self.cdf[home as usize];
        let u: f64 = rng.random_range(0.0..1.0);
        match row.binary_search_by(|p| p.partial_cmp(&u).expect("NaN in cdf")) {
            Ok(i) | Err(i) => i.min(row.len() - 1) as u16,
        }
    }

    /// Probability mass of staying in the home county (for tests).
    pub fn stay_mass(&self, home: u16) -> f64 {
        let row = &self.cdf[home as usize];
        let h = home as usize;
        let prev = if h == 0 { 0.0 } else { row[h - 1] };
        row[h] - prev
    }
}

/// Stable anchors assigned once per person.
#[derive(Clone, Copy, Debug, Default)]
struct Anchors {
    work: Option<LocationId>,
    school: Option<LocationId>,
    college: Option<LocationId>,
}

/// Assign locations to all activities, producing the visit list.
///
/// `patterns[pid]` is the weekly pattern of person `pid`.
pub fn assign_locations<R: Rng + ?Sized>(
    population: &Population,
    patterns: &[WeeklyPattern],
    locations: &LocationModel,
    flows: &CommuteFlows,
    rng: &mut R,
) -> Vec<Visit> {
    assert_eq!(population.len(), patterns.len(), "pattern per person required");
    let mut visits = Vec::with_capacity(patterns.iter().map(|p| p.activities.len()).sum());

    for (pid, pattern) in patterns.iter().enumerate() {
        let person = &population.persons[pid];
        let mut anchors = Anchors::default();
        for act in &pattern.activities {
            let kind = match LocationKind::for_activity(act.kind) {
                Some(k) => k,
                None => continue, // Home handled by household cliques
            };
            let loc = match act.kind {
                ActivityType::Work => *anchors.work.get_or_insert_with(|| {
                    let county = flows.sample_work_county(person.county, rng);
                    locations.sample(county, kind, rng)
                }),
                ActivityType::School => *anchors
                    .school
                    .get_or_insert_with(|| locations.sample(person.county, kind, rng)),
                ActivityType::College => *anchors
                    .college
                    .get_or_insert_with(|| locations.sample(person.county, kind, rng)),
                _ => locations.sample(person.county, kind, rng),
            };
            visits.push(Visit {
                person: pid as u32,
                location: loc,
                day: act.day,
                start: act.start,
                duration: act.duration,
                activity: act.kind,
            });
        }
    }
    visits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::{assign_archetype, weekly_pattern, Activity};
    use crate::person::{Gender, Person};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_world() -> (Population, LocationModel, CommuteFlows) {
        let mut rng = StdRng::seed_from_u64(9);
        let persons: Vec<Person> = (0..200)
            .map(|i| Person {
                id: i,
                household: i / 3,
                age: (i % 80) as u8,
                gender: if i % 2 == 0 { Gender::Female } else { Gender::Male },
                county: (i % 2) as u16,
                home_x: 0.0,
                home_y: 0.0,
            })
            .collect();
        let mut households = vec![Vec::new(); 67];
        for p in &persons {
            households[p.household as usize].push(p.id);
        }
        let pop = Population { region: 0, persons, households };
        let locs = LocationModel::generate(&[100, 100], &mut rng);
        let flows = CommuteFlows::gravity(&[100, 100], 0.8);
        (pop, locs, flows)
    }

    #[test]
    fn commute_stay_probability_respected() {
        let flows = CommuteFlows::gravity(&[1000, 1000, 1000], 0.7);
        for home in 0..3 {
            assert!((flows.stay_mass(home) - 0.7).abs() < 1e-9);
        }
    }

    #[test]
    fn commute_sampling_distribution() {
        let flows = CommuteFlows::gravity(&[1000, 1000], 0.8);
        let mut rng = StdRng::seed_from_u64(11);
        let n = 5000;
        let stays = (0..n).filter(|_| flows.sample_work_county(0, &mut rng) == 0).count();
        let frac = stays as f64 / n as f64;
        assert!((frac - 0.8).abs() < 0.03, "stay fraction {frac}");
    }

    #[test]
    fn single_county_always_stays() {
        let flows = CommuteFlows::gravity(&[500], 0.8);
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..50 {
            assert_eq!(flows.sample_work_county(0, &mut rng), 0);
        }
    }

    #[test]
    fn anchors_are_stable_within_person() {
        let (pop, locs, flows) = tiny_world();
        let mut rng = StdRng::seed_from_u64(13);
        let patterns: Vec<WeeklyPattern> = pop
            .persons
            .iter()
            .map(|p| weekly_pattern(assign_archetype(p, &mut rng), &mut rng))
            .collect();
        let visits = assign_locations(&pop, &patterns, &locs, &flows, &mut rng);
        // Every person's Work visits land at one location.
        for pid in 0..pop.len() as u32 {
            let works: std::collections::HashSet<LocationId> = visits
                .iter()
                .filter(|v| v.person == pid && v.activity == ActivityType::Work)
                .map(|v| v.location)
                .collect();
            assert!(works.len() <= 1, "person {pid} has {} workplaces", works.len());
        }
    }

    #[test]
    fn school_stays_in_home_county() {
        let (pop, locs, flows) = tiny_world();
        let mut rng = StdRng::seed_from_u64(14);
        let patterns: Vec<WeeklyPattern> = pop
            .persons
            .iter()
            .map(|p| weekly_pattern(assign_archetype(p, &mut rng), &mut rng))
            .collect();
        let visits = assign_locations(&pop, &patterns, &locs, &flows, &mut rng);
        for v in visits.iter().filter(|v| v.activity == ActivityType::School) {
            let home_county = pop.persons[v.person as usize].county;
            assert_eq!(locs.location(v.location).county, home_county);
        }
    }

    #[test]
    fn visit_kind_matches_location_kind() {
        let (pop, locs, flows) = tiny_world();
        let mut rng = StdRng::seed_from_u64(15);
        let patterns: Vec<WeeklyPattern> = pop
            .persons
            .iter()
            .map(|p| weekly_pattern(assign_archetype(p, &mut rng), &mut rng))
            .collect();
        let visits = assign_locations(&pop, &patterns, &locs, &flows, &mut rng);
        assert!(!visits.is_empty());
        for v in &visits {
            assert_eq!(locs.location(v.location).kind.serves(), v.activity);
        }
    }

    #[test]
    fn home_activities_produce_no_visits() {
        let (pop, locs, flows) = tiny_world();
        let mut rng = StdRng::seed_from_u64(16);
        let mut patterns = vec![WeeklyPattern::default(); pop.len()];
        patterns[0].activities.push(Activity {
            kind: ActivityType::Home,
            day: 0,
            start: 0,
            duration: 600,
        });
        let visits = assign_locations(&pop, &patterns, &locs, &flows, &mut rng);
        assert!(visits.is_empty());
    }
}
