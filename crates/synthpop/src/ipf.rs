//! Iterative proportional fitting (Deming–Stephan, 1940).
//!
//! The paper's base population model uses IPF to adjust a seed joint
//! distribution (from microdata samples) so its marginals match the
//! published census marginals for each region. We implement the 2-D
//! algorithm on an arbitrary seed table; the builder uses it to fit
//! age-group × household-size joints per county.

/// Result of an IPF run.
#[derive(Clone, Debug)]
pub struct IpfResult {
    /// Fitted joint table, row-major `rows × cols`.
    pub table: Vec<Vec<f64>>,
    /// Iterations used.
    pub iterations: usize,
    /// Final maximum relative marginal error.
    pub max_error: f64,
    /// Whether the run converged within tolerance.
    pub converged: bool,
}

/// Fit `seed` so its row sums match `row_targets` and column sums match
/// `col_targets`.
///
/// Zero cells in the seed stay zero (structural zeros are preserved, as
/// in the classical algorithm). Targets must be non-negative, and the
/// two target totals must agree to within 1e-6 relative error.
///
/// # Panics
/// Panics on shape mismatch or disagreeing target totals.
pub fn ipf(
    seed: &[Vec<f64>],
    row_targets: &[f64],
    col_targets: &[f64],
    tol: f64,
    max_iter: usize,
) -> IpfResult {
    let r = seed.len();
    assert!(r > 0, "ipf: empty seed");
    let c = seed[0].len();
    assert!(seed.iter().all(|row| row.len() == c), "ipf: ragged seed");
    assert_eq!(row_targets.len(), r, "ipf: row target length");
    assert_eq!(col_targets.len(), c, "ipf: col target length");

    let rt: f64 = row_targets.iter().sum();
    let ct: f64 = col_targets.iter().sum();
    assert!(
        (rt - ct).abs() <= 1e-6 * rt.max(ct).max(1.0),
        "ipf: marginal totals disagree ({rt} vs {ct})"
    );

    let mut t: Vec<Vec<f64>> = seed.to_vec();
    let mut max_err = f64::INFINITY;
    let mut iters = 0;

    for it in 0..max_iter {
        iters = it + 1;
        // Row scaling.
        for (i, row) in t.iter_mut().enumerate() {
            let s: f64 = row.iter().sum();
            if s > 0.0 {
                let f = row_targets[i] / s;
                for v in row.iter_mut() {
                    *v *= f;
                }
            }
        }
        // Column scaling.
        for j in 0..c {
            let s: f64 = t.iter().map(|row| row[j]).sum();
            if s > 0.0 {
                let f = col_targets[j] / s;
                for row in t.iter_mut() {
                    row[j] *= f;
                }
            }
        }
        // Convergence: max relative error across both marginals.
        max_err = 0.0;
        for (i, row) in t.iter().enumerate() {
            let s: f64 = row.iter().sum();
            let denom = row_targets[i].max(1e-12);
            max_err = max_err.max((s - row_targets[i]).abs() / denom);
        }
        for j in 0..c {
            let s: f64 = t.iter().map(|row| row[j]).sum();
            let denom = col_targets[j].max(1e-12);
            max_err = max_err.max((s - col_targets[j]).abs() / denom);
        }
        if max_err < tol {
            return IpfResult { table: t, iterations: iters, max_error: max_err, converged: true };
        }
    }
    IpfResult { table: t, iterations: iters, max_error: max_err, converged: false }
}

/// Integerize a fitted real-valued table to whole counts that sum to
/// `total`, by largest-remainder rounding. Used to turn IPF output into
/// actual person counts.
pub fn integerize(table: &[Vec<f64>], total: u64) -> Vec<Vec<u64>> {
    let sum: f64 = table.iter().flat_map(|r| r.iter()).sum();
    assert!(sum > 0.0, "integerize: zero table");
    let scale = total as f64 / sum;

    let mut floors: Vec<Vec<u64>> = Vec::with_capacity(table.len());
    let mut remainders: Vec<(f64, usize, usize)> = Vec::new();
    let mut allocated: u64 = 0;
    for (i, row) in table.iter().enumerate() {
        let mut frow = Vec::with_capacity(row.len());
        for (j, &v) in row.iter().enumerate() {
            let x = v * scale;
            let f = x.floor() as u64;
            allocated += f;
            remainders.push((x - x.floor(), i, j));
            frow.push(f);
        }
        floors.push(frow);
    }
    // Distribute the shortfall to the cells with the largest remainders.
    let mut shortfall = total.saturating_sub(allocated);
    remainders.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("NaN remainder"));
    for &(_, i, j) in &remainders {
        if shortfall == 0 {
            break;
        }
        floors[i][j] += 1;
        shortfall -= 1;
    }
    floors
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_simple_marginals() {
        let seed = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        let res = ipf(&seed, &[30.0, 70.0], &[40.0, 60.0], 1e-10, 100);
        assert!(res.converged);
        // Row sums.
        assert!((res.table[0].iter().sum::<f64>() - 30.0).abs() < 1e-6);
        assert!((res.table[1].iter().sum::<f64>() - 70.0).abs() < 1e-6);
        // Column sums.
        let c0: f64 = res.table.iter().map(|r| r[0]).sum();
        assert!((c0 - 40.0).abs() < 1e-6);
    }

    #[test]
    fn preserves_structural_zeros() {
        let seed = vec![vec![0.0, 1.0], vec![1.0, 1.0]];
        let res = ipf(&seed, &[10.0, 20.0], &[12.0, 18.0], 1e-9, 200);
        assert_eq!(res.table[0][0], 0.0);
    }

    #[test]
    fn preserves_seed_interaction_structure() {
        // IPF preserves odds ratios of the seed: cross-product ratio of a
        // 2x2 table is invariant under row/column scaling.
        let seed = vec![vec![2.0, 1.0], vec![1.0, 4.0]];
        let res = ipf(&seed, &[50.0, 50.0], &[50.0, 50.0], 1e-12, 500);
        let t = &res.table;
        let or_seed = (2.0 * 4.0) / (1.0 * 1.0);
        let or_fit = (t[0][0] * t[1][1]) / (t[0][1] * t[1][0]);
        assert!((or_fit - or_seed).abs() < 1e-6, "odds ratio {or_fit}");
    }

    #[test]
    fn reports_non_convergence_without_panic() {
        // Interacting seed (not rank-1) cannot satisfy both marginals in
        // two sweeps at an impossible tolerance.
        let seed = vec![vec![5.0, 1.0], vec![1.0, 5.0]];
        let res = ipf(&seed, &[30.0, 70.0], &[60.0, 40.0], 0.0, 2);
        assert!(!res.converged);
        assert_eq!(res.iterations, 2);
        assert!(res.max_error.is_finite());
    }

    #[test]
    #[should_panic(expected = "totals disagree")]
    fn rejects_inconsistent_targets() {
        let seed = vec![vec![1.0]];
        ipf(&seed, &[10.0], &[20.0], 1e-6, 10);
    }

    #[test]
    fn integerize_preserves_total() {
        let table = vec![vec![1.4, 2.3], vec![3.3, 0.5]];
        let ints = integerize(&table, 1000);
        let total: u64 = ints.iter().flat_map(|r| r.iter()).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn integerize_proportions_roughly_preserved() {
        let table = vec![vec![1.0, 3.0]];
        let ints = integerize(&table, 400);
        assert_eq!(ints[0][0] + ints[0][1], 400);
        assert!((ints[0][0] as i64 - 100).abs() <= 1);
        assert!((ints[0][1] as i64 - 300).abs() <= 1);
    }

    #[test]
    fn three_by_three_converges() {
        let seed = vec![vec![5.0, 3.0, 2.0], vec![2.0, 8.0, 1.0], vec![1.0, 1.0, 6.0]];
        let res = ipf(&seed, &[100.0, 150.0, 50.0], &[120.0, 110.0, 70.0], 1e-9, 500);
        assert!(res.converged, "err {}", res.max_error);
    }
}
