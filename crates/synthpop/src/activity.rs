//! Weekly activity sequences.
//!
//! Each person gets a week-long sequence of typed activities with start
//! times and durations (paper: fused from NHTS/ATUS/MTUS survey data,
//! matched with Fitted Values Matching for adults and CART for children).
//! We reproduce the *structure*: a small library of empirically shaped
//! weekly templates, assigned by a CART-like decision tree over
//! demographics, with per-person jitter so no two schedules are
//! identical.

use crate::person::Person;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Activity types; the seven contexts the paper's edges carry
/// (home, work, shopping, other, school, college, religion).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActivityType {
    Home,
    Work,
    Shopping,
    Other,
    School,
    College,
    Religion,
}

impl ActivityType {
    /// All seven types.
    pub const ALL: [ActivityType; 7] = [
        ActivityType::Home,
        ActivityType::Work,
        ActivityType::Shopping,
        ActivityType::Other,
        ActivityType::School,
        ActivityType::College,
        ActivityType::Religion,
    ];

    /// Stable small integer code (used in network serialization).
    pub fn code(&self) -> u8 {
        match self {
            ActivityType::Home => 0,
            ActivityType::Work => 1,
            ActivityType::Shopping => 2,
            ActivityType::Other => 3,
            ActivityType::School => 4,
            ActivityType::College => 5,
            ActivityType::Religion => 6,
        }
    }

    /// Inverse of [`code`](Self::code).
    pub fn from_code(c: u8) -> Option<ActivityType> {
        Self::ALL.get(c as usize).copied()
    }
}

/// One activity instance: a day-of-week, start time, and duration
/// (both in minutes from midnight).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Activity {
    pub kind: ActivityType,
    /// Day of week, 0 = Monday … 6 = Sunday.
    pub day: u8,
    /// Start minute within the day [0, 1440).
    pub start: u16,
    /// Duration in minutes; activities never cross midnight in this model.
    pub duration: u16,
}

impl Activity {
    /// End minute (exclusive), capped at midnight.
    pub fn end(&self) -> u16 {
        (self.start as u32 + self.duration as u32).min(1440) as u16
    }

    /// Overlap in minutes with another activity on the same day.
    pub fn overlap(&self, other: &Activity) -> u16 {
        if self.day != other.day {
            return 0;
        }
        let lo = self.start.max(other.start);
        let hi = self.end().min(other.end());
        hi.saturating_sub(lo)
    }
}

/// A person's week of non-home activities (home fills the gaps and is
/// handled by household cliques in the network model).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct WeeklyPattern {
    pub activities: Vec<Activity>,
}

impl WeeklyPattern {
    /// Activities on a given day of the week.
    pub fn on_day(&self, day: u8) -> impl Iterator<Item = &Activity> {
        self.activities.iter().filter(move |a| a.day == day)
    }

    /// Total out-of-home minutes across the week.
    pub fn total_minutes(&self) -> u32 {
        self.activities.iter().map(|a| a.duration as u32).sum()
    }
}

/// The person archetypes the CART-like tree maps demographics onto.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Archetype {
    Preschooler,
    Student,
    CollegeStudent,
    FullTimeWorker,
    PartTimeWorker,
    HomeMaker,
    Retiree,
}

/// CART-like assignment: a shallow decision tree on age plus a random
/// split for employment status and college attendance, mirroring the
/// paper's FVM/CART split (adults matched by fitted values, children by
/// classification tree).
pub fn assign_archetype<R: Rng + ?Sized>(person: &Person, rng: &mut R) -> Archetype {
    match person.age {
        0..=4 => Archetype::Preschooler,
        5..=17 => Archetype::Student,
        18..=22 => {
            if rng.random_bool(0.45) {
                Archetype::CollegeStudent
            } else if rng.random_bool(0.8) {
                Archetype::FullTimeWorker
            } else {
                Archetype::PartTimeWorker
            }
        }
        23..=64 => {
            let r: f64 = rng.random_range(0.0..1.0);
            if r < 0.62 {
                Archetype::FullTimeWorker
            } else if r < 0.80 {
                Archetype::PartTimeWorker
            } else {
                Archetype::HomeMaker
            }
        }
        _ => {
            if rng.random_bool(0.12) {
                Archetype::PartTimeWorker
            } else {
                Archetype::Retiree
            }
        }
    }
}

/// Build a jittered weekly pattern for an archetype.
///
/// Weekdays carry the anchor activity (work/school), everyone mixes in
/// shopping/other errands, and a fraction attends a weekend religious
/// service — giving the network all seven edge contexts.
pub fn weekly_pattern<R: Rng + ?Sized>(archetype: Archetype, rng: &mut R) -> WeeklyPattern {
    let mut acts = Vec::new();
    let jig = |rng: &mut R, base: i32, spread: i32| -> u16 {
        (base + rng.random_range(-spread..=spread)).clamp(0, 1439) as u16
    };

    match archetype {
        Archetype::Preschooler => {
            // Occasional daycare-like "school" 3 days a week.
            for day in [0u8, 2, 4] {
                if rng.random_bool(0.6) {
                    acts.push(Activity {
                        kind: ActivityType::School,
                        day,
                        start: jig(rng, 9 * 60, 30),
                        duration: 4 * 60,
                    });
                }
            }
        }
        Archetype::Student => {
            for day in 0..5u8 {
                acts.push(Activity {
                    kind: ActivityType::School,
                    day,
                    start: jig(rng, 8 * 60, 20),
                    duration: (6 * 60 + rng.random_range(0..60)) as u16,
                });
            }
        }
        Archetype::CollegeStudent => {
            for day in 0..5u8 {
                acts.push(Activity {
                    kind: ActivityType::College,
                    day,
                    start: jig(rng, 10 * 60, 60),
                    duration: (4 * 60 + rng.random_range(0..120)) as u16,
                });
            }
            if rng.random_bool(0.5) {
                acts.push(Activity {
                    kind: ActivityType::Work,
                    day: 5,
                    start: jig(rng, 12 * 60, 60),
                    duration: 5 * 60,
                });
            }
        }
        Archetype::FullTimeWorker => {
            for day in 0..5u8 {
                acts.push(Activity {
                    kind: ActivityType::Work,
                    day,
                    start: jig(rng, 9 * 60, 45),
                    duration: (8 * 60 + rng.random_range(0..60)) as u16,
                });
            }
        }
        Archetype::PartTimeWorker => {
            for day in [0u8, 1, 3] {
                acts.push(Activity {
                    kind: ActivityType::Work,
                    day,
                    start: jig(rng, 10 * 60, 90),
                    duration: (4 * 60 + rng.random_range(0..90)) as u16,
                });
            }
        }
        Archetype::HomeMaker | Archetype::Retiree => {
            // Errand-heavy schedule, no anchor.
        }
    }

    // Shopping: 1–3 trips a week for everyone over 4.
    if archetype != Archetype::Preschooler {
        let trips = rng.random_range(1..=3);
        for _ in 0..trips {
            acts.push(Activity {
                kind: ActivityType::Shopping,
                day: rng.random_range(0..7),
                start: jig(rng, 17 * 60, 120),
                duration: (30 + rng.random_range(0..60)) as u16,
            });
        }
    }
    // Other (social/recreation): 0–2 a week.
    for _ in 0..rng.random_range(0..=2) {
        acts.push(Activity {
            kind: ActivityType::Other,
            day: rng.random_range(0..7),
            start: jig(rng, 18 * 60, 90),
            duration: (60 + rng.random_range(0..90)) as u16,
        });
    }
    // Religion: ~35% attend a Sunday service.
    if rng.random_bool(0.35) {
        acts.push(Activity {
            kind: ActivityType::Religion,
            day: 6,
            start: jig(rng, 10 * 60, 30),
            duration: 90,
        });
    }

    WeeklyPattern { activities: acts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::person::Gender;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn person(age: u8) -> Person {
        Person {
            id: 0,
            household: 0,
            age,
            gender: Gender::Female,
            county: 0,
            home_x: 0.0,
            home_y: 0.0,
        }
    }

    #[test]
    fn activity_type_codes_round_trip() {
        for t in ActivityType::ALL {
            assert_eq!(ActivityType::from_code(t.code()), Some(t));
        }
        assert_eq!(ActivityType::from_code(7), None);
    }

    #[test]
    fn overlap_math() {
        let a = Activity { kind: ActivityType::Work, day: 2, start: 540, duration: 480 };
        let b = Activity { kind: ActivityType::Work, day: 2, start: 600, duration: 120 };
        assert_eq!(a.overlap(&b), 120);
        assert_eq!(b.overlap(&a), 120);
        let c = Activity { kind: ActivityType::Work, day: 3, start: 600, duration: 120 };
        assert_eq!(a.overlap(&c), 0);
        let d = Activity { kind: ActivityType::Work, day: 2, start: 1020, duration: 60 };
        assert_eq!(a.overlap(&d), 0, "back-to-back activities do not overlap");
    }

    #[test]
    fn end_caps_at_midnight() {
        let a = Activity { kind: ActivityType::Other, day: 0, start: 1400, duration: 100 };
        assert_eq!(a.end(), 1440);
    }

    #[test]
    fn archetypes_respect_age() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(assign_archetype(&person(3), &mut rng), Archetype::Preschooler);
        assert_eq!(assign_archetype(&person(12), &mut rng), Archetype::Student);
        for _ in 0..50 {
            let a = assign_archetype(&person(30), &mut rng);
            assert!(matches!(
                a,
                Archetype::FullTimeWorker | Archetype::PartTimeWorker | Archetype::HomeMaker
            ));
            let a = assign_archetype(&person(75), &mut rng);
            assert!(matches!(a, Archetype::Retiree | Archetype::PartTimeWorker));
        }
    }

    #[test]
    fn students_go_to_school_five_days() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = weekly_pattern(Archetype::Student, &mut rng);
        let school_days: std::collections::HashSet<u8> =
            p.activities.iter().filter(|a| a.kind == ActivityType::School).map(|a| a.day).collect();
        assert_eq!(school_days.len(), 5);
    }

    #[test]
    fn workers_work_weekdays_only() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = weekly_pattern(Archetype::FullTimeWorker, &mut rng);
        for a in p.activities.iter().filter(|a| a.kind == ActivityType::Work) {
            assert!(a.day < 5);
            assert!(a.duration >= 8 * 60);
        }
    }

    #[test]
    fn all_contexts_reachable() {
        // Across many draws, every activity type should appear somewhere.
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..300 {
            for arch in [
                Archetype::Preschooler,
                Archetype::Student,
                Archetype::CollegeStudent,
                Archetype::FullTimeWorker,
                Archetype::PartTimeWorker,
                Archetype::Retiree,
            ] {
                for a in weekly_pattern(arch, &mut rng).activities {
                    seen.insert(a.kind);
                }
            }
        }
        // Home is implicit (household cliques), so expect the other six.
        for t in ActivityType::ALL.iter().filter(|t| **t != ActivityType::Home) {
            assert!(seen.contains(t), "never generated {t:?}");
        }
    }

    #[test]
    fn patterns_fit_inside_days() {
        let mut rng = StdRng::seed_from_u64(5);
        for arch in [Archetype::Student, Archetype::FullTimeWorker, Archetype::CollegeStudent] {
            for _ in 0..100 {
                let p = weekly_pattern(arch, &mut rng);
                for a in &p.activities {
                    assert!(a.start < 1440);
                    assert!(a.day < 7);
                    assert!(a.end() <= 1440);
                }
            }
        }
    }
}
