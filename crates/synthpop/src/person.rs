//! Persons, demographics, and households.
//!
//! A synthesized person carries the traits the paper lists as the typical
//! US choices: household ID, age and age group, gender, county code, and
//! home coordinates. The five age groups are exactly the Table-III
//! stratification of the CDC disease model.

use epiflow_surveillance::RegionId;
use serde::{Deserialize, Serialize};

/// Person identifier, unique within one region's population.
pub type PersonId = u32;

/// Household identifier.
pub type HouseholdId = u32;

/// The five CDC age groups of Table III.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AgeGroup {
    /// 0–4 years.
    Preschool,
    /// 5–17 years.
    School,
    /// 18–49 years.
    Adult,
    /// 50–64 years.
    Older,
    /// 65+ years.
    Senior,
}

impl AgeGroup {
    /// Classify an age in years.
    pub fn from_age(age: u8) -> Self {
        match age {
            0..=4 => AgeGroup::Preschool,
            5..=17 => AgeGroup::School,
            18..=49 => AgeGroup::Adult,
            50..=64 => AgeGroup::Older,
            _ => AgeGroup::Senior,
        }
    }

    /// Index 0..5, in Table-III column order.
    pub fn index(&self) -> usize {
        match self {
            AgeGroup::Preschool => 0,
            AgeGroup::School => 1,
            AgeGroup::Adult => 2,
            AgeGroup::Older => 3,
            AgeGroup::Senior => 4,
        }
    }

    /// All five groups in column order.
    pub const ALL: [AgeGroup; 5] =
        [AgeGroup::Preschool, AgeGroup::School, AgeGroup::Adult, AgeGroup::Older, AgeGroup::Senior];

    /// Approximate US population share of each group (ACS-like marginals;
    /// used as IPF targets).
    pub fn us_share(&self) -> f64 {
        match self {
            AgeGroup::Preschool => 0.059,
            AgeGroup::School => 0.163,
            AgeGroup::Adult => 0.424,
            AgeGroup::Older => 0.192,
            AgeGroup::Senior => 0.162,
        }
    }
}

/// Binary gender as in the paper's trait list.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Gender {
    Female,
    Male,
}

/// One synthetic person.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Person {
    pub id: PersonId,
    pub household: HouseholdId,
    pub age: u8,
    pub gender: Gender,
    /// County index within the region (0-based).
    pub county: u16,
    /// Home location coordinates (synthetic lat/lon-like plane).
    pub home_x: f32,
    pub home_y: f32,
}

impl Person {
    /// The person's CDC age group.
    pub fn age_group(&self) -> AgeGroup {
        AgeGroup::from_age(self.age)
    }
}

/// A region's synthetic population: the person-trait table that the real
/// system loads into PostgreSQL.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Population {
    pub region: RegionId,
    pub persons: Vec<Person>,
    /// `households[h]` lists the member person ids of household `h`.
    pub households: Vec<Vec<PersonId>>,
}

impl Population {
    /// Number of persons.
    pub fn len(&self) -> usize {
        self.persons.len()
    }

    /// True when no persons were synthesized.
    pub fn is_empty(&self) -> bool {
        self.persons.is_empty()
    }

    /// Person by id.
    pub fn person(&self, id: PersonId) -> &Person {
        &self.persons[id as usize]
    }

    /// Count of persons per age group, in Table-III order.
    pub fn age_histogram(&self) -> [usize; 5] {
        let mut h = [0usize; 5];
        for p in &self.persons {
            h[p.age_group().index()] += 1;
        }
        h
    }

    /// Count of persons per county.
    pub fn county_histogram(&self, n_counties: usize) -> Vec<usize> {
        let mut h = vec![0usize; n_counties];
        for p in &self.persons {
            h[p.county as usize] += 1;
        }
        h
    }

    /// Mean household size.
    pub fn mean_household_size(&self) -> f64 {
        if self.households.is_empty() {
            return 0.0;
        }
        self.persons.len() as f64 / self.households.len() as f64
    }

    /// Serialize the person-trait table to the CSV format the paper
    /// describes (header + one row per person).
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.persons.len() * 48);
        out.push_str("pid,hid,age,age_group,gender,county,home_x,home_y\n");
        for p in &self.persons {
            let g = match p.gender {
                Gender::Female => 'F',
                Gender::Male => 'M',
            };
            out.push_str(&format!(
                "{},{},{},{},{},{},{:.4},{:.4}\n",
                p.id,
                p.household,
                p.age,
                p.age_group().index(),
                g,
                p.county,
                p.home_x,
                p.home_y
            ));
        }
        out
    }

    /// Parse a CSV produced by [`Population::to_csv`].
    ///
    /// Returns an error message for malformed rows. Household membership
    /// lists are rebuilt from the `hid` column.
    pub fn from_csv(region: RegionId, csv: &str) -> Result<Population, String> {
        let mut persons = Vec::new();
        let mut max_hid = 0;
        for (lineno, line) in csv.lines().enumerate().skip(1) {
            if line.trim().is_empty() {
                continue;
            }
            let f: Vec<&str> = line.split(',').collect();
            if f.len() != 8 {
                return Err(format!("line {}: expected 8 fields, got {}", lineno + 1, f.len()));
            }
            let parse = |s: &str, what: &str| -> Result<u32, String> {
                s.parse().map_err(|_| format!("line {}: bad {what} `{s}`", lineno + 1))
            };
            let id = parse(f[0], "pid")?;
            let household = parse(f[1], "hid")?;
            let age = parse(f[2], "age")? as u8;
            let gender = match f[4] {
                "F" => Gender::Female,
                "M" => Gender::Male,
                other => return Err(format!("line {}: bad gender `{other}`", lineno + 1)),
            };
            let county = parse(f[5], "county")? as u16;
            let home_x: f32 =
                f[6].parse().map_err(|_| format!("line {}: bad home_x", lineno + 1))?;
            let home_y: f32 =
                f[7].parse().map_err(|_| format!("line {}: bad home_y", lineno + 1))?;
            max_hid = max_hid.max(household);
            persons.push(Person { id, household, age, gender, county, home_x, home_y });
        }
        let mut households =
            vec![Vec::new(); (max_hid as usize) + usize::from(!persons.is_empty())];
        for p in &persons {
            households[p.household as usize].push(p.id);
        }
        Ok(Population { region, persons, households })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn age_group_boundaries() {
        assert_eq!(AgeGroup::from_age(0), AgeGroup::Preschool);
        assert_eq!(AgeGroup::from_age(4), AgeGroup::Preschool);
        assert_eq!(AgeGroup::from_age(5), AgeGroup::School);
        assert_eq!(AgeGroup::from_age(17), AgeGroup::School);
        assert_eq!(AgeGroup::from_age(18), AgeGroup::Adult);
        assert_eq!(AgeGroup::from_age(49), AgeGroup::Adult);
        assert_eq!(AgeGroup::from_age(50), AgeGroup::Older);
        assert_eq!(AgeGroup::from_age(64), AgeGroup::Older);
        assert_eq!(AgeGroup::from_age(65), AgeGroup::Senior);
        assert_eq!(AgeGroup::from_age(100), AgeGroup::Senior);
    }

    #[test]
    fn us_shares_sum_to_one() {
        let s: f64 = AgeGroup::ALL.iter().map(|g| g.us_share()).sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    fn tiny_population() -> Population {
        Population {
            region: 46,
            persons: vec![
                Person {
                    id: 0,
                    household: 0,
                    age: 34,
                    gender: Gender::Female,
                    county: 0,
                    home_x: 1.5,
                    home_y: 2.5,
                },
                Person {
                    id: 1,
                    household: 0,
                    age: 8,
                    gender: Gender::Male,
                    county: 0,
                    home_x: 1.5,
                    home_y: 2.5,
                },
                Person {
                    id: 2,
                    household: 1,
                    age: 70,
                    gender: Gender::Female,
                    county: 1,
                    home_x: 9.0,
                    home_y: 3.0,
                },
            ],
            households: vec![vec![0, 1], vec![2]],
        }
    }

    #[test]
    fn histograms() {
        let p = tiny_population();
        assert_eq!(p.age_histogram(), [0, 1, 1, 0, 1]);
        assert_eq!(p.county_histogram(2), vec![2, 1]);
        assert!((p.mean_household_size() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn csv_round_trip() {
        let p = tiny_population();
        let csv = p.to_csv();
        let q = Population::from_csv(46, &csv).unwrap();
        assert_eq!(q.len(), 3);
        assert_eq!(q.person(1).age, 8);
        assert_eq!(q.person(2).gender, Gender::Female);
        assert_eq!(q.households.len(), 2);
        assert_eq!(q.households[0], vec![0, 1]);
    }

    #[test]
    fn csv_rejects_malformed() {
        assert!(Population::from_csv(0, "header\n1,2,3\n").is_err());
        assert!(Population::from_csv(0, "header\nx,0,30,2,F,0,1.0,1.0\n").is_err());
        assert!(Population::from_csv(0, "header\n0,0,30,2,Q,0,1.0,1.0\n").is_err());
    }

    #[test]
    fn empty_csv_gives_empty_population() {
        let p = Population::from_csv(0, "header\n").unwrap();
        assert!(p.is_empty());
        assert_eq!(p.mean_household_size(), 0.0);
    }
}
