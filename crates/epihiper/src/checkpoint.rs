//! Tick-level checkpoint/restart (the robustness primitive OSPREY and
//! the RESUME workshop report call out as missing for epidemic
//! workflows on shared HPC).
//!
//! A [`SimSnapshot`] captures everything a [`crate::Simulation`] needs
//! to resume byte-identically: the authoritative [`SimState`], the
//! [`TickBuckets`](crate::frontier::TickBuckets) progression queues in
//! a partition-agnostic form, intervention trigger state, and the
//! mid-run continuation ([`RunCarry`]: output series, last tick's
//! transitions, cumulative counts, telemetry). Deliberately *absent*:
//!
//! * frontier/pressure structures (`ActiveSet`, infectious-neighbor
//!   counts, occupancy) — derived data, rebuilt on restore by
//!   `Simulation::rebuild_frontier` in O(V + E);
//! * RNG state — the engine's RNG is counter-based, keyed by
//!   `(seed, node, tick)`, so its "position" is fully determined by the
//!   tick the resume starts at.
//!
//! The wire format is deliberately boring: a one-line header, then one
//! checksummed section per component (`meta`, `state`, `queues`,
//! `interventions`, `carry`), each an FNV-1a-64-guarded JSON payload.
//! Per-section checksums localise damage — a flipped byte names the
//! section it hit — and a truncated file fails structurally
//! ([`SnapshotError::Torn`]) before any payload is trusted.
//!
//! [`SnapshotChain`] layers the torn-write story on top: two A/B slots
//! written alternately, so the previous snapshot is never overwritten
//! in place. A corrupted or torn newest slot is detected on load,
//! surfaced as a [`SnapshotEvent::SnapshotCorrupt`], and recovery falls
//! back to the older sibling — losing one checkpoint interval, not the
//! run. Load never panics on hostile bytes.

use crate::engine::RunCarry;
use crate::state::SimState;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Current snapshot format version (the `v1` of the header line).
pub const SNAPSHOT_VERSION: u32 = 1;

/// Magic token opening every snapshot.
const MAGIC: &str = "EPIHIPERSNAP";

/// FNV-1a 64-bit hash — the per-section checksum. Not cryptographic;
/// it detects the bit flips and truncations fault injection produces.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Snapshot identity and compatibility gate: a resume is refused unless
/// these match the simulation being rebuilt.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SnapshotMeta {
    /// Format version ([`SNAPSHOT_VERSION`] at write time).
    pub version: u32,
    /// First tick the resumed run will execute.
    pub next_tick: u32,
    /// Replicate seed (keys every RNG stream).
    pub seed: u64,
    /// Node count of the network the snapshot belongs to.
    pub n_nodes: u64,
    /// Health-state count of the disease model.
    pub n_states: u32,
    /// Whether the run keeps the full transition log.
    pub record_transitions: bool,
}

/// A complete, versioned simulation snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct SimSnapshot {
    pub meta: SnapshotMeta,
    /// The authoritative mutable state (health, schedules, edge bits,
    /// flags, variables, memory-model counters).
    pub state: SimState,
    /// Progression queues: `(tick, nodes)` sorted by tick, nodes sorted
    /// with duplicates preserved, independent of partition count.
    pub queues: Vec<(u32, Vec<u32>)>,
    /// Per-intervention `(name, trigger state)` in execution order.
    pub interventions: Vec<(String, Option<String>)>,
    /// Mid-run continuation (`None` for a tick-0 snapshot).
    pub carry: Option<RunCarry>,
}

/// Why a snapshot failed to load or apply. Every variant is a normal
/// error value — corrupt input never panics.
#[derive(Clone, Debug, PartialEq)]
pub enum SnapshotError {
    /// Structurally unreadable: truncated, bad header, missing section.
    Torn(String),
    /// A section's checksum did not match its payload.
    Corrupt { section: String },
    /// Unsupported format version.
    Version(u32),
    /// The snapshot does not belong to the simulation being resumed.
    Mismatch(String),
    /// Every slot of a [`SnapshotChain`] failed to load.
    NoValidSnapshot,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Torn(why) => write!(f, "torn snapshot: {why}"),
            SnapshotError::Corrupt { section } => {
                write!(f, "snapshot section `{section}` failed its checksum")
            }
            SnapshotError::Version(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::Mismatch(why) => write!(f, "snapshot/simulation mismatch: {why}"),
            SnapshotError::NoValidSnapshot => write!(f, "no valid snapshot in either slot"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// One section located by [`scan_sections`]: name, payload byte range,
/// and the checksum the header claims for it.
struct SectionRef {
    name: String,
    payload: Range<usize>,
    claimed_hash: u64,
}

/// Read one `\n`-terminated line starting at `pos`, returning the line
/// (without the newline) and the position after it.
fn read_line(bytes: &[u8], pos: usize) -> Result<(&str, usize), SnapshotError> {
    let rest = bytes.get(pos..).ok_or_else(|| SnapshotError::Torn("past end of data".into()))?;
    let nl = rest
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| SnapshotError::Torn("unterminated header line".into()))?;
    let line = std::str::from_utf8(&rest[..nl])
        .map_err(|_| SnapshotError::Torn("non-UTF-8 header line".into()))?;
    Ok((line, pos + nl + 1))
}

/// Structurally parse the header and section table without verifying
/// checksums. Returns the parsed format version and the section list.
fn scan_sections(bytes: &[u8]) -> Result<(u32, Vec<SectionRef>), SnapshotError> {
    let (header, mut pos) = read_line(bytes, 0)?;
    let mut tokens = header.split(' ');
    let magic = tokens.next().unwrap_or("");
    if magic != MAGIC {
        return Err(SnapshotError::Torn(format!("bad magic `{magic}`")));
    }
    let version: u32 = tokens
        .next()
        .and_then(|t| t.strip_prefix('v'))
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| SnapshotError::Torn("bad version token".into()))?;
    let n_sections: usize = tokens
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| SnapshotError::Torn("bad section count".into()))?;

    let mut sections = Vec::with_capacity(n_sections);
    for _ in 0..n_sections {
        let (line, after) = read_line(bytes, pos)?;
        let mut t = line.split(' ');
        let name = t.next().unwrap_or("").to_string();
        let len: usize = t
            .next()
            .and_then(|x| x.parse().ok())
            .ok_or_else(|| SnapshotError::Torn(format!("bad length in section `{name}`")))?;
        let claimed_hash = t
            .next()
            .and_then(|x| u64::from_str_radix(x, 16).ok())
            .ok_or_else(|| SnapshotError::Torn(format!("bad checksum in section `{name}`")))?;
        let payload = after..after + len;
        // `get` doubles as the bounds check: `None` when the payload
        // (or its trailing newline) runs past the end of the file.
        if bytes.get(payload.end) != Some(&b'\n') {
            return Err(SnapshotError::Torn(format!("section `{name}` truncated")));
        }
        pos = payload.end + 1;
        sections.push(SectionRef { name, payload, claimed_hash });
    }
    Ok((version, sections))
}

/// Payload byte ranges per section, in file order — the hook the
/// corruption tests use to flip a byte inside each checksummed region.
pub fn section_ranges(bytes: &[u8]) -> Result<Vec<(String, Range<usize>)>, SnapshotError> {
    let (_, sections) = scan_sections(bytes)?;
    Ok(sections.into_iter().map(|s| (s.name, s.payload)).collect())
}

impl SimSnapshot {
    /// Serialize to the checksummed wire format.
    pub fn encode(&self) -> Vec<u8> {
        let sections: [(&str, String); 5] = [
            ("meta", serde_json::to_string(&self.meta).expect("meta serializes")),
            ("state", serde_json::to_string(&self.state).expect("state serializes")),
            ("queues", serde_json::to_string(&self.queues).expect("queues serialize")),
            (
                "interventions",
                serde_json::to_string(&self.interventions).expect("interventions serialize"),
            ),
            ("carry", serde_json::to_string(&self.carry).expect("carry serializes")),
        ];
        let mut out = format!("{MAGIC} v{SNAPSHOT_VERSION} {}\n", sections.len()).into_bytes();
        for (name, payload) in &sections {
            out.extend_from_slice(
                format!("{name} {} {:016x}\n", payload.len(), fnv1a(payload.as_bytes())).as_bytes(),
            );
            out.extend_from_slice(payload.as_bytes());
            out.push(b'\n');
        }
        out
    }

    /// Parse and verify the wire format. Checksums are verified before
    /// any payload is deserialized; damage is reported as
    /// [`SnapshotError::Corrupt`] naming the section it hit,
    /// structural damage as [`SnapshotError::Torn`].
    pub fn decode(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let (version, sections) = scan_sections(bytes)?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::Version(version));
        }
        let mut payloads: Vec<(String, &str)> = Vec::with_capacity(sections.len());
        for s in &sections {
            let payload = &bytes[s.payload.clone()];
            if fnv1a(payload) != s.claimed_hash {
                return Err(SnapshotError::Corrupt { section: s.name.clone() });
            }
            let text = std::str::from_utf8(payload)
                .map_err(|_| SnapshotError::Corrupt { section: s.name.clone() })?;
            payloads.push((s.name.clone(), text));
        }
        let get = |name: &str| {
            payloads
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, p)| *p)
                .ok_or_else(|| SnapshotError::Torn(format!("missing section `{name}`")))
        };
        let parse_err = |name: &str, e: serde_json::Error| {
            SnapshotError::Torn(format!("section `{name}`: {e}"))
        };
        let meta: SnapshotMeta =
            serde_json::from_str(get("meta")?).map_err(|e| parse_err("meta", e))?;
        let state: SimState =
            serde_json::from_str(get("state")?).map_err(|e| parse_err("state", e))?;
        let queues: Vec<(u32, Vec<u32>)> =
            serde_json::from_str(get("queues")?).map_err(|e| parse_err("queues", e))?;
        let interventions: Vec<(String, Option<String>)> =
            serde_json::from_str(get("interventions")?)
                .map_err(|e| parse_err("interventions", e))?;
        let carry: Option<RunCarry> =
            serde_json::from_str(get("carry")?).map_err(|e| parse_err("carry", e))?;
        Ok(SimSnapshot { meta, state, queues, interventions, carry })
    }
}

/// Observable snapshot-chain activity, for tests and workflow logs.
#[derive(Clone, Debug, PartialEq)]
pub enum SnapshotEvent {
    /// A snapshot was written into `slot`.
    Wrote { slot: usize, seq: u64, bytes: usize },
    /// A slot failed to load during recovery.
    SnapshotCorrupt { slot: usize, seq: u64, error: String },
    /// Recovery skipped a bad newer slot and used an older one.
    FellBack { slot: usize, seq: u64 },
}

/// One occupied chain slot.
#[derive(Clone, Debug)]
struct Slot {
    seq: u64,
    bytes: Vec<u8>,
}

/// A two-slot A/B snapshot chain: writes alternate between slots, so
/// the previous snapshot is never overwritten in place and a torn or
/// corrupted write costs one checkpoint interval, not the run. Slots
/// are in-memory byte buffers standing in for the two on-disk files —
/// the fault hooks ([`SnapshotChain::corrupt_slot`],
/// [`SnapshotChain::tear_slot`]) model exactly the damage a crashed or
/// interrupted writer leaves behind.
#[derive(Clone, Debug, Default)]
pub struct SnapshotChain {
    slots: [Option<Slot>; 2],
    seq: u64,
    /// Chain activity log (writes, corruption detections, fallbacks).
    pub events: Vec<SnapshotEvent>,
}

impl SnapshotChain {
    /// Empty chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sequence number of the most recent write (0 = never written).
    pub fn latest_seq(&self) -> u64 {
        self.seq
    }

    /// Encode `snapshot` into the next A/B slot.
    pub fn write(&mut self, snapshot: &SimSnapshot) {
        self.seq += 1;
        let slot = (self.seq % 2) as usize;
        let bytes = snapshot.encode();
        self.events.push(SnapshotEvent::Wrote { slot, seq: self.seq, bytes: bytes.len() });
        self.slots[slot] = Some(Slot { seq: self.seq, bytes });
    }

    /// Fault hook: flip one byte of a slot (bit-rot / partial write).
    pub fn corrupt_slot(&mut self, slot: usize, offset: usize) {
        if let Some(s) = &mut self.slots[slot] {
            if let Some(b) = s.bytes.get_mut(offset) {
                *b ^= 0x40;
            }
        }
    }

    /// Fault hook: truncate a slot to `keep` bytes (torn write).
    pub fn tear_slot(&mut self, slot: usize, keep: usize) {
        if let Some(s) = &mut self.slots[slot] {
            s.bytes.truncate(keep);
        }
    }

    /// Raw bytes of a slot (for external corruption tests).
    pub fn slot_bytes(&self, slot: usize) -> Option<&[u8]> {
        self.slots[slot].as_ref().map(|s| s.bytes.as_slice())
    }

    /// Load the newest valid snapshot: slots are tried newest-first;
    /// a slot that fails to decode is reported via
    /// [`SnapshotEvent::SnapshotCorrupt`] and recovery falls back to
    /// its sibling. Never panics; [`SnapshotError::NoValidSnapshot`]
    /// when both slots are missing or bad.
    pub fn load(&mut self) -> Result<SimSnapshot, SnapshotError> {
        let mut order: Vec<usize> = (0..2).filter(|&i| self.slots[i].is_some()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.slots[i].as_ref().map(|s| s.seq)));
        let mut fell_back = false;
        for slot in order {
            let s = self.slots[slot].as_ref().expect("occupied slot");
            let seq = s.seq;
            match SimSnapshot::decode(&s.bytes) {
                Ok(snap) => {
                    if fell_back {
                        self.events.push(SnapshotEvent::FellBack { slot, seq });
                    }
                    return Ok(snap);
                }
                Err(e) => {
                    self.events.push(SnapshotEvent::SnapshotCorrupt {
                        slot,
                        seq,
                        error: e.to_string(),
                    });
                    fell_back = true;
                }
            }
        }
        Err(SnapshotError::NoValidSnapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disease::sir_model;
    use crate::engine::{SimConfig, Simulation};
    use crate::interventions::InterventionSet;
    use epiflow_synthpop::network::ContactEdge;
    use epiflow_synthpop::{ActivityType, ContactNetwork};

    fn small_net(n: u32) -> ContactNetwork {
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                edges.push(ContactEdge {
                    u,
                    v,
                    start: 480,
                    duration: 480,
                    ctx_u: ActivityType::Work,
                    ctx_v: ActivityType::Work,
                    weight: 1.0,
                });
            }
        }
        ContactNetwork { n_nodes: n as usize, edges }
    }

    fn snapshot_after(ticks: u32) -> SimSnapshot {
        let net = small_net(20);
        let mut sim = Simulation::new(
            &net,
            sir_model(1.5, 5.0),
            vec![2; 20],
            vec![0; 20],
            InterventionSet::default(),
            SimConfig { ticks, seed: 11, initial_infections: 3, ..Default::default() },
        );
        sim.run();
        sim.snapshot()
    }

    #[test]
    fn ckpt_encode_decode_round_trips() {
        let snap = snapshot_after(10);
        assert_eq!(snap.meta.next_tick, 10);
        let bytes = snap.encode();
        let back = SimSnapshot::decode(&bytes).expect("clean bytes decode");
        assert_eq!(back, snap);
        // Encoding is deterministic (checksummable byte-for-byte).
        assert_eq!(snap.encode(), bytes);
    }

    #[test]
    fn ckpt_every_section_is_checksum_guarded() {
        let snap = snapshot_after(8);
        let bytes = snap.encode();
        let ranges = section_ranges(&bytes).unwrap();
        let names: Vec<&str> = ranges.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["meta", "state", "queues", "interventions", "carry"]);
        for (name, range) in &ranges {
            if range.is_empty() {
                continue;
            }
            // Flip one byte in the middle of the section's payload.
            let mut bad = bytes.clone();
            let mid = range.start + range.len() / 2;
            bad[mid] ^= 0x40;
            match SimSnapshot::decode(&bad) {
                Err(SnapshotError::Corrupt { section }) => {
                    assert_eq!(&section, name, "corruption attributed to the wrong section")
                }
                other => panic!("flipped byte in `{name}` gave {other:?}"),
            }
        }
    }

    #[test]
    fn ckpt_truncation_is_torn_not_panic() {
        let snap = snapshot_after(5);
        let bytes = snap.encode();
        // Every strict prefix must fail cleanly (never panic, never
        // succeed) — sampled densely to keep the test fast.
        for keep in (0..bytes.len()).step_by(7).chain([bytes.len() - 1]) {
            let res = SimSnapshot::decode(&bytes[..keep]);
            assert!(res.is_err(), "prefix of {keep} bytes decoded");
        }
        // And garbage is rejected structurally.
        assert!(matches!(SimSnapshot::decode(b"not a snapshot\n"), Err(SnapshotError::Torn(_))));
    }

    #[test]
    fn ckpt_version_gate() {
        let snap = snapshot_after(3);
        let mut bytes = snap.encode();
        // Rewrite the header's version token (header is line one).
        let header_end = bytes.iter().position(|&b| b == b'\n').unwrap();
        let header = String::from_utf8(bytes[..header_end].to_vec()).unwrap();
        let bumped = header.replace("v1", "v2");
        bytes.splice(..header_end, bumped.into_bytes());
        assert_eq!(SimSnapshot::decode(&bytes), Err(SnapshotError::Version(2)));
    }

    #[test]
    fn ckpt_chain_falls_back_to_older_slot() {
        let older = snapshot_after(4);
        let newer = snapshot_after(8);
        let mut chain = SnapshotChain::new();
        chain.write(&older);
        chain.write(&newer);
        assert_eq!(chain.latest_seq(), 2);

        // Clean chain loads the newest.
        assert_eq!(chain.load().unwrap().meta.next_tick, 8);

        // Corrupt the newest slot (seq 2 lives in slot 0): load
        // detects it, surfaces the event, and falls back to seq 1.
        let newest_len = chain.slot_bytes(0).unwrap().len();
        chain.corrupt_slot(0, newest_len / 2);
        let recovered = chain.load().expect("older sibling is intact");
        assert_eq!(recovered.meta.next_tick, 4);
        assert!(chain
            .events
            .iter()
            .any(|e| matches!(e, SnapshotEvent::SnapshotCorrupt { slot: 0, seq: 2, .. })));
        assert!(chain
            .events
            .iter()
            .any(|e| matches!(e, SnapshotEvent::FellBack { slot: 1, seq: 1 })));
    }

    #[test]
    fn ckpt_chain_torn_write_and_total_loss() {
        let snap = snapshot_after(6);
        let mut chain = SnapshotChain::new();
        chain.write(&snap);
        // Tear the only slot mid-file: recovery has nothing left.
        let len = chain.slot_bytes(1).unwrap().len();
        chain.tear_slot(1, len / 3);
        assert_eq!(chain.load(), Err(SnapshotError::NoValidSnapshot));

        // A later good write recovers the chain.
        chain.write(&snap);
        assert!(chain.load().is_ok());
    }

    #[test]
    fn ckpt_error_display_is_informative() {
        let errs = [
            SnapshotError::Torn("x".into()),
            SnapshotError::Corrupt { section: "state".into() },
            SnapshotError::Version(9),
            SnapshotError::Mismatch("seed".into()),
            SnapshotError::NoValidSnapshot,
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
