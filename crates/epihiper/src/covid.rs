//! The builtin COVID-19 disease model (paper Fig. 12, Tables III & IV —
//! the CDC "best guess" planning parameters [8]).
//!
//! States and the age-stratified severity ladder follow the paper
//! exactly; the per-age branch probabilities in Table III reconstruct
//! consistently (each state's outgoing probabilities sum to 1 in every
//! age column), and we encode them verbatim. A few dwell-time cells are
//! garbled in the available scan; where ambiguous we use the companion
//! rows' values (documented inline), preserving the distribution
//! *family* (fixed / truncated-normal / discrete) the table specifies.
//!
//! Age groups: 0–4, 5–17, 18–49, 50–64, 65+.

use crate::disease::{
    DiseaseModel, DwellTime, HealthState, Progression, Transmission, N_AGE_GROUPS,
};

/// State indices of the COVID-19 model, in declaration order.
pub mod states {
    use crate::disease::StateId;
    pub const SUSCEPTIBLE: StateId = 0;
    pub const EXPOSED: StateId = 1;
    pub const PRESYMPTOMATIC: StateId = 2;
    pub const SYMPTOMATIC: StateId = 3;
    pub const ASYMPTOMATIC: StateId = 4;
    /// Medical attention, recovery path ("Attd").
    pub const ATTENDED: StateId = 5;
    /// Medical attention resulting in hospitalization ("Attd(H)").
    pub const ATTENDED_H: StateId = 6;
    /// Medical attention resulting in death ("Attd(D)").
    pub const ATTENDED_D: StateId = 7;
    /// Hospitalized, recovery path ("Hosp").
    pub const HOSPITALIZED: StateId = 8;
    /// Hospitalized on the death path ("Hosp(D)").
    pub const HOSPITALIZED_D: StateId = 9;
    /// Ventilated, recovery path ("Vent").
    pub const VENTILATED: StateId = 10;
    /// Ventilated on the death path ("Vent(D)").
    pub const VENTILATED_D: StateId = 11;
    pub const RECOVERED: StateId = 12;
    pub const DEATH: StateId = 13;
    /// Treatment failure: susceptible again (Table IV lists its
    /// susceptibility; no inbound edge in the default model).
    pub const RX_FAILURE: StateId = 14;
}

fn same(d: DwellTime) -> [DwellTime; N_AGE_GROUPS] {
    [d.clone(), d.clone(), d.clone(), d.clone(), d]
}

fn normals(means: [f64; N_AGE_GROUPS], sds: [f64; N_AGE_GROUPS]) -> [DwellTime; N_AGE_GROUPS] {
    [
        DwellTime::Normal { mean: means[0], sd: sds[0] },
        DwellTime::Normal { mean: means[1], sd: sds[1] },
        DwellTime::Normal { mean: means[2], sd: sds[2] },
        DwellTime::Normal { mean: means[3], sd: sds[3] },
        DwellTime::Normal { mean: means[4], sd: sds[4] },
    ]
}

/// Build the COVID-19 model.
pub fn covid19_model() -> DiseaseModel {
    use states::*;

    let states = vec![
        HealthState { name: "Susceptible".into(), infectivity: 0.0, susceptibility: 1.0 },
        HealthState { name: "Exposed".into(), infectivity: 0.0, susceptibility: 0.0 },
        // Table IV: Presymptomatic ι = 0.8, Symptomatic ι = 1.0,
        // Asymptomatic ι = 1.0.
        HealthState { name: "Presymptomatic".into(), infectivity: 0.8, susceptibility: 0.0 },
        HealthState { name: "Symptomatic".into(), infectivity: 1.0, susceptibility: 0.0 },
        HealthState { name: "Asymptomatic".into(), infectivity: 1.0, susceptibility: 0.0 },
        HealthState { name: "Attended".into(), infectivity: 0.0, susceptibility: 0.0 },
        HealthState { name: "AttendedH".into(), infectivity: 0.0, susceptibility: 0.0 },
        HealthState { name: "AttendedD".into(), infectivity: 0.0, susceptibility: 0.0 },
        HealthState { name: "Hospitalized".into(), infectivity: 0.0, susceptibility: 0.0 },
        HealthState { name: "HospitalizedD".into(), infectivity: 0.0, susceptibility: 0.0 },
        HealthState { name: "Ventilated".into(), infectivity: 0.0, susceptibility: 0.0 },
        HealthState { name: "VentilatedD".into(), infectivity: 0.0, susceptibility: 0.0 },
        HealthState { name: "Recovered".into(), infectivity: 0.0, susceptibility: 0.0 },
        HealthState { name: "Death".into(), infectivity: 0.0, susceptibility: 0.0 },
        HealthState { name: "RxFailure".into(), infectivity: 0.0, susceptibility: 1.0 },
    ];

    // Table III symptomatic-severity branch probabilities, verbatim:
    // outgoing sums are exactly 1 in every age column.
    let p_attended = [0.9594, 0.9894, 0.9594, 0.912, 0.788];
    let p_attended_d = [0.0006, 0.0006, 0.0006, 0.003, 0.017];
    let p_attended_h = [0.04, 0.01, 0.04, 0.085, 0.195];
    let p_hosp_recover = [0.94, 0.94, 0.94, 0.85, 0.775];
    let p_hosp_vent = [0.06, 0.06, 0.06, 0.15, 0.225];

    // Symptomatic → Attended dwell: Table III's discrete distribution
    // over days 1..=10.
    let attd_dwell = DwellTime::Discrete {
        days: vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10],
        probs: vec![0.175, 0.175, 0.1, 0.1, 0.1, 0.1, 0.1, 0.05, 0.05, 0.05],
    };

    let progressions = vec![
        // Exposed: 35% asymptomatic, 65% presymptomatic. Incubation is
        // N(5, 1) per the Exposed rows of Table III.
        Progression {
            from: EXPOSED,
            to: ASYMPTOMATIC,
            prob: [0.35; N_AGE_GROUPS],
            dwell: same(DwellTime::Normal { mean: 5.0, sd: 1.0 }),
        },
        Progression {
            from: EXPOSED,
            to: PRESYMPTOMATIC,
            // Table III lists dt-fixed for this edge; the scanned value
            // is ambiguous, so we use 4 days, keeping total incubation
            // (4 + presymptomatic 2 = 6d) at the CDC planning value.
            prob: [0.65; N_AGE_GROUPS],
            dwell: same(DwellTime::Fixed { days: 4 }),
        },
        Progression {
            from: PRESYMPTOMATIC,
            to: SYMPTOMATIC,
            prob: [1.0; N_AGE_GROUPS],
            dwell: same(DwellTime::Fixed { days: 2 }),
        },
        Progression {
            from: ASYMPTOMATIC,
            to: RECOVERED,
            prob: [1.0; N_AGE_GROUPS],
            dwell: same(DwellTime::Normal { mean: 5.0, sd: 1.0 }),
        },
        // Symptomatic three-way branch (verbatim Table III).
        Progression { from: SYMPTOMATIC, to: ATTENDED, prob: p_attended, dwell: same(attd_dwell) },
        Progression {
            from: SYMPTOMATIC,
            to: ATTENDED_D,
            prob: p_attended_d,
            dwell: same(DwellTime::Fixed { days: 2 }),
        },
        Progression {
            from: SYMPTOMATIC,
            to: ATTENDED_H,
            prob: p_attended_h,
            dwell: same(DwellTime::Fixed { days: 1 }),
        },
        // Recovery path after medical attention.
        Progression {
            from: ATTENDED,
            to: RECOVERED,
            prob: [1.0; N_AGE_GROUPS],
            dwell: same(DwellTime::Normal { mean: 5.0, sd: 1.0 }),
        },
        // Death path: attention → hospital → (ventilator →) death.
        Progression {
            from: ATTENDED_D,
            to: HOSPITALIZED_D,
            prob: [0.95; N_AGE_GROUPS],
            dwell: same(DwellTime::Fixed { days: 2 }),
        },
        Progression {
            from: ATTENDED_D,
            to: DEATH,
            prob: [0.05; N_AGE_GROUPS],
            dwell: same(DwellTime::Fixed { days: 8 }),
        },
        Progression {
            from: HOSPITALIZED_D,
            to: VENTILATED_D,
            prob: [0.7; N_AGE_GROUPS],
            dwell: same(DwellTime::Fixed { days: 4 }),
        },
        Progression {
            from: HOSPITALIZED_D,
            to: DEATH,
            prob: [0.3; N_AGE_GROUPS],
            dwell: same(DwellTime::Fixed { days: 6 }),
        },
        Progression {
            from: VENTILATED_D,
            to: DEATH,
            prob: [1.0; N_AGE_GROUPS],
            dwell: same(DwellTime::Fixed { days: 8 }),
        },
        // Hospitalization path.
        Progression {
            from: ATTENDED_H,
            to: HOSPITALIZED,
            prob: [1.0; N_AGE_GROUPS],
            dwell: normals([5.0, 5.0, 5.0, 5.3, 4.2], [4.6, 4.6, 4.6, 5.2, 5.2]),
        },
        Progression {
            from: HOSPITALIZED,
            to: RECOVERED,
            prob: p_hosp_recover,
            dwell: normals([3.1, 3.1, 3.1, 7.8, 6.5], [3.7, 3.7, 3.7, 6.3, 4.9]),
        },
        Progression {
            from: HOSPITALIZED,
            to: VENTILATED,
            prob: p_hosp_vent,
            dwell: same(DwellTime::Fixed { days: 1 }),
        },
        Progression {
            from: VENTILATED,
            to: RECOVERED,
            prob: [1.0; N_AGE_GROUPS],
            dwell: normals([2.1, 2.1, 2.1, 6.8, 5.5], [3.7, 3.7, 3.7, 6.3, 4.9]),
        },
    ];

    // Susceptible (and RxFailure) individuals become Exposed via contact
    // with any of the three infectious states.
    let mut transmissions = Vec::new();
    for from in [SUSCEPTIBLE, RX_FAILURE] {
        for via in [PRESYMPTOMATIC, SYMPTOMATIC, ASYMPTOMATIC] {
            transmissions.push(Transmission { from, to: EXPOSED, via, omega: 1.0 });
        }
    }

    let model = DiseaseModel {
        name: "COVID-19 (CDC best-guess planning parameters)".into(),
        states,
        progressions,
        transmissions,
        // Table IV: transmissibility τ = 0.18.
        transmissibility: 0.18,
        initial_infected_state: EXPOSED,
        susceptible_state: SUSCEPTIBLE,
    };
    debug_assert!(model.validate().is_ok());
    model
}

#[cfg(test)]
mod tests {
    use super::states::*;
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn model_validates() {
        covid19_model().validate().unwrap();
    }

    #[test]
    fn fifteen_states() {
        let m = covid19_model();
        assert_eq!(m.n_states(), 15);
        assert_eq!(m.state_id("Susceptible"), Some(SUSCEPTIBLE));
        assert_eq!(m.state_id("Death"), Some(DEATH));
        assert_eq!(m.state_id("RxFailure"), Some(RX_FAILURE));
    }

    #[test]
    fn table_iv_attributes() {
        let m = covid19_model();
        assert_eq!(m.transmissibility, 0.18);
        assert_eq!(m.states[PRESYMPTOMATIC as usize].infectivity, 0.8);
        assert_eq!(m.states[SYMPTOMATIC as usize].infectivity, 1.0);
        assert_eq!(m.states[ASYMPTOMATIC as usize].infectivity, 1.0);
        assert_eq!(m.states[SUSCEPTIBLE as usize].susceptibility, 1.0);
        assert_eq!(m.states[RX_FAILURE as usize].susceptibility, 1.0);
    }

    #[test]
    fn symptomatic_branch_sums_to_one_per_age() {
        let m = covid19_model();
        for g in 0..N_AGE_GROUPS {
            let sum: f64 = m.progressions_from(SYMPTOMATIC).map(|p| p.prob[g]).sum();
            assert!((sum - 1.0).abs() < 1e-9, "age {g} sum {sum}");
        }
    }

    #[test]
    fn severity_increases_with_age() {
        let m = covid19_model();
        let hosp = m.progressions_from(SYMPTOMATIC).find(|p| p.to == ATTENDED_H).unwrap();
        // 65+ hospitalization risk far exceeds school-age.
        assert!(hosp.prob[4] > 10.0 * hosp.prob[1]);
        let death = m.progressions_from(SYMPTOMATIC).find(|p| p.to == ATTENDED_D).unwrap();
        assert!(death.prob[4] > death.prob[0]);
    }

    #[test]
    fn death_and_recovered_are_terminal() {
        let m = covid19_model();
        assert_eq!(m.progressions_from(DEATH).count(), 0);
        assert_eq!(m.progressions_from(RECOVERED).count(), 0);
    }

    #[test]
    fn all_infected_paths_terminate() {
        // From Exposed, repeatedly sampling progressions must reach a
        // terminal state (Recovered or Death) within a bounded number of
        // hops for every age group.
        let m = covid19_model();
        let mut rng = StdRng::seed_from_u64(7);
        for g in 0..N_AGE_GROUPS {
            for _ in 0..300 {
                let mut state = EXPOSED;
                let mut hops = 0;
                while let Some((next, _)) = m.sample_progression(state, g, &mut rng) {
                    state = next;
                    hops += 1;
                    assert!(hops < 12, "progression cycle detected at age group {g}");
                }
                assert!(
                    state == RECOVERED || state == DEATH,
                    "terminal state {} for age group {g}",
                    m.state_name(state)
                );
            }
        }
    }

    #[test]
    fn infection_fatality_rises_with_age() {
        // Monte-Carlo IFR per age group must be monotone-ish: seniors
        // die far more often than children.
        let m = covid19_model();
        let mut rng = StdRng::seed_from_u64(8);
        let ifr = |g: usize, rng: &mut StdRng| {
            let n = 20_000;
            let deaths = (0..n)
                .filter(|_| {
                    let mut s = EXPOSED;
                    while let Some((next, _)) = m.sample_progression(s, g, rng) {
                        s = next;
                    }
                    s == DEATH
                })
                .count();
            deaths as f64 / n as f64
        };
        let child = ifr(1, &mut rng);
        let senior = ifr(4, &mut rng);
        assert!(senior > 0.01, "senior IFR {senior}");
        assert!(senior > 5.0 * child.max(1e-4), "child {child} vs senior {senior}");
    }

    #[test]
    fn json_round_trip() {
        let m = covid19_model();
        let back = DiseaseModel::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn six_transmission_edges() {
        let m = covid19_model();
        assert_eq!(m.transmissions.len(), 6);
        for t in &m.transmissions {
            assert_eq!(t.to, EXPOSED);
            assert!(m.is_infectious(t.via));
            assert!(m.is_susceptible(t.from));
        }
    }
}
