//! A calibrated BSP/MPI cost model for projecting parallel runtime
//! (Fig. 7 middle/bottom substitution).
//!
//! The paper measured EpiHiper on Bridges compute nodes; this
//! reproduction may run on machines without multiple cores, so the
//! strong-scaling and intervention-cost figures are *projected* from a
//! cost model over the real partition structure rather than measured
//! wall-clock. The model is the standard bulk-synchronous one:
//!
//! ```text
//! T_tick(p) = max_k(edges_k)·c_edge + max_k(nodes_k)·c_node   (compute)
//!           + α·ln(p+1) + γ·p                                 (barrier + exposure allgather)
//!           + max_k(ghost_k)·c_ghost                          (neighbor state exchange)
//! ```
//!
//! where `ghost_k` counts partition `k`'s in-edges whose source lives on
//! another rank — a real quantity of the actual partitioning, not a
//! parameter. `c_edge` should be calibrated from a measured serial run
//! ([`MpiCostModel::calibrate_per_edge`]), which anchors the projection
//! to this machine's real throughput; the communication constants are
//! Omni-Path-class defaults.
//!
//! Intervention costs ([`intervention_tick_cost`]) follow the same
//! logic: contact tracing at distance 2 must query *remote* adjacency
//! (the network is partitioned by in-edges, so a neighbor's neighbors
//! generally live on another rank), at microsecond-class cost per
//! lookup — which is why the paper's D2CT runs cost ≈3–4× the base
//! case while RO/TA are marginal.

use crate::partition::Partitioning;
use epiflow_synthpop::ContactNetwork;

/// Cost constants for the BSP model.
#[derive(Clone, Debug)]
pub struct MpiCostModel {
    /// Seconds per directed in-edge scanned.
    pub per_edge_secs: f64,
    /// Seconds per node visited.
    pub per_node_secs: f64,
    /// Barrier/allreduce latency coefficient (seconds, × ln(p+1)).
    pub barrier_secs: f64,
    /// Per-rank exposure-exchange cost (seconds, × p).
    pub per_rank_secs: f64,
    /// Seconds per ghost edge (remote neighbor state refresh).
    pub per_ghost_edge_secs: f64,
    /// Seconds per remote adjacency query (2-hop tracing).
    pub per_remote_query_secs: f64,
}

impl Default for MpiCostModel {
    fn default() -> Self {
        MpiCostModel {
            per_edge_secs: 8e-9,
            per_node_secs: 3e-9,
            barrier_secs: 50e-6,
            per_rank_secs: 15e-6,
            per_ghost_edge_secs: 40e-9,
            per_remote_query_secs: 0.5e-6,
        }
    }
}

impl MpiCostModel {
    /// Calibrate `per_edge_secs` from a measured serial run: a run of
    /// `ticks` ticks over a network with `directed_edges` in-edges that
    /// took `measured_secs`.
    pub fn calibrate_per_edge(
        mut self,
        measured_secs: f64,
        directed_edges: usize,
        ticks: u32,
    ) -> Self {
        assert!(directed_edges > 0 && ticks > 0);
        self.per_edge_secs = measured_secs / (directed_edges as f64 * ticks as f64);
        self
    }

    /// Calibrate `per_edge_secs` from a frontier-mode run, where the
    /// engine reports exactly how many in-edges its λ pass examined
    /// (`EngineStats::total_edges_scanned`) instead of assuming the
    /// full `directed_edges × ticks` sweep the reference scan pays.
    pub fn calibrate_per_edge_scanned(mut self, measured_secs: f64, edges_scanned: u64) -> Self {
        assert!(edges_scanned > 0);
        self.per_edge_secs = measured_secs / edges_scanned as f64;
        self
    }
}

/// Per-partition (in-edge count, node count, ghost in-edge count) for a
/// partitioning of `net`.
pub fn partition_profile(net: &ContactNetwork, parts: &Partitioning) -> Vec<(usize, usize, usize)> {
    let mut in_edges = vec![0usize; parts.len()];
    let mut ghosts = vec![0usize; parts.len()];
    for e in &net.edges {
        let pu = parts.partition_of(e.u);
        let pv = parts.partition_of(e.v);
        in_edges[pu] += 1;
        in_edges[pv] += 1;
        if pu != pv {
            // Each side holds one in-edge whose source is remote.
            ghosts[pu] += 1;
            ghosts[pv] += 1;
        }
    }
    parts
        .ranges
        .iter()
        .enumerate()
        .map(|(k, r)| (in_edges[k], (r.end - r.start) as usize, ghosts[k]))
        .collect()
}

/// Projected seconds for one tick on `p = parts.len()` ranks.
pub fn projected_tick_secs(profile: &[(usize, usize, usize)], model: &MpiCostModel) -> f64 {
    let p = profile.len().max(1) as f64;
    let max_edges = profile.iter().map(|x| x.0).max().unwrap_or(0) as f64;
    let max_nodes = profile.iter().map(|x| x.1).max().unwrap_or(0) as f64;
    let max_ghost = profile.iter().map(|x| x.2).max().unwrap_or(0) as f64;
    let compute = max_edges * model.per_edge_secs + max_nodes * model.per_node_secs;
    let comm = if profile.len() > 1 {
        model.barrier_secs * (p + 1.0).ln()
            + model.per_rank_secs * p
            + max_ghost * model.per_ghost_edge_secs
    } else {
        0.0
    };
    compute + comm
}

/// Projected seconds for one *frontier-mode* tick: the compute term
/// scales by the frontier occupancy (fraction of nodes with infectious
/// in-neighbors, `EngineStats::mean_frontier_occupancy`), while the
/// barrier and exchange terms are unchanged — per-tick synchronization
/// does not shrink with the epidemic, which is why frontier scanning
/// improves compute-bound runs much more than latency-bound ones.
pub fn projected_frontier_tick_secs(
    profile: &[(usize, usize, usize)],
    occupancy: f64,
    model: &MpiCostModel,
) -> f64 {
    let occupancy = occupancy.clamp(0.0, 1.0);
    let p = profile.len().max(1) as f64;
    let max_edges = profile.iter().map(|x| x.0).max().unwrap_or(0) as f64;
    let max_nodes = profile.iter().map(|x| x.1).max().unwrap_or(0) as f64;
    let max_ghost = profile.iter().map(|x| x.2).max().unwrap_or(0) as f64;
    let compute = (max_edges * model.per_edge_secs + max_nodes * model.per_node_secs) * occupancy;
    let comm = if profile.len() > 1 {
        model.barrier_secs * (p + 1.0).ln()
            + model.per_rank_secs * p
            + max_ghost * model.per_ghost_edge_secs * occupancy
    } else {
        0.0
    };
    compute + comm
}

/// Projected seconds for a whole run.
pub fn projected_run_secs(
    net: &ContactNetwork,
    parts: &Partitioning,
    model: &MpiCostModel,
    ticks: u32,
) -> f64 {
    let profile = partition_profile(net, parts);
    projected_tick_secs(&profile, model) * ticks as f64
}

/// Epidemic activity profile used to cost interventions, measured from
/// an actual run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ActivityProfile {
    /// Mean nodes in the Symptomatic state per tick.
    pub mean_symptomatic: f64,
    /// Mean nodes in the Asymptomatic state per tick.
    pub mean_asymptomatic: f64,
    /// Mean contact degree of the network.
    pub mean_degree: f64,
    /// Node count.
    pub n_nodes: usize,
}

/// The intervention stacks of Fig. 7 (bottom).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Stack {
    Base,
    Ro,
    Ta,
    Ps { period_days: f64 },
    D1ct { detection: f64 },
    D2ct { detection: f64 },
}

/// Projected *additional* per-tick cost of an intervention stack beyond
/// the base case, on `p` ranks.
pub fn intervention_tick_cost(
    stack: Stack,
    activity: &ActivityProfile,
    model: &MpiCostModel,
    p: usize,
) -> f64 {
    let p = p.max(1) as f64;
    match stack {
        Stack::Base => 0.0,
        // One-time reopening sampling amortizes to ~nothing per tick.
        Stack::Ro => activity.n_nodes as f64 * model.per_node_secs / 100.0,
        // Test-and-isolate: scan the asymptomatic pool each tick.
        Stack::Ta => {
            activity.n_nodes as f64 * model.per_node_secs
                + activity.mean_asymptomatic * 10.0 * model.per_node_secs
        }
        // Pulsing shutdown: each pulse boundary re-samples the whole
        // population's compliance and re-evaluates every edge's active
        // state (the "spawned recalculations" of §V), amortized per
        // tick over the pulse period.
        Stack::Ps { period_days } => {
            let resample = activity.n_nodes as f64 * model.per_node_secs * 20.0;
            let edge_reeval =
                activity.n_nodes as f64 * activity.mean_degree * model.per_edge_secs * 2.0;
            (resample + edge_reeval + model.barrier_secs * (p + 1.0).ln() * 50.0)
                / period_days.max(1.0)
        }
        // Distance-1 tracing: local adjacency of each detected case,
        // plus an isolation notice per traced contact — contacts
        // generally live on other ranks, so each notice is a message.
        Stack::D1ct { detection } => {
            let detected = activity.mean_symptomatic * detection;
            let local = detected * activity.mean_degree * 20.0 * model.per_node_secs;
            let notices = detected * activity.mean_degree;
            local + notices * model.per_remote_query_secs * 2.0
        }
        // Distance-2 tracing: every expanded contact's own adjacency is
        // a *remote* query — the dominant term.
        Stack::D2ct { detection } => {
            let detected = activity.mean_symptomatic * detection;
            let expansions = detected * activity.mean_degree; // 1-hop set
            let remote = expansions * activity.mean_degree; // 2-hop lookups
            expansions * model.per_remote_query_secs * 0.25 + remote * model.per_remote_query_secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition_network;
    use epiflow_synthpop::network::ContactEdge;
    use epiflow_synthpop::ActivityType;

    fn ring(n: u32) -> ContactNetwork {
        let edges = (0..n)
            .map(|i| ContactEdge {
                u: i,
                v: (i + 1) % n,
                start: 0,
                duration: 60,
                ctx_u: ActivityType::Work,
                ctx_v: ActivityType::Work,
                weight: 1.0,
            })
            .collect();
        ContactNetwork { n_nodes: n as usize, edges }
    }

    #[test]
    fn profile_counts_ghosts_on_ring() {
        let net = ring(100);
        let parts = partition_network(&net, 4, 0);
        let profile = partition_profile(&net, &parts);
        assert_eq!(profile.len(), parts.len());
        // A ring cut into contiguous ranges has exactly 2 boundary
        // edges per partition (except ordering effects at the wrap).
        let total_ghosts: usize = profile.iter().map(|x| x.2).sum();
        assert_eq!(total_ghosts, 2 * parts.len());
        let total_in: usize = profile.iter().map(|x| x.0).sum();
        assert_eq!(total_in, 200);
    }

    #[test]
    fn speedup_then_saturation() {
        let net = ring(50_000);
        let model = MpiCostModel::default();
        let t = |p: usize| {
            let parts = partition_network(&net, p, 0);
            projected_run_secs(&net, &parts, &model, 100)
        };
        let t1 = t(1);
        let t8 = t(8);
        let t512 = t(512);
        assert!(t8 < t1 * 0.6, "8 ranks should speed up: {t1} -> {t8}");
        // Very high rank counts lose to communication.
        assert!(t512 > t8, "oversubscription must cost: t8={t8} t512={t512}");
    }

    #[test]
    fn serial_has_no_comm_cost() {
        let net = ring(1000);
        let parts = partition_network(&net, 1, 0);
        let profile = partition_profile(&net, &parts);
        let model = MpiCostModel::default();
        let t = projected_tick_secs(&profile, &model);
        let expect = 2000.0 * model.per_edge_secs + 1000.0 * model.per_node_secs;
        assert!((t - expect).abs() < 1e-12);
    }

    #[test]
    fn calibration_sets_per_edge() {
        let model = MpiCostModel::default().calibrate_per_edge(2.0, 1_000_000, 100);
        assert!((model.per_edge_secs - 2e-8).abs() < 1e-15);
    }

    #[test]
    fn calibration_from_edges_scanned() {
        let model = MpiCostModel::default().calibrate_per_edge_scanned(1.0, 50_000_000);
        assert!((model.per_edge_secs - 2e-8).abs() < 1e-15);
    }

    #[test]
    fn frontier_projection_interpolates() {
        let net = ring(10_000);
        let parts = partition_network(&net, 8, 0);
        let profile = partition_profile(&net, &parts);
        let model = MpiCostModel::default();
        let full = projected_tick_secs(&profile, &model);
        let at_full = projected_frontier_tick_secs(&profile, 1.0, &model);
        let at_tenth = projected_frontier_tick_secs(&profile, 0.1, &model);
        let at_zero = projected_frontier_tick_secs(&profile, 0.0, &model);
        assert!((at_full - full).abs() < 1e-12, "occupancy 1 matches the dense model");
        assert!(at_zero < at_tenth && at_tenth < at_full);
        // Communication floor survives an empty frontier.
        assert!(at_zero > 0.0);
        // Out-of-range occupancy clamps instead of extrapolating.
        assert_eq!(projected_frontier_tick_secs(&profile, 1.7, &model), at_full);
    }

    #[test]
    fn intervention_ladder_ordering() {
        let activity = ActivityProfile {
            mean_symptomatic: 500.0,
            mean_asymptomatic: 300.0,
            mean_degree: 20.0,
            n_nodes: 100_000,
        };
        let model = MpiCostModel::default();
        let cost = |s: Stack| intervention_tick_cost(s, &activity, &model, 8);
        let ro = cost(Stack::Ro);
        let ta = cost(Stack::Ta);
        let ps = cost(Stack::Ps { period_days: 14.0 });
        let d1 = cost(Stack::D1ct { detection: 0.5 });
        let d2 = cost(Stack::D2ct { detection: 0.5 });
        // The paper's ordering: RO/TA marginal < PS, D1CT < D2CT.
        assert!(ro < ta);
        assert!(ta < d1);
        assert!(ps > ta);
        assert!(d2 > 3.0 * d1, "D2CT must dwarf D1CT: {d1} vs {d2}");
        assert!(cost(Stack::Base) == 0.0);
    }

    #[test]
    fn d2ct_reaches_paper_multiplier_at_national_parameters() {
        // At paper-like density (mean degree ≈ 26) and prevalence, the
        // D2CT stack should land in the 2–6× base range.
        let n = 6_000_000usize; // one large state
        let activity = ActivityProfile {
            mean_symptomatic: 0.004 * n as f64,
            mean_asymptomatic: 0.002 * n as f64,
            mean_degree: 26.0,
            n_nodes: n,
        };
        let model = MpiCostModel::default();
        let base_tick = (n as f64 * 26.0) * model.per_edge_secs / 112.0; // 4 nodes × 28 ranks
        let d2 =
            intervention_tick_cost(Stack::D2ct { detection: 0.5 }, &activity, &model, 112) / 112.0; // tracing work also parallelizes over ranks
        let ratio = (base_tick + d2) / base_tick;
        assert!((1.5..8.0).contains(&ratio), "D2CT multiplier {ratio}");
    }
}
