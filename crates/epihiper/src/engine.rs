//! The parallel discrete-time simulation engine.
//!
//! Each tick (= 1 day):
//!
//! 1. **Interventions** run serially against the system state (they are
//!    cheap relative to the network scan, exactly as in EpiHiper).
//! 2. **Scan phase** — partitions execute in parallel (rayon workers
//!    standing in for MPI ranks; a partition owns all in-edges of its
//!    nodes, so each worker reads shared last-tick state and writes only
//!    its own event buffer). For every node the scan either fires a
//!    scheduled progression or, for susceptible nodes, accumulates the
//!    Eq.-(1) propensities over active in-edges and performs the
//!    Gillespie draw for whether an exposure occurs and which contact
//!    caused it.
//! 3. **Apply phase** — events are applied serially in node order,
//!    updating health states, counters, the transition log, and the
//!    memory accounting.
//!
//! Randomness is *counter-based*: each (node, tick) pair gets its own
//! splitmix64 stream derived from the replicate seed, so results are
//! bit-identical regardless of how many threads or partitions execute
//! the scan — the property that lets strong-scaling benchmarks vary
//! parallelism without changing the epidemic.

use crate::disease::{DiseaseModel, StateId};
use crate::interventions::{InterventionCtx, InterventionSet};
use crate::output::{SimOutput, TransitionRecord};
use crate::partition::{partition_network, Partitioning};
use crate::state::{SimState, NEVER};
use epiflow_synthpop::ContactNetwork;
use rand::{Rng, RngCore};
use rayon::prelude::*;

/// Counter-based RNG: a splitmix64 stream keyed by (seed, node, tick).
///
/// splitmix64 passes BigCrush and is the canonical seeding generator;
/// one multiply-xor-shift round per output makes per-(node,tick)
/// construction essentially free, which is what makes thread-count
/// independence affordable.
#[derive(Clone, Debug)]
pub struct CounterRng {
    state: u64,
}

impl CounterRng {
    /// Stream for a (seed, node, tick) triple.
    #[inline]
    pub fn new(seed: u64, node: u32, tick: u32) -> Self {
        let key = seed
            ^ (node as u64).wrapping_mul(0x9E3779B97F4A7C15)
            ^ ((tick as u64) << 32).wrapping_mul(0xBF58476D1CE4E5B9);
        // One warmup step decorrelates nearby keys.
        let mut rng = CounterRng { state: key };
        rng.next_u64();
        rng
    }
}

impl RngCore for CounterRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// One directed in-edge as seen from its owning node.
#[derive(Clone, Copy, Debug)]
pub struct EdgeRef {
    /// The other endpoint.
    pub neighbor: u32,
    /// Undirected edge id (shared by both directions).
    pub edge_id: u32,
    /// Edge weight `w_e`.
    pub weight: f32,
    /// Contact duration `T` as a fraction of a day.
    pub duration_frac: f32,
    /// Activity context code of the owning node.
    pub ctx_self: u8,
    /// Activity context code of the neighbor.
    pub ctx_nbr: u8,
}

/// The runtime (CSR) representation of the contact network: all in-edges
/// of a node stored contiguously, which is both the partitioning
/// invariant and the memory layout the scan wants.
#[derive(Clone, Debug)]
pub struct RuntimeNet {
    pub n_nodes: usize,
    pub n_undirected: usize,
    offsets: Vec<u32>,
    edges: Vec<EdgeRef>,
}

impl RuntimeNet {
    /// Build from an edge-list network (each undirected edge becomes an
    /// in-edge of both endpoints).
    pub fn build(network: &ContactNetwork) -> Self {
        let n = network.n_nodes;
        let mut deg = vec![0u32; n + 1];
        for e in &network.edges {
            deg[e.u as usize + 1] += 1;
            deg[e.v as usize + 1] += 1;
        }
        for i in 1..=n {
            deg[i] += deg[i - 1];
        }
        let offsets = deg;
        let mut cursor = offsets.clone();
        let mut edges = vec![
            EdgeRef {
                neighbor: 0,
                edge_id: 0,
                weight: 0.0,
                duration_frac: 0.0,
                ctx_self: 0,
                ctx_nbr: 0
            };
            network.edges.len() * 2
        ];
        for (eid, e) in network.edges.iter().enumerate() {
            let frac = f32::from(e.duration.min(1440)) / 1440.0;
            let at_u = cursor[e.u as usize] as usize;
            edges[at_u] = EdgeRef {
                neighbor: e.v,
                edge_id: eid as u32,
                weight: e.weight,
                duration_frac: frac,
                ctx_self: e.ctx_u.code(),
                ctx_nbr: e.ctx_v.code(),
            };
            cursor[e.u as usize] += 1;
            let at_v = cursor[e.v as usize] as usize;
            edges[at_v] = EdgeRef {
                neighbor: e.u,
                edge_id: eid as u32,
                weight: e.weight,
                duration_frac: frac,
                ctx_self: e.ctx_v.code(),
                ctx_nbr: e.ctx_u.code(),
            };
            cursor[e.v as usize] += 1;
        }
        RuntimeNet { n_nodes: n, n_undirected: network.edges.len(), offsets, edges }
    }

    /// In-edges of a node.
    #[inline]
    pub fn in_edges(&self, node: u32) -> &[EdgeRef] {
        let lo = self.offsets[node as usize] as usize;
        let hi = self.offsets[node as usize + 1] as usize;
        &self.edges[lo..hi]
    }

    /// Static memory footprint in bytes (network share of Fig. 10).
    pub fn static_memory_bytes(&self) -> u64 {
        (self.offsets.len() * 4 + self.edges.len() * std::mem::size_of::<EdgeRef>()) as u64
    }
}

/// Simulation configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of ticks (days) to simulate.
    pub ticks: u32,
    /// Replicate seed.
    pub seed: u64,
    /// Processing units (partitions / rayon workers).
    pub n_partitions: usize,
    /// Partitioning tolerance ε.
    pub epsilon: usize,
    /// Number of initial infections, seeded at tick 0.
    pub initial_infections: usize,
    /// Keep the full transition log (disable for large sweeps where
    /// only aggregates are needed).
    pub record_transitions: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            ticks: 120,
            seed: 1,
            n_partitions: 4,
            epsilon: 16,
            initial_infections: 5,
            record_transitions: true,
        }
    }
}

/// One tick-event produced by the scan phase.
#[derive(Clone, Copy, Debug)]
struct Event {
    node: u32,
    new_state: StateId,
    cause: Option<u32>,
    exit_tick: u32,
    next_state: StateId,
}

/// Result of a run.
#[derive(Clone, Debug)]
pub struct SimResult {
    pub output: SimOutput,
    /// Wall-clock time of the tick loop.
    pub elapsed: std::time::Duration,
    pub ticks_run: u32,
}

/// A configured simulation, ready to run.
pub struct Simulation {
    pub net: RuntimeNet,
    pub model: DiseaseModel,
    pub state: SimState,
    pub interventions: InterventionSet,
    pub config: SimConfig,
    /// Age-group index (0..5) per node.
    pub age_group: Vec<u8>,
    /// County index per node (for county-level aggregation).
    pub county: Vec<u16>,
    pub partitioning: Partitioning,
    n_counties: usize,
    /// `lut[health * n_states + neighbor_health]` → (exposed state, ω).
    trans_lut: Vec<Option<(StateId, f64)>>,
}

impl Simulation {
    /// Build a simulation. `age_group` and `county` must have one entry
    /// per node; pass `vec![2; n]` / `vec![0; n]` when demographics are
    /// not needed.
    pub fn new(
        network: &ContactNetwork,
        model: DiseaseModel,
        age_group: Vec<u8>,
        county: Vec<u16>,
        interventions: InterventionSet,
        config: SimConfig,
    ) -> Self {
        assert_eq!(age_group.len(), network.n_nodes, "age group per node");
        assert_eq!(county.len(), network.n_nodes, "county per node");
        model.validate().expect("valid disease model");

        let partitioning = partition_network(network, config.n_partitions, config.epsilon);
        let net = RuntimeNet::build(network);
        let state = SimState::new(network.n_nodes, network.edges.len(), model.susceptible_state);

        let ns = model.n_states();
        let mut trans_lut = vec![None; ns * ns];
        for t in &model.transmissions {
            trans_lut[t.from as usize * ns + t.via as usize] = Some((t.to, t.omega));
        }
        let n_counties = county.iter().map(|&c| c as usize + 1).max().unwrap_or(1);

        Simulation {
            net,
            model,
            state,
            interventions,
            config,
            age_group,
            county,
            partitioning,
            n_counties,
            trans_lut,
        }
    }

    /// Schedule the progression out of `entered` for a node, returning
    /// `(exit_tick, next_state)` — or `(NEVER, entered)` for terminal
    /// states.
    fn schedule<R: Rng + ?Sized>(
        model: &DiseaseModel,
        entered: StateId,
        age_group: usize,
        tick: u32,
        rng: &mut R,
    ) -> (u32, StateId) {
        match model.sample_progression(entered, age_group, rng) {
            Some((next, dwell)) => (tick + u32::from(dwell.max(1)), next),
            None => (NEVER, entered),
        }
    }

    /// Seed `initial_infections` distinct nodes at tick 0.
    fn seed_infections(&mut self, output: &mut SimOutput) {
        let n = self.net.n_nodes;
        if n == 0 {
            return;
        }
        let mut rng = CounterRng::new(self.config.seed, u32::MAX, 0);
        let target = self.config.initial_infections.min(n);
        let mut seeded = 0usize;
        let mut guard = 0usize;
        while seeded < target && guard < target * 100 + 100 {
            guard += 1;
            let v = rng.random_range(0..n as u32);
            if self.state.health[v as usize] != self.model.susceptible_state {
                continue;
            }
            let s = self.model.initial_infected_state;
            let (exit, next) =
                Self::schedule(&self.model, s, self.age_group[v as usize] as usize, 0, &mut rng);
            self.state.health[v as usize] = s;
            self.state.exit_tick[v as usize] = exit;
            self.state.next_state[v as usize] = next;
            if self.config.record_transitions {
                output.transitions.push(TransitionRecord {
                    tick: 0,
                    person: v,
                    state: s,
                    cause: None,
                });
            }
            seeded += 1;
        }
    }

    /// Scan one partition for tick `t`, producing its events.
    fn scan_partition(&self, range: &std::ops::Range<u32>, t: u32) -> Vec<Event> {
        let mut events = Vec::new();
        let ns = self.model.n_states();
        let tau = self.model.transmissibility;

        for v in range.clone() {
            let vi = v as usize;
            // Scheduled progression fires this tick.
            if self.state.exit_tick[vi] == t {
                let to = self.state.next_state[vi];
                let mut rng = CounterRng::new(self.config.seed, v, t);
                let (exit, next) =
                    Self::schedule(&self.model, to, self.age_group[vi] as usize, t, &mut rng);
                events.push(Event {
                    node: v,
                    new_state: to,
                    cause: None,
                    exit_tick: exit,
                    next_state: next,
                });
                continue;
            }
            // Transmission scan for susceptible nodes.
            let hv = self.state.health[vi];
            let sigma = self.model.states[hv as usize].susceptibility
                * self.state.susceptibility_scale[vi] as f64;
            if sigma <= 0.0 {
                continue;
            }
            let lut_row = &self.trans_lut[hv as usize * ns..(hv as usize + 1) * ns];
            let mut lambda = 0.0f64;
            for e in self.net.in_edges(v) {
                let u = e.neighbor as usize;
                let hu = self.state.health[u];
                let Some((_, omega)) = lut_row[hu as usize] else { continue };
                if !self.state.edge_active(e.edge_id, v, e.neighbor, e.ctx_self, e.ctx_nbr, t) {
                    continue;
                }
                let iota = self.model.states[hu as usize].infectivity
                    * self.state.infectivity_scale[u] as f64;
                // Eq. (1): ρ = T · w_e · σ(Ps)·ι(Pi) · ω, scaled by τ.
                lambda += e.duration_frac as f64 * e.weight as f64 * sigma * iota * omega * tau;
            }
            if lambda <= 0.0 {
                continue;
            }
            let mut rng = CounterRng::new(self.config.seed, v, t);
            let p_infect = 1.0 - (-lambda).exp();
            if !rng.random_bool(p_infect) {
                continue;
            }
            // Gillespie: the causing contact is chosen ∝ its propensity.
            let mut pick = rng.random_range(0.0..lambda);
            let mut cause = None;
            let mut to_state = self.model.initial_infected_state;
            for e in self.net.in_edges(v) {
                let u = e.neighbor as usize;
                let hu = self.state.health[u];
                let Some((to, omega)) = lut_row[hu as usize] else { continue };
                if !self.state.edge_active(e.edge_id, v, e.neighbor, e.ctx_self, e.ctx_nbr, t) {
                    continue;
                }
                let iota = self.model.states[hu as usize].infectivity
                    * self.state.infectivity_scale[u] as f64;
                let rho = e.duration_frac as f64 * e.weight as f64 * sigma * iota * omega * tau;
                pick -= rho;
                if pick <= 0.0 {
                    cause = Some(e.neighbor);
                    to_state = to;
                    break;
                }
            }
            if cause.is_none() {
                // Floating-point remainder: attribute to the last active
                // infectious contact (rescan not worth the cost).
                for e in self.net.in_edges(v).iter().rev() {
                    let hu = self.state.health[e.neighbor as usize];
                    if lut_row[hu as usize].is_some()
                        && self
                            .state
                            .edge_active(e.edge_id, v, e.neighbor, e.ctx_self, e.ctx_nbr, t)
                    {
                        cause = Some(e.neighbor);
                        to_state = lut_row[hu as usize].expect("checked").0;
                        break;
                    }
                }
            }
            let (exit, next) =
                Self::schedule(&self.model, to_state, self.age_group[vi] as usize, t, &mut rng);
            events.push(Event {
                node: v,
                new_state: to_state,
                cause,
                exit_tick: exit,
                next_state: next,
            });
        }
        events
    }

    /// Run the simulation to completion.
    pub fn run(&mut self) -> SimResult {
        let ns = self.model.n_states();
        let mut output = SimOutput::default();
        self.seed_infections(&mut output);
        // Occupancy from the actual post-seeding health states (the
        // transition log may be disabled, so it cannot be the source).
        let mut occupancy = vec![0u32; ns];
        for &h in &self.state.health {
            occupancy[h as usize] += 1;
        }

        let started = std::time::Instant::now();
        let mut recent: Vec<TransitionRecord> = output.transitions.clone();
        // Cumulative transitions drive the output-buffer share of the
        // memory model (EpiHiper buffers its transition log), counted
        // whether or not the log is retained in `output`.
        let mut cum_transitions: u64 = recent.len() as u64;

        for t in 0..self.config.ticks {
            // 1. Interventions.
            {
                let mut ctx = InterventionCtx {
                    tick: t,
                    state: &mut self.state,
                    net: &self.net,
                    model: &self.model,
                    recent: &recent,
                    seed: self.config.seed,
                };
                self.interventions.apply(&mut ctx);
            }

            // 2. Parallel scan.
            let per_partition: Vec<Vec<Event>> = self
                .partitioning
                .ranges
                .par_iter()
                .map(|range| self.scan_partition(range, t))
                .collect();

            // 3. Serial apply, in node order (ranges are sorted).
            let mut new_row = vec![0u32; ns];
            let mut county_row = vec![vec![0u32; ns]; self.n_counties];
            recent.clear();
            for events in &per_partition {
                for ev in events {
                    let vi = ev.node as usize;
                    let old = self.state.health[vi];
                    occupancy[old as usize] -= 1;
                    occupancy[ev.new_state as usize] += 1;
                    self.state.health[vi] = ev.new_state;
                    self.state.exit_tick[vi] = ev.exit_tick;
                    self.state.next_state[vi] = ev.next_state;
                    new_row[ev.new_state as usize] += 1;
                    county_row[self.county[vi] as usize][ev.new_state as usize] += 1;
                    let rec = TransitionRecord {
                        tick: t,
                        person: ev.node,
                        state: ev.new_state,
                        cause: ev.cause,
                    };
                    recent.push(rec);
                    if self.config.record_transitions {
                        output.transitions.push(rec);
                    }
                }
            }

            cum_transitions += recent.len() as u64;
            output.new_counts.push(new_row);
            output.current_counts.push(occupancy.clone());
            output.county_new.push(county_row);
            output.memory_bytes.push(
                self.net.static_memory_bytes()
                    + self.state.dynamic_memory_bytes()
                    + cum_transitions * 24,
            );
        }

        SimResult { output, elapsed: started.elapsed(), ticks_run: self.config.ticks }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disease::sir_model;
    use crate::interventions::InterventionSet;
    use epiflow_synthpop::network::ContactEdge;
    use epiflow_synthpop::ActivityType;

    fn dense_network(n: u32) -> ContactNetwork {
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                edges.push(ContactEdge {
                    u,
                    v,
                    start: 480,
                    duration: 480,
                    ctx_u: ActivityType::Work,
                    ctx_v: ActivityType::Work,
                    weight: 1.0,
                });
            }
        }
        ContactNetwork { n_nodes: n as usize, edges }
    }

    fn sim_on(net: &ContactNetwork, beta: f64, cfg: SimConfig) -> Simulation {
        let n = net.n_nodes;
        Simulation::new(
            net,
            sir_model(beta, 5.0),
            vec![2; n],
            vec![0; n],
            InterventionSet::default(),
            cfg,
        )
    }

    #[test]
    fn epidemic_spreads_in_dense_network() {
        let net = dense_network(60);
        let mut sim =
            sim_on(&net, 2.0, SimConfig { ticks: 60, initial_infections: 3, ..Default::default() });
        let res = sim.run();
        let recovered = res.output.cumulative(2);
        assert!(
            *recovered.last().unwrap() > 40,
            "most of a dense network should get infected, got {:?}",
            recovered.last()
        );
    }

    #[test]
    fn zero_transmissibility_means_no_spread() {
        let net = dense_network(40);
        let mut sim =
            sim_on(&net, 0.0, SimConfig { ticks: 40, initial_infections: 3, ..Default::default() });
        let res = sim.run();
        assert_eq!(res.output.total_infections(), 0);
        // Seeds still progress to R.
        assert_eq!(*res.output.cumulative(2).last().unwrap(), 3);
    }

    #[test]
    fn deterministic_across_partition_counts() {
        // The headline property: same seed ⇒ identical transitions, no
        // matter how many partitions/threads execute the scan.
        let net = dense_network(50);
        let base = SimConfig { ticks: 40, seed: 99, initial_infections: 4, ..Default::default() };
        let run = |parts: usize| {
            let mut sim = sim_on(&net, 1.5, SimConfig { n_partitions: parts, ..base.clone() });
            sim.run().output.transitions
        };
        let a = run(1);
        let b = run(4);
        let c = run(13);
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert!(!a.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let net = dense_network(50);
        let mk = |seed| {
            let mut sim = sim_on(
                &net,
                1.5,
                SimConfig { ticks: 40, seed, initial_infections: 4, ..Default::default() },
            );
            sim.run().output.transitions
        };
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn occupancy_conserves_population() {
        let net = dense_network(30);
        let mut sim = sim_on(&net, 1.0, SimConfig { ticks: 30, ..Default::default() });
        let res = sim.run();
        for row in &res.output.current_counts {
            let total: u32 = row.iter().sum();
            assert_eq!(total, 30);
        }
    }

    #[test]
    fn transmission_has_cause_progression_does_not() {
        let net = dense_network(40);
        let mut sim =
            sim_on(&net, 2.0, SimConfig { ticks: 40, initial_infections: 2, ..Default::default() });
        let res = sim.run();
        for tr in &res.output.transitions {
            match tr.state {
                1 if tr.tick > 0 => {
                    assert!(tr.cause.is_some(), "infection without cause: {tr:?}");
                }
                2 => assert!(tr.cause.is_none(), "progression with cause: {tr:?}"),
                _ => {}
            }
        }
    }

    #[test]
    fn infector_is_an_actual_neighbor() {
        let net = dense_network(30);
        let mut sim = sim_on(&net, 2.0, SimConfig { ticks: 30, ..Default::default() });
        let rt = RuntimeNet::build(&net);
        let res = sim.run();
        for tr in res.output.transitions.iter().filter(|t| t.cause.is_some()) {
            let cause = tr.cause.unwrap();
            assert!(
                rt.in_edges(tr.person).iter().any(|e| e.neighbor == cause),
                "cause {cause} is not a neighbor of {}",
                tr.person
            );
        }
    }

    #[test]
    fn isolated_node_in_disconnected_network_never_infected() {
        // Two disconnected cliques; seed deterministically lands
        // somewhere, infection must stay within components reachable
        // from seeds.
        let mut edges = Vec::new();
        for u in 0..10u32 {
            for v in (u + 1)..10 {
                edges.push(ContactEdge {
                    u,
                    v,
                    start: 0,
                    duration: 600,
                    ctx_u: ActivityType::Work,
                    ctx_v: ActivityType::Work,
                    weight: 1.0,
                });
            }
        }
        // Node 10 is isolated.
        let net = ContactNetwork { n_nodes: 11, edges };
        let mut sim = sim_on(
            &net,
            3.0,
            SimConfig { ticks: 60, seed: 5, initial_infections: 2, ..Default::default() },
        );
        let res = sim.run();
        let infected_10 =
            res.output.transitions.iter().any(|t| t.person == 10 && t.cause.is_some());
        assert!(!infected_10, "isolated node cannot be infected by contact");
    }

    #[test]
    fn counter_rng_streams_are_independent() {
        let a: Vec<u64> = {
            let mut r = CounterRng::new(7, 1, 1);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = CounterRng::new(7, 2, 1);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = CounterRng::new(7, 1, 2);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
        assert_ne!(a, c);
        // And reproducible.
        let a2: Vec<u64> = {
            let mut r = CounterRng::new(7, 1, 1);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, a2);
    }

    #[test]
    fn counter_rng_uniformity_smoke() {
        let mut r = CounterRng::new(123, 0, 0);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.random_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut r = CounterRng::new(1, 0, 0);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn runtime_net_structure() {
        let net = dense_network(5);
        let rt = RuntimeNet::build(&net);
        assert_eq!(rt.n_nodes, 5);
        assert_eq!(rt.n_undirected, 10);
        for v in 0..5u32 {
            assert_eq!(rt.in_edges(v).len(), 4);
            for e in rt.in_edges(v) {
                assert_ne!(e.neighbor, v);
                assert!((e.duration_frac - 1.0 / 3.0).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn memory_series_recorded_every_tick() {
        let net = dense_network(20);
        let mut sim = sim_on(&net, 1.0, SimConfig { ticks: 25, ..Default::default() });
        let res = sim.run();
        assert_eq!(res.output.memory_bytes.len(), 25);
        assert!(res.output.memory_bytes[0] > 0);
    }

    #[test]
    fn seeding_more_than_population_caps() {
        let net = dense_network(5);
        let mut sim =
            sim_on(&net, 0.0, SimConfig { ticks: 3, initial_infections: 50, ..Default::default() });
        let res = sim.run();
        let seeds = res.output.transitions.iter().filter(|t| t.tick == 0).count();
        assert_eq!(seeds, 5);
    }
}
