//! The parallel discrete-time simulation engine.
//!
//! Each tick (= 1 day):
//!
//! 1. **Interventions** run serially against the system state (they are
//!    cheap relative to the network scan, exactly as in EpiHiper).
//! 2. **Scan phase** — partitions execute in parallel (rayon workers
//!    standing in for MPI ranks; a partition owns all in-edges of its
//!    nodes, so each worker reads shared last-tick state and writes only
//!    its own event buffer). For every *candidate* node the scan either
//!    fires a scheduled progression or, for susceptible nodes,
//!    accumulates the Eq.-(1) propensities over active in-edges and
//!    performs the Gillespie draw for whether an exposure occurs and
//!    which contact caused it.
//! 3. **Apply phase** — events are applied serially in node order,
//!    updating health states, counters, the transition log, the
//!    frontier index, and the memory accounting.
//!
//! The default scan is **frontier-based**: per-tick cost is
//! proportional to the active frontier (nodes with at least one
//! infectious-capable in-neighbor, tracked by [`ActiveSet`]) plus due
//! progressions (tracked by [`TickBuckets`]), not to the network size.
//! A node outside the frontier has every transmission-LUT lookup
//! `None`, so its λ accumulates to exactly 0.0 and the reference scan
//! would skip it *before constructing its RNG* — skipping it outright
//! therefore changes nothing. The pre-existing full-range scan is kept
//! verbatim behind [`SimConfig::reference_scan`] for A/B verification;
//! both produce byte-identical transition logs.
//!
//! Randomness is *counter-based*: each (node, tick) pair gets its own
//! splitmix64 stream derived from the replicate seed, so results are
//! bit-identical regardless of how many threads or partitions execute
//! the scan — the property that lets strong-scaling benchmarks vary
//! parallelism without changing the epidemic, and the property that
//! makes frontier skipping safe (no node's draws depend on whether
//! another node was visited).

use crate::checkpoint::{SimSnapshot, SnapshotError, SnapshotMeta, SNAPSHOT_VERSION};
use crate::disease::{DiseaseModel, StateId};
use crate::frontier::{ActiveSet, TickBuckets};
use crate::interventions::{InterventionCtx, InterventionSet};
use crate::output::{SimOutput, TransitionRecord};
use crate::partition::{partition_network, Partitioning};
use crate::state::{SimState, NEVER};
use epiflow_synthpop::ContactNetwork;
use rand::{Rng, RngCore};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Counter-based RNG: a splitmix64 stream keyed by (seed, node, tick).
///
/// splitmix64 passes BigCrush and is the canonical seeding generator;
/// one multiply-xor-shift round per output makes per-(node,tick)
/// construction essentially free, which is what makes thread-count
/// independence affordable.
#[derive(Clone, Debug)]
pub struct CounterRng {
    state: u64,
}

impl CounterRng {
    /// Stream for a (seed, node, tick) triple.
    #[inline]
    pub fn new(seed: u64, node: u32, tick: u32) -> Self {
        let key = seed
            ^ (node as u64).wrapping_mul(0x9E3779B97F4A7C15)
            ^ ((tick as u64) << 32).wrapping_mul(0xBF58476D1CE4E5B9);
        // One warmup step decorrelates nearby keys.
        let mut rng = CounterRng { state: key };
        rng.next_u64();
        rng
    }
}

impl RngCore for CounterRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// One directed in-edge as seen from its owning node.
#[derive(Clone, Copy, Debug)]
pub struct EdgeRef {
    /// The other endpoint.
    pub neighbor: u32,
    /// Undirected edge id (shared by both directions).
    pub edge_id: u32,
    /// Edge weight `w_e`.
    pub weight: f32,
    /// Contact duration `T` as a fraction of a day.
    pub duration_frac: f32,
    /// Precomputed `duration_frac · weight` in f64 — the static prefix
    /// of the Eq.-(1) propensity. Computing it once at build time saves
    /// two widenings and a multiply per edge per tick, and because it
    /// is the exact product the scan used to compute inline, the λ
    /// accumulation stays bit-identical.
    pub tw: f64,
    /// Activity context code of the owning node.
    pub ctx_self: u8,
    /// Activity context code of the neighbor.
    pub ctx_nbr: u8,
}

/// The runtime (CSR) representation of the contact network: all in-edges
/// of a node stored contiguously, which is both the partitioning
/// invariant and the memory layout the scan wants.
#[derive(Clone, Debug)]
pub struct RuntimeNet {
    pub n_nodes: usize,
    pub n_undirected: usize,
    offsets: Vec<u32>,
    edges: Vec<EdgeRef>,
}

impl RuntimeNet {
    /// Build from an edge-list network (each undirected edge becomes an
    /// in-edge of both endpoints).
    pub fn build(network: &ContactNetwork) -> Self {
        let n = network.n_nodes;
        let mut deg = vec![0u32; n + 1];
        for e in &network.edges {
            deg[e.u as usize + 1] += 1;
            deg[e.v as usize + 1] += 1;
        }
        for i in 1..=n {
            deg[i] += deg[i - 1];
        }
        let offsets = deg;
        let mut cursor = offsets.clone();
        let mut edges = vec![
            EdgeRef {
                neighbor: 0,
                edge_id: 0,
                weight: 0.0,
                duration_frac: 0.0,
                tw: 0.0,
                ctx_self: 0,
                ctx_nbr: 0
            };
            network.edges.len() * 2
        ];
        for (eid, e) in network.edges.iter().enumerate() {
            let frac = f32::from(e.duration.min(1440)) / 1440.0;
            let tw = frac as f64 * e.weight as f64;
            let at_u = cursor[e.u as usize] as usize;
            edges[at_u] = EdgeRef {
                neighbor: e.v,
                edge_id: eid as u32,
                weight: e.weight,
                duration_frac: frac,
                tw,
                ctx_self: e.ctx_u.code(),
                ctx_nbr: e.ctx_v.code(),
            };
            cursor[e.u as usize] += 1;
            let at_v = cursor[e.v as usize] as usize;
            edges[at_v] = EdgeRef {
                neighbor: e.u,
                edge_id: eid as u32,
                weight: e.weight,
                duration_frac: frac,
                tw,
                ctx_self: e.ctx_v.code(),
                ctx_nbr: e.ctx_u.code(),
            };
            cursor[e.v as usize] += 1;
        }
        RuntimeNet { n_nodes: n, n_undirected: network.edges.len(), offsets, edges }
    }

    /// In-edges of a node.
    #[inline]
    pub fn in_edges(&self, node: u32) -> &[EdgeRef] {
        let lo = self.offsets[node as usize] as usize;
        let hi = self.offsets[node as usize + 1] as usize;
        &self.edges[lo..hi]
    }

    /// Static memory footprint in bytes (network share of Fig. 10).
    pub fn static_memory_bytes(&self) -> u64 {
        (self.offsets.len() * 4 + self.edges.len() * std::mem::size_of::<EdgeRef>()) as u64
    }
}

/// The immutable half of a simulation: everything that is a pure
/// function of ⟨contact network, demographics, partition count⟩ and is
/// only ever *read* during a run. Nightly production designs execute
/// thousands of replicates against the same network, so this is built
/// once per ⟨region, partition count⟩ and shared via [`Arc`] across
/// every replicate ([`Simulation::new_with_context`]), turning the
/// O(V + E) CSR build + partitioning + attribute derivation from a
/// per-replicate cost into a per-ensemble one.
///
/// The partitioning lives here — keyed by the ⟨`n_partitions`, `epsilon`⟩
/// it was built with — because partition boundaries determine the
/// workspace layout, the bucket routing, and the per-partition
/// saturation decision. A context is therefore only valid for configs
/// requesting the same partitioning; [`Simulation::new_with_context`]
/// asserts this rather than silently diverging from the fresh-build
/// path. (Results would still be *epidemiologically* identical either
/// way — the RNG is counter-based — but telemetry like `edges_scanned`
/// would not be byte-identical, and byte-identity is the invariant.)
#[derive(Debug)]
pub struct SimContext {
    /// CSR runtime network (in-edge arrays incl. precomputed `tw`).
    pub net: RuntimeNet,
    /// Contiguous node ranges, one per partition.
    pub partitioning: Partitioning,
    /// Dense node → partition map (apply-phase bucket routing).
    pub part_of: Vec<u32>,
    /// Age-group index (0..5) per node.
    pub age_group: Vec<u8>,
    /// County index per node (for county-level aggregation).
    pub county: Vec<u16>,
    /// County rows in the aggregate output (max county index + 1).
    pub n_counties: usize,
    /// The partition count the partitioning was requested with.
    pub n_partitions: usize,
    /// The partitioning tolerance ε it was built with.
    pub epsilon: usize,
}

impl SimContext {
    /// One-time construction of the shared context: CSR build,
    /// partitioning, and the derived attribute tables. `age_group` and
    /// `county` must have one entry per node.
    pub fn build(
        network: &ContactNetwork,
        age_group: Vec<u8>,
        county: Vec<u16>,
        n_partitions: usize,
        epsilon: usize,
    ) -> Self {
        assert_eq!(age_group.len(), network.n_nodes, "age group per node");
        assert_eq!(county.len(), network.n_nodes, "county per node");
        let partitioning = partition_network(network, n_partitions, epsilon);
        let net = RuntimeNet::build(network);
        let part_of = partitioning.index_map();
        let n_counties = county.iter().map(|&c| c as usize + 1).max().unwrap_or(1);
        SimContext {
            net,
            partitioning,
            part_of,
            age_group,
            county,
            n_counties,
            n_partitions,
            epsilon,
        }
    }
}

/// Simulation configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of ticks (days) to simulate.
    pub ticks: u32,
    /// Replicate seed.
    pub seed: u64,
    /// Processing units (partitions / rayon workers).
    pub n_partitions: usize,
    /// Partitioning tolerance ε.
    pub epsilon: usize,
    /// Number of initial infections, seeded at tick 0.
    pub initial_infections: usize,
    /// Keep the full transition log (disable for large sweeps where
    /// only aggregates are needed).
    pub record_transitions: bool,
    /// Use the pre-frontier full-range scan (O(nodes + edges) per tick)
    /// instead of the frontier scan. Exists for A/B verification and
    /// benchmarking; both modes produce byte-identical output.
    pub reference_scan: bool,
    /// Frontier occupancy fraction above which a partition abandons the
    /// bitset merge for the plain full-range sweep that tick: iterating
    /// a near-full bitset plus the due-list merge and the single-pass
    /// stash cost a few ns per node over the reference's bare range
    /// loop, while sweeping the few off-frontier nodes costs only their
    /// λ ≡ 0 edge walks. Measured crossover on a mean-degree-20 network
    /// sits near 3/4 occupancy (direction-optimizing-BFS style switch),
    /// hence the 0.75 default. `0.0` degenerates every tick to the
    /// reference sweep; values above 1.0 never switch. Both scans emit
    /// identical events, so this knob only moves cost, never results.
    pub saturation_threshold: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            ticks: 120,
            seed: 1,
            n_partitions: 4,
            epsilon: 16,
            initial_infections: 5,
            record_transitions: true,
            reference_scan: false,
            saturation_threshold: 0.75,
        }
    }
}

/// One tick-event produced by the scan phase.
#[derive(Clone, Copy, Debug)]
struct Event {
    node: u32,
    new_state: StateId,
    cause: Option<u32>,
    exit_tick: u32,
    next_state: StateId,
}

/// Per-tick engine telemetry, one entry per tick.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Frontier size at scan time (nodes with ≥1 infectious-capable
    /// in-neighbor). Recorded in both scan modes.
    pub frontier_nodes: Vec<u32>,
    /// Scheduled progressions due this tick (bucket drains).
    pub due_nodes: Vec<u32>,
    /// In-edges examined by the λ-accumulation pass. This is the
    /// quantity the frontier scan shrinks: the reference scan pays it
    /// for every susceptible node, the frontier scan only for frontier
    /// members.
    pub edges_scanned: Vec<u64>,
    /// State-transition events applied.
    pub events: Vec<u32>,
}

impl EngineStats {
    /// Sum of the per-tick λ-pass edge visits.
    pub fn total_edges_scanned(&self) -> u64 {
        self.edges_scanned.iter().sum()
    }

    /// Mean frontier occupancy as a fraction of the node count.
    pub fn mean_frontier_occupancy(&self, n_nodes: usize) -> f64 {
        if self.frontier_nodes.is_empty() || n_nodes == 0 {
            return 0.0;
        }
        let mean = self.frontier_nodes.iter().map(|&f| f as f64).sum::<f64>()
            / self.frontier_nodes.len() as f64;
        mean / n_nodes as f64
    }
}

/// Mid-run continuation state: everything the tick loop accumulates
/// that is *not* part of [`SimState`] but must survive an interrupt for
/// the resumed run to be byte-identical — the output series so far, the
/// previous tick's transitions (consumed by reactive interventions at
/// the next tick), the cumulative transition count feeding the memory
/// model, and the per-tick telemetry.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RunCarry {
    pub output: SimOutput,
    pub recent: Vec<TransitionRecord>,
    pub cum_transitions: u64,
    pub stats: EngineStats,
}

/// Result of a run.
#[derive(Clone, Debug)]
pub struct SimResult {
    pub output: SimOutput,
    /// Wall-clock time of the tick loop.
    pub elapsed: std::time::Duration,
    pub ticks_run: u32,
    /// Per-tick engine telemetry.
    pub stats: EngineStats,
}

/// Reusable per-partition scan state: the due-progression buffer, the
/// event output buffer, and the Gillespie scratch. Owned by the
/// simulation and handed to one worker per tick, so the hot loop
/// allocates nothing.
#[derive(Debug, Default)]
struct Workspace {
    part: usize,
    range: std::ops::Range<u32>,
    /// Nodes whose scheduled progression may fire this tick (drained
    /// from [`TickBuckets`]; sorted, deduped, possibly stale).
    due: Vec<u32>,
    events: Vec<Event>,
    /// Per-qualifying-edge `(ρ, neighbor, to_state)` from the λ pass,
    /// reused by the Gillespie pick so the in-edge list is walked once.
    scratch: Vec<(f64, u32, StateId)>,
    edges_scanned: u64,
}

/// Reusable run buffers: the per-partition [`Workspace`]s plus the
/// per-tick aggregation rows. A fresh simulation starts with an empty
/// scratch and grows it during the first ticks; an ensemble runner
/// instead moves one scratch per worker from replicate to replicate
/// ([`Simulation::install_scratch`] / [`Simulation::take_scratch`]), so
/// steady-state ensemble throughput allocates nothing per run. Buffer
/// *contents* never affect results — every buffer is cleared, re-sized,
/// or re-pointed before use — only capacity is carried over.
#[derive(Debug, Default)]
pub struct SimScratch {
    workspaces: Vec<Workspace>,
    /// New-transition counts per state this tick.
    new_row: Vec<u32>,
    /// New-transition counts per (county, state) this tick.
    county_row: Vec<Vec<u32>>,
}

impl SimScratch {
    /// An empty scratch (what a fresh simulation starts with).
    pub fn new() -> Self {
        Self::default()
    }

    /// Point the per-partition workspaces at `partitioning`'s ranges,
    /// keeping each workspace's buffers. Called at the top of every
    /// `run`, so an installed scratch may come from a simulation with a
    /// different partitioning (or network) entirely.
    fn configure(&mut self, partitioning: &Partitioning) {
        self.workspaces.resize_with(partitioning.len(), Workspace::default);
        for (k, (ws, r)) in self.workspaces.iter_mut().zip(&partitioning.ranges).enumerate() {
            ws.part = k;
            ws.range = r.clone();
        }
    }
}

/// A configured simulation, ready to run.
///
/// The immutable inputs (network, partitioning, demographics) live in
/// an [`Arc`]-shared [`SimContext`]; everything below it is the cheap
/// per-replicate mutable state.
pub struct Simulation {
    /// The shared immutable context (network, partitioning, attributes).
    ctx: Arc<SimContext>,
    pub model: DiseaseModel,
    pub state: SimState,
    pub interventions: InterventionSet,
    pub config: SimConfig,
    /// `lut[health * n_states + neighbor_health]` → (exposed state, ω).
    trans_lut: Vec<Option<(StateId, f64)>>,
    /// `via_state[s]`: state `s` appears as `via` in some transmission,
    /// i.e. nodes in `s` can infect. Gating on it is what makes the
    /// frontier robust to interventions: edge enable-bits, context
    /// closures, and infectivity/susceptibility scales only *multiply*
    /// propensity terms, so a node with zero via-state in-neighbors has
    /// λ ≡ 0 no matter what interventions did.
    via_state: Vec<bool>,
    /// Number of in-neighbors currently in a via state, per node.
    inf_nbr_count: Vec<u32>,
    /// Nodes with `inf_nbr_count > 0` — the transmission frontier.
    active: ActiveSet,
    /// Scheduled progressions, bucketed by firing tick.
    buckets: TickBuckets,
    scratch: SimScratch,
    /// Last observed [`SimState::health_epoch`]; a mismatch means an
    /// intervention (or test harness) wrote health states externally
    /// and the frontier index must be rebuilt.
    seen_health_epoch: u64,
    /// First tick the next [`Simulation::run`] call executes: 0 for a
    /// fresh simulation, `config.ticks` after a completed run, the
    /// snapshot's `next_tick` after [`Simulation::resume`].
    start_tick: u32,
    /// Continuation state from the previous `run` call (or the
    /// snapshot), `None` until the first run.
    carry: Option<RunCarry>,
}

impl Simulation {
    /// Build a simulation. `age_group` and `county` must have one entry
    /// per node; pass `vec![2; n]` / `vec![0; n]` when demographics are
    /// not needed.
    pub fn new(
        network: &ContactNetwork,
        model: DiseaseModel,
        age_group: Vec<u8>,
        county: Vec<u16>,
        interventions: InterventionSet,
        config: SimConfig,
    ) -> Self {
        let ctx = Arc::new(SimContext::build(
            network,
            age_group,
            county,
            config.n_partitions,
            config.epsilon,
        ));
        Self::new_with_context(ctx, model, interventions, config)
    }

    /// Build a simulation against a pre-built shared [`SimContext`],
    /// skipping all network construction: no CSR build, no
    /// partitioning, no attribute derivation — only the O(V) mutable
    /// state and the O(states²) transmission LUT. This is the ensemble
    /// fast path; with a fixed seed it produces byte-identical results
    /// to [`Simulation::new`] on the same inputs.
    ///
    /// Panics if `config` requests a different partitioning than `ctx`
    /// was built with (see [`SimContext`]).
    pub fn new_with_context(
        ctx: Arc<SimContext>,
        model: DiseaseModel,
        interventions: InterventionSet,
        config: SimConfig,
    ) -> Self {
        assert_eq!(
            (ctx.n_partitions, ctx.epsilon),
            (config.n_partitions, config.epsilon),
            "context partitioned for {}/ε={}, config requests {}/ε={}",
            ctx.n_partitions,
            ctx.epsilon,
            config.n_partitions,
            config.epsilon,
        );
        model.validate().expect("valid disease model");

        let state = SimState::new(ctx.net.n_nodes, ctx.net.n_undirected, model.susceptible_state);

        let ns = model.n_states();
        let mut trans_lut = vec![None; ns * ns];
        let mut via_state = vec![false; ns];
        for t in &model.transmissions {
            trans_lut[t.from as usize * ns + t.via as usize] = Some((t.to, t.omega));
            via_state[t.via as usize] = true;
        }

        let buckets = TickBuckets::new(ctx.partitioning.len());
        let active = ActiveSet::new(ctx.net.n_nodes);
        let inf_nbr_count = vec![0u32; ctx.net.n_nodes];

        let mut sim = Simulation {
            ctx,
            model,
            state,
            interventions,
            config,
            trans_lut,
            via_state,
            inf_nbr_count,
            active,
            buckets,
            scratch: SimScratch::default(),
            seen_health_epoch: 0,
            start_tick: 0,
            carry: None,
        };
        sim.rebuild_frontier();
        sim
    }

    /// The shared immutable context.
    pub fn context(&self) -> &Arc<SimContext> {
        &self.ctx
    }

    /// The CSR runtime network.
    pub fn net(&self) -> &RuntimeNet {
        &self.ctx.net
    }

    /// The node partitioning.
    pub fn partitioning(&self) -> &Partitioning {
        &self.ctx.partitioning
    }

    /// Age-group index (0..5) per node.
    pub fn age_group(&self) -> &[u8] {
        &self.ctx.age_group
    }

    /// County index per node.
    pub fn county(&self) -> &[u16] {
        &self.ctx.county
    }

    /// Swap in a pooled [`SimScratch`] from a previous run (ensemble
    /// buffer reuse across replicates). Purely a capacity transfer:
    /// results are identical whether or not a scratch is installed.
    pub fn install_scratch(&mut self, scratch: SimScratch) {
        self.scratch = scratch;
    }

    /// Take the scratch buffers back out, for the next replicate.
    pub fn take_scratch(&mut self) -> SimScratch {
        std::mem::take(&mut self.scratch)
    }

    /// Recompute the frontier index (`inf_nbr_count` + [`ActiveSet`])
    /// from the authoritative health states, and snapshot the health
    /// epoch. O(V + E); called at construction and whenever health
    /// states were written externally (see [`SimState::set_health`]).
    pub fn rebuild_frontier(&mut self) {
        self.inf_nbr_count.iter_mut().for_each(|c| *c = 0);
        self.active.clear();
        for v in 0..self.ctx.net.n_nodes as u32 {
            if self.via_state[self.state.health[v as usize] as usize] {
                for e in self.ctx.net.in_edges(v) {
                    self.inf_nbr_count[e.neighbor as usize] += 1;
                }
            }
        }
        for v in 0..self.ctx.net.n_nodes as u32 {
            if self.inf_nbr_count[v as usize] > 0 {
                self.active.insert(v);
            }
        }
        self.seen_health_epoch = self.state.health_epoch();
    }

    /// Incremental frontier maintenance for one health transition of
    /// node `v`. O(deg(v)), and only when `v` crosses the via-state
    /// boundary.
    fn note_health_change(&mut self, v: u32, old: StateId, new: StateId) {
        let was = self.via_state[old as usize];
        let is = self.via_state[new as usize];
        if was == is {
            return;
        }
        if is {
            for e in self.ctx.net.in_edges(v) {
                let u = e.neighbor as usize;
                self.inf_nbr_count[u] += 1;
                if self.inf_nbr_count[u] == 1 {
                    self.active.insert(e.neighbor);
                }
            }
        } else {
            for e in self.ctx.net.in_edges(v) {
                let u = e.neighbor as usize;
                self.inf_nbr_count[u] -= 1;
                if self.inf_nbr_count[u] == 0 {
                    self.active.remove(e.neighbor);
                }
            }
        }
    }

    /// Frontier-index overhead for the memory model: the neighbor
    /// counts, the partition map, both bitset levels, and the queued
    /// bucket entries.
    fn frontier_memory_bytes(&self) -> u64 {
        let n = self.ctx.net.n_nodes;
        ((self.inf_nbr_count.len() + self.ctx.part_of.len()) * 4
            + n.div_ceil(64) * 8
            + n.div_ceil(64).div_ceil(64) * 8
            + self.buckets.queued() * 8) as u64
    }

    /// Schedule the progression out of `entered` for a node, returning
    /// `(exit_tick, next_state)` — or `(NEVER, entered)` for terminal
    /// states.
    fn schedule<R: Rng + ?Sized>(
        model: &DiseaseModel,
        entered: StateId,
        age_group: usize,
        tick: u32,
        rng: &mut R,
    ) -> (u32, StateId) {
        match model.sample_progression(entered, age_group, rng) {
            Some((next, dwell)) => (tick + u32::from(dwell.max(1)), next),
            None => (NEVER, entered),
        }
    }

    /// Seed `initial_infections` distinct nodes at tick 0. The seeding
    /// loop draws random nodes under a guard bound; any shortfall is
    /// recorded in the output instead of being silently dropped.
    fn seed_infections(&mut self, output: &mut SimOutput) {
        let n = self.ctx.net.n_nodes;
        let target = self.config.initial_infections.min(n);
        output.requested_seeds = target as u32;
        if n == 0 {
            return;
        }
        let mut rng = CounterRng::new(self.config.seed, u32::MAX, 0);
        let mut seeded = 0usize;
        let mut guard = 0usize;
        while seeded < target && guard < target * 100 + 100 {
            guard += 1;
            let v = rng.random_range(0..n as u32);
            let old = self.state.health[v as usize];
            if old != self.model.susceptible_state {
                continue;
            }
            let s = self.model.initial_infected_state;
            let (exit, next) = Self::schedule(
                &self.model,
                s,
                self.ctx.age_group[v as usize] as usize,
                0,
                &mut rng,
            );
            self.state.health[v as usize] = s;
            self.state.exit_tick[v as usize] = exit;
            self.state.next_state[v as usize] = next;
            if exit != NEVER {
                self.buckets.push(self.ctx.part_of[v as usize] as usize, exit, v);
            }
            self.note_health_change(v, old, s);
            if self.config.record_transitions {
                output.transitions.push(TransitionRecord {
                    tick: 0,
                    person: v,
                    state: s,
                    cause: None,
                });
            }
            seeded += 1;
        }
        output.seeded = seeded as u32;
    }

    /// The pre-frontier scan: walk every node of the partition,
    /// re-deriving due progressions from `exit_tick` and λ from a full
    /// in-edge pass (plus a second pass for the Gillespie pick). Kept
    /// verbatim as the A/B baseline behind [`SimConfig::reference_scan`].
    fn scan_partition_reference(&self, ws: &mut Workspace, t: u32) {
        let ns = self.model.n_states();
        let tau = self.model.transmissibility;
        let range = ws.range.clone();

        for v in range {
            let vi = v as usize;
            // Scheduled progression fires this tick.
            if self.state.exit_tick[vi] == t {
                let to = self.state.next_state[vi];
                let mut rng = CounterRng::new(self.config.seed, v, t);
                let (exit, next) =
                    Self::schedule(&self.model, to, self.ctx.age_group[vi] as usize, t, &mut rng);
                ws.events.push(Event {
                    node: v,
                    new_state: to,
                    cause: None,
                    exit_tick: exit,
                    next_state: next,
                });
                continue;
            }
            // Transmission scan for susceptible nodes.
            let hv = self.state.health[vi];
            let sigma = self.model.states[hv as usize].susceptibility
                * self.state.susceptibility_scale[vi] as f64;
            if sigma <= 0.0 {
                continue;
            }
            let lut_row = &self.trans_lut[hv as usize * ns..(hv as usize + 1) * ns];
            let mut lambda = 0.0f64;
            ws.edges_scanned += self.ctx.net.in_edges(v).len() as u64;
            for e in self.ctx.net.in_edges(v) {
                let u = e.neighbor as usize;
                let hu = self.state.health[u];
                let Some((_, omega)) = lut_row[hu as usize] else { continue };
                if !self.state.edge_active(e.edge_id, v, e.neighbor, e.ctx_self, e.ctx_nbr, t) {
                    continue;
                }
                let iota = self.model.states[hu as usize].infectivity
                    * self.state.infectivity_scale[u] as f64;
                // Eq. (1): ρ = T · w_e · σ(Ps)·ι(Pi) · ω, scaled by τ.
                lambda += e.tw * sigma * iota * omega * tau;
            }
            if lambda <= 0.0 {
                continue;
            }
            let mut rng = CounterRng::new(self.config.seed, v, t);
            let p_infect = 1.0 - (-lambda).exp();
            if !rng.random_bool(p_infect) {
                continue;
            }
            // Gillespie: the causing contact is chosen ∝ its propensity.
            let mut pick = rng.random_range(0.0..lambda);
            let mut cause = None;
            let mut to_state = self.model.initial_infected_state;
            for e in self.ctx.net.in_edges(v) {
                let u = e.neighbor as usize;
                let hu = self.state.health[u];
                let Some((to, omega)) = lut_row[hu as usize] else { continue };
                if !self.state.edge_active(e.edge_id, v, e.neighbor, e.ctx_self, e.ctx_nbr, t) {
                    continue;
                }
                let iota = self.model.states[hu as usize].infectivity
                    * self.state.infectivity_scale[u] as f64;
                let rho = e.tw * sigma * iota * omega * tau;
                pick -= rho;
                if pick <= 0.0 {
                    cause = Some(e.neighbor);
                    to_state = to;
                    break;
                }
            }
            if cause.is_none() {
                // Floating-point remainder: attribute to the last active
                // infectious contact (rescan not worth the cost).
                for e in self.ctx.net.in_edges(v).iter().rev() {
                    let hu = self.state.health[e.neighbor as usize];
                    if lut_row[hu as usize].is_some()
                        && self
                            .state
                            .edge_active(e.edge_id, v, e.neighbor, e.ctx_self, e.ctx_nbr, t)
                    {
                        cause = Some(e.neighbor);
                        to_state = lut_row[hu as usize].expect("checked").0;
                        break;
                    }
                }
            }
            let (exit, next) =
                Self::schedule(&self.model, to_state, self.ctx.age_group[vi] as usize, t, &mut rng);
            ws.events.push(Event {
                node: v,
                new_state: to_state,
                cause,
                exit_tick: exit,
                next_state: next,
            });
        }
    }

    /// The scheduled-progression branch, shared by both frontier paths
    /// (body identical to the reference scan's).
    #[inline]
    fn progress_node(&self, v: u32, t: u32, events: &mut Vec<Event>) {
        let vi = v as usize;
        let to = self.state.next_state[vi];
        let mut rng = CounterRng::new(self.config.seed, v, t);
        let (exit, next) =
            Self::schedule(&self.model, to, self.ctx.age_group[vi] as usize, t, &mut rng);
        events.push(Event {
            node: v,
            new_state: to,
            cause: None,
            exit_tick: exit,
            next_state: next,
        });
    }

    /// The transmission branch with the single-pass Gillespie pick: one
    /// λ pass that stashes each qualifying edge's `(ρ, neighbor, to)`
    /// in scratch as it accumulates, so the cause pick replays scratch
    /// without ever rescanning the in-edge list. Scratch holds the same
    /// ρ sequence the reference second pass recomputes (including ρ = 0
    /// entries), and its last element is the reference fallback's
    /// reverse-scan hit — so the emitted event is byte-identical to the
    /// reference transmission branch.
    #[inline]
    fn transmit_node(
        &self,
        v: u32,
        t: u32,
        scratch: &mut Vec<(f64, u32, StateId)>,
        events: &mut Vec<Event>,
        edges_scanned: &mut u64,
    ) {
        let ns = self.model.n_states();
        let tau = self.model.transmissibility;
        let vi = v as usize;
        let hv = self.state.health[vi];
        let sigma = self.model.states[hv as usize].susceptibility
            * self.state.susceptibility_scale[vi] as f64;
        if sigma <= 0.0 {
            return;
        }
        let lut_row = &self.trans_lut[hv as usize * ns..(hv as usize + 1) * ns];
        let mut lambda = 0.0f64;
        scratch.clear();
        *edges_scanned += self.ctx.net.in_edges(v).len() as u64;
        for e in self.ctx.net.in_edges(v) {
            let u = e.neighbor as usize;
            let hu = self.state.health[u];
            let Some((to, omega)) = lut_row[hu as usize] else { continue };
            if !self.state.edge_active(e.edge_id, v, e.neighbor, e.ctx_self, e.ctx_nbr, t) {
                continue;
            }
            let iota =
                self.model.states[hu as usize].infectivity * self.state.infectivity_scale[u] as f64;
            // Eq. (1): ρ = T · w_e · σ(Ps)·ι(Pi) · ω, scaled by τ.
            let rho = e.tw * sigma * iota * omega * tau;
            lambda += rho;
            scratch.push((rho, e.neighbor, to));
        }
        if lambda <= 0.0 {
            return;
        }
        let mut rng = CounterRng::new(self.config.seed, v, t);
        let p_infect = 1.0 - (-lambda).exp();
        if !rng.random_bool(p_infect) {
            return;
        }
        // Gillespie pick over the stashed propensities.
        let mut pick = rng.random_range(0.0..lambda);
        let mut chosen = None;
        for &(rho, nbr, to) in scratch.iter() {
            pick -= rho;
            if pick <= 0.0 {
                chosen = Some((nbr, to));
                break;
            }
        }
        // Floating-point remainder: the last qualifying contact (what
        // the reference fallback's reverse scan finds).
        let (cause_nbr, to_state) = chosen.unwrap_or_else(|| {
            let &(_, nbr, to) = scratch.last().expect("λ > 0 implies a qualifying edge");
            (nbr, to)
        });
        let (exit, next) =
            Self::schedule(&self.model, to_state, self.ctx.age_group[vi] as usize, t, &mut rng);
        events.push(Event {
            node: v,
            new_state: to_state,
            cause: Some(cause_nbr),
            exit_tick: exit,
            next_state: next,
        });
    }

    /// The frontier scan: a two-pointer merge of the partition's due
    /// progressions (sorted bucket drain) and its slice of the active
    /// set, visited in ascending node order so events come out in
    /// exactly the order the reference full-range sweep produces them.
    ///
    /// Equivalence to the reference scan, node by node:
    /// * due ∧ `exit_tick == t` — the progression branch, identical.
    /// * due ∧ `exit_tick != t` ∧ ¬active — a stale bucket entry for a
    ///   node with no via-state in-neighbors: every LUT lookup is
    ///   `None`, λ ≡ 0.0 exactly, and the reference scan falls through
    ///   before constructing the node's RNG. Skipped.
    /// * active — the transmission branch ([`Self::transmit_node`]).
    /// * neither — λ ≡ 0.0 as above; the reference scan's only effect
    ///   would be the `exit_tick`/σ checks. Skipped.
    ///
    /// When the partition's frontier occupancy reaches
    /// [`SimConfig::saturation_threshold`] (default 0.75), the merge is
    /// abandoned for this tick and the partition runs
    /// [`Self::scan_partition_reference`] instead — the two scans emit
    /// identical events (the engine's headline invariant), so at
    /// saturation the frontier engine degenerates to the reference scan
    /// with zero overhead by construction rather than paying bitset
    /// iteration and stash writes for every node.
    fn scan_partition_frontier(&self, ws: &mut Workspace, t: u32) {
        let span = (ws.range.end - ws.range.start) as usize;
        let occupied = self.active.count_range(ws.range.start, ws.range.end);
        // `occupied >= span * θ` in f64 is exact at the default θ = 3/4
        // for any realistic span, so this reproduces the historical
        // integer `occupied·4 ≥ span·3` switch bit for bit.
        if occupied as f64 >= span as f64 * self.config.saturation_threshold {
            // Saturated partition: the full sweep finds every due
            // progression via its own `exit_tick` check, so the drained
            // due list is not consulted.
            self.scan_partition_reference(ws, t);
            return;
        }
        let Workspace { range, due, events, scratch, edges_scanned, .. } = ws;

        let mut di = 0usize;
        let mut act = self.active.iter_range(range.start, range.end);
        let mut next_act = act.next();
        loop {
            let (v, from_active) = match (due.get(di).copied(), next_act) {
                (None, None) => break,
                (Some(d), None) => {
                    di += 1;
                    (d, false)
                }
                (None, Some(a)) => {
                    next_act = act.next();
                    (a, true)
                }
                (Some(d), Some(a)) => {
                    if d < a {
                        di += 1;
                        (d, false)
                    } else if a < d {
                        next_act = act.next();
                        (a, true)
                    } else {
                        di += 1;
                        next_act = act.next();
                        (d, true)
                    }
                }
            };

            if self.state.exit_tick[v as usize] == t {
                self.progress_node(v, t, events);
                continue;
            }
            if !from_active {
                // Stale bucket entry off the frontier: λ ≡ 0.
                continue;
            }
            self.transmit_node(v, t, scratch, events, edges_scanned);
        }
    }

    /// Run the simulation from [`Simulation::start_tick`] (0 for a
    /// fresh simulation) to `config.ticks`. A fresh run seeds at tick
    /// 0; a resumed run continues the carried output series instead, so
    /// an interrupted-and-resumed simulation produces byte-identical
    /// results to an uninterrupted one.
    pub fn run(&mut self) -> SimResult {
        let ns = self.model.n_states();
        let first_tick = self.start_tick;
        let (mut output, mut recent, mut cum_transitions, mut stats) = match self.carry.take() {
            Some(c) => (c.output, c.recent, c.cum_transitions, c.stats),
            None => {
                let mut output = SimOutput::default();
                if self.state.health_epoch() != self.seen_health_epoch {
                    self.rebuild_frontier();
                }
                self.seed_infections(&mut output);
                // Cumulative transitions drive the output-buffer share
                // of the memory model (EpiHiper buffers its transition
                // log), counted whether or not the log is retained in
                // `output`.
                let recent: Vec<TransitionRecord> = output.transitions.clone();
                let cum = recent.len() as u64;
                (output, recent, cum, EngineStats::default())
            }
        };
        // Occupancy from the actual current health states (the
        // transition log may be disabled, so it cannot be the source).
        let mut occupancy = vec![0u32; ns];
        for &h in &self.state.health {
            occupancy[h as usize] += 1;
        }

        let started = std::time::Instant::now();
        // Per-tick aggregation rows, owned by the reusable scratch and
        // re-zeroed by replaying the tick's events (cheaper than a
        // dense fill when events are sparse). Taken out of the scratch
        // and deterministically re-shaped so a scratch pooled from a
        // different run (or region) yields identical bytes.
        self.scratch.configure(&self.ctx.partitioning);
        let mut new_row = std::mem::take(&mut self.scratch.new_row);
        new_row.clear();
        new_row.resize(ns, 0);
        let mut county_row = std::mem::take(&mut self.scratch.county_row);
        county_row.truncate(self.ctx.n_counties);
        for row in &mut county_row {
            row.clear();
            row.resize(ns, 0);
        }
        while county_row.len() < self.ctx.n_counties {
            county_row.push(vec![0u32; ns]);
        }

        for t in first_tick..self.config.ticks {
            // 1. Interventions.
            {
                let mut ctx = InterventionCtx {
                    tick: t,
                    state: &mut self.state,
                    net: &self.ctx.net,
                    model: &self.model,
                    recent: &recent,
                    seed: self.config.seed,
                };
                self.interventions.apply(&mut ctx);
            }
            // External health writes invalidate the frontier index and
            // the occupancy counters; rebuild both (in either scan
            // mode, so outputs stay identical).
            if self.state.health_epoch() != self.seen_health_epoch {
                self.rebuild_frontier();
                occupancy.fill(0);
                for &h in &self.state.health {
                    occupancy[h as usize] += 1;
                }
            }

            // 2. Parallel scan into the per-partition workspaces.
            let mut wss = std::mem::take(&mut self.scratch.workspaces);
            for ws in &mut wss {
                ws.events.clear();
                ws.edges_scanned = 0;
                self.buckets.take_into(ws.part, t, &mut ws.due);
            }
            stats.frontier_nodes.push(self.active.len() as u32);
            stats.due_nodes.push(wss.iter().map(|w| w.due.len() as u32).sum());
            let reference = self.config.reference_scan;
            wss.par_iter_mut().for_each(|ws| {
                if reference {
                    self.scan_partition_reference(ws, t);
                } else {
                    self.scan_partition_frontier(ws, t);
                }
            });
            stats.edges_scanned.push(wss.iter().map(|w| w.edges_scanned).sum());

            // 3. Serial apply, in node order (ranges are sorted).
            recent.clear();
            let mut n_events = 0u32;
            for ws in &wss {
                for ev in &ws.events {
                    let vi = ev.node as usize;
                    let old = self.state.health[vi];
                    occupancy[old as usize] -= 1;
                    occupancy[ev.new_state as usize] += 1;
                    self.state.health[vi] = ev.new_state;
                    self.state.exit_tick[vi] = ev.exit_tick;
                    self.state.next_state[vi] = ev.next_state;
                    if ev.exit_tick != NEVER {
                        self.buckets.push(self.ctx.part_of[vi] as usize, ev.exit_tick, ev.node);
                    }
                    self.note_health_change(ev.node, old, ev.new_state);
                    new_row[ev.new_state as usize] += 1;
                    county_row[self.ctx.county[vi] as usize][ev.new_state as usize] += 1;
                    let rec = TransitionRecord {
                        tick: t,
                        person: ev.node,
                        state: ev.new_state,
                        cause: ev.cause,
                    };
                    recent.push(rec);
                    if self.config.record_transitions {
                        output.transitions.push(rec);
                    }
                    n_events += 1;
                }
            }
            stats.events.push(n_events);

            cum_transitions += recent.len() as u64;
            output.new_counts.push(new_row.clone());
            output.current_counts.push(occupancy.clone());
            output.county_new.push(county_row.clone());
            // Re-zero the reused rows by replaying the touched cells.
            for ws in &wss {
                for ev in &ws.events {
                    new_row[ev.new_state as usize] = 0;
                    county_row[self.ctx.county[ev.node as usize] as usize][ev.new_state as usize] =
                        0;
                }
            }
            self.scratch.workspaces = wss;
            output.memory_bytes.push(
                self.ctx.net.static_memory_bytes()
                    + self.state.dynamic_memory_bytes()
                    + self.frontier_memory_bytes()
                    + cum_transitions * 24,
            );
        }

        // Return the aggregation rows to the scratch for the next run.
        self.scratch.new_row = new_row;
        self.scratch.county_row = county_row;

        // Park the continuation so a later `snapshot()` can capture it
        // (and a redundant `run()` call replays the same result).
        self.start_tick = self.config.ticks;
        self.carry = Some(RunCarry {
            output: output.clone(),
            recent,
            cum_transitions,
            stats: stats.clone(),
        });
        SimResult { output, elapsed: started.elapsed(), ticks_run: self.config.ticks, stats }
    }

    /// Capture a [`SimSnapshot`] of everything needed to resume this
    /// simulation byte-identically: the authoritative [`SimState`], the
    /// progression queues (partition-agnostic form), intervention
    /// trigger state, and the mid-run continuation. The frontier index
    /// (`ActiveSet`, neighbor counts) and occupancy are deliberately
    /// *not* captured — they are derived data, rebuilt on restore by
    /// [`Simulation::rebuild_frontier`]. The RNG needs no state either:
    /// it is counter-based, keyed by `(seed, node, tick)`, so "RNG
    /// position" reduces to the tick the resume starts at.
    ///
    /// Interrupt protocol: run with `config.ticks = k`, snapshot, then
    /// [`Simulation::resume`] with `config.ticks = T` continues k..T.
    pub fn snapshot(&self) -> SimSnapshot {
        SimSnapshot {
            meta: SnapshotMeta {
                version: SNAPSHOT_VERSION,
                next_tick: self.start_tick,
                seed: self.config.seed,
                n_nodes: self.ctx.net.n_nodes as u64,
                n_states: self.model.n_states() as u32,
                record_transitions: self.config.record_transitions,
            },
            state: self.state.clone(),
            queues: self.buckets.export_entries(),
            interventions: self.interventions.snapshot_states(),
            carry: self.carry.clone(),
        }
    }

    /// Rebuild a simulation from a snapshot. The caller supplies the
    /// same network, model, demographics, and intervention stack the
    /// snapshot was taken with (snapshots index into them; they are
    /// static inputs, not state) — plus the config for the continued
    /// run, which may change `ticks`, `n_partitions`, and
    /// `reference_scan` freely without perturbing the epidemic.
    /// Mismatches that would silently corrupt the resume (different
    /// seed, node count, state count, edge count, or intervention
    /// stack) are rejected with [`SnapshotError::Mismatch`].
    pub fn resume(
        network: &ContactNetwork,
        model: DiseaseModel,
        age_group: Vec<u8>,
        county: Vec<u16>,
        interventions: InterventionSet,
        config: SimConfig,
        snapshot: &SimSnapshot,
    ) -> Result<Self, SnapshotError> {
        let ctx = Arc::new(SimContext::build(
            network,
            age_group,
            county,
            config.n_partitions,
            config.epsilon,
        ));
        Self::resume_with_context(ctx, model, interventions, config, snapshot)
    }

    /// [`Simulation::resume`] against a pre-built shared [`SimContext`]
    /// — the ensemble fast path for restarts: a preempted replicate
    /// resumes without rebuilding the network the rest of the ensemble
    /// is already sharing. Same validation, same byte-identical
    /// continuation.
    pub fn resume_with_context(
        ctx: Arc<SimContext>,
        model: DiseaseModel,
        interventions: InterventionSet,
        config: SimConfig,
        snapshot: &SimSnapshot,
    ) -> Result<Self, SnapshotError> {
        let meta = &snapshot.meta;
        if meta.version != SNAPSHOT_VERSION {
            return Err(SnapshotError::Version(meta.version));
        }
        let check =
            |ok: bool, what: String| if ok { Ok(()) } else { Err(SnapshotError::Mismatch(what)) };
        check(
            meta.seed == config.seed,
            format!("seed: snapshot {} vs config {}", meta.seed, config.seed),
        )?;
        check(
            meta.n_nodes == ctx.net.n_nodes as u64,
            format!("node count: snapshot {} vs network {}", meta.n_nodes, ctx.net.n_nodes),
        )?;
        check(
            meta.n_states == model.n_states() as u32,
            format!("state count: snapshot {} vs model {}", meta.n_states, model.n_states()),
        )?;
        check(
            snapshot.state.n_nodes() == ctx.net.n_nodes,
            format!(
                "state arrays cover {} nodes, network has {}",
                snapshot.state.n_nodes(),
                ctx.net.n_nodes
            ),
        )?;
        check(
            snapshot.state.n_edges() == ctx.net.n_undirected,
            format!(
                "edge bits cover {} edges, network has {}",
                snapshot.state.n_edges(),
                ctx.net.n_undirected
            ),
        )?;
        check(
            meta.next_tick <= config.ticks,
            format!("next tick {} is past the {}-tick horizon", meta.next_tick, config.ticks),
        )?;
        check(
            meta.record_transitions == config.record_transitions,
            "record_transitions differs between snapshot and config".to_string(),
        )?;

        let mut sim = Simulation::new_with_context(ctx, model, interventions, config);
        sim.state = snapshot.state.clone();
        for (tick, nodes) in &snapshot.queues {
            for &v in nodes {
                sim.buckets.push(sim.ctx.part_of[v as usize] as usize, *tick, v);
            }
        }
        sim.interventions
            .restore_states(&snapshot.interventions)
            .map_err(SnapshotError::Mismatch)?;
        sim.rebuild_frontier();
        sim.start_tick = meta.next_tick;
        sim.carry = snapshot.carry.clone();
        Ok(sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disease::sir_model;
    use crate::interventions::{Intervention, InterventionSet};
    use epiflow_synthpop::network::ContactEdge;
    use epiflow_synthpop::ActivityType;

    fn dense_network(n: u32) -> ContactNetwork {
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                edges.push(ContactEdge {
                    u,
                    v,
                    start: 480,
                    duration: 480,
                    ctx_u: ActivityType::Work,
                    ctx_v: ActivityType::Work,
                    weight: 1.0,
                });
            }
        }
        ContactNetwork { n_nodes: n as usize, edges }
    }

    fn sim_on(net: &ContactNetwork, beta: f64, cfg: SimConfig) -> Simulation {
        let n = net.n_nodes;
        Simulation::new(
            net,
            sir_model(beta, 5.0),
            vec![2; n],
            vec![0; n],
            InterventionSet::default(),
            cfg,
        )
    }

    /// Frontier and reference scans must agree byte-for-byte on every
    /// output series, across partition counts.
    fn assert_modes_equal(net: &ContactNetwork, beta: f64, base: SimConfig) {
        for parts in [1usize, 4, 13] {
            let cfg = SimConfig { n_partitions: parts, ..base.clone() };
            let fr = sim_on(net, beta, SimConfig { reference_scan: false, ..cfg.clone() }).run();
            let rf = sim_on(net, beta, SimConfig { reference_scan: true, ..cfg }).run();
            assert_eq!(
                fr.output.transitions, rf.output.transitions,
                "transition logs diverge at {parts} partitions"
            );
            assert_eq!(fr.output.new_counts, rf.output.new_counts);
            assert_eq!(fr.output.current_counts, rf.output.current_counts);
            assert_eq!(fr.output.county_new, rf.output.county_new);
            assert_eq!(fr.output.memory_bytes, rf.output.memory_bytes);
        }
    }

    #[test]
    fn epidemic_spreads_in_dense_network() {
        let net = dense_network(60);
        let mut sim =
            sim_on(&net, 2.0, SimConfig { ticks: 60, initial_infections: 3, ..Default::default() });
        let res = sim.run();
        let recovered = res.output.cumulative(2);
        assert!(
            *recovered.last().unwrap() > 40,
            "most of a dense network should get infected, got {:?}",
            recovered.last()
        );
    }

    #[test]
    fn zero_transmissibility_means_no_spread() {
        let net = dense_network(40);
        let mut sim =
            sim_on(&net, 0.0, SimConfig { ticks: 40, initial_infections: 3, ..Default::default() });
        let res = sim.run();
        assert_eq!(res.output.total_infections(), 0);
        // Seeds still progress to R.
        assert_eq!(*res.output.cumulative(2).last().unwrap(), 3);
    }

    #[test]
    fn deterministic_across_partition_counts() {
        // The headline property: same seed ⇒ identical transitions, no
        // matter how many partitions/threads execute the scan.
        let net = dense_network(50);
        let base = SimConfig { ticks: 40, seed: 99, initial_infections: 4, ..Default::default() };
        let run = |parts: usize| {
            let mut sim = sim_on(&net, 1.5, SimConfig { n_partitions: parts, ..base.clone() });
            sim.run().output.transitions
        };
        let a = run(1);
        let b = run(4);
        let c = run(13);
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert!(!a.is_empty());
    }

    #[test]
    fn frontier_equals_reference_dense() {
        let net = dense_network(50);
        assert_modes_equal(
            &net,
            1.5,
            SimConfig { ticks: 40, seed: 99, initial_infections: 4, ..Default::default() },
        );
    }

    #[test]
    fn frontier_equals_reference_sparse_ring() {
        // Ring with chords: long low-occupancy epidemic tail.
        let n = 400u32;
        let mut edges: Vec<ContactEdge> = (0..n)
            .map(|i| ContactEdge {
                u: i,
                v: (i + 1) % n,
                start: 0,
                duration: 600,
                ctx_u: ActivityType::Home,
                ctx_v: ActivityType::Home,
                weight: 1.0,
            })
            .collect();
        for i in (0..n).step_by(17) {
            edges.push(ContactEdge {
                u: i,
                v: (i + n / 2) % n,
                start: 0,
                duration: 300,
                ctx_u: ActivityType::Work,
                ctx_v: ActivityType::Work,
                weight: 0.7,
            });
        }
        let net = ContactNetwork { n_nodes: n as usize, edges };
        assert_modes_equal(
            &net,
            2.5,
            SimConfig { ticks: 80, seed: 7, initial_infections: 2, ..Default::default() },
        );
    }

    #[test]
    fn frontier_equals_reference_disconnected() {
        // Two cliques plus isolated nodes; frontier never reaches the
        // far component unless a seed lands there.
        let mut edges = Vec::new();
        for base in [0u32, 12] {
            for u in 0..10u32 {
                for v in (u + 1)..10 {
                    edges.push(ContactEdge {
                        u: base + u,
                        v: base + v,
                        start: 0,
                        duration: 480,
                        ctx_u: ActivityType::Work,
                        ctx_v: ActivityType::Work,
                        weight: 1.0,
                    });
                }
            }
        }
        let net = ContactNetwork { n_nodes: 25, edges };
        for seed in [1u64, 5, 9] {
            assert_modes_equal(
                &net,
                2.0,
                SimConfig { ticks: 50, seed, initial_infections: 3, ..Default::default() },
            );
        }
    }

    #[test]
    fn frontier_equals_reference_under_interventions() {
        // Edge flips and scale changes mid-run must not strand frontier
        // nodes: disabling the only infectious contact and re-enabling
        // it later has to produce the same infections in both modes.
        struct Flipper;
        impl Intervention for Flipper {
            fn name(&self) -> &str {
                "flipper"
            }
            fn apply(&mut self, ctx: &mut InterventionCtx<'_>) {
                match ctx.tick {
                    3 => {
                        // Disable a band of edges and mute a band of nodes.
                        for e in 0..200u32 {
                            ctx.state.set_edge_enabled(e, false);
                        }
                        for v in 0..20u32 {
                            ctx.state.infectivity_scale[v as usize] = 0.0;
                            ctx.state.susceptibility_scale[v as usize] = 0.0;
                        }
                    }
                    9 => {
                        for e in 0..200u32 {
                            ctx.state.set_edge_enabled(e, true);
                        }
                        for v in 0..20u32 {
                            ctx.state.infectivity_scale[v as usize] = 1.0;
                            ctx.state.susceptibility_scale[v as usize] = 1.0;
                        }
                    }
                    _ => {}
                }
            }
        }
        let net = dense_network(40);
        let mk = |reference| {
            let n = net.n_nodes;
            let mut sim = Simulation::new(
                &net,
                sir_model(1.8, 5.0),
                vec![2; n],
                vec![0; n],
                InterventionSet::new().with(Box::new(Flipper)),
                SimConfig {
                    ticks: 50,
                    seed: 21,
                    initial_infections: 3,
                    reference_scan: reference,
                    ..Default::default()
                },
            );
            sim.run().output
        };
        let fr = mk(false);
        let rf = mk(true);
        assert_eq!(fr.transitions, rf.transitions);
        assert_eq!(fr.current_counts, rf.current_counts);
        assert!(fr.total_infections() > 0, "epidemic should restart after re-enable");
    }

    #[test]
    fn external_health_writes_rebuild_frontier() {
        // An intervention teleporting nodes into the infectious state
        // via SimState::set_health must infect their neighbors in both
        // modes (the epoch check rebuilds the frontier index).
        struct Teleport;
        impl Intervention for Teleport {
            fn name(&self) -> &str {
                "teleport"
            }
            fn apply(&mut self, ctx: &mut InterventionCtx<'_>) {
                if ctx.tick == 5 {
                    for v in 30..34u32 {
                        ctx.state.set_health(v, 1); // I in the SIR model
                    }
                }
            }
        }
        let net = dense_network(40);
        let mk = |reference| {
            let n = net.n_nodes;
            let mut sim = Simulation::new(
                &net,
                sir_model(1.5, 5.0),
                vec![2; n],
                vec![0; n],
                InterventionSet::new().with(Box::new(Teleport)),
                SimConfig {
                    ticks: 30,
                    seed: 3,
                    initial_infections: 0,
                    reference_scan: reference,
                    ..Default::default()
                },
            );
            sim.run().output
        };
        let fr = mk(false);
        let rf = mk(true);
        assert_eq!(fr.transitions, rf.transitions);
        assert_eq!(fr.current_counts, rf.current_counts);
        assert!(
            fr.total_infections() > 0,
            "teleported infectious nodes must infect their neighbors"
        );
    }

    #[test]
    fn seeding_shortfall_is_recorded() {
        // Pre-infect most of the population so the seeding loop cannot
        // find enough susceptible nodes and its guard bound trips.
        let net = dense_network(6);
        let mut sim =
            sim_on(&net, 0.0, SimConfig { ticks: 2, initial_infections: 6, ..Default::default() });
        for v in 0..5u32 {
            sim.state.set_health(v, 2); // recovered: not seedable
        }
        let res = sim.run();
        assert_eq!(res.output.requested_seeds, 6);
        assert_eq!(res.output.seeded, 1);
        assert_eq!(res.output.seed_shortfall(), 5);
    }

    #[test]
    fn stats_show_frontier_savings() {
        // β = 0: seeds recover without spreading, so susceptible nodes
        // remain for the reference scan to keep visiting after the
        // frontier has emptied.
        let net = dense_network(50);
        let base = SimConfig { ticks: 40, seed: 99, initial_infections: 4, ..Default::default() };
        let fr = sim_on(&net, 0.0, SimConfig { reference_scan: false, ..base.clone() }).run();
        let rf = sim_on(&net, 0.0, SimConfig { reference_scan: true, ..base }).run();
        assert_eq!(fr.stats.frontier_nodes.len(), 40);
        assert_eq!(fr.stats.edges_scanned.len(), 40);
        assert!(
            fr.stats.total_edges_scanned() <= rf.stats.total_edges_scanned(),
            "frontier λ-pass can never examine more edges than the reference"
        );
        // Once the epidemic dies out the frontier empties; the
        // reference keeps paying for every susceptible node.
        assert_eq!(*fr.stats.edges_scanned.last().unwrap(), 0);
        assert!(*rf.stats.edges_scanned.last().unwrap() > 0);
        let occ = fr.stats.mean_frontier_occupancy(net.n_nodes);
        assert!((0.0..=1.0).contains(&occ));
    }

    #[test]
    fn far_future_progressions_do_not_leak() {
        // A progression scheduled beyond the horizon stays queued and
        // harmless; queued() reflects it.
        let net = dense_network(10);
        let mut sim =
            sim_on(&net, 0.0, SimConfig { ticks: 3, initial_infections: 2, ..Default::default() });
        sim.run();
        // SIR dwell is ~5 days; with 3 ticks the I→R exits are pending.
        assert!(sim.buckets.queued() > 0);
    }

    #[test]
    fn different_seeds_differ() {
        let net = dense_network(50);
        let mk = |seed| {
            let mut sim = sim_on(
                &net,
                1.5,
                SimConfig { ticks: 40, seed, initial_infections: 4, ..Default::default() },
            );
            sim.run().output.transitions
        };
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn occupancy_conserves_population() {
        let net = dense_network(30);
        let mut sim = sim_on(&net, 1.0, SimConfig { ticks: 30, ..Default::default() });
        let res = sim.run();
        for row in &res.output.current_counts {
            let total: u32 = row.iter().sum();
            assert_eq!(total, 30);
        }
    }

    #[test]
    fn transmission_has_cause_progression_does_not() {
        let net = dense_network(40);
        let mut sim =
            sim_on(&net, 2.0, SimConfig { ticks: 40, initial_infections: 2, ..Default::default() });
        let res = sim.run();
        for tr in &res.output.transitions {
            match tr.state {
                1 if tr.tick > 0 => {
                    assert!(tr.cause.is_some(), "infection without cause: {tr:?}");
                }
                2 => assert!(tr.cause.is_none(), "progression with cause: {tr:?}"),
                _ => {}
            }
        }
    }

    #[test]
    fn infector_is_an_actual_neighbor() {
        let net = dense_network(30);
        let mut sim = sim_on(&net, 2.0, SimConfig { ticks: 30, ..Default::default() });
        let rt = RuntimeNet::build(&net);
        let res = sim.run();
        for tr in res.output.transitions.iter().filter(|t| t.cause.is_some()) {
            let cause = tr.cause.unwrap();
            assert!(
                rt.in_edges(tr.person).iter().any(|e| e.neighbor == cause),
                "cause {cause} is not a neighbor of {}",
                tr.person
            );
        }
    }

    #[test]
    fn isolated_node_in_disconnected_network_never_infected() {
        // Two disconnected cliques; seed deterministically lands
        // somewhere, infection must stay within components reachable
        // from seeds.
        let mut edges = Vec::new();
        for u in 0..10u32 {
            for v in (u + 1)..10 {
                edges.push(ContactEdge {
                    u,
                    v,
                    start: 0,
                    duration: 600,
                    ctx_u: ActivityType::Work,
                    ctx_v: ActivityType::Work,
                    weight: 1.0,
                });
            }
        }
        // Node 10 is isolated.
        let net = ContactNetwork { n_nodes: 11, edges };
        let mut sim = sim_on(
            &net,
            3.0,
            SimConfig { ticks: 60, seed: 5, initial_infections: 2, ..Default::default() },
        );
        let res = sim.run();
        let infected_10 =
            res.output.transitions.iter().any(|t| t.person == 10 && t.cause.is_some());
        assert!(!infected_10, "isolated node cannot be infected by contact");
    }

    #[test]
    fn counter_rng_streams_are_independent() {
        let a: Vec<u64> = {
            let mut r = CounterRng::new(7, 1, 1);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = CounterRng::new(7, 2, 1);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = CounterRng::new(7, 1, 2);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
        assert_ne!(a, c);
        // And reproducible.
        let a2: Vec<u64> = {
            let mut r = CounterRng::new(7, 1, 1);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, a2);
    }

    #[test]
    fn counter_rng_uniformity_smoke() {
        let mut r = CounterRng::new(123, 0, 0);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.random_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut r = CounterRng::new(1, 0, 0);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn runtime_net_structure() {
        let net = dense_network(5);
        let rt = RuntimeNet::build(&net);
        assert_eq!(rt.n_nodes, 5);
        assert_eq!(rt.n_undirected, 10);
        for v in 0..5u32 {
            assert_eq!(rt.in_edges(v).len(), 4);
            for e in rt.in_edges(v) {
                assert_ne!(e.neighbor, v);
                assert!((e.duration_frac - 1.0 / 3.0).abs() < 1e-6);
                // tw is the exact f64 product of the f32 factors.
                assert_eq!(e.tw, e.duration_frac as f64 * e.weight as f64);
            }
        }
    }

    #[test]
    fn memory_series_recorded_every_tick() {
        let net = dense_network(20);
        let mut sim = sim_on(&net, 1.0, SimConfig { ticks: 25, ..Default::default() });
        let res = sim.run();
        assert_eq!(res.output.memory_bytes.len(), 25);
        assert!(res.output.memory_bytes[0] > 0);
    }

    #[test]
    fn seeding_more_than_population_caps() {
        let net = dense_network(5);
        let mut sim =
            sim_on(&net, 0.0, SimConfig { ticks: 3, initial_infections: 50, ..Default::default() });
        let res = sim.run();
        let seeds = res.output.transitions.iter().filter(|t| t.tick == 0).count();
        assert_eq!(seeds, 5);
        assert_eq!(res.output.requested_seeds, 5);
        assert_eq!(res.output.seeded, 5);
        assert_eq!(res.output.seed_shortfall(), 0);
    }

    /// Resume a snapshot of `sim` (round-tripped through the wire
    /// format) against the same network, under `cfg`.
    fn resume_sim(net: &ContactNetwork, beta: f64, cfg: SimConfig, sim: &Simulation) -> Simulation {
        let snap = crate::checkpoint::SimSnapshot::decode(&sim.snapshot().encode())
            .expect("snapshot survives encode/decode");
        Simulation::resume(
            net,
            sir_model(beta, 5.0),
            vec![2; net.n_nodes],
            vec![0; net.n_nodes],
            InterventionSet::default(),
            cfg,
            &snap,
        )
        .expect("snapshot matches the simulation it came from")
    }

    /// The golden invariant: interrupt at any tick, snapshot, resume —
    /// the completed run is byte-identical to the uninterrupted one,
    /// even when the resumed run uses a different partition count.
    #[test]
    fn ckpt_interrupt_resume_byte_identical() {
        let net = dense_network(50);
        for reference_scan in [false, true] {
            let base = SimConfig {
                ticks: 40,
                seed: 99,
                initial_infections: 4,
                reference_scan,
                ..Default::default()
            };
            let baseline = sim_on(&net, 1.5, base.clone()).run();
            for k in [0u32, 1, 17, 39, 40] {
                let mut interrupted =
                    sim_on(&net, 1.5, SimConfig { ticks: k, n_partitions: 4, ..base.clone() });
                interrupted.run();
                let mut resumed = resume_sim(
                    &net,
                    1.5,
                    SimConfig { n_partitions: 13, ..base.clone() },
                    &interrupted,
                );
                let res = resumed.run();
                assert_eq!(res.output, baseline.output, "interrupt at {k} diverged");
                assert_eq!(res.stats, baseline.stats, "stats diverged at {k}");
                assert_eq!(res.ticks_run, baseline.ticks_run);
            }
        }
    }

    /// Resuming under the *other* scan mode still reproduces the same
    /// epidemic (the snapshot is scan-mode-agnostic).
    #[test]
    fn ckpt_resume_across_scan_modes() {
        let net = dense_network(40);
        let base = SimConfig { ticks: 30, seed: 7, initial_infections: 3, ..Default::default() };
        let baseline = sim_on(&net, 1.2, base.clone()).run();
        let mut interrupted =
            sim_on(&net, 1.2, SimConfig { ticks: 11, reference_scan: false, ..base.clone() });
        interrupted.run();
        let mut resumed =
            resume_sim(&net, 1.2, SimConfig { reference_scan: true, ..base }, &interrupted);
        assert_eq!(resumed.run().output, baseline.output);
    }

    /// After restore, the rebuilt frontier (active set + per-node
    /// infectious-neighbor counts) must equal the live frontier of the
    /// interrupted simulation — exercised on a dense, saturated network
    /// where nearly every node is on the frontier.
    #[test]
    fn ckpt_rebuilt_frontier_matches_live_frontier() {
        let net = dense_network(60);
        let base = SimConfig { ticks: 40, seed: 3, initial_infections: 3, ..Default::default() };
        let mut interrupted = sim_on(&net, 2.0, SimConfig { ticks: 4, ..base.clone() });
        interrupted.run();
        let resumed = resume_sim(&net, 2.0, base, &interrupted);
        assert_eq!(resumed.inf_nbr_count, interrupted.inf_nbr_count);
        assert!(!resumed.active.is_empty(), "saturated net must have a non-empty frontier");
        assert_eq!(resumed.active.len(), interrupted.active.len());
        for v in 0..net.n_nodes as u32 {
            assert_eq!(resumed.active.contains(v), interrupted.active.contains(v));
        }
        assert_eq!(resumed.buckets.queued(), interrupted.buckets.queued());
    }

    /// Resume refuses snapshots that don't belong to this simulation.
    #[test]
    fn ckpt_resume_rejects_mismatches() {
        use crate::checkpoint::SnapshotError;
        let net = dense_network(20);
        let base = SimConfig { ticks: 20, seed: 5, initial_infections: 2, ..Default::default() };
        let mut sim = sim_on(&net, 1.0, SimConfig { ticks: 8, ..base.clone() });
        sim.run();
        let snap = sim.snapshot();
        let try_resume = |net: &ContactNetwork, cfg: SimConfig, snap: &SimSnapshot| {
            let n = net.n_nodes;
            Simulation::resume(
                net,
                sir_model(1.0, 5.0),
                vec![2; n],
                vec![0; n],
                InterventionSet::default(),
                cfg,
                snap,
            )
        };
        // Wrong seed.
        let r = try_resume(&net, SimConfig { seed: 6, ..base.clone() }, &snap);
        assert!(matches!(r, Err(SnapshotError::Mismatch(_))), "wrong seed accepted");
        // Wrong network size.
        let other = dense_network(21);
        let r = try_resume(&other, base.clone(), &snap);
        assert!(matches!(r, Err(SnapshotError::Mismatch(_))), "wrong network accepted");
        // Horizon behind the snapshot.
        let r = try_resume(&net, SimConfig { ticks: 5, ..base.clone() }, &snap);
        assert!(matches!(r, Err(SnapshotError::Mismatch(_))), "past horizon accepted");
        // Wrong format version.
        let mut versioned = snap.clone();
        versioned.meta.version = SNAPSHOT_VERSION + 1;
        let r = try_resume(&net, base.clone(), &versioned);
        assert!(matches!(r, Err(SnapshotError::Version(_))), "future version accepted");
        // The unmodified snapshot is accepted.
        assert!(try_resume(&net, base, &snap).is_ok());
    }

    /// A context-backed simulation (shared `Arc<SimContext>`, pooled
    /// scratch moved from replicate to replicate) must be byte-identical
    /// to the fresh-build path on every output series.
    #[test]
    fn shared_context_byte_identical_to_fresh_build() {
        let net = dense_network(50);
        let n = net.n_nodes;
        for parts in [1usize, 4, 13] {
            let cfg =
                |seed| SimConfig { ticks: 40, seed, n_partitions: parts, ..Default::default() };
            let ctx = std::sync::Arc::new(SimContext::build(
                &net,
                vec![2; n],
                vec![0; n],
                parts,
                SimConfig::default().epsilon,
            ));
            let mut scratch = SimScratch::new();
            for seed in [1u64, 9, 42] {
                let fresh = sim_on(&net, 1.5, cfg(seed)).run();
                let mut shared = Simulation::new_with_context(
                    ctx.clone(),
                    sir_model(1.5, 5.0),
                    InterventionSet::default(),
                    cfg(seed),
                );
                shared.install_scratch(scratch);
                let res = shared.run();
                scratch = shared.take_scratch();
                assert_eq!(res.output, fresh.output, "seed {seed} / {parts} partitions");
                assert_eq!(res.stats, fresh.stats, "stats diverge at seed {seed}");
            }
        }
    }

    /// Config requesting a partitioning the context was not built for
    /// is a programming error, not a silent divergence.
    #[test]
    #[should_panic(expected = "context partitioned for")]
    fn context_partition_mismatch_panics() {
        let net = dense_network(10);
        let ctx = std::sync::Arc::new(SimContext::build(&net, vec![2; 10], vec![0; 10], 4, 16));
        let _ = Simulation::new_with_context(
            ctx,
            sir_model(1.0, 5.0),
            InterventionSet::default(),
            SimConfig { n_partitions: 8, ..Default::default() },
        );
    }

    /// θ = 0 degenerates every tick to the reference sweep: identical
    /// output *and* identical edges-scanned telemetry to a
    /// `reference_scan` run, even on a sparse epidemic where the
    /// frontier scan would have skipped most of the network.
    #[test]
    fn saturation_threshold_zero_degenerates_to_reference_sweep() {
        let net = dense_network(50);
        let base = SimConfig { ticks: 40, seed: 99, initial_infections: 4, ..Default::default() };
        // β = 0 keeps the frontier small, so the default θ genuinely
        // takes the frontier path while θ = 0 must not.
        let degen =
            sim_on(&net, 0.0, SimConfig { saturation_threshold: 0.0, ..base.clone() }).run();
        let reference = sim_on(&net, 0.0, SimConfig { reference_scan: true, ..base.clone() }).run();
        let frontier = sim_on(&net, 0.0, base).run();
        assert_eq!(degen.output, reference.output);
        assert_eq!(degen.stats.edges_scanned, reference.stats.edges_scanned);
        assert!(
            frontier.stats.total_edges_scanned() < degen.stats.total_edges_scanned(),
            "the default threshold should beat the degenerate sweep here"
        );
    }

    /// snapshot()/resume() round-trips through a shared context: the
    /// interrupted context-backed replicate resumes on the *same* Arc
    /// and completes byte-identically to the uninterrupted fresh run.
    #[test]
    fn ckpt_round_trip_through_shared_context() {
        let net = dense_network(50);
        let n = net.n_nodes;
        let base = SimConfig { ticks: 40, seed: 99, initial_infections: 4, ..Default::default() };
        let baseline = sim_on(&net, 1.5, base.clone()).run();
        let ctx = std::sync::Arc::new(SimContext::build(
            &net,
            vec![2; n],
            vec![0; n],
            base.n_partitions,
            base.epsilon,
        ));
        for k in [0u32, 1, 17, 39, 40] {
            let mut interrupted = Simulation::new_with_context(
                ctx.clone(),
                sir_model(1.5, 5.0),
                InterventionSet::default(),
                SimConfig { ticks: k, ..base.clone() },
            );
            interrupted.run();
            let snap = crate::checkpoint::SimSnapshot::decode(&interrupted.snapshot().encode())
                .expect("snapshot survives encode/decode");
            let mut resumed = Simulation::resume_with_context(
                ctx.clone(),
                sir_model(1.5, 5.0),
                InterventionSet::default(),
                base.clone(),
                &snap,
            )
            .expect("snapshot matches the context it came from");
            let res = resumed.run();
            assert_eq!(res.output, baseline.output, "interrupt at {k} diverged");
            assert_eq!(res.stats, baseline.stats, "stats diverged at {k}");
        }
    }

    /// resume_with_context applies the same mismatch validation as the
    /// fresh-build resume.
    #[test]
    fn ckpt_resume_with_context_rejects_mismatches() {
        use crate::checkpoint::SnapshotError;
        let net = dense_network(20);
        let base = SimConfig { ticks: 20, seed: 5, initial_infections: 2, ..Default::default() };
        let mut sim = sim_on(&net, 1.0, SimConfig { ticks: 8, ..base.clone() });
        sim.run();
        let snap = sim.snapshot();
        let other = dense_network(21);
        let wrong_ctx = std::sync::Arc::new(SimContext::build(
            &other,
            vec![2; 21],
            vec![0; 21],
            base.n_partitions,
            base.epsilon,
        ));
        let r = Simulation::resume_with_context(
            wrong_ctx,
            sir_model(1.0, 5.0),
            InterventionSet::default(),
            base,
            &snap,
        );
        assert!(matches!(r, Err(SnapshotError::Mismatch(_))), "wrong network accepted");
    }
}
