//! Static contact-network partitioning (paper §III).
//!
//! The contact network is partitioned between processing units (MPI
//! ranks in the paper, rayon workers here) before simulation. The
//! objective: each partition holds approximately the same number of
//! edges, while **all incoming edges of any given node stay in the same
//! partition**. The paper deliberately uses a simple algorithm — "given
//! a partition, continue to allocate nodes to that partition until the
//! number of incoming edges is greater than a threshold (E/P + ε)" —
//! because even it takes significant compute time at national scale
//! (over an hour for California), and caches the result on disk.
//!
//! Because nodes are assigned in id order, partitions come out as
//! contiguous node ranges, which is also the cache-friendliest layout
//! for the tick loop.

use epiflow_synthpop::ContactNetwork;
use std::ops::Range;

/// A partitioning of the node set into contiguous ranges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partitioning {
    /// Node ranges, one per partition; ranges cover `0..n_nodes` exactly.
    pub ranges: Vec<Range<u32>>,
    /// In-edge count of each partition (each undirected edge counts once
    /// per endpoint).
    pub edge_counts: Vec<usize>,
}

impl Partitioning {
    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// True when there are no partitions (empty network).
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// The partition owning `node`.
    pub fn partition_of(&self, node: u32) -> usize {
        // Ranges are sorted and contiguous; binary search on start.
        match self.ranges.binary_search_by(|r| {
            if node < r.start {
                std::cmp::Ordering::Greater
            } else if node >= r.end {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        }) {
            Ok(i) => i,
            Err(_) => panic!("node {node} not covered by partitioning"),
        }
    }

    /// Dense node → partition-index map. The engine's apply phase
    /// pushes every scheduled progression into its owner's tick-bucket
    /// queue; an O(1) array lookup there beats a binary search per
    /// event ([`Partitioning::partition_of`]) on the hot path.
    pub fn index_map(&self) -> Vec<u32> {
        let n = self.ranges.last().map_or(0, |r| r.end) as usize;
        let mut map = vec![0u32; n];
        for (k, r) in self.ranges.iter().enumerate() {
            for v in r.clone() {
                map[v as usize] = k as u32;
            }
        }
        map
    }

    /// Load imbalance: max partition edge count over the mean.
    pub fn imbalance(&self) -> f64 {
        if self.edge_counts.is_empty() {
            return 1.0;
        }
        let max = *self.edge_counts.iter().max().expect("non-empty") as f64;
        let mean = self.edge_counts.iter().sum::<usize>() as f64 / self.edge_counts.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Serialize to a compact text form for the on-disk cache.
    pub fn to_cache_string(&self) -> String {
        let mut s = String::new();
        for (r, c) in self.ranges.iter().zip(&self.edge_counts) {
            s.push_str(&format!("{} {} {}\n", r.start, r.end, c));
        }
        s
    }

    /// Parse a cache entry written by [`Partitioning::to_cache_string`].
    pub fn from_cache_string(s: &str) -> Result<Partitioning, String> {
        let mut ranges = Vec::new();
        let mut edge_counts = Vec::new();
        for (i, line) in s.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let mut it = line.split_whitespace();
            let mut next = |what: &str| -> Result<u64, String> {
                it.next()
                    .ok_or_else(|| format!("line {}: missing {what}", i + 1))?
                    .parse()
                    .map_err(|_| format!("line {}: bad {what}", i + 1))
            };
            let start = next("start")? as u32;
            let end = next("end")? as u32;
            let count = next("count")? as usize;
            if end < start {
                return Err(format!("line {}: inverted range", i + 1));
            }
            ranges.push(start..end);
            edge_counts.push(count);
        }
        // Ranges must be contiguous from 0.
        let mut expect = 0u32;
        for r in &ranges {
            if r.start != expect {
                return Err(format!("ranges not contiguous at {}", r.start));
            }
            expect = r.end;
        }
        Ok(Partitioning { ranges, edge_counts })
    }
}

/// Partition a network into (at most) `n_partitions` contiguous node
/// ranges using the paper's threshold rule with tolerance `epsilon`
/// (extra in-edges a partition may absorb past the even split).
///
/// The actual number of partitions can be smaller than requested when
/// the network is small, and is never zero for a non-empty node set.
pub fn partition_network(
    network: &ContactNetwork,
    n_partitions: usize,
    epsilon: usize,
) -> Partitioning {
    assert!(n_partitions > 0, "need at least one partition");
    let n = network.n_nodes as u32;
    if n == 0 {
        return Partitioning { ranges: Vec::new(), edge_counts: Vec::new() };
    }

    // In-degree per node: each undirected edge is an in-edge of both
    // endpoints.
    let mut in_deg = vec![0usize; n as usize];
    for e in &network.edges {
        in_deg[e.u as usize] += 1;
        in_deg[e.v as usize] += 1;
    }
    let total_in_edges: usize = in_deg.iter().sum();
    let threshold = total_in_edges / n_partitions + epsilon;

    let mut ranges = Vec::with_capacity(n_partitions);
    let mut edge_counts = Vec::with_capacity(n_partitions);
    let mut start = 0u32;
    let mut count = 0usize;
    for v in 0..n {
        count += in_deg[v as usize];
        let is_last_partition = ranges.len() + 1 == n_partitions;
        if count > threshold && !is_last_partition {
            ranges.push(start..v + 1);
            edge_counts.push(count);
            start = v + 1;
            count = 0;
        }
    }
    if start < n || ranges.is_empty() {
        ranges.push(start..n);
        edge_counts.push(count);
    }
    Partitioning { ranges, edge_counts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epiflow_synthpop::network::ContactEdge;
    use epiflow_synthpop::ActivityType;

    fn edge(u: u32, v: u32) -> ContactEdge {
        ContactEdge {
            u,
            v,
            start: 0,
            duration: 60,
            ctx_u: ActivityType::Work,
            ctx_v: ActivityType::Work,
            weight: 1.0,
        }
    }

    fn path_network(n: u32) -> ContactNetwork {
        ContactNetwork { n_nodes: n as usize, edges: (0..n - 1).map(|i| edge(i, i + 1)).collect() }
    }

    #[test]
    fn covers_all_nodes_exactly_once() {
        let net = path_network(100);
        let p = partition_network(&net, 4, 0);
        let mut covered = 0u32;
        for r in &p.ranges {
            assert_eq!(r.start, covered);
            covered = r.end;
        }
        assert_eq!(covered, 100);
    }

    #[test]
    fn respects_partition_count_bound() {
        let net = path_network(1000);
        for k in [1, 2, 4, 8, 16] {
            let p = partition_network(&net, k, 0);
            assert!(p.len() <= k, "asked {k}, got {}", p.len());
            assert!(!p.is_empty());
        }
    }

    #[test]
    fn single_partition_takes_everything() {
        let net = path_network(50);
        let p = partition_network(&net, 1, 0);
        assert_eq!(p.len(), 1);
        assert_eq!(p.ranges[0], 0..50);
        assert_eq!(p.edge_counts[0], 2 * 49);
    }

    #[test]
    fn balanced_on_uniform_degree() {
        // A cycle has uniform degree 2; partitions should be near-even.
        let mut edges: Vec<ContactEdge> = (0..999).map(|i| edge(i, i + 1)).collect();
        edges.push(edge(999, 0));
        let net = ContactNetwork { n_nodes: 1000, edges };
        let p = partition_network(&net, 8, 0);
        assert_eq!(p.len(), 8);
        assert!(p.imbalance() < 1.2, "imbalance {}", p.imbalance());
    }

    #[test]
    fn partition_of_lookup() {
        let net = path_network(100);
        let p = partition_network(&net, 4, 0);
        for v in 0..100u32 {
            let part = p.partition_of(v);
            assert!(p.ranges[part].contains(&v));
        }
    }

    #[test]
    fn index_map_agrees_with_partition_of() {
        let net = path_network(237);
        let p = partition_network(&net, 5, 0);
        let map = p.index_map();
        assert_eq!(map.len(), 237);
        for v in 0..237u32 {
            assert_eq!(map[v as usize] as usize, p.partition_of(v));
        }
    }

    #[test]
    fn hub_skews_but_still_covers() {
        // Star: hub node 0 with 500 leaves. Hub's in-edges cannot be
        // split, so the first partition is heavy — the tolerance rule
        // tolerates this.
        let edges: Vec<ContactEdge> = (1..=500).map(|i| edge(0, i)).collect();
        let net = ContactNetwork { n_nodes: 501, edges };
        let p = partition_network(&net, 4, 10);
        let total: usize = p.edge_counts.iter().sum();
        assert_eq!(total, 1000);
        assert!(p.len() <= 4);
    }

    #[test]
    fn epsilon_reduces_partition_count() {
        let net = path_network(1000);
        let tight = partition_network(&net, 10, 0);
        let loose = partition_network(&net, 10, 400);
        assert!(loose.len() <= tight.len());
    }

    #[test]
    fn cache_round_trip() {
        let net = path_network(256);
        let p = partition_network(&net, 5, 0);
        let s = p.to_cache_string();
        let q = Partitioning::from_cache_string(&s).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn cache_rejects_gaps() {
        assert!(Partitioning::from_cache_string("0 10 5\n12 20 3\n").is_err());
        assert!(Partitioning::from_cache_string("0 10\n").is_err());
        assert!(Partitioning::from_cache_string("5 2 1\n").is_err());
    }

    #[test]
    fn empty_network() {
        let net = ContactNetwork { n_nodes: 0, edges: vec![] };
        let p = partition_network(&net, 4, 0);
        assert!(p.is_empty());
    }
}
