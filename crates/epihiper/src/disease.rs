//! Disease models as probabilistic timed transition systems (PTTS).
//!
//! A disease model is specified independently of the population and the
//! contact network (Appendix D): all individuals share the same state
//! machine. It has three parts:
//!
//! * **states** with infectivity ι and susceptibility σ attributes,
//! * **progression** edges `(Xi → Xj, prob, dwell)` — within-host
//!   transitions, age-stratified, whose outgoing probabilities from any
//!   state sum to 1 (or 0 for terminal states),
//! * **transmission** edges `Ti,j,k` — a susceptible-state individual in
//!   `Xi` exposed via contact with an infectious individual in `Xk`
//!   moves to `Xj` at rate ω.
//!
//! Models serialize to/from JSON, matching EpiHiper's input format.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Index of a health state within a [`DiseaseModel`].
pub type StateId = u16;

/// Number of age groups (Table III stratification).
pub const N_AGE_GROUPS: usize = 5;

/// A dwell-time distribution for a progression edge, in whole ticks
/// (days). The three families of Table III: fixed, truncated normal,
/// and discrete.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum DwellTime {
    /// Always exactly `days`.
    Fixed { days: u16 },
    /// Normal(mean, sd) rounded and truncated to ≥ 1 day.
    Normal { mean: f64, sd: f64 },
    /// Explicit distribution over day values (probabilities normalized
    /// at sampling time).
    Discrete { days: Vec<u16>, probs: Vec<f64> },
}

impl DwellTime {
    /// Sample a dwell time in days (≥ 1 unless `Fixed { days: 0 }`).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u16 {
        match self {
            DwellTime::Fixed { days } => *days,
            DwellTime::Normal { mean, sd } => {
                let z: f64 = rand_distr::StandardNormal.sample_from(rng);
                (mean + sd * z).round().max(1.0) as u16
            }
            DwellTime::Discrete { days, probs } => {
                let total: f64 = probs.iter().sum();
                let mut draw = rng.random_range(0.0..total);
                for (d, p) in days.iter().zip(probs) {
                    draw -= p;
                    if draw <= 0.0 {
                        return *d;
                    }
                }
                *days.last().expect("non-empty discrete dwell")
            }
        }
    }

    /// Expected value in days.
    pub fn mean(&self) -> f64 {
        match self {
            DwellTime::Fixed { days } => *days as f64,
            DwellTime::Normal { mean, .. } => *mean,
            DwellTime::Discrete { days, probs } => {
                let total: f64 = probs.iter().sum();
                days.iter().zip(probs).map(|(d, p)| *d as f64 * p).sum::<f64>() / total
            }
        }
    }
}

/// Helper trait so `DwellTime::sample` can use `rand_distr` without the
/// caller importing `Distribution`.
trait SampleFrom {
    fn sample_from<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;
}

impl SampleFrom for rand_distr::StandardNormal {
    fn sample_from<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        rand_distr::Distribution::sample(self, rng)
    }
}

/// One health state.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HealthState {
    pub name: String,
    /// Infectivity scaling ι — 0 for non-infectious states.
    pub infectivity: f64,
    /// Susceptibility scaling σ — 0 for non-susceptible states.
    pub susceptibility: f64,
}

/// A progression edge for one age group.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Progression {
    pub from: StateId,
    pub to: StateId,
    /// Probabilities per age group (length [`N_AGE_GROUPS`]).
    pub prob: [f64; N_AGE_GROUPS],
    /// Dwell time in `from` before moving to `to`, per age group.
    pub dwell: [DwellTime; N_AGE_GROUPS],
}

/// A transmission edge `T(i,j,k)`: susceptible-state `from` becomes
/// `to` when exposed to an individual in infectious state `via`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Transmission {
    pub from: StateId,
    pub to: StateId,
    pub via: StateId,
    /// Transmission rate ω(T).
    pub omega: f64,
}

/// A complete disease model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DiseaseModel {
    pub name: String,
    pub states: Vec<HealthState>,
    pub progressions: Vec<Progression>,
    pub transmissions: Vec<Transmission>,
    /// Global transmissibility scaling τ (Table IV: 0.18 for COVID-19).
    pub transmissibility: f64,
    /// The state newly infected individuals enter (initial infections).
    pub initial_infected_state: StateId,
    /// The default resting state.
    pub susceptible_state: StateId,
}

/// Validation failures for a disease model.
#[derive(Clone, Debug, PartialEq)]
pub enum ModelError {
    UnknownState { what: &'static str, id: StateId },
    BadProbabilitySum { state: StateId, age_group: usize, sum: f64 },
    EmptyStates,
    NegativeRate { index: usize },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::UnknownState { what, id } => write!(f, "unknown state id {id} in {what}"),
            ModelError::BadProbabilitySum { state, age_group, sum } => write!(
                f,
                "outgoing probabilities from state {state} for age group {age_group} sum to {sum}, expected 0 or 1"
            ),
            ModelError::EmptyStates => write!(f, "model has no states"),
            ModelError::NegativeRate { index } => {
                write!(f, "transmission {index} has a negative rate")
            }
        }
    }
}

impl std::error::Error for ModelError {}

impl DiseaseModel {
    /// Look up a state id by name.
    pub fn state_id(&self, name: &str) -> Option<StateId> {
        self.states.iter().position(|s| s.name == name).map(|i| i as StateId)
    }

    /// Name of a state.
    pub fn state_name(&self, id: StateId) -> &str {
        &self.states[id as usize].name
    }

    /// Number of states.
    pub fn n_states(&self) -> usize {
        self.states.len()
    }

    /// True if the state can transmit infection.
    pub fn is_infectious(&self, id: StateId) -> bool {
        self.states[id as usize].infectivity > 0.0
    }

    /// True if individuals in this state can be infected.
    pub fn is_susceptible(&self, id: StateId) -> bool {
        self.states[id as usize].susceptibility > 0.0
    }

    /// Progression edges out of `state`.
    pub fn progressions_from(&self, state: StateId) -> impl Iterator<Item = &Progression> {
        self.progressions.iter().filter(move |p| p.from == state)
    }

    /// Transmission edges that can infect `state` (i.e. `from == state`).
    pub fn transmissions_for(&self, state: StateId) -> impl Iterator<Item = &Transmission> {
        self.transmissions.iter().filter(move |t| t.from == state)
    }

    /// Sample the progression out of `state` for `age_group`:
    /// `(next_state, dwell_days)`, or `None` for terminal states.
    pub fn sample_progression<R: Rng + ?Sized>(
        &self,
        state: StateId,
        age_group: usize,
        rng: &mut R,
    ) -> Option<(StateId, u16)> {
        let edges: Vec<&Progression> = self.progressions_from(state).collect();
        if edges.is_empty() {
            return None;
        }
        let total: f64 = edges.iter().map(|e| e.prob[age_group]).sum();
        if total <= 0.0 {
            return None;
        }
        let mut draw = rng.random_range(0.0..total);
        for e in &edges {
            draw -= e.prob[age_group];
            if draw <= 0.0 {
                return Some((e.to, e.dwell[age_group].sample(rng)));
            }
        }
        let last = edges.last().expect("non-empty edges");
        Some((last.to, last.dwell[age_group].sample(rng)))
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.states.is_empty() {
            return Err(ModelError::EmptyStates);
        }
        let n = self.states.len() as StateId;
        let check = |what: &'static str, id: StateId| {
            if id >= n {
                Err(ModelError::UnknownState { what, id })
            } else {
                Ok(())
            }
        };
        check("initial_infected_state", self.initial_infected_state)?;
        check("susceptible_state", self.susceptible_state)?;
        for p in &self.progressions {
            check("progression.from", p.from)?;
            check("progression.to", p.to)?;
        }
        for (i, t) in self.transmissions.iter().enumerate() {
            check("transmission.from", t.from)?;
            check("transmission.to", t.to)?;
            check("transmission.via", t.via)?;
            if t.omega < 0.0 {
                return Err(ModelError::NegativeRate { index: i });
            }
        }
        // Outgoing probability sums must be 0 (terminal) or 1.
        for s in 0..n {
            for g in 0..N_AGE_GROUPS {
                let sum: f64 = self.progressions_from(s).map(|p| p.prob[g]).sum();
                if sum != 0.0 && (sum - 1.0).abs() > 1e-6 {
                    return Err(ModelError::BadProbabilitySum { state: s, age_group: g, sum });
                }
            }
        }
        Ok(())
    }

    /// Serialize to the JSON input format.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("disease model serializes")
    }

    /// Parse from JSON and validate.
    pub fn from_json(json: &str) -> Result<DiseaseModel, String> {
        let model: DiseaseModel = serde_json::from_str(json).map_err(|e| e.to_string())?;
        model.validate().map_err(|e| e.to_string())?;
        Ok(model)
    }
}

/// A minimal SIR model (used by tests and as a documentation example).
pub fn sir_model(beta: f64, mean_infectious_days: f64) -> DiseaseModel {
    let dwell = DwellTime::Normal { mean: mean_infectious_days, sd: 1.0 };
    DiseaseModel {
        name: "SIR".into(),
        states: vec![
            HealthState { name: "S".into(), infectivity: 0.0, susceptibility: 1.0 },
            HealthState { name: "I".into(), infectivity: 1.0, susceptibility: 0.0 },
            HealthState { name: "R".into(), infectivity: 0.0, susceptibility: 0.0 },
        ],
        progressions: vec![Progression {
            from: 1,
            to: 2,
            prob: [1.0; N_AGE_GROUPS],
            dwell: [dwell.clone(), dwell.clone(), dwell.clone(), dwell.clone(), dwell],
        }],
        transmissions: vec![Transmission { from: 0, to: 1, via: 1, omega: 1.0 }],
        transmissibility: beta,
        initial_infected_state: 1,
        susceptible_state: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sir_validates() {
        sir_model(0.1, 5.0).validate().unwrap();
    }

    #[test]
    fn state_lookup() {
        let m = sir_model(0.1, 5.0);
        assert_eq!(m.state_id("S"), Some(0));
        assert_eq!(m.state_id("I"), Some(1));
        assert_eq!(m.state_id("Z"), None);
        assert_eq!(m.state_name(2), "R");
        assert!(m.is_infectious(1));
        assert!(!m.is_infectious(0));
        assert!(m.is_susceptible(0));
        assert!(!m.is_susceptible(2));
    }

    #[test]
    fn dwell_fixed() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = DwellTime::Fixed { days: 3 };
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 3);
        }
        assert_eq!(d.mean(), 3.0);
    }

    #[test]
    fn dwell_normal_truncated_and_centered() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = DwellTime::Normal { mean: 5.0, sd: 1.0 };
        let n = 4000;
        let samples: Vec<u16> = (0..n).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&s| s >= 1));
        let mean: f64 = samples.iter().map(|&s| s as f64).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn dwell_discrete_distribution() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = DwellTime::Discrete { days: vec![1, 2, 10], probs: vec![0.5, 0.5, 0.0] };
        let n = 2000;
        let ones = (0..n).filter(|_| d.sample(&mut rng) == 1).count();
        assert!((ones as f64 / n as f64 - 0.5).abs() < 0.05);
        for _ in 0..200 {
            assert_ne!(d.sample(&mut rng), 10, "zero-probability day sampled");
        }
        assert!((d.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn sample_progression_terminal() {
        let m = sir_model(0.1, 5.0);
        let mut rng = StdRng::seed_from_u64(4);
        assert!(m.sample_progression(2, 0, &mut rng).is_none()); // R terminal
        assert!(m.sample_progression(0, 0, &mut rng).is_none()); // S has no progression
        let (to, dwell) = m.sample_progression(1, 0, &mut rng).unwrap();
        assert_eq!(to, 2);
        assert!(dwell >= 1);
    }

    #[test]
    fn sample_progression_branching_probabilities() {
        // I -> R with 0.3 and I -> D with 0.7.
        let mut m = sir_model(0.1, 5.0);
        m.states.push(HealthState { name: "D".into(), infectivity: 0.0, susceptibility: 0.0 });
        m.progressions[0].prob = [0.3; N_AGE_GROUPS];
        let dwell = DwellTime::Fixed { days: 2 };
        m.progressions.push(Progression {
            from: 1,
            to: 3,
            prob: [0.7; N_AGE_GROUPS],
            dwell: [dwell.clone(), dwell.clone(), dwell.clone(), dwell.clone(), dwell],
        });
        m.validate().unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 4000;
        let deaths =
            (0..n).filter(|_| m.sample_progression(1, 2, &mut rng).unwrap().0 == 3).count();
        let frac = deaths as f64 / n as f64;
        assert!((frac - 0.7).abs() < 0.03, "death fraction {frac}");
    }

    #[test]
    fn validation_catches_bad_sum() {
        let mut m = sir_model(0.1, 5.0);
        m.progressions[0].prob = [0.5; N_AGE_GROUPS];
        assert!(matches!(m.validate(), Err(ModelError::BadProbabilitySum { .. })));
    }

    #[test]
    fn validation_catches_unknown_state() {
        let mut m = sir_model(0.1, 5.0);
        m.transmissions[0].via = 99;
        assert!(matches!(m.validate(), Err(ModelError::UnknownState { .. })));
    }

    #[test]
    fn validation_catches_negative_rate() {
        let mut m = sir_model(0.1, 5.0);
        m.transmissions[0].omega = -1.0;
        assert!(matches!(m.validate(), Err(ModelError::NegativeRate { .. })));
    }

    #[test]
    fn json_round_trip() {
        let m = sir_model(0.12, 4.0);
        let json = m.to_json();
        let back = DiseaseModel::from_json(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn json_rejects_invalid_model() {
        let mut m = sir_model(0.1, 5.0);
        m.progressions[0].prob = [0.2; N_AGE_GROUPS];
        let json = serde_json::to_string(&m).unwrap();
        assert!(DiseaseModel::from_json(&json).is_err());
    }
}
