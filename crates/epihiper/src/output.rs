//! Simulation output: transition logs, dendograms, and aggregates.
//!
//! EpiHiper writes one line per state transition — the tick, the person,
//! their exit state, and (for transmissions) the person who caused the
//! transition. Dendograms — transmission trees rooted at the initial
//! infections — are part of this output. From the individual-level log
//! we aggregate to the county level for each health state, producing the
//! paper's three counts per (day, county, state): new, cumulative, and
//! current.

use crate::disease::{DiseaseModel, StateId};
use serde::{Deserialize, Serialize};

/// One state-transition event (one line of EpiHiper's output file).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransitionRecord {
    pub tick: u32,
    pub person: u32,
    /// The state being *entered*.
    pub state: StateId,
    /// For transmission events, the infecting person.
    pub cause: Option<u32>,
}

/// Statistics of the transmission forest (dendogram).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DendogramStats {
    /// Number of roots (initial infections with no recorded cause).
    pub roots: usize,
    /// Total transmission events (edges of the forest).
    pub transmissions: usize,
    /// Maximum depth over all trees (root = depth 0).
    pub max_depth: usize,
    /// Mean number of secondary infections per infected node that
    /// appears in the forest (an empirical R estimate).
    pub mean_offspring: f64,
}

/// Full output of one simulation replicate.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SimOutput {
    /// Every transition, in (tick, person) order.
    pub transitions: Vec<TransitionRecord>,
    /// `new_counts[tick][state]`: transitions *into* `state` at `tick`.
    pub new_counts: Vec<Vec<u32>>,
    /// `current_counts[tick][state]`: occupancy at end of `tick`.
    pub current_counts: Vec<Vec<u32>>,
    /// `county_new[tick][county][state]` — county-level aggregation.
    pub county_new: Vec<Vec<Vec<u32>>>,
    /// Estimated resident memory (bytes) at each tick (Fig. 10).
    pub memory_bytes: Vec<u64>,
    /// Tick-0 seeds the configuration asked for (after capping at the
    /// population size).
    pub requested_seeds: u32,
    /// Tick-0 seeds actually placed. The seeding loop draws random
    /// nodes under a guard bound; if it exhausts the bound before
    /// placing `requested_seeds` infections, the run proceeds with
    /// fewer — previously silently, now recorded here.
    pub seeded: u32,
}

impl SimOutput {
    /// How many requested tick-0 seeds could not be placed (0 in the
    /// overwhelming majority of runs; non-zero when the seeding guard
    /// loop gave up, e.g. because most of the population was already
    /// non-susceptible).
    pub fn seed_shortfall(&self) -> u32 {
        self.requested_seeds.saturating_sub(self.seeded)
    }
    /// Cumulative counts into `state` over time.
    pub fn cumulative(&self, state: StateId) -> Vec<u64> {
        let mut acc = 0u64;
        self.new_counts
            .iter()
            .map(|row| {
                acc += row[state as usize] as u64;
                acc
            })
            .collect()
    }

    /// Daily new counts into `state`.
    pub fn daily_new(&self, state: StateId) -> Vec<u32> {
        self.new_counts.iter().map(|row| row[state as usize]).collect()
    }

    /// Occupancy of `state` over time.
    pub fn occupancy(&self, state: StateId) -> Vec<u32> {
        self.current_counts.iter().map(|row| row[state as usize]).collect()
    }

    /// County-level daily new counts into `state`.
    pub fn county_daily_new(&self, county: usize, state: StateId) -> Vec<u32> {
        self.county_new.iter().map(|row| row.get(county).map_or(0, |c| c[state as usize])).collect()
    }

    /// Total attack: everyone who ever left the susceptible pool
    /// (= number of infection transmissions + initializations).
    pub fn total_infections(&self) -> usize {
        self.transitions.iter().filter(|t| t.cause.is_some()).count()
    }

    /// Number of ticks simulated.
    pub fn n_ticks(&self) -> usize {
        self.new_counts.len()
    }

    /// Analyze the transmission forest.
    pub fn dendogram_stats(&self, model: &DiseaseModel) -> DendogramStats {
        let infected_state = model.initial_infected_state;
        // Parent map over infection events only.
        let mut parent: std::collections::HashMap<u32, Option<u32>> =
            std::collections::HashMap::new();
        for t in &self.transitions {
            if t.state == infected_state {
                parent.insert(t.person, t.cause);
            }
        }
        let roots = parent.values().filter(|c| c.is_none()).count();
        let transmissions = parent.values().filter(|c| c.is_some()).count();

        // Offspring counts.
        let mut offspring: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
        for cause in parent.values().flatten() {
            *offspring.entry(*cause).or_insert(0) += 1;
        }
        let infected_total = parent.len();
        let mean_offspring =
            if infected_total == 0 { 0.0 } else { transmissions as f64 / infected_total as f64 };

        // Depth by memoized walk to root.
        let mut depth: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
        let mut max_depth = 0;
        for &p in parent.keys() {
            let mut chain = Vec::new();
            let mut cur = p;
            let d = loop {
                if let Some(&d) = depth.get(&cur) {
                    break d;
                }
                match parent.get(&cur) {
                    Some(Some(next)) => {
                        chain.push(cur);
                        cur = *next;
                    }
                    _ => break 0, // root (or cause outside the log)
                }
            };
            for (i, node) in chain.iter().rev().enumerate() {
                depth.insert(*node, d + i + 1);
            }
            max_depth = max_depth.max(d + chain.len());
        }
        DendogramStats { roots, transmissions, max_depth, mean_offspring }
    }

    /// Serialize the transition log in EpiHiper's line format:
    /// `tick,pid,exit_state,cause_pid` (empty cause for progressions).
    pub fn transitions_csv(&self, model: &DiseaseModel) -> String {
        let mut s = String::with_capacity(self.transitions.len() * 24);
        s.push_str("tick,pid,state,cause\n");
        for t in &self.transitions {
            match t.cause {
                Some(c) => s.push_str(&format!(
                    "{},{},{},{}\n",
                    t.tick,
                    t.person,
                    model.state_name(t.state),
                    c
                )),
                None => {
                    s.push_str(&format!("{},{},{},\n", t.tick, t.person, model.state_name(t.state)))
                }
            }
        }
        s
    }

    /// Size in bytes the raw individual-level output would occupy on
    /// disk (used for the Table I/II data-volume accounting).
    pub fn raw_output_bytes(&self) -> u64 {
        // EpiHiper's line: tick,pid,state,cause — ~24 bytes/entry.
        self.transitions.len() as u64 * 24
    }

    /// Size in bytes of the summarized output (days × states × 3 counts
    /// at 4 bytes each, plus county rows).
    pub fn summary_output_bytes(&self) -> u64 {
        let states = self.new_counts.first().map_or(0, |r| r.len()) as u64;
        let days = self.new_counts.len() as u64;
        let counties = self.county_new.first().map_or(0, |r| r.len()) as u64;
        days * states * 3 * 4 + days * counties * states * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disease::sir_model;

    fn mk(tick: u32, person: u32, state: StateId, cause: Option<u32>) -> TransitionRecord {
        TransitionRecord { tick, person, state, cause }
    }

    fn chain_output() -> SimOutput {
        // 0 seeds; 0 infects 1 and 2; 1 infects 3. States: I = 1, R = 2.
        let transitions = vec![
            mk(0, 0, 1, None),
            mk(1, 1, 1, Some(0)),
            mk(1, 2, 1, Some(0)),
            mk(2, 3, 1, Some(1)),
            mk(3, 0, 2, None),
        ];
        let mut new_counts = vec![vec![0u32; 3]; 4];
        new_counts[0][1] = 1;
        new_counts[1][1] = 2;
        new_counts[2][1] = 1;
        new_counts[3][2] = 1;
        SimOutput {
            transitions,
            new_counts,
            current_counts: vec![vec![0; 3]; 4],
            county_new: vec![vec![vec![0; 3]; 1]; 4],
            memory_bytes: vec![0; 4],
            ..Default::default()
        }
    }

    #[test]
    fn cumulative_accumulates() {
        let o = chain_output();
        assert_eq!(o.cumulative(1), vec![1, 3, 4, 4]);
        assert_eq!(o.daily_new(1), vec![1, 2, 1, 0]);
    }

    #[test]
    fn dendogram_structure() {
        let o = chain_output();
        let m = sir_model(0.1, 5.0);
        let d = o.dendogram_stats(&m);
        assert_eq!(d.roots, 1);
        assert_eq!(d.transmissions, 3);
        assert_eq!(d.max_depth, 2); // 0 -> 1 -> 3
        assert!((d.mean_offspring - 3.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn total_infections_counts_caused_only() {
        let o = chain_output();
        assert_eq!(o.total_infections(), 3);
    }

    #[test]
    fn csv_format() {
        let o = chain_output();
        let m = sir_model(0.1, 5.0);
        let csv = o.transitions_csv(&m);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "tick,pid,state,cause");
        assert_eq!(lines[1], "0,0,I,");
        assert_eq!(lines[2], "1,1,I,0");
        assert_eq!(lines[5], "3,0,R,");
    }

    #[test]
    fn volume_accounting() {
        let o = chain_output();
        assert_eq!(o.raw_output_bytes(), 5 * 24);
        assert!(o.summary_output_bytes() > 0);
    }

    #[test]
    fn empty_output_is_sane() {
        let o = SimOutput::default();
        let m = sir_model(0.1, 5.0);
        let d = o.dendogram_stats(&m);
        assert_eq!(d, DendogramStats::default());
        assert_eq!(o.total_infections(), 0);
        assert_eq!(o.n_ticks(), 0);
        assert_eq!(o.seed_shortfall(), 0);
    }

    #[test]
    fn seed_shortfall_arithmetic() {
        let mut o = SimOutput { requested_seeds: 10, seeded: 7, ..Default::default() };
        assert_eq!(o.seed_shortfall(), 3);
        o.seeded = 10;
        assert_eq!(o.seed_shortfall(), 0);
        // Defensive: seeded > requested must not underflow.
        o.seeded = 12;
        assert_eq!(o.seed_shortfall(), 0);
    }
}
