//! Interventions: external modifications of the simulation state
//! (paper Appendix D).
//!
//! An intervention comprises a **trigger** (a predicate over the system
//! state) and an **action ensemble** (operations over a target set of
//! nodes or edges, optionally sampled and optionally delayed). This
//! module provides:
//!
//! * the [`Intervention`] trait and [`InterventionSet`] container the
//!   engine executes at the start of every tick;
//! * [`GenericIntervention`] — a serializable trigger/action-ensemble
//!   implementation mirroring the paper's JSON-configured interventions;
//! * the paper's eight named interventions (§VI, Fig. 7 bottom):
//!   **VHI** (voluntary home isolation), **SC** (school closure),
//!   **SH** (stay-at-home), **RO** (partial reopening), **TA** (test &
//!   isolate asymptomatic), **PS** (pulsing shutdown), **D1CT** and
//!   **D2CT** (distance-1/2 contact tracing & isolation).
//!
//! Compliance is drawn deterministically from a hash of
//! (seed, salt, node), so intervention membership does not perturb the
//! engine's counter-based RNG streams.

use crate::disease::{DiseaseModel, StateId};
use crate::engine::RuntimeNet;
use crate::output::TransitionRecord;
use crate::state::{flags, SimState};
use epiflow_synthpop::ActivityType;
use serde::{Deserialize, Serialize};

/// Everything an intervention may read/write at tick start.
pub struct InterventionCtx<'a> {
    pub tick: u32,
    pub state: &'a mut SimState,
    pub net: &'a RuntimeNet,
    pub model: &'a DiseaseModel,
    /// Transitions applied during the previous tick (used by reactive
    /// interventions like VHI and contact tracing).
    pub recent: &'a [TransitionRecord],
    pub seed: u64,
}

/// Deterministic per-node uniform in [0, 1): hash of (seed, salt, node).
pub fn hash_prob(seed: u64, salt: u64, node: u32) -> f64 {
    let mut z = seed
        ^ salt.wrapping_mul(0xA24BAED4963EE407)
        ^ (node as u64).wrapping_mul(0x9FB21C651E98DF25);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// An intervention executed at the start of each tick.
pub trait Intervention: Send + Sync {
    /// Short name (for logs and runtime-cost reporting).
    fn name(&self) -> &str;
    /// Apply at the current tick.
    fn apply(&mut self, ctx: &mut InterventionCtx<'_>);
    /// Serialize mutable trigger state for a checkpoint. `None` (the
    /// default) declares the intervention stateless: its behaviour at
    /// tick `t` depends only on `(t, seed, SimState)`, all of which the
    /// snapshot already carries.
    fn snapshot_state(&self) -> Option<String> {
        None
    }
    /// Restore trigger state captured by [`Intervention::snapshot_state`].
    fn restore_state(&mut self, _state: &str) -> Result<(), String> {
        Ok(())
    }
}

/// An ordered set of interventions.
#[derive(Default)]
pub struct InterventionSet {
    items: Vec<Box<dyn Intervention>>,
}

impl InterventionSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an intervention (builder style).
    pub fn with(mut self, i: Box<dyn Intervention>) -> Self {
        self.items.push(i);
        self
    }

    /// Add an intervention.
    pub fn push(&mut self, i: Box<dyn Intervention>) {
        self.items.push(i);
    }

    /// Number of interventions.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Names, in execution order.
    pub fn names(&self) -> Vec<&str> {
        self.items.iter().map(|i| i.name()).collect()
    }

    /// Execute all interventions in order.
    pub fn apply(&mut self, ctx: &mut InterventionCtx<'_>) {
        for i in &mut self.items {
            i.apply(ctx);
        }
    }

    /// Capture each intervention's `(name, trigger state)` for a
    /// checkpoint, in execution order.
    pub fn snapshot_states(&self) -> Vec<(String, Option<String>)> {
        self.items.iter().map(|i| (i.name().to_string(), i.snapshot_state())).collect()
    }

    /// Restore trigger states captured by
    /// [`InterventionSet::snapshot_states`]. The caller must supply the
    /// same intervention stack the snapshot was taken with; count or
    /// name disagreements are rejected rather than silently misapplied.
    pub fn restore_states(&mut self, states: &[(String, Option<String>)]) -> Result<(), String> {
        if states.len() != self.items.len() {
            return Err(format!(
                "snapshot has {} intervention states, simulation has {} interventions",
                states.len(),
                self.items.len()
            ));
        }
        for (item, (name, state)) in self.items.iter_mut().zip(states) {
            if item.name() != name {
                return Err(format!(
                    "intervention order mismatch: snapshot has `{name}`, simulation has `{}`",
                    item.name()
                ));
            }
            if let Some(s) = state {
                item.restore_state(s)?;
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Generic trigger / action-ensemble machinery (Appendix D architecture).
// ---------------------------------------------------------------------------

/// A predicate over the system state.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum Trigger {
    /// Fires every tick.
    Always,
    /// Fires exactly at `tick`.
    AtTick { tick: u32 },
    /// Fires while `from <= tick < to`.
    TickRange { from: u32, to: u32 },
    /// Fires when the count of nodes in `state` reaches `count`.
    StateCountAtLeast { state: StateId, count: usize },
    /// Fires when a user variable reaches `value`.
    VariableAtLeast { name: String, value: f64 },
    /// Conjunction.
    And { a: Box<Trigger>, b: Box<Trigger> },
    /// Disjunction.
    Or { a: Box<Trigger>, b: Box<Trigger> },
    /// Negation.
    Not { inner: Box<Trigger> },
}

impl Trigger {
    /// Evaluate against the current state.
    pub fn eval(&self, tick: u32, state: &SimState) -> bool {
        match self {
            Trigger::Always => true,
            Trigger::AtTick { tick: t } => tick == *t,
            Trigger::TickRange { from, to } => tick >= *from && tick < *to,
            Trigger::StateCountAtLeast { state: s, count } => state.count_in(*s) >= *count,
            Trigger::VariableAtLeast { name, value } => state.variable(name) >= *value,
            Trigger::And { a, b } => a.eval(tick, state) && b.eval(tick, state),
            Trigger::Or { a, b } => a.eval(tick, state) || b.eval(tick, state),
            Trigger::Not { inner } => !inner.eval(tick, state),
        }
    }
}

/// The set of nodes an action ensemble operates on.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum Target {
    AllNodes,
    /// Nodes currently in a health state.
    NodesInState {
        state: StateId,
    },
    /// Nodes that *entered* a state last tick.
    NewlyInState {
        state: StateId,
    },
    /// A single node.
    Node {
        node: u32,
    },
}

/// One operation applied to each (sampled) target element or once
/// per firing.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum Operation {
    /// Home-isolate the target for `days`.
    Isolate { days: u32 },
    /// Set a node flag on the target.
    SetFlag { flag: u8 },
    /// Clear a node flag on the target.
    ClearFlag { flag: u8 },
    /// Scale the target's susceptibility (e.g. vaccination).
    ScaleSusceptibility { factor: f32 },
    /// Scale the target's infectivity (e.g. masking).
    ScaleInfectivity { factor: f32 },
    /// Force the target into a health state (e.g. importation or
    /// scenario what-ifs). Goes through [`SimState::set_health`] so the
    /// engine rebuilds its frontier index before the next scan.
    SetHealth { to: StateId },
    /// Close an activity context globally (once per firing).
    CloseContext { ctx: ActivityType },
    /// Reopen an activity context globally (once per firing).
    OpenContext { ctx: ActivityType },
    /// Set the global stay-home order (once per firing).
    SetStayHome { active: bool },
    /// Set a user variable (once per firing).
    SetVariable { name: String, value: f64 },
    /// Add to a user variable (once per firing).
    AddVariable { name: String, delta: f64 },
}

impl Operation {
    fn is_global(&self) -> bool {
        matches!(
            self,
            Operation::CloseContext { .. }
                | Operation::OpenContext { .. }
                | Operation::SetStayHome { .. }
                | Operation::SetVariable { .. }
                | Operation::AddVariable { .. }
        )
    }

    fn apply_to_node(&self, node: u32, tick: u32, state: &mut SimState) {
        match self {
            Operation::Isolate { days } => state.isolate(node, tick + days),
            Operation::SetFlag { flag } => state.set_flag(node, *flag),
            Operation::ClearFlag { flag } => state.clear_flag(node, *flag),
            Operation::ScaleSusceptibility { factor } => {
                state.susceptibility_scale[node as usize] *= factor;
                state.scheduled_changes += 1;
            }
            Operation::ScaleInfectivity { factor } => {
                state.infectivity_scale[node as usize] *= factor;
                state.scheduled_changes += 1;
            }
            Operation::SetHealth { to } => state.set_health(node, *to),
            _ => {}
        }
    }

    fn apply_global(&self, state: &mut SimState) {
        match self {
            Operation::CloseContext { ctx } => state.close_context(*ctx),
            Operation::OpenContext { ctx } => state.open_context(*ctx),
            Operation::SetStayHome { active } => {
                state.stay_home_active = *active;
                state.scheduled_changes += 1;
            }
            Operation::SetVariable { name, value } => state.set_variable(name, *value),
            Operation::AddVariable { name, delta } => {
                let v = state.variable(name);
                state.set_variable(name, v + delta);
            }
            _ => {}
        }
    }
}

/// A serializable trigger + action-ensemble intervention.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GenericIntervention {
    pub name: String,
    pub trigger: Trigger,
    pub target: Target,
    /// Sampling fraction of the target set (1.0 = every element).
    pub sample: f64,
    /// Operations; per-element unless the operation is global.
    pub operations: Vec<Operation>,
    /// Fire at most once.
    pub once: bool,
    /// Delay (ticks) between trigger and application.
    pub delay: u32,
    #[serde(default)]
    fired: bool,
    /// Pending delayed firings: ticks at which to apply.
    #[serde(default)]
    pending: Vec<u32>,
}

impl GenericIntervention {
    /// Convenience constructor with no sampling, no delay, repeatable.
    pub fn new(name: &str, trigger: Trigger, target: Target, operations: Vec<Operation>) -> Self {
        GenericIntervention {
            name: name.to_string(),
            trigger,
            target,
            sample: 1.0,
            operations,
            once: false,
            delay: 0,
            fired: false,
            pending: Vec::new(),
        }
    }

    fn collect_targets(&self, ctx: &InterventionCtx<'_>) -> Vec<u32> {
        match &self.target {
            Target::AllNodes => (0..ctx.state.n_nodes() as u32).collect(),
            Target::NodesInState { state } => (0..ctx.state.n_nodes() as u32)
                .filter(|&v| ctx.state.health[v as usize] == *state)
                .collect(),
            Target::NewlyInState { state } => {
                ctx.recent.iter().filter(|t| t.state == *state).map(|t| t.person).collect()
            }
            Target::Node { node } => vec![*node],
        }
    }

    fn fire(&self, ctx: &mut InterventionCtx<'_>) {
        let salt = self.name.bytes().fold(0u64, |a, b| a.wrapping_mul(31).wrapping_add(b as u64));
        let targets = self.collect_targets(ctx);
        for op in &self.operations {
            if op.is_global() {
                op.apply_global(ctx.state);
            } else {
                for &v in &targets {
                    if self.sample >= 1.0 || hash_prob(ctx.seed, salt, v) < self.sample {
                        op.apply_to_node(v, ctx.tick, ctx.state);
                    }
                }
            }
        }
    }
}

/// The mutable half of a [`GenericIntervention`] — what a checkpoint
/// must carry to resume `once`/`delay` semantics mid-run.
#[derive(Serialize, Deserialize)]
struct GenericTriggerState {
    fired: bool,
    pending: Vec<u32>,
}

impl Intervention for GenericIntervention {
    fn name(&self) -> &str {
        &self.name
    }

    fn snapshot_state(&self) -> Option<String> {
        let st = GenericTriggerState { fired: self.fired, pending: self.pending.clone() };
        Some(serde_json::to_string(&st).expect("trigger state serializes"))
    }

    fn restore_state(&mut self, state: &str) -> Result<(), String> {
        let st: GenericTriggerState = serde_json::from_str(state)
            .map_err(|e| format!("bad GenericIntervention state: {e}"))?;
        self.fired = st.fired;
        self.pending = st.pending;
        Ok(())
    }

    fn apply(&mut self, ctx: &mut InterventionCtx<'_>) {
        // Apply any delayed firings scheduled for this tick.
        if !self.pending.is_empty() {
            let due: Vec<u32> = self.pending.iter().copied().filter(|&t| t <= ctx.tick).collect();
            self.pending.retain(|&t| t > ctx.tick);
            for _ in due {
                self.fire(ctx);
            }
        }
        if self.once && self.fired {
            return;
        }
        if self.trigger.eval(ctx.tick, ctx.state) {
            self.fired = true;
            if self.delay == 0 {
                self.fire(ctx);
            } else {
                self.pending.push(ctx.tick + self.delay);
                ctx.state.scheduled_changes += 1;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The paper's named interventions.
// ---------------------------------------------------------------------------

/// SC — school closure: closes School and College contexts during
/// `[start, end)`. The paper's case study assumes 100% compliance
/// ("all schools, including colleges, are closed").
pub struct SchoolClosure {
    pub start: u32,
    pub end: u32,
}

impl Intervention for SchoolClosure {
    fn name(&self) -> &str {
        "SC"
    }

    fn apply(&mut self, ctx: &mut InterventionCtx<'_>) {
        if ctx.tick == self.start {
            ctx.state.close_context(ActivityType::School);
            ctx.state.close_context(ActivityType::College);
        }
        if ctx.tick == self.end {
            ctx.state.open_context(ActivityType::School);
            ctx.state.open_context(ActivityType::College);
        }
    }
}

/// SH — stay-at-home order during `[start, end)` with the given
/// compliance rate: compliant nodes lose all non-home contacts.
pub struct StayAtHome {
    pub start: u32,
    pub end: u32,
    pub compliance: f64,
    initialized: bool,
}

impl StayAtHome {
    pub fn new(start: u32, end: u32, compliance: f64) -> Self {
        StayAtHome { start, end, compliance, initialized: false }
    }
}

impl Intervention for StayAtHome {
    fn name(&self) -> &str {
        "SH"
    }

    // `initialized` is load-bearing for resume: replaying the one-time
    // compliance sampling would re-run `set_flag` over the population
    // and bump `scheduled_changes`, diverging the memory-model series.
    fn snapshot_state(&self) -> Option<String> {
        Some(if self.initialized { "1" } else { "0" }.to_string())
    }

    fn restore_state(&mut self, state: &str) -> Result<(), String> {
        match state {
            "1" => self.initialized = true,
            "0" => self.initialized = false,
            other => return Err(format!("bad StayAtHome state `{other}`")),
        }
        Ok(())
    }

    fn apply(&mut self, ctx: &mut InterventionCtx<'_>) {
        if !self.initialized {
            self.initialized = true;
            for v in 0..ctx.state.n_nodes() as u32 {
                if hash_prob(ctx.seed, 0x5348, v) < self.compliance {
                    ctx.state.set_flag(v, flags::SH_COMPLIANT);
                }
            }
        }
        if ctx.tick == self.start {
            ctx.state.stay_home_active = true;
            ctx.state.scheduled_changes += 1;
        }
        if ctx.tick == self.end {
            ctx.state.stay_home_active = false;
            ctx.state.scheduled_changes += 1;
        }
    }
}

/// VHI — voluntary home isolation: when a compliant node turns
/// symptomatic, it isolates at home for `duration` days.
pub struct VoluntaryHomeIsolation {
    pub symptomatic: StateId,
    pub compliance: f64,
    pub duration: u32,
}

impl Intervention for VoluntaryHomeIsolation {
    fn name(&self) -> &str {
        "VHI"
    }

    fn apply(&mut self, ctx: &mut InterventionCtx<'_>) {
        for t in ctx.recent.iter().filter(|t| t.state == self.symptomatic) {
            if hash_prob(ctx.seed, 0x564849, t.person) < self.compliance {
                ctx.state.isolate(t.person, ctx.tick + self.duration);
            }
        }
    }
}

/// RO — partial reopening, extending SH: at `day`, the stay-home order
/// lifts but a `1 - level` fraction of formerly compliant nodes remain
/// restricted (holdouts), modeling partial return to activity.
pub struct PartialReopening {
    pub day: u32,
    /// Fraction of SH-compliant nodes released (0 = nobody, 1 = all).
    pub level: f64,
}

impl Intervention for PartialReopening {
    fn name(&self) -> &str {
        "RO"
    }

    fn apply(&mut self, ctx: &mut InterventionCtx<'_>) {
        if ctx.tick != self.day {
            return;
        }
        ctx.state.stay_home_active = false;
        for v in 0..ctx.state.n_nodes() as u32 {
            if ctx.state.has_flag(v, flags::SH_COMPLIANT)
                && hash_prob(ctx.seed, 0x524F, v) >= self.level
            {
                ctx.state.set_flag(v, flags::HOLDOUT);
            }
        }
    }
}

/// TA — testing and isolating asymptomatic cases (extends VHI): each
/// tick, asymptomatic nodes are detected with probability `detection`
/// and isolated for `duration` days.
pub struct TestAndIsolate {
    pub asymptomatic: StateId,
    pub detection: f64,
    pub duration: u32,
    pub start: u32,
}

impl Intervention for TestAndIsolate {
    fn name(&self) -> &str {
        "TA"
    }

    fn apply(&mut self, ctx: &mut InterventionCtx<'_>) {
        if ctx.tick < self.start {
            return;
        }
        for v in 0..ctx.state.n_nodes() as u32 {
            if ctx.state.health[v as usize] == self.asymptomatic
                && hash_prob(ctx.seed ^ ctx.tick as u64, 0x5441, v) < self.detection
            {
                ctx.state.isolate(v, ctx.tick + self.duration);
            }
        }
    }
}

/// PS — pulsing shutdown: repeatedly alternates stay-home (`on_days`)
/// and reopening (`off_days`) after `start`.
///
/// Compliance is re-sampled per pulse (people who complied with one
/// shutdown may not comply with the next), which is also where the
/// paper's observation that PS "significantly increases the running
/// time" comes from: every pulse boundary re-evaluates the whole
/// population's participation and schedules the corresponding system
/// state changes.
pub struct PulsingShutdown {
    pub start: u32,
    pub on_days: u32,
    pub off_days: u32,
    pub compliance: f64,
}

impl PulsingShutdown {
    pub fn new(start: u32, on_days: u32, off_days: u32, compliance: f64) -> Self {
        PulsingShutdown { start, on_days, off_days, compliance }
    }
}

impl Intervention for PulsingShutdown {
    fn name(&self) -> &str {
        "PS"
    }

    fn apply(&mut self, ctx: &mut InterventionCtx<'_>) {
        if ctx.tick < self.start {
            return;
        }
        let period = self.on_days + self.off_days;
        let offset = ctx.tick - self.start;
        let phase = offset % period;
        let pulse = offset / period;
        if phase == 0 {
            // Pulse begins: re-sample compliance for this pulse.
            for v in 0..ctx.state.n_nodes() as u32 {
                if hash_prob(ctx.seed ^ (pulse as u64) << 32, 0x5053, v) < self.compliance {
                    ctx.state.set_flag(v, flags::SH_COMPLIANT);
                } else {
                    ctx.state.clear_flag(v, flags::SH_COMPLIANT);
                }
            }
        }
        let want = phase < self.on_days;
        if ctx.state.stay_home_active != want {
            ctx.state.stay_home_active = want;
            ctx.state.scheduled_changes += 1;
        }
    }
}

/// D1CT / D2CT — distance-1 (and optionally distance-2) contact tracing
/// and isolation.
///
/// Every tick, each currently symptomatic node is detected with
/// probability `detection`; detected cases and their contacts (and
/// contacts-of-contacts for D2CT) isolate with probability
/// `compliance`. The per-tick target-set construction traverses the
/// 1-hop (or 2-hop) neighborhood of every active case — the "affects
/// many more nodes and edges" cost that makes the paper's D2CT runs
/// ≈ 3–4× the base case.
pub struct ContactTracing {
    pub symptomatic: StateId,
    pub detection: f64,
    pub compliance: f64,
    pub duration: u32,
    /// 1 = D1CT, 2 = D2CT.
    pub distance: u8,
}

impl Intervention for ContactTracing {
    fn name(&self) -> &str {
        if self.distance >= 2 {
            "D2CT"
        } else {
            "D1CT"
        }
    }

    fn apply(&mut self, ctx: &mut InterventionCtx<'_>) {
        let mut to_isolate: Vec<u32> = Vec::new();
        for v in 0..ctx.state.n_nodes() as u32 {
            if ctx.state.health[v as usize] != self.symptomatic {
                continue;
            }
            if hash_prob(ctx.seed ^ ctx.tick as u64, 0x4354, v) >= self.detection {
                continue;
            }
            // The index case isolates too.
            to_isolate.push(v);
            for e in ctx.net.in_edges(v) {
                if hash_prob(ctx.seed ^ ctx.tick as u64, 0x435431, e.neighbor) < self.compliance {
                    to_isolate.push(e.neighbor);
                }
                if self.distance >= 2 {
                    for e2 in ctx.net.in_edges(e.neighbor) {
                        if hash_prob(ctx.seed ^ ctx.tick as u64, 0x435432, e2.neighbor)
                            < self.compliance
                        {
                            to_isolate.push(e2.neighbor);
                        }
                    }
                }
            }
        }
        for v in to_isolate {
            ctx.state.isolate(v, ctx.tick + self.duration);
        }
    }
}

/// The paper's base-case intervention stack: VHI + SC + SH
/// (§VI: "In the base case, the simulation has implemented VHI,
/// SC, and SH").
pub fn base_case(
    symptomatic: StateId,
    sc_start: u32,
    sh_start: u32,
    sh_end: u32,
    sh_compliance: f64,
    vhi_compliance: f64,
) -> InterventionSet {
    InterventionSet::new()
        .with(Box::new(VoluntaryHomeIsolation {
            symptomatic,
            compliance: vhi_compliance,
            duration: 14,
        }))
        .with(Box::new(SchoolClosure { start: sc_start, end: u32::MAX }))
        .with(Box::new(StayAtHome::new(sh_start, sh_end, sh_compliance)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::covid::{covid19_model, states};
    use crate::disease::sir_model;
    use crate::engine::{RuntimeNet, SimConfig, Simulation};
    use epiflow_synthpop::network::ContactEdge;
    use epiflow_synthpop::ContactNetwork;

    fn work_clique(n: u32) -> ContactNetwork {
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                edges.push(ContactEdge {
                    u,
                    v,
                    start: 480,
                    duration: 480,
                    ctx_u: ActivityType::Work,
                    ctx_v: ActivityType::Work,
                    weight: 1.0,
                });
            }
        }
        ContactNetwork { n_nodes: n as usize, edges }
    }

    fn run_with(net: &ContactNetwork, interventions: InterventionSet, seed: u64) -> usize {
        let n = net.n_nodes;
        let mut sim = Simulation::new(
            net,
            sir_model(1.2, 5.0),
            vec![2; n],
            vec![0; n],
            interventions,
            SimConfig { ticks: 80, seed, initial_infections: 3, ..Default::default() },
        );
        sim.run().output.total_infections()
    }

    #[test]
    fn hash_prob_in_unit_interval_and_deterministic() {
        for v in 0..1000 {
            let p = hash_prob(42, 7, v);
            assert!((0.0..1.0).contains(&p));
            assert_eq!(p, hash_prob(42, 7, v));
        }
        // Roughly uniform.
        let mean: f64 = (0..10_000).map(|v| hash_prob(1, 2, v)).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02);
    }

    #[test]
    fn stay_at_home_reduces_infections() {
        let net = work_clique(60);
        let none = run_with(&net, InterventionSet::new(), 3);
        let sh =
            run_with(&net, InterventionSet::new().with(Box::new(StayAtHome::new(1, 80, 0.9))), 3);
        assert!(sh < none, "SH {sh} should be < baseline {none}");
    }

    #[test]
    fn full_compliance_stay_home_stops_workplace_spread() {
        let net = work_clique(40);
        let infections =
            run_with(&net, InterventionSet::new().with(Box::new(StayAtHome::new(0, 100, 1.0))), 1);
        assert_eq!(infections, 0, "no non-home contacts should remain");
    }

    #[test]
    fn school_closure_blocks_school_edges_only() {
        // School clique + one Work edge: SC stops school transmission.
        let mut edges = Vec::new();
        for u in 0..20u32 {
            for v in (u + 1)..20 {
                edges.push(ContactEdge {
                    u,
                    v,
                    start: 480,
                    duration: 400,
                    ctx_u: ActivityType::School,
                    ctx_v: ActivityType::School,
                    weight: 1.0,
                });
            }
        }
        let net = ContactNetwork { n_nodes: 20, edges };
        let closed = run_with(
            &net,
            InterventionSet::new().with(Box::new(SchoolClosure { start: 0, end: u32::MAX })),
            5,
        );
        let open = run_with(&net, InterventionSet::new(), 5);
        assert_eq!(closed, 0);
        assert!(open > 0);
    }

    #[test]
    fn vhi_reduces_spread_in_covid_model() {
        let net = work_clique(80);
        let n = net.n_nodes;
        let run = |ivs: InterventionSet| {
            let mut sim = Simulation::new(
                &net,
                covid19_model(),
                vec![2; n],
                vec![0; n],
                ivs,
                SimConfig { ticks: 100, seed: 11, initial_infections: 4, ..Default::default() },
            );
            // Raise transmissibility so the clique epidemic is brisk.
            sim.model.transmissibility = 0.5;
            sim.run().output.total_infections()
        };
        let base = run(InterventionSet::new());
        let vhi = run(InterventionSet::new().with(Box::new(VoluntaryHomeIsolation {
            symptomatic: states::SYMPTOMATIC,
            compliance: 1.0,
            duration: 14,
        })));
        assert!(vhi <= base, "VHI {vhi} vs base {base}");
        assert!(base > 10, "baseline epidemic too small to compare ({base})");
    }

    #[test]
    fn pulsing_shutdown_alternates() {
        let net = work_clique(4);
        let rt = RuntimeNet::build(&net);
        let model = sir_model(0.5, 5.0);
        let mut st = SimState::new(4, net.edges.len(), 0);
        let mut ps = PulsingShutdown::new(10, 3, 2, 1.0);
        let mut active = Vec::new();
        for t in 0..20 {
            let mut ctx = InterventionCtx {
                tick: t,
                state: &mut st,
                net: &rt,
                model: &model,
                recent: &[],
                seed: 1,
            };
            ps.apply(&mut ctx);
            active.push(st.stay_home_active);
        }
        // Before start: off. After: 3 on, 2 off repeating.
        assert!(!active[9]);
        assert!(active[10] && active[11] && active[12]);
        assert!(!active[13] && !active[14]);
        assert!(active[15]);
    }

    #[test]
    fn partial_reopening_releases_some() {
        let net = work_clique(200);
        let rt = RuntimeNet::build(&net);
        let model = sir_model(0.5, 5.0);
        let mut st = SimState::new(200, net.edges.len(), 0);
        let mut sh = StayAtHome::new(0, 50, 1.0);
        let mut ro = PartialReopening { day: 10, level: 0.5 };
        for t in 0..12 {
            let mut ctx = InterventionCtx {
                tick: t,
                state: &mut st,
                net: &rt,
                model: &model,
                recent: &[],
                seed: 2,
            };
            sh.apply(&mut ctx);
            let mut ctx = InterventionCtx {
                tick: t,
                state: &mut st,
                net: &rt,
                model: &model,
                recent: &[],
                seed: 2,
            };
            ro.apply(&mut ctx);
        }
        assert!(!st.stay_home_active);
        let holdouts = (0..200).filter(|&v| st.has_flag(v, flags::HOLDOUT)).count();
        assert!(
            (60..140).contains(&holdouts),
            "about half of 200 should remain held out, got {holdouts}"
        );
    }

    #[test]
    fn contact_tracing_isolates_neighborhood() {
        let net = work_clique(30);
        let rt = RuntimeNet::build(&net);
        let model = covid19_model();
        let mut st = SimState::new(30, net.edges.len(), states::SUSCEPTIBLE);
        st.health[0] = states::SYMPTOMATIC;
        let recent = Vec::new();
        let mut ct = ContactTracing {
            symptomatic: states::SYMPTOMATIC,
            detection: 1.0,
            compliance: 1.0,
            duration: 14,
            distance: 1,
        };
        let mut ctx = InterventionCtx {
            tick: 5,
            state: &mut st,
            net: &rt,
            model: &model,
            recent: &recent,
            seed: 3,
        };
        ct.apply(&mut ctx);
        // Everyone is a neighbor in a clique: all isolated.
        for v in 0..30u32 {
            assert!(st.restricted(v, 6), "node {v} should be isolated");
        }
    }

    #[test]
    fn generic_intervention_trigger_and_sampling() {
        let net = work_clique(100);
        let rt = RuntimeNet::build(&net);
        let model = sir_model(0.5, 5.0);
        let mut st = SimState::new(100, net.edges.len(), 0);
        let mut gi = GenericIntervention {
            sample: 0.3,
            once: true,
            ..GenericIntervention::new(
                "vaccinate-30pct",
                Trigger::AtTick { tick: 7 },
                Target::AllNodes,
                vec![Operation::ScaleSusceptibility { factor: 0.0 }],
            )
        };
        for t in 0..10 {
            let mut ctx = InterventionCtx {
                tick: t,
                state: &mut st,
                net: &rt,
                model: &model,
                recent: &[],
                seed: 9,
            };
            gi.apply(&mut ctx);
        }
        let vaccinated = (0..100).filter(|&v| st.susceptibility_scale[v as usize] == 0.0).count();
        assert!((15..45).contains(&vaccinated), "≈30 expected, got {vaccinated}");
    }

    #[test]
    fn generic_intervention_delay() {
        let net = work_clique(4);
        let rt = RuntimeNet::build(&net);
        let model = sir_model(0.5, 5.0);
        let mut st = SimState::new(4, net.edges.len(), 0);
        let mut gi = GenericIntervention {
            once: true,
            delay: 3,
            ..GenericIntervention::new(
                "delayed-close",
                Trigger::AtTick { tick: 2 },
                Target::AllNodes,
                vec![Operation::CloseContext { ctx: ActivityType::Work }],
            )
        };
        let mut closed_at = None;
        for t in 0..10 {
            let mut ctx = InterventionCtx {
                tick: t,
                state: &mut st,
                net: &rt,
                model: &model,
                recent: &[],
                seed: 1,
            };
            gi.apply(&mut ctx);
            if closed_at.is_none() && st.context_closed(ActivityType::Work.code()) {
                closed_at = Some(t);
            }
        }
        assert_eq!(closed_at, Some(5));
    }

    #[test]
    fn generic_intervention_state_count_trigger() {
        let trigger = Trigger::StateCountAtLeast { state: 1, count: 3 };
        let mut st = SimState::new(10, 1, 0);
        assert!(!trigger.eval(0, &st));
        st.health[0] = 1;
        st.health[1] = 1;
        st.health[2] = 1;
        assert!(trigger.eval(0, &st));
    }

    #[test]
    fn trigger_combinators() {
        let st = SimState::new(1, 1, 0);
        let a = Trigger::TickRange { from: 5, to: 10 };
        let not_a = Trigger::Not { inner: Box::new(a.clone()) };
        let both = Trigger::And { a: Box::new(a.clone()), b: Box::new(Trigger::Always) };
        let either =
            Trigger::Or { a: Box::new(Trigger::AtTick { tick: 2 }), b: Box::new(a.clone()) };
        assert!(a.eval(7, &st) && !a.eval(10, &st));
        assert!(!not_a.eval(7, &st) && not_a.eval(4, &st));
        assert!(both.eval(6, &st) && !both.eval(11, &st));
        assert!(either.eval(2, &st) && either.eval(6, &st) && !either.eval(3, &st));
    }

    #[test]
    fn generic_intervention_serializes() {
        let gi = GenericIntervention::new(
            "sc",
            Trigger::AtTick { tick: 16 },
            Target::AllNodes,
            vec![Operation::CloseContext { ctx: ActivityType::School }],
        );
        let json = serde_json::to_string(&gi).unwrap();
        let back: GenericIntervention = serde_json::from_str(&json).unwrap();
        assert_eq!(back, gi);
    }

    #[test]
    fn set_health_operation_imports_cases() {
        // A case importation at tick 4 via SetHealth must be picked up
        // by the engine (frontier rebuild) and seed an epidemic.
        let net = work_clique(30);
        let n = net.n_nodes;
        let gi = GenericIntervention::new(
            "import",
            Trigger::AtTick { tick: 4 },
            Target::Node { node: 3 },
            vec![Operation::SetHealth { to: 1 }],
        );
        let mut sim = Simulation::new(
            &net,
            sir_model(2.0, 5.0),
            vec![2; n],
            vec![0; n],
            InterventionSet::new().with(Box::new(gi)),
            SimConfig { ticks: 40, seed: 8, initial_infections: 0, ..Default::default() },
        );
        let res = sim.run();
        assert!(res.output.total_infections() > 0, "imported case must spread");
    }

    #[test]
    fn base_case_stack_has_three() {
        let set = base_case(states::SYMPTOMATIC, 16, 31, 70, 0.8, 0.6);
        assert_eq!(set.names(), vec!["VHI", "SC", "SH"]);
    }

    #[test]
    fn ckpt_generic_trigger_state_round_trips() {
        let net = work_clique(4);
        let rt = RuntimeNet::build(&net);
        let model = sir_model(0.5, 5.0);
        let mut st = SimState::new(4, net.edges.len(), 0);
        let mut gi = GenericIntervention {
            once: true,
            delay: 5,
            ..GenericIntervention::new(
                "delayed",
                Trigger::AtTick { tick: 2 },
                Target::AllNodes,
                vec![Operation::CloseContext { ctx: ActivityType::Work }],
            )
        };
        // Trip the trigger at tick 2: fired = true, one pending firing.
        for t in 0..3 {
            let mut ctx = InterventionCtx {
                tick: t,
                state: &mut st,
                net: &rt,
                model: &model,
                recent: &[],
                seed: 1,
            };
            gi.apply(&mut ctx);
        }
        assert!(!st.context_closed(ActivityType::Work.code()));

        // Restore the captured state into a pristine copy: the delayed
        // firing still lands at tick 7, and `once` stays honoured.
        let saved = gi.snapshot_state().expect("generic interventions are stateful");
        let mut fresh = GenericIntervention {
            once: true,
            delay: 5,
            ..GenericIntervention::new(
                "delayed",
                Trigger::AtTick { tick: 2 },
                Target::AllNodes,
                vec![Operation::CloseContext { ctx: ActivityType::Work }],
            )
        };
        fresh.restore_state(&saved).unwrap();
        let mut closed_at = None;
        for t in 3..10 {
            let mut ctx = InterventionCtx {
                tick: t,
                state: &mut st,
                net: &rt,
                model: &model,
                recent: &[],
                seed: 1,
            };
            fresh.apply(&mut ctx);
            if closed_at.is_none() && st.context_closed(ActivityType::Work.code()) {
                closed_at = Some(t);
            }
        }
        assert_eq!(closed_at, Some(7));
        assert!(fresh.restore_state("not json").is_err());
    }

    #[test]
    fn ckpt_set_restore_rejects_mismatched_stacks() {
        let mut set = base_case(states::SYMPTOMATIC, 16, 31, 70, 0.8, 0.6);
        let states = set.snapshot_states();
        assert_eq!(states.len(), 3);
        // SH is the only stateful entry in the base stack.
        assert_eq!(states[0].1, None);
        assert_eq!(states[1].1, None);
        assert!(states[2].1.is_some());
        set.restore_states(&states).unwrap();

        // Wrong count.
        assert!(set.restore_states(&states[..2]).is_err());
        // Wrong name.
        let mut renamed = states.clone();
        renamed[0].0 = "XX".to_string();
        assert!(set.restore_states(&renamed).is_err());
    }
}
