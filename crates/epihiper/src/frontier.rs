//! Frontier index structures for the epidemic-proportional tick scan.
//!
//! The engine's per-tick cost should track the *active frontier* — the
//! set of nodes that could possibly change state this tick — not the
//! full network. Two structures make that possible:
//!
//! * [`ActiveSet`] — a two-level bitset over node ids holding every
//!   node with at least one in-neighbor in an infectious-capable
//!   (`via`) health state. Iteration over a partition's node range
//!   skips empty 64-word blocks (4096 nodes) via a summary level, so a
//!   tick with a tiny epidemic touches a few cache lines instead of
//!   every node.
//! * [`TickBuckets`] — per-partition queues of scheduled progressions,
//!   keyed by the tick at which they fire. The engine pushes a node
//!   whenever it schedules an `exit_tick`, and drains bucket `t` at
//!   tick `t`, replacing the former `exit_tick[v] == t` sweep over all
//!   nodes. Entries may be stale (a node re-scheduled after the push)
//!   or duplicated (re-scheduled onto the same tick); the engine
//!   sorts, dedups, and re-checks `exit_tick == t` before firing.
//!
//! Both structures are *indexes over* the authoritative per-node state
//! (`SimState::health`, `SimState::exit_tick`); they never hold
//! information that cannot be rebuilt from it (see
//! `Simulation::rebuild_frontier`).

use std::collections::HashMap;

/// Mask with the low `n` bits set (`n` may be 64).
#[inline]
fn low_mask(n: u32) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// A two-level bitset over `0..n` node ids with block-skipping range
/// iteration.
///
/// Level 0 is one bit per node; level 1 (the summary) has one bit per
/// level-0 word, set iff that word is non-zero. Range iteration visits
/// only non-empty words, so an almost-empty set costs
/// `O(range / 4096 + population)` per scan instead of `O(range)`.
#[derive(Clone, Debug)]
pub struct ActiveSet {
    words: Vec<u64>,
    summary: Vec<u64>,
    len: usize,
}

impl ActiveSet {
    /// Empty set over the id space `0..n`.
    pub fn new(n: usize) -> Self {
        let n_words = n.div_ceil(64);
        ActiveSet { words: vec![0; n_words], summary: vec![0; n_words.div_ceil(64)], len: 0 }
    }

    /// Number of set bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Is `v` in the set?
    #[inline]
    pub fn contains(&self, v: u32) -> bool {
        self.words[(v / 64) as usize] >> (v % 64) & 1 == 1
    }

    /// Insert `v` (no-op if present).
    #[inline]
    pub fn insert(&mut self, v: u32) {
        let (w, b) = ((v / 64) as usize, v % 64);
        if self.words[w] >> b & 1 == 0 {
            self.words[w] |= 1 << b;
            self.summary[w / 64] |= 1 << (w % 64);
            self.len += 1;
        }
    }

    /// Remove `v` (no-op if absent).
    #[inline]
    pub fn remove(&mut self, v: u32) {
        let (w, b) = ((v / 64) as usize, v % 64);
        if self.words[w] >> b & 1 == 1 {
            self.words[w] &= !(1 << b);
            if self.words[w] == 0 {
                self.summary[w / 64] &= !(1 << (w % 64));
            }
            self.len -= 1;
        }
    }

    /// Remove every element.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.summary.fill(0);
        self.len = 0;
    }

    /// Number of set bits in `[lo, hi)` — a masked popcount sweep,
    /// `O(range / 64)`. The engine uses this to pick between the
    /// frontier merge scan and the saturated full-range sweep.
    pub fn count_range(&self, lo: u32, hi: u32) -> usize {
        if lo >= hi {
            return 0;
        }
        let w_lo = (lo / 64) as usize;
        let w_hi = ((hi - 1) / 64) as usize;
        let mut count = 0usize;
        for w in w_lo..=w_hi {
            let mut bits = self.words[w];
            if w == w_lo {
                bits &= !low_mask(lo % 64);
            }
            if w == w_hi {
                bits &= low_mask(hi % 64 + if hi.is_multiple_of(64) { 64 } else { 0 });
            }
            count += bits.count_ones() as usize;
        }
        count
    }

    /// Iterate set bits in `[lo, hi)` in increasing order.
    pub fn iter_range(&self, lo: u32, hi: u32) -> ActiveRangeIter<'_> {
        debug_assert!(hi as usize <= self.words.len() * 64);
        if lo >= hi {
            return ActiveRangeIter {
                set: self,
                lo: 0,
                hi: 0,
                w_lo: 0,
                w_hi: 0,
                blk: 0,
                blocks_end: 0,
                blk_bits: 0,
                word_idx: 0,
                word_bits: 0,
            };
        }
        let w_lo = (lo / 64) as usize;
        let w_hi = ((hi - 1) / 64) as usize;
        let blk = w_lo / 64;
        let mut it = ActiveRangeIter {
            set: self,
            lo,
            hi,
            w_lo,
            w_hi,
            blk,
            blocks_end: w_hi / 64 + 1,
            blk_bits: 0,
            word_idx: 0,
            word_bits: 0,
        };
        it.blk_bits = it.masked_summary(blk);
        it
    }
}

/// Iterator over [`ActiveSet`] members within a node range.
pub struct ActiveRangeIter<'a> {
    set: &'a ActiveSet,
    lo: u32,
    hi: u32,
    w_lo: usize,
    w_hi: usize,
    blk: usize,
    blocks_end: usize,
    blk_bits: u64,
    word_idx: usize,
    word_bits: u64,
}

impl ActiveRangeIter<'_> {
    /// Summary word for `blk`, masked to the words in `[w_lo, w_hi]`.
    fn masked_summary(&self, blk: usize) -> u64 {
        if blk >= self.blocks_end {
            return 0;
        }
        let mut s = self.set.summary[blk];
        let base = blk * 64;
        if self.w_lo > base {
            s &= !low_mask((self.w_lo - base) as u32);
        }
        if self.w_hi < base + 63 {
            s &= low_mask((self.w_hi - base + 1) as u32);
        }
        s
    }
}

impl Iterator for ActiveRangeIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        loop {
            if self.word_bits != 0 {
                let b = self.word_bits.trailing_zeros();
                self.word_bits &= self.word_bits - 1;
                return Some(self.word_idx as u32 * 64 + b);
            }
            if self.blk_bits != 0 {
                let wb = self.blk_bits.trailing_zeros() as usize;
                self.blk_bits &= self.blk_bits - 1;
                self.word_idx = self.blk * 64 + wb;
                let mut bits = self.set.words[self.word_idx];
                if self.word_idx == self.w_lo {
                    bits &= !low_mask(self.lo % 64);
                }
                if self.word_idx == self.w_hi {
                    // `hi % 64 == 0` cannot reach here: then w_hi < hi/64.
                    bits &=
                        low_mask(self.hi % 64 + if self.hi.is_multiple_of(64) { 64 } else { 0 });
                }
                self.word_bits = bits;
                continue;
            }
            self.blk += 1;
            if self.blk >= self.blocks_end {
                return None;
            }
            self.blk_bits = self.masked_summary(self.blk);
        }
    }
}

/// Per-partition queues of scheduled progressions keyed by firing tick.
///
/// Push order is whatever order the apply phase runs in; the drain
/// sorts and dedups so the scan emits events in node order, matching
/// the reference full-range sweep byte for byte.
#[derive(Clone, Debug, Default)]
pub struct TickBuckets {
    parts: Vec<HashMap<u32, Vec<u32>>>,
    queued: usize,
}

impl TickBuckets {
    /// Empty queues for `n_partitions` partitions.
    pub fn new(n_partitions: usize) -> Self {
        TickBuckets { parts: vec![HashMap::new(); n_partitions], queued: 0 }
    }

    /// Schedule `node` (owned by `part`) to be checked at `tick`.
    #[inline]
    pub fn push(&mut self, part: usize, tick: u32, node: u32) {
        self.parts[part].entry(tick).or_default().push(node);
        self.queued += 1;
    }

    /// Drain partition `part`'s bucket for `tick` into `out`, sorted
    /// and deduped. `out` is cleared first (buffer reuse).
    pub fn take_into(&mut self, part: usize, tick: u32, out: &mut Vec<u32>) {
        out.clear();
        if let Some(nodes) = self.parts[part].remove(&tick) {
            self.queued -= nodes.len();
            out.extend(nodes);
            out.sort_unstable();
            out.dedup();
        }
    }

    /// Total queued entries (stale entries included) — for memory
    /// accounting and tests. O(1).
    pub fn queued(&self) -> usize {
        self.queued
    }

    /// Flatten the queues into a partition-agnostic, deterministic
    /// form: `(tick, nodes)` pairs sorted by tick, nodes sorted within
    /// each tick with duplicates *preserved*. Duplicates matter only
    /// for [`TickBuckets::queued`] (the memory model counts them), not
    /// for the events the drain emits (it dedups) — so re-pushing an
    /// exported list through each node's owning partition reproduces
    /// byte-identical behaviour at any partition count.
    pub fn export_entries(&self) -> Vec<(u32, Vec<u32>)> {
        let mut merged: std::collections::BTreeMap<u32, Vec<u32>> =
            std::collections::BTreeMap::new();
        for part in &self.parts {
            for (&tick, nodes) in part {
                merged.entry(tick).or_default().extend_from_slice(nodes);
            }
        }
        merged
            .into_iter()
            .map(|(tick, mut nodes)| {
                nodes.sort_unstable();
                (tick, nodes)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(set: &ActiveSet, lo: u32, hi: u32) -> Vec<u32> {
        set.iter_range(lo, hi).collect()
    }

    #[test]
    fn insert_remove_contains_len() {
        let mut s = ActiveSet::new(10_000);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(4095);
        s.insert(4096);
        s.insert(9999);
        s.insert(9999); // duplicate insert is a no-op
        assert_eq!(s.len(), 6);
        assert!(s.contains(4096) && !s.contains(4097));
        s.remove(4096);
        s.remove(4096); // duplicate remove is a no-op
        assert_eq!(s.len(), 5);
        assert!(!s.contains(4096));
    }

    #[test]
    fn range_iteration_matches_naive() {
        // Deterministic pseudo-random membership; compare against a
        // naive filter over every (lo, hi) word-boundary combination.
        let n = 20_000u32;
        let mut s = ActiveSet::new(n as usize);
        let mut members = Vec::new();
        let mut x = 0x9E3779B97F4A7C15u64;
        for v in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if x.is_multiple_of(37) {
                s.insert(v);
                members.push(v);
            }
        }
        for &(lo, hi) in &[
            (0u32, n),
            (0, 1),
            (63, 65),
            (64, 128),
            (100, 100),
            (4095, 4097),
            (4096, 8192),
            (12_345, 17_890),
            (n - 1, n),
        ] {
            let naive: Vec<u32> = members.iter().copied().filter(|&v| v >= lo && v < hi).collect();
            assert_eq!(collect(&s, lo, hi), naive, "range {lo}..{hi}");
            assert_eq!(s.count_range(lo, hi), naive.len(), "count {lo}..{hi}");
        }
    }

    #[test]
    fn empty_and_full_ranges() {
        let mut s = ActiveSet::new(300);
        assert!(collect(&s, 0, 300).is_empty());
        for v in 0..300 {
            s.insert(v);
        }
        assert_eq!(collect(&s, 0, 300), (0..300).collect::<Vec<u32>>());
        assert_eq!(collect(&s, 290, 300), (290..300).collect::<Vec<u32>>());
        s.clear();
        assert!(s.is_empty());
        assert!(collect(&s, 0, 300).is_empty());
    }

    #[test]
    fn summary_skips_do_not_lose_members() {
        // Two members very far apart: iteration must cross many empty
        // summary blocks.
        let mut s = ActiveSet::new(1_000_000);
        s.insert(3);
        s.insert(999_999);
        assert_eq!(collect(&s, 0, 1_000_000), vec![3, 999_999]);
        assert_eq!(collect(&s, 4, 999_999), Vec::<u32>::new());
    }

    #[test]
    fn buckets_sort_dedup_and_drain() {
        let mut b = TickBuckets::new(2);
        b.push(0, 5, 9);
        b.push(0, 5, 3);
        b.push(0, 5, 9); // duplicate (re-scheduled onto the same tick)
        b.push(1, 5, 7);
        b.push(0, 6, 1);
        assert_eq!(b.queued(), 5);
        let mut out = vec![42]; // stale content must be cleared
        b.take_into(0, 5, &mut out);
        assert_eq!(out, vec![3, 9]);
        b.take_into(0, 5, &mut out);
        assert!(out.is_empty(), "bucket drains only once");
        b.take_into(1, 5, &mut out);
        assert_eq!(out, vec![7]);
        b.take_into(0, 6, &mut out);
        assert_eq!(out, vec![1]);
        assert_eq!(b.queued(), 0);
    }

    #[test]
    fn ckpt_export_preserves_duplicates_across_partitions() {
        let mut b = TickBuckets::new(3);
        b.push(0, 5, 9);
        b.push(0, 5, 9); // duplicate on the same tick
        b.push(2, 5, 3);
        b.push(1, 7, 4);
        let exported = b.export_entries();
        assert_eq!(exported, vec![(5, vec![3, 9, 9]), (7, vec![4])]);

        // Re-import into a different partition count: queued() (which
        // the memory model reads) and drain results both survive.
        let mut b2 = TickBuckets::new(1);
        for (tick, nodes) in &exported {
            for &v in nodes {
                b2.push(0, *tick, v);
            }
        }
        assert_eq!(b2.queued(), b.queued());
        let mut out = Vec::new();
        b2.take_into(0, 5, &mut out);
        assert_eq!(out, vec![3, 9]);
    }
}
