//! An EpiHiper-style agent-based, discrete-time epidemic simulator
//! (paper §III "Simulation-based models" and Appendix D).
//!
//! The simulator computes probabilistic disease transmission between
//! nodes of a contact network and disease progression within infected
//! individuals:
//!
//! * [`disease`] — disease models as probabilistic timed transition
//!   systems (PTTS): states, age-stratified progression edges with dwell
//!   time distributions, and transmission edges. JSON-serializable, as
//!   EpiHiper's inputs are.
//! * [`covid`] — the builtin COVID-19 model of the paper's Fig. 12 /
//!   Tables III–IV.
//! * [`partition`] — the paper's static edge-count-threshold network
//!   partitioning (all in-edges of a node stay together; fill each
//!   partition until it exceeds `E/P + ε`).
//! * [`state`] — the mutable system state (Table V): health states,
//!   per-node infectivity/susceptibility scaling, node flags, edge
//!   activity, user variables.
//! * [`interventions`] — trigger + action-ensemble interventions, with
//!   the paper's builtins: VHI, SC, SH, RO, TA, PS, D1CT, D2CT.
//! * [`engine`] — the parallel tick loop: partitions execute on rayon
//!   threads (standing in for MPI ranks) with a barrier per tick;
//!   per-(node, tick) counter-based RNG makes results *independent of
//!   thread count*. The default scan is frontier-based: per-tick cost
//!   follows the epidemic, not the network.
//! * [`frontier`] — the active-set bitset and tick-bucket progression
//!   queues behind the frontier scan.
//! * [`checkpoint`] — tick-level checkpoint/restart: versioned,
//!   per-section-checksummed snapshots with a two-slot A/B chain, so a
//!   preempted run resumes byte-identically from its last snapshot.
//! * [`output`] — transition logs, dendograms (transmission forests),
//!   and per-tick aggregate counters, plus the memory-accounting model
//!   behind Fig. 10.

pub mod checkpoint;
pub mod covid;
pub mod disease;
pub mod engine;
pub mod frontier;
pub mod interventions;
pub mod output;
pub mod partition;
pub mod scaling;
pub mod state;

pub use checkpoint::{
    SimSnapshot, SnapshotChain, SnapshotError, SnapshotEvent, SnapshotMeta, SNAPSHOT_VERSION,
};
pub use covid::covid19_model;
pub use disease::{DiseaseModel, DwellTime, Progression, StateId, Transmission};
pub use engine::{EngineStats, RunCarry, SimConfig, SimContext, SimResult, SimScratch, Simulation};
pub use frontier::{ActiveSet, TickBuckets};
pub use interventions::{Intervention, InterventionSet};
pub use output::{DendogramStats, SimOutput, TransitionRecord};
pub use partition::{partition_network, Partitioning};
pub use scaling::{projected_run_secs, MpiCostModel};
pub use state::SimState;
