//! Mutable system state (paper Appendix D, Table V).
//!
//! The system state at any time comprises the attributes of nodes and
//! edges plus user-defined variables. Interventions read and write this
//! state; the transmission/progression engine reads it every tick.
//!
//! Node restriction semantics: interventions do not enumerate and flip
//! millions of edges; they set node-level flags (isolated-until,
//! stay-home compliance) and context closures, and edge activity is
//! *evaluated* from those plus an explicit per-edge enable bit. This is
//! how a contact can be "turned on and off dynamically as required"
//! without O(E) writes per intervention.

use crate::disease::StateId;
use epiflow_synthpop::ActivityType;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Node flag bits.
pub mod flags {
    /// Complies with stay-at-home orders.
    pub const SH_COMPLIANT: u8 = 1 << 0;
    /// Complies with voluntary home isolation when symptomatic.
    pub const VHI_COMPLIANT: u8 = 1 << 1;
    /// Complies with contact-tracing isolation requests.
    pub const CT_COMPLIANT: u8 = 1 << 2;
    /// Permanently restricted (e.g. not released by partial reopening).
    pub const HOLDOUT: u8 = 1 << 3;
}

/// Tick value meaning "never".
pub const NEVER: u32 = u32::MAX;

/// The full mutable simulation state.
///
/// Serializable in full — including the private edge bits and the
/// health epoch — because it is the authoritative half of a
/// [`crate::checkpoint::SimSnapshot`]; everything the engine derives
/// from it (frontier index, occupancy) is rebuilt on restore.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimState {
    /// Current health state per node.
    pub health: Vec<StateId>,
    /// Tick at which the node's scheduled progression fires ([`NEVER`]
    /// if none).
    pub exit_tick: Vec<u32>,
    /// The state the node moves to when `exit_tick` fires.
    pub next_state: Vec<StateId>,
    /// Per-node infectivity scaling (ι multiplier, Table V `rw`).
    pub infectivity_scale: Vec<f32>,
    /// Per-node susceptibility scaling (σ multiplier, Table V `rw`).
    pub susceptibility_scale: Vec<f32>,
    /// Node flag bits (see [`flags`]).
    pub node_flags: Vec<u8>,
    /// Node is home-isolated until this tick (exclusive).
    pub isolated_until: Vec<u32>,
    /// Global stay-home order active (applies to SH-compliant nodes).
    pub stay_home_active: bool,
    /// Bitmask of closed activity contexts (bit = `ActivityType::code`).
    pub closed_contexts: u8,
    /// Explicit per-undirected-edge enable bit (bit-packed).
    edge_enabled: Vec<u64>,
    n_edges: usize,
    /// User-defined named variables (Table V `variable` rows).
    pub variables: HashMap<String, f64>,
    /// Cumulative count of scheduled system-state changes — the driver
    /// of the Fig.-10 memory growth model.
    pub scheduled_changes: u64,
    /// Monotone counter of *external* health writes (see
    /// [`SimState::set_health`]). The engine snapshots this and
    /// rebuilds its frontier index and occupancy counters whenever it
    /// advances, so interventions that rewrite health states stay
    /// consistent with the frontier scan.
    health_epoch: u64,
}

impl SimState {
    /// Fresh state: everyone in `initial_state`, all edges enabled.
    pub fn new(n_nodes: usize, n_edges: usize, initial_state: StateId) -> Self {
        SimState {
            health: vec![initial_state; n_nodes],
            exit_tick: vec![NEVER; n_nodes],
            next_state: vec![initial_state; n_nodes],
            infectivity_scale: vec![1.0; n_nodes],
            susceptibility_scale: vec![1.0; n_nodes],
            node_flags: vec![0; n_nodes],
            isolated_until: vec![0; n_nodes],
            stay_home_active: false,
            closed_contexts: 0,
            edge_enabled: vec![u64::MAX; n_edges.div_ceil(64)],
            n_edges,
            variables: HashMap::new(),
            scheduled_changes: 0,
            health_epoch: 0,
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.health.len()
    }

    /// Number of undirected edges the enable bits cover (snapshot
    /// restore validates this against the network being resumed onto).
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }

    /// Write a node's health state from *outside* the engine's tick
    /// loop (interventions, test setup). Unlike a direct store into
    /// [`SimState::health`], this bumps [`SimState::health_epoch`] so
    /// the engine knows to rebuild its infectious-neighbor counts and
    /// occupancy before the next scan. Scheduled progressions
    /// (`exit_tick`/`next_state`) are intentionally untouched: they
    /// fire regardless of the current health state, exactly as the
    /// reference scan does.
    pub fn set_health(&mut self, node: u32, to: StateId) {
        let slot = &mut self.health[node as usize];
        if *slot != to {
            *slot = to;
            self.health_epoch += 1;
            self.scheduled_changes += 1;
        }
    }

    /// Epoch counter advanced by [`SimState::set_health`].
    pub fn health_epoch(&self) -> u64 {
        self.health_epoch
    }

    /// Is the per-edge enable bit set?
    #[inline]
    pub fn edge_enabled(&self, edge: u32) -> bool {
        debug_assert!((edge as usize) < self.n_edges);
        self.edge_enabled[(edge / 64) as usize] >> (edge % 64) & 1 == 1
    }

    /// Set the per-edge enable bit.
    #[inline]
    pub fn set_edge_enabled(&mut self, edge: u32, enabled: bool) {
        debug_assert!((edge as usize) < self.n_edges);
        let (w, b) = ((edge / 64) as usize, edge % 64);
        if enabled {
            self.edge_enabled[w] |= 1 << b;
        } else {
            self.edge_enabled[w] &= !(1 << b);
        }
        self.scheduled_changes += 1;
    }

    /// Close an activity context (e.g. School under SC).
    pub fn close_context(&mut self, ctx: ActivityType) {
        self.closed_contexts |= 1 << ctx.code();
        self.scheduled_changes += 1;
    }

    /// Reopen an activity context.
    pub fn open_context(&mut self, ctx: ActivityType) {
        self.closed_contexts &= !(1 << ctx.code());
        self.scheduled_changes += 1;
    }

    /// Is a context closed?
    #[inline]
    pub fn context_closed(&self, ctx_code: u8) -> bool {
        self.closed_contexts >> ctx_code & 1 == 1
    }

    /// Whether a node is currently movement-restricted at tick `t`:
    /// home-isolated, permanently held out, or complying with an active
    /// stay-home order.
    #[inline]
    pub fn restricted(&self, node: u32, t: u32) -> bool {
        let n = node as usize;
        let f = self.node_flags[n];
        self.isolated_until[n] > t
            || f & flags::HOLDOUT != 0
            || (self.stay_home_active && f & flags::SH_COMPLIANT != 0)
    }

    /// Evaluate whether a directed contact is active at tick `t`.
    ///
    /// `ctx_self`/`ctx_nbr` are the activity-context codes of the two
    /// endpoints. Home contacts survive every restriction (household
    /// members keep interacting under isolation).
    #[inline]
    pub fn edge_active(
        &self,
        edge: u32,
        node: u32,
        neighbor: u32,
        ctx_self: u8,
        ctx_nbr: u8,
        t: u32,
    ) -> bool {
        const HOME: u8 = 0; // ActivityType::Home.code()
        if !self.edge_enabled(edge) {
            return false;
        }
        if self.context_closed(ctx_self) || self.context_closed(ctx_nbr) {
            return false;
        }
        let is_home = ctx_self == HOME && ctx_nbr == HOME;
        if is_home {
            return true;
        }
        !self.restricted(node, t) && !self.restricted(neighbor, t)
    }

    /// Isolate a node at home until tick `until` (exclusive).
    pub fn isolate(&mut self, node: u32, until: u32) {
        let slot = &mut self.isolated_until[node as usize];
        if *slot < until {
            *slot = until;
            self.scheduled_changes += 1;
        }
    }

    /// Set a node flag.
    pub fn set_flag(&mut self, node: u32, flag: u8) {
        self.node_flags[node as usize] |= flag;
        self.scheduled_changes += 1;
    }

    /// Clear a node flag.
    pub fn clear_flag(&mut self, node: u32, flag: u8) {
        self.node_flags[node as usize] &= !flag;
        self.scheduled_changes += 1;
    }

    /// Test a node flag.
    #[inline]
    pub fn has_flag(&self, node: u32, flag: u8) -> bool {
        self.node_flags[node as usize] & flag != 0
    }

    /// Read a user variable (0.0 when unset, matching EpiHiper's
    /// default-initialized variables).
    pub fn variable(&self, name: &str) -> f64 {
        self.variables.get(name).copied().unwrap_or(0.0)
    }

    /// Write a user variable.
    pub fn set_variable(&mut self, name: &str, value: f64) {
        self.variables.insert(name.to_string(), value);
        self.scheduled_changes += 1;
    }

    /// Count of nodes currently in `state`.
    pub fn count_in(&self, state: StateId) -> usize {
        self.health.iter().filter(|&&h| h == state).count()
    }

    /// Estimated resident memory in bytes: the static network share is
    /// supplied by the engine; this adds the per-node state and the
    /// intervention bookkeeping that grows as changes are scheduled —
    /// the mechanism behind the Fig.-10 in-simulation memory growth.
    pub fn dynamic_memory_bytes(&self) -> u64 {
        let per_node = (2 + 4 + 2 + 4 + 4 + 1 + 4) as u64; // the seven node arrays
        let nodes = self.health.len() as u64 * per_node;
        let edges = (self.edge_enabled.len() * 8) as u64;
        // Each scheduled change costs bookkeeping in EpiHiper's action
        // queues; 48 bytes approximates a queued action record.
        nodes + edges + self.scheduled_changes * 48
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_state_all_enabled() {
        let s = SimState::new(10, 100, 0);
        assert_eq!(s.n_nodes(), 10);
        for e in 0..100 {
            assert!(s.edge_enabled(e));
        }
        assert!(!s.restricted(3, 0));
    }

    #[test]
    fn edge_bit_set_clear() {
        let mut s = SimState::new(2, 130, 0);
        s.set_edge_enabled(64, false);
        assert!(!s.edge_enabled(64));
        assert!(s.edge_enabled(63));
        assert!(s.edge_enabled(65));
        s.set_edge_enabled(64, true);
        assert!(s.edge_enabled(64));
    }

    #[test]
    fn context_closure() {
        let mut s = SimState::new(2, 1, 0);
        let school = ActivityType::School;
        assert!(!s.context_closed(school.code()));
        s.close_context(school);
        assert!(s.context_closed(school.code()));
        assert!(!s.context_closed(ActivityType::Work.code()));
        s.open_context(school);
        assert!(!s.context_closed(school.code()));
    }

    #[test]
    fn isolation_expires() {
        let mut s = SimState::new(3, 1, 0);
        s.isolate(1, 10);
        assert!(s.restricted(1, 5));
        assert!(s.restricted(1, 9));
        assert!(!s.restricted(1, 10));
        assert!(!s.restricted(0, 5));
    }

    #[test]
    fn isolation_never_shortens() {
        let mut s = SimState::new(1, 1, 0);
        s.isolate(0, 20);
        s.isolate(0, 10);
        assert!(s.restricted(0, 15));
    }

    #[test]
    fn stay_home_only_hits_compliant() {
        let mut s = SimState::new(2, 1, 0);
        s.set_flag(0, flags::SH_COMPLIANT);
        s.stay_home_active = true;
        assert!(s.restricted(0, 0));
        assert!(!s.restricted(1, 0));
        s.stay_home_active = false;
        assert!(!s.restricted(0, 0));
    }

    #[test]
    fn home_edges_survive_restriction() {
        let mut s = SimState::new(2, 4, 0);
        s.isolate(0, 100);
        let home = ActivityType::Home.code();
        let work = ActivityType::Work.code();
        assert!(s.edge_active(0, 0, 1, home, home, 5));
        assert!(!s.edge_active(1, 0, 1, work, work, 5));
        // Asymmetric contexts: one side home is not enough.
        assert!(!s.edge_active(2, 0, 1, home, work, 5));
    }

    #[test]
    fn closed_context_blocks_edge() {
        let mut s = SimState::new(2, 1, 0);
        s.close_context(ActivityType::School);
        let school = ActivityType::School.code();
        let work = ActivityType::Work.code();
        assert!(!s.edge_active(0, 0, 1, school, school, 0));
        assert!(!s.edge_active(0, 0, 1, work, school, 0));
        assert!(s.edge_active(0, 0, 1, work, work, 0));
    }

    #[test]
    fn disabled_edge_blocks_everything() {
        let mut s = SimState::new(2, 1, 0);
        s.set_edge_enabled(0, false);
        let home = ActivityType::Home.code();
        assert!(!s.edge_active(0, 0, 1, home, home, 0));
    }

    #[test]
    fn flags_roundtrip() {
        let mut s = SimState::new(1, 1, 0);
        assert!(!s.has_flag(0, flags::VHI_COMPLIANT));
        s.set_flag(0, flags::VHI_COMPLIANT);
        assert!(s.has_flag(0, flags::VHI_COMPLIANT));
        s.clear_flag(0, flags::VHI_COMPLIANT);
        assert!(!s.has_flag(0, flags::VHI_COMPLIANT));
    }

    #[test]
    fn variables_default_zero() {
        let mut s = SimState::new(1, 1, 0);
        assert_eq!(s.variable("x"), 0.0);
        s.set_variable("x", 2.5);
        assert_eq!(s.variable("x"), 2.5);
    }

    #[test]
    fn memory_grows_with_scheduled_changes() {
        let mut s = SimState::new(100, 100, 0);
        let before = s.dynamic_memory_bytes();
        for i in 0..50 {
            s.isolate(i % 100, 10 + i);
        }
        assert!(s.dynamic_memory_bytes() > before);
    }

    #[test]
    fn set_health_bumps_epoch_only_on_change() {
        let mut s = SimState::new(3, 1, 0);
        assert_eq!(s.health_epoch(), 0);
        s.set_health(1, 2);
        assert_eq!(s.health[1], 2);
        assert_eq!(s.health_epoch(), 1);
        s.set_health(1, 2); // no-op write
        assert_eq!(s.health_epoch(), 1);
        s.set_health(1, 0);
        assert_eq!(s.health_epoch(), 2);
    }

    #[test]
    fn count_in_states() {
        let mut s = SimState::new(5, 1, 0);
        s.health[2] = 3;
        s.health[4] = 3;
        assert_eq!(s.count_in(0), 3);
        assert_eq!(s.count_in(3), 2);
        assert_eq!(s.count_in(7), 0);
    }
}
