//! The counterfactual / economic workflow (Fig. 3, case study 1).
//!
//! "Counter-factual analysis refers to the study of outcomes under
//! various posted scenarios … usually such an analysis entails running
//! a large factorial design and then computing certain outcomes that
//! combine the output of the simulations and detailed synthetic …
//! data." The flagship instance estimates the medical costs of
//! COVID-19 under a 12-cell factorial of NPI durations and compliances,
//! with 15 replicates per cell per region.

use crate::design::{CellConfig, FactorialDesign, StudyDesign};
use crate::runner::EnsembleRunner;
use epiflow_analytics::{CostModel, CostReport};
use epiflow_synthpop::builder::RegionData;

/// The economic workflow configuration.
#[derive(Clone, Debug)]
pub struct CounterfactualWorkflow {
    pub design: FactorialDesign,
    pub base: CellConfig,
    pub replicates: u32,
    pub cost_model: CostModel,
    pub n_partitions: usize,
    pub seed: u64,
}

impl Default for CounterfactualWorkflow {
    fn default() -> Self {
        CounterfactualWorkflow {
            design: FactorialDesign::paper_economic(),
            base: CellConfig::default(),
            replicates: 15,
            cost_model: CostModel::default(),
            n_partitions: 4,
            seed: 0xEC0,
        }
    }
}

/// Cost outcome for one cell (mean over replicates).
#[derive(Clone, Debug)]
pub struct ScenarioCost {
    pub cell: CellConfig,
    /// Mean cost report across replicates.
    pub mean_cost: CostReport,
    /// Mean total infections across replicates.
    pub mean_infections: f64,
}

impl CounterfactualWorkflow {
    /// Run the factorial on one region; returns one row per cell.
    pub fn run(&self, data: &RegionData) -> Vec<ScenarioCost> {
        self.run_with(&EnsembleRunner::new(data, self.n_partitions))
    }

    /// [`CounterfactualWorkflow::run`] against a pre-built ensemble
    /// context. The runner's partitioning takes precedence over
    /// `self.n_partitions`.
    pub fn run_with(&self, runner: &EnsembleRunner) -> Vec<ScenarioCost> {
        let cells = self.design.expand(&self.base);
        let study = StudyDesign { cells: cells.clone(), replicates: self.replicates };
        let runs = runner.run_design(&study, self.seed);

        cells
            .iter()
            .map(|cell| {
                let cell_runs: Vec<_> = runs.iter().filter(|r| r.cell == cell.cell).collect();
                let n = cell_runs.len().max(1);
                let mut total = CostReport::default();
                let mut infections = 0.0;
                for r in &cell_runs {
                    total = total.add(&self.cost_model.evaluate(&r.output));
                    // Cumulative symptomatic is the infection proxy the
                    // cost study reports.
                    infections += r.log_cum_symptomatic.last().map_or(0.0, |l| l.exp() - 1.0);
                }
                ScenarioCost {
                    cell: cell.clone(),
                    mean_cost: total.scale(1.0 / n as f64),
                    mean_infections: infections / n as f64,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epiflow_surveillance::{RegionRegistry, Scale};
    use epiflow_synthpop::{build_region, BuildConfig};

    fn region() -> RegionData {
        let reg = RegionRegistry::new();
        let id = reg.by_abbrev("DE").unwrap().id;
        build_region(
            &reg,
            id,
            &BuildConfig { scale: Scale::one_per(4000.0), seed: 9, ..Default::default() },
        )
    }

    fn quick_workflow() -> CounterfactualWorkflow {
        CounterfactualWorkflow {
            design: FactorialDesign {
                vhi_compliances: vec![0.2, 0.9],
                sh_durations: vec![20, 80],
                sh_compliances: vec![0.3],
            },
            base: CellConfig {
                days: 90,
                transmissibility: 0.30,
                sh_start: 25,
                sc_start: 20,
                initial_infections: 8,
                ..Default::default()
            },
            replicates: 3,
            n_partitions: 2,
            ..Default::default()
        }
    }

    #[test]
    fn produces_one_row_per_cell() {
        let rows = quick_workflow().run(&region());
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(row.mean_infections >= 0.0);
        }
    }

    #[test]
    fn longer_lockdowns_cost_less_medically() {
        // More NPI ⇒ fewer infections ⇒ lower medical cost. Compare the
        // strictest vs the laxest cell.
        let rows = quick_workflow().run(&region());
        let laxest = rows
            .iter()
            .filter(|r| r.cell.vhi_compliance < 0.5 && r.cell.sh_end - r.cell.sh_start < 50)
            .map(|r| r.mean_infections)
            .next()
            .unwrap();
        let strictest = rows
            .iter()
            .filter(|r| r.cell.vhi_compliance > 0.5 && r.cell.sh_end - r.cell.sh_start > 50)
            .map(|r| r.mean_infections)
            .next()
            .unwrap();
        assert!(
            strictest <= laxest,
            "strict NPIs should not increase infections: {strictest} vs {laxest}"
        );
    }

    #[test]
    fn paper_design_cell_count() {
        let wf = CounterfactualWorkflow::default();
        assert_eq!(wf.design.expand(&wf.base).len(), 12);
        assert_eq!(wf.replicates, 15);
    }
}
