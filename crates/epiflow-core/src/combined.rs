//! The combined nightly workflow across both clusters (Figs. 1–2,
//! Table II).
//!
//! This is a *planning-level* discrete-event simulation of one nightly
//! cycle: configuration generation on the home cluster during the day,
//! Globus transfer of configurations, per-region database startup from
//! snapshots, level-packed Slurm execution inside the remote cluster's
//! 10 pm–8 am window, post-simulation aggregation, and the return
//! transfer of summaries. It produces the Fig.-2-style event timeline,
//! the Table-II data-volume ledger, and the Fig.-9 utilization numbers.
//!
//! Since the orchestrator landed, the cycle runs on the
//! [`epiflow_orchestrator`] DAG engine: `CombinedWorkflow` builds the
//! nightly DAG and translates the engine's report back into the
//! original [`CombinedReport`] shape. With the default (quiet) fault
//! plan the engine reproduces the hand-rolled sequence exactly; setting
//! [`CombinedWorkflow::faults`] and [`CombinedWorkflow::deadline`]
//! turns on seeded fault injection, per-step retries, and
//! deadline-aware cell shedding.

use epiflow_hpcsim::cluster::ClusterSpec;
use epiflow_hpcsim::globus::{GlobusLink, TransferLedger};
use epiflow_hpcsim::schedule::PackAlgo;
use epiflow_hpcsim::slurm::SlurmStats;
use epiflow_hpcsim::task::{Task, WorkloadSpec};
use epiflow_orchestrator::{
    nightly_engine, BreakerConfig, DeadlinePolicy, DroppedCell, Engine, FailoverPolicy, FaultPlan,
    NightlySpec, RetryPolicy, RunResult,
};
use epiflow_surveillance::{RegionRegistry, Scale};

pub use epiflow_orchestrator::TimelineEvent;

/// The nightly combined workflow.
#[derive(Clone, Debug)]
pub struct CombinedWorkflow {
    pub home: ClusterSpec,
    pub remote: ClusterSpec,
    pub link: GlobusLink,
    pub workload: WorkloadSpec,
    pub algo: PackAlgo,
    /// Per-region database connection bound B(r).
    pub db_max_connections: usize,
    /// Seconds of analyst + tooling time to generate configurations.
    pub config_gen_secs: f64,
    /// Seconds of analytics time on the home cluster after return.
    pub analysis_secs: f64,
    /// Fault injection for the cycle (default: quiet).
    pub faults: FaultPlan,
    /// Deadline-aware degradation policy (default: off).
    pub deadline: DeadlinePolicy,
    /// Retry policy for the Globus transfers.
    pub transfer_retry: RetryPolicy,
    /// Cross-cluster failover, re-routing, and hedging (default: off —
    /// the classic engine).
    pub failover: FailoverPolicy,
    /// Circuit-breaker tuning for the link / remote-cluster / database
    /// breakers (only consulted when `failover.enabled`).
    pub breaker: BreakerConfig,
}

impl Default for CombinedWorkflow {
    fn default() -> Self {
        let spec = NightlySpec::default();
        CombinedWorkflow {
            home: ClusterSpec::rivanna(),
            remote: ClusterSpec::bridges(),
            link: GlobusLink::default(),
            workload: WorkloadSpec::prediction(),
            algo: PackAlgo::FfdtDc,
            // One PostgreSQL server per region on its own node; with 4
            // connections per job this allows 16 concurrent jobs per
            // region, enough that the machine (not the databases) is
            // the binding constraint on all-state nights.
            db_max_connections: 64,
            config_gen_secs: 2.0 * 3600.0,
            analysis_secs: 3.0 * 3600.0,
            faults: FaultPlan::default(),
            deadline: DeadlinePolicy::default(),
            transfer_retry: spec.transfer_retry,
            failover: FailoverPolicy::default(),
            breaker: BreakerConfig::default(),
        }
    }
}

/// Result of one nightly cycle.
#[derive(Clone, Debug)]
pub struct CombinedReport {
    pub timeline: Vec<TimelineEvent>,
    pub transfers: TransferLedger,
    pub slurm: SlurmStats,
    /// Tasks generated.
    pub n_tasks: usize,
    /// Bytes of raw output produced on the remote cluster (not
    /// transferred; summaries only come home).
    pub raw_output_bytes: u64,
    pub summary_bytes: u64,
    /// Whether everything finished inside the nightly window.
    pub within_window: bool,
    /// End-to-end cycle duration in seconds.
    pub cycle_secs: f64,
    /// Cells shed by deadline degradation (empty unless the deadline
    /// policy fired).
    pub dropped_cells: Vec<DroppedCell>,
    /// Failed attempts across all steps.
    pub total_retries: u32,
    /// Steps that exhausted their retry policy (empty on a good night).
    pub failed_steps: Vec<String>,
    /// Steps re-planned onto the other cluster by the failover policy.
    pub failover_steps: Vec<String>,
    /// Speculative duplicate attempts the hedge policy launched.
    pub hedges: u32,
    /// Calls re-routed to alternate resources by open breakers.
    pub reroutes: u32,
}

impl CombinedWorkflow {
    /// Build the nightly DAG engine for this configuration — the
    /// general entry point; [`CombinedWorkflow::run`] is `engine().run()`
    /// plus report translation.
    pub fn engine(&self, registry: &RegionRegistry, scale: Scale) -> Engine {
        let tasks: Vec<Task> = self.workload.generate(registry, scale);
        // Database rows and output volumes use *real* populations: the
        // combined workflow models the paper's deployment (the task
        // runtimes are likewise calibrated to the real system's), while
        // `scale` only shrinks the in-process simulations.
        let regions: Vec<usize> = {
            let mut r: Vec<usize> = tasks.iter().map(|t| t.region).collect();
            r.sort_unstable();
            r.dedup();
            r
        };
        let region_rows: Vec<(usize, u64)> =
            regions.iter().map(|&r| (r, registry.region(r).population)).collect();
        let spec = NightlySpec {
            link: self.link.clone(),
            remote: self.remote.clone(),
            home: self.home.clone(),
            algo: self.algo,
            db_max_connections: self.db_max_connections,
            conns_per_task: self.workload.db_connections_per_task,
            config_gen_secs: self.config_gen_secs,
            analysis_secs: self.analysis_secs,
            transfer_retry: self.transfer_retry,
            failover: self.failover,
            breaker: self.breaker,
            ..NightlySpec::default()
        };
        nightly_engine(&spec, tasks, region_rows, self.faults.clone(), self.deadline)
    }

    /// Simulate one nightly cycle.
    pub fn run(&self, registry: &RegionRegistry, scale: Scale) -> CombinedReport {
        CombinedReport::from_engine(self.engine(registry, scale).run())
    }

    /// Execute the *in-process* simulation leg of the nightly design
    /// for one region: where [`CombinedWorkflow::run`] models *when*
    /// the cells×replicates grid executes inside the batch window, this
    /// actually runs that grid — against one shared
    /// [`crate::runner::EnsembleRunner`] context, the same way the
    /// remote cluster amortizes the network build across a night's
    /// replicates. `n_partitions` maps to the per-job core count of the
    /// workload spec.
    pub fn run_design_in_process(
        &self,
        data: &epiflow_synthpop::builder::RegionData,
        design: &crate::design::StudyDesign,
        n_partitions: usize,
        base_seed: u64,
    ) -> Vec<crate::runner::CellRunSummary> {
        crate::runner::EnsembleRunner::new(data, n_partitions).run_design(design, base_seed)
    }
}

impl CombinedReport {
    /// Translate an engine run into the report shape the analytics and
    /// repro binaries consume.
    pub fn from_engine(run: RunResult) -> CombinedReport {
        let report = run.report;
        let n_tasks = report.n_tasks;
        CombinedReport {
            timeline: report.timeline,
            transfers: TransferLedger { transfers: report.transfers },
            slurm: report.slurm.unwrap_or(SlurmStats {
                completed: 0,
                unstarted: n_tasks,
                makespan_secs: 0.0,
                busy_node_secs: 0.0,
                peak_nodes: 0,
                utilization: 1.0,
                start_times: Vec::new(),
                preempted: 0,
                lost_node_secs: 0.0,
                recovered_node_secs: 0.0,
                resumes: 0,
                resume_log: Vec::new(),
            }),
            n_tasks,
            raw_output_bytes: report.raw_output_bytes,
            summary_bytes: report.summary_bytes,
            within_window: report.within_window,
            cycle_secs: report.cycle_secs,
            dropped_cells: report.dropped_cells,
            total_retries: report.total_retries,
            failed_steps: report.failed_steps,
            failover_steps: report.failover_steps,
            hedges: report.hedges,
            reroutes: report.reroutes,
        }
    }

    /// Render the Fig.-2-style timeline as text.
    pub fn timeline_text(&self) -> String {
        epiflow_orchestrator::timeline_text(&self.timeline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epiflow_hpcsim::cluster::Site;
    use epiflow_hpcsim::slurm::NodeFailure;
    use epiflow_orchestrator::LinkFaults;

    fn small_workload() -> WorkloadSpec {
        WorkloadSpec { cells: 2, replicates: 2, ..WorkloadSpec::prediction() }
    }

    #[test]
    fn nightly_cycle_completes_within_window() {
        let reg = RegionRegistry::new();
        let wf = CombinedWorkflow { workload: small_workload(), ..Default::default() };
        let report = wf.run(&reg, Scale::default());
        assert_eq!(report.n_tasks, 2 * 51 * 2);
        assert_eq!(report.slurm.completed, report.n_tasks);
        assert!(report.within_window, "small workload must fit the 10h window");
        assert!(report.cycle_secs > 0.0);
        assert!(report.dropped_cells.is_empty());
        assert_eq!(report.total_retries, 0);
    }

    #[test]
    fn paper_scale_prediction_workload_fits() {
        // The real system ran 9180-simulation prediction workloads
        // nightly; our model must agree that this fits 720 nodes × 10 h.
        let reg = RegionRegistry::new();
        let wf = CombinedWorkflow::default();
        let report = wf.run(&reg, Scale::default());
        assert_eq!(report.n_tasks, 9180);
        assert!(
            report.slurm.completed > 9180 * 9 / 10,
            "most of the nightly workload must complete: {}",
            report.slurm.completed
        );
    }

    #[test]
    fn ffdt_utilization_beats_nfdt() {
        let reg = RegionRegistry::new();
        let ff = CombinedWorkflow::default().run(&reg, Scale::default());
        let nf = CombinedWorkflow { algo: PackAlgo::NfdtDc, ..Default::default() }
            .run(&reg, Scale::default());
        assert!(
            ff.slurm.utilization > nf.slurm.utilization,
            "FFDT {} vs NFDT {}",
            ff.slurm.utilization,
            nf.slurm.utilization
        );
    }

    #[test]
    fn timeline_covers_both_sites_and_is_ordered() {
        let reg = RegionRegistry::new();
        let wf = CombinedWorkflow { workload: small_workload(), ..Default::default() };
        let report = wf.run(&reg, Scale::default());
        assert!(report.timeline.iter().any(|e| e.site == Site::Home));
        assert!(report.timeline.iter().any(|e| e.site == Site::Remote));
        for w in report.timeline.windows(2) {
            assert!(w[1].start_secs >= w[0].start_secs);
        }
        let text = report.timeline_text();
        assert!(text.contains("Globus"));
        assert!(text.contains("Slurm"));
    }

    #[test]
    fn volumes_are_plausible() {
        let reg = RegionRegistry::new();
        let report = CombinedWorkflow::default().run(&reg, Scale::default());
        // Summaries come home, raw stays.
        assert!(report.summary_bytes > 0);
        assert!(report.raw_output_bytes > report.summary_bytes);
        assert_eq!(report.transfers.bytes_moved(Site::Remote, Site::Home), report.summary_bytes);
    }

    #[test]
    fn transfer_faults_are_retried_and_cycle_still_completes() {
        let reg = RegionRegistry::new();
        // A seed whose first "daily configs" attempt drops but whose
        // retries get through well inside the policy bound.
        let seed = (0u64..)
            .find(|&s| {
                let f = LinkFaults::new(0.5, s);
                f.attempt_fails("daily configs", 0)
                    && !f.attempt_fails("daily configs", 1)
                    && !f.attempt_fails("summaries", 0)
            })
            .unwrap();
        let wf = CombinedWorkflow {
            workload: small_workload(),
            faults: FaultPlan { link: LinkFaults::new(0.5, seed), ..FaultPlan::default() },
            ..Default::default()
        };
        let report = wf.run(&reg, Scale::default());
        assert_eq!(report.total_retries, 1, "exactly the injected drop");
        assert!(report.failed_steps.is_empty());
        assert_eq!(report.slurm.completed, report.n_tasks);
        assert!(report.within_window);
        // The retry cost wall-clock relative to a quiet night.
        let quiet = CombinedWorkflow { workload: small_workload(), ..Default::default() }
            .run(&reg, Scale::default());
        assert!(report.cycle_secs > quiet.cycle_secs);
    }

    #[test]
    fn node_crash_mid_level_is_absorbed_by_requeue() {
        let reg = RegionRegistry::new();
        let wf = CombinedWorkflow {
            workload: small_workload(),
            faults: FaultPlan {
                // Early enough that the machine is still packed, big
                // enough that idle nodes cannot absorb it.
                node_failures: vec![NodeFailure { at_secs: 60.0, nodes: 600 }],
                ..FaultPlan::default()
            },
            ..Default::default()
        };
        let report = wf.run(&reg, Scale::default());
        assert!(report.slurm.preempted > 0, "the crash must kill running jobs");
        assert_eq!(report.slurm.completed, report.n_tasks, "requeue recovers all of them");
    }
}
