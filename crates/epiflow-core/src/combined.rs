//! The combined nightly workflow across both clusters (Figs. 1–2,
//! Table II).
//!
//! This is a *planning-level* discrete-event simulation of one nightly
//! cycle: configuration generation on the home cluster during the day,
//! Globus transfer of configurations, per-region database startup from
//! snapshots, level-packed Slurm execution inside the remote cluster's
//! 10 pm–8 am window, post-simulation aggregation, and the return
//! transfer of summaries. It produces the Fig.-2-style event timeline,
//! the Table-II data-volume ledger, and the Fig.-9 utilization numbers.

use epiflow_hpcsim::cluster::{ClusterSpec, Site};
use epiflow_hpcsim::globus::{GlobusLink, TransferLedger};
use epiflow_hpcsim::schedule::{pack, PackAlgo};
use epiflow_hpcsim::slurm::{SlurmSim, SlurmStats};
use epiflow_hpcsim::task::{Task, WorkloadSpec};
use epiflow_hpcsim::PopulationDb;
use epiflow_surveillance::{RegionRegistry, Scale};
use std::collections::HashMap;

/// One timeline entry (Fig. 2's boxes).
#[derive(Clone, Debug, PartialEq)]
pub struct TimelineEvent {
    pub label: String,
    pub site: Site,
    /// Seconds on the workflow clock (0 = cycle start).
    pub start_secs: f64,
    pub duration_secs: f64,
    /// Whether the step is automated (orange boxes in Fig. 2) or needs
    /// a human in the loop.
    pub automated: bool,
}

/// The nightly combined workflow.
#[derive(Clone, Debug)]
pub struct CombinedWorkflow {
    pub home: ClusterSpec,
    pub remote: ClusterSpec,
    pub link: GlobusLink,
    pub workload: WorkloadSpec,
    pub algo: PackAlgo,
    /// Per-region database connection bound B(r).
    pub db_max_connections: usize,
    /// Seconds of analyst + tooling time to generate configurations.
    pub config_gen_secs: f64,
    /// Seconds of analytics time on the home cluster after return.
    pub analysis_secs: f64,
}

impl Default for CombinedWorkflow {
    fn default() -> Self {
        CombinedWorkflow {
            home: ClusterSpec::rivanna(),
            remote: ClusterSpec::bridges(),
            link: GlobusLink::default(),
            workload: WorkloadSpec::prediction(),
            algo: PackAlgo::FfdtDc,
            // One PostgreSQL server per region on its own node; with 4
            // connections per job this allows 16 concurrent jobs per
            // region, enough that the machine (not the databases) is
            // the binding constraint on all-state nights.
            db_max_connections: 64,
            config_gen_secs: 2.0 * 3600.0,
            analysis_secs: 3.0 * 3600.0,
        }
    }
}

/// Result of one nightly cycle.
#[derive(Clone, Debug)]
pub struct CombinedReport {
    pub timeline: Vec<TimelineEvent>,
    pub transfers: TransferLedger,
    pub slurm: SlurmStats,
    /// Tasks generated.
    pub n_tasks: usize,
    /// Bytes of raw output produced on the remote cluster (not
    /// transferred; summaries only come home).
    pub raw_output_bytes: u64,
    pub summary_bytes: u64,
    /// Whether everything finished inside the nightly window.
    pub within_window: bool,
    /// End-to-end cycle duration in seconds.
    pub cycle_secs: f64,
}

impl CombinedWorkflow {
    /// Simulate one nightly cycle.
    pub fn run(&self, registry: &RegionRegistry, scale: Scale) -> CombinedReport {
        let tasks: Vec<Task> = self.workload.generate(registry, scale);
        let mut timeline = Vec::new();
        let mut transfers = TransferLedger::default();
        let mut clock = 0.0f64;

        // 1. Configuration generation on the home cluster (manual +
        //    scripted; Fig. 2 shows this as a daytime human task).
        timeline.push(TimelineEvent {
            label: "generate simulation configurations".into(),
            site: Site::Home,
            start_secs: clock,
            duration_secs: self.config_gen_secs,
            automated: false,
        });
        clock += self.config_gen_secs;

        // 2. Globus transfer of configurations (Table II: 100 MB–8.7 GB
        //    per day; ~0.5 MB per simulation configuration).
        let config_bytes = (tasks.len() as u64) * 500_000;
        let t = self.link.transfer(Site::Home, Site::Remote, config_bytes, "daily configs", clock);
        timeline.push(TimelineEvent {
            label: "Globus: configs home → remote".into(),
            site: Site::Home,
            start_secs: clock,
            duration_secs: t.duration_secs,
            automated: false, // "started manually using the Globus platform"
        });
        clock = transfers.record(t);

        // 3. Population database startup from snapshots, one per region
        //    in parallel (bounded by the slowest).
        let regions: Vec<usize> = {
            let mut r: Vec<usize> = tasks.iter().map(|t| t.region).collect();
            r.sort_unstable();
            r.dedup();
            r
        };
        // Database rows and output volumes use *real* populations: the
        // combined workflow models the paper's deployment (the task
        // runtimes are likewise calibrated to the real system's), while
        // `scale` only shrinks the in-process simulations.
        let db_secs = regions
            .iter()
            .map(|&r| {
                let rows = registry.region(r).population;
                PopulationDb::new(r, rows, self.db_max_connections).startup_secs(true)
            })
            .fold(0.0f64, f64::max);
        timeline.push(TimelineEvent {
            label: "instantiate population database snapshots".into(),
            site: Site::Remote,
            start_secs: clock,
            duration_secs: db_secs,
            automated: true,
        });
        clock += db_secs;

        // 4. Pack and execute inside the nightly window.
        let conns = self.workload.db_connections_per_task.max(1);
        let bound_of = |_r: usize| self.db_max_connections / conns;
        let plan = pack(&tasks, self.remote.nodes, bound_of, self.algo);
        let order: Vec<usize> = plan.levels.iter().flat_map(|l| l.tasks.iter().copied()).collect();
        let slurm = SlurmSim::new(self.remote.clone()).run(&tasks, &order, bound_of);
        timeline.push(TimelineEvent {
            label: format!(
                "Slurm job arrays: {} simulations ({} completed)",
                tasks.len(),
                slurm.completed
            ),
            site: Site::Remote,
            start_secs: clock,
            duration_secs: slurm.makespan_secs,
            automated: true,
        });
        clock += slurm.makespan_secs;

        // 5. Post-simulation aggregation on the remote cluster (scales
        //    with completed work; ~2% of simulation node-seconds on the
        //    aggregation nodes).
        let agg_secs = (slurm.busy_node_secs * 0.02 / self.remote.nodes as f64).max(60.0);
        timeline.push(TimelineEvent {
            label: "post-simulation aggregation".into(),
            site: Site::Remote,
            start_secs: clock,
            duration_secs: agg_secs,
            automated: true,
        });
        clock += agg_secs;

        // 6. Output volumes. Per completed simulation: transitions ≈
        //    25% attack over the region's population, ~6 transitions
        //    per case, 24 B per line; summaries per Table I shape.
        let mut raw_bytes = 0u64;
        let mut summary_bytes = 0u64;
        let region_pop: HashMap<usize, u64> = regions
            .iter()
            .map(|&r| (r, registry.region(r).population))
            .collect();
        for (ti, t) in tasks.iter().enumerate() {
            if slurm.start_times[ti].is_none() {
                continue;
            }
            let pop = region_pop[&t.region];
            raw_bytes += (pop as f64 * 0.25 * 6.0 * 24.0) as u64;
            summary_bytes += 365 * 90 * 3 * 4;
        }

        // 7. Transfer summaries home.
        let t = self.link.transfer(Site::Remote, Site::Home, summary_bytes, "summaries", clock);
        timeline.push(TimelineEvent {
            label: "Globus: summaries remote → home".into(),
            site: Site::Remote,
            start_secs: clock,
            duration_secs: t.duration_secs,
            automated: true,
        });
        clock = transfers.record(t);

        // 8. Analytics + briefing prep on the home cluster.
        timeline.push(TimelineEvent {
            label: "analytics, projections, briefing products".into(),
            site: Site::Home,
            start_secs: clock,
            duration_secs: self.analysis_secs,
            automated: false,
        });
        clock += self.analysis_secs;

        let window = self.remote.window_secs() as f64;
        let remote_secs = db_secs + slurm.makespan_secs + agg_secs;
        CombinedReport {
            timeline,
            transfers,
            n_tasks: tasks.len(),
            raw_output_bytes: raw_bytes,
            summary_bytes,
            within_window: slurm.unstarted == 0 && remote_secs <= window,
            cycle_secs: clock,
            slurm,
        }
    }
}

impl CombinedReport {
    /// Render the Fig.-2-style timeline as text.
    pub fn timeline_text(&self) -> String {
        let mut s = String::new();
        for e in &self.timeline {
            let site = match e.site {
                Site::Home => "HOME  ",
                Site::Remote => "REMOTE",
            };
            let kind = if e.automated { "auto  " } else { "manual" };
            s.push_str(&format!(
                "[{site}] [{kind}] t+{:>7.0}s  ({:>7.0}s)  {}\n",
                e.start_secs, e.duration_secs, e.label
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_workload() -> WorkloadSpec {
        WorkloadSpec { cells: 2, replicates: 2, ..WorkloadSpec::prediction() }
    }

    #[test]
    fn nightly_cycle_completes_within_window() {
        let reg = RegionRegistry::new();
        let wf = CombinedWorkflow { workload: small_workload(), ..Default::default() };
        let report = wf.run(&reg, Scale::default());
        assert_eq!(report.n_tasks, 2 * 51 * 2);
        assert_eq!(report.slurm.completed, report.n_tasks);
        assert!(report.within_window, "small workload must fit the 10h window");
        assert!(report.cycle_secs > 0.0);
    }

    #[test]
    fn paper_scale_prediction_workload_fits() {
        // The real system ran 9180-simulation prediction workloads
        // nightly; our model must agree that this fits 720 nodes × 10 h.
        let reg = RegionRegistry::new();
        let wf = CombinedWorkflow::default();
        let report = wf.run(&reg, Scale::default());
        assert_eq!(report.n_tasks, 9180);
        assert!(
            report.slurm.completed > 9180 * 9 / 10,
            "most of the nightly workload must complete: {}",
            report.slurm.completed
        );
    }

    #[test]
    fn ffdt_utilization_beats_nfdt() {
        let reg = RegionRegistry::new();
        let ff = CombinedWorkflow::default().run(&reg, Scale::default());
        let nf = CombinedWorkflow { algo: PackAlgo::NfdtDc, ..Default::default() }
            .run(&reg, Scale::default());
        assert!(
            ff.slurm.utilization > nf.slurm.utilization,
            "FFDT {} vs NFDT {}",
            ff.slurm.utilization,
            nf.slurm.utilization
        );
    }

    #[test]
    fn timeline_covers_both_sites_and_is_ordered() {
        let reg = RegionRegistry::new();
        let wf = CombinedWorkflow { workload: small_workload(), ..Default::default() };
        let report = wf.run(&reg, Scale::default());
        assert!(report.timeline.iter().any(|e| e.site == Site::Home));
        assert!(report.timeline.iter().any(|e| e.site == Site::Remote));
        for w in report.timeline.windows(2) {
            assert!(w[1].start_secs >= w[0].start_secs);
        }
        let text = report.timeline_text();
        assert!(text.contains("Globus"));
        assert!(text.contains("Slurm"));
    }

    #[test]
    fn volumes_are_plausible() {
        let reg = RegionRegistry::new();
        let report = CombinedWorkflow::default().run(&reg, Scale::default());
        // Summaries come home, raw stays.
        assert!(report.summary_bytes > 0);
        assert!(report.raw_output_bytes > report.summary_bytes);
        assert_eq!(
            report.transfers.bytes_moved(Site::Remote, Site::Home),
            report.summary_bytes
        );
    }
}
