//! The epidemiological workflow layer — the paper's primary
//! contribution (§II, §IV).
//!
//! Three workflows, each a composable pipeline over the substrate
//! crates, plus the combined two-cluster orchestration:
//!
//! * [`calibration`] — Fig. 4: LHS prior design → EpiHiper simulations →
//!   aggregation → GP-emulator Bayesian calibration → posterior
//!   configurations.
//! * [`prediction`] — Fig. 5: posterior configurations → replicated
//!   simulations → ensemble forecast targets with uncertainty bands →
//!   optional what-if scenario expansion.
//! * [`counterfactual`] — Fig. 3: factorial NPI designs → simulations →
//!   medical-cost analytics (the economic workflow of case study 1).
//! * [`combined`] — Figs. 1–2: the nightly cross-cluster orchestration:
//!   configuration generation on the home cluster, Globus transfer,
//!   database startup, FFDT-DC-packed Slurm execution inside the remote
//!   cluster's 10 pm–8 am window, post-simulation aggregation, and the
//!   return transfer — with the full timeline and data-volume ledger.
//!
//! [`design`] defines cells (model configurations) and study designs;
//! [`runner`] executes ⟨cell, region, replicate⟩ grids on rayon — the
//! [`runner::EnsembleRunner`] builds the region's network/partitioning
//! once and shares it (plus pooled per-worker scratch) across the whole
//! grid, and all three simulation workflows expose `run_with` to reuse
//! one context across an entire nightly pipeline.

pub mod calibration;
pub mod combined;
pub mod counterfactual;
pub mod design;
pub mod prediction;
pub mod runner;

pub use calibration::{CalibrationResult, CalibrationWorkflow};
pub use combined::{CombinedReport, CombinedWorkflow, TimelineEvent};
pub use counterfactual::{CounterfactualWorkflow, ScenarioCost};
pub use design::{CellConfig, ExtraIntervention, FactorialDesign, StudyDesign};
pub use prediction::{PredictionResult, PredictionWorkflow};
pub use runner::{run_cell, run_design, CellRunSummary, EnsembleRunner};
