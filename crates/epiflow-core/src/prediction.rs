//! The prediction workflow (Fig. 5).
//!
//! "To make predictions, we run simulations using the model
//! configurations generated from the calibration workflow, and
//! aggregate individual-level output to obtain future counts for
//! various forecasting targets … The ensemble of the model
//! configurations and the simulation output provides uncertainty
//! quantification on the predictions." If the predictions look
//! reasonable, the configurations are expanded "with a few possible
//! future what-if scenarios".

use crate::design::{CellConfig, ExtraIntervention, StudyDesign};
use crate::runner::{CellRunSummary, EnsembleRunner};
use epiflow_analytics::{ensemble_band, EnsembleBand};
use epiflow_synthpop::builder::RegionData;

/// Prediction workflow configuration.
#[derive(Clone, Debug)]
pub struct PredictionWorkflow {
    /// Replicates per posterior configuration (paper: 15).
    pub replicates: u32,
    /// Forecast horizon in days (overrides each config's `days`).
    pub horizon_days: u32,
    pub n_partitions: usize,
    pub seed: u64,
}

impl Default for PredictionWorkflow {
    fn default() -> Self {
        PredictionWorkflow { replicates: 15, horizon_days: 120, n_partitions: 4, seed: 0x9ED1C }
    }
}

/// Prediction output: the ensemble and its uncertainty bands.
pub struct PredictionResult {
    pub runs: Vec<CellRunSummary>,
    /// 95% band over cumulative symptomatic counts (Fig. 17).
    pub cumulative_band: EnsembleBand,
    /// 95% band over daily new cases.
    pub daily_band: EnsembleBand,
}

impl PredictionResult {
    /// Point forecast (ensemble median) of cumulative cases at a
    /// horizon day.
    pub fn median_at(&self, day: usize) -> f64 {
        self.cumulative_band.median[day.min(self.cumulative_band.median.len() - 1)]
    }
}

impl PredictionWorkflow {
    /// Run on posterior configurations from the calibration workflow.
    pub fn run(&self, data: &RegionData, configs: &[CellConfig]) -> PredictionResult {
        self.run_with(&EnsembleRunner::new(data, self.n_partitions), configs)
    }

    /// [`PredictionWorkflow::run`] against a pre-built ensemble context
    /// (typically the one calibration already paid for). The runner's
    /// partitioning takes precedence over `self.n_partitions`.
    pub fn run_with(&self, runner: &EnsembleRunner, configs: &[CellConfig]) -> PredictionResult {
        assert!(!configs.is_empty(), "prediction needs posterior configurations");
        let cells: Vec<CellConfig> = configs
            .iter()
            .enumerate()
            .map(|(i, c)| CellConfig { cell: i as u32, days: self.horizon_days, ..c.clone() })
            .collect();
        let design = StudyDesign { cells, replicates: self.replicates };
        let runs = runner.run_design(&design, self.seed);

        let cumulative: Vec<Vec<f64>> = runs
            .iter()
            .map(|r| r.log_cum_symptomatic.iter().map(|l| l.exp() - 1.0).collect())
            .collect();
        let daily: Vec<Vec<f64>> = runs.iter().map(|r| r.daily_cases.clone()).collect();

        PredictionResult {
            cumulative_band: ensemble_band(&cumulative, 0.025, 0.975),
            daily_band: ensemble_band(&daily, 0.025, 0.975),
            runs,
        }
    }

    /// Expand configurations with what-if scenarios: each base config
    /// is cloned per scenario with the extra interventions appended
    /// ("what if the stay-at-home order is lifted earlier; what if …
    /// testing and contact tracing are improved").
    pub fn expand_what_if(
        configs: &[CellConfig],
        scenarios: &[(&str, Vec<ExtraIntervention>)],
    ) -> Vec<(String, Vec<CellConfig>)> {
        scenarios
            .iter()
            .map(|(name, extras)| {
                let expanded: Vec<CellConfig> = configs
                    .iter()
                    .map(|c| {
                        let mut e = c.clone();
                        e.extras.extend(extras.iter().cloned());
                        e
                    })
                    .collect();
                (name.to_string(), expanded)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epiflow_surveillance::{RegionRegistry, Scale};
    use epiflow_synthpop::{build_region, BuildConfig};

    fn region() -> RegionData {
        let reg = RegionRegistry::new();
        let id = reg.by_abbrev("DE").unwrap().id;
        build_region(
            &reg,
            id,
            &BuildConfig { scale: Scale::one_per(4000.0), seed: 2, ..Default::default() },
        )
    }

    fn posterior_like_configs(n: usize) -> Vec<CellConfig> {
        (0..n)
            .map(|i| CellConfig {
                cell: i as u32,
                transmissibility: 0.25 + 0.01 * i as f64,
                sh_start: 40,
                sc_start: 30,
                initial_infections: 8,
                ..Default::default()
            })
            .collect()
    }

    #[test]
    fn ensemble_band_from_replicated_runs() {
        let data = region();
        let wf = PredictionWorkflow { replicates: 4, horizon_days: 60, n_partitions: 2, seed: 5 };
        let res = wf.run(&data, &posterior_like_configs(3));
        assert_eq!(res.runs.len(), 12);
        assert_eq!(res.cumulative_band.median.len(), 60);
        // Band ordered, cumulative median nondecreasing.
        for t in 0..60 {
            assert!(res.cumulative_band.lo[t] <= res.cumulative_band.hi[t]);
        }
        assert!(res.cumulative_band.median.windows(2).all(|w| w[1] >= w[0] - 1e-9));
        assert!(res.median_at(59) > 0.0, "epidemic expected");
    }

    #[test]
    fn uncertainty_band_nondegenerate() {
        let data = region();
        let wf = PredictionWorkflow { replicates: 5, horizon_days: 50, n_partitions: 2, seed: 6 };
        let res = wf.run(&data, &posterior_like_configs(2));
        let final_width =
            res.cumulative_band.hi.last().unwrap() - res.cumulative_band.lo.last().unwrap();
        assert!(final_width > 0.0, "replicate noise must widen the band");
    }

    #[test]
    fn what_if_expansion() {
        let configs = posterior_like_configs(4);
        let expanded = PredictionWorkflow::expand_what_if(
            &configs,
            &[
                ("early-reopen", vec![ExtraIntervention::Ro { day: 80, level: 0.8 }]),
                (
                    "better-tracing",
                    vec![ExtraIntervention::D1ct { detection: 0.6, compliance: 0.8 }],
                ),
            ],
        );
        assert_eq!(expanded.len(), 2);
        assert_eq!(expanded[0].1.len(), 4);
        assert!(matches!(expanded[0].1[0].extras[0], ExtraIntervention::Ro { .. }));
        assert!(matches!(expanded[1].1[3].extras[0], ExtraIntervention::D1ct { .. }));
        // Originals untouched.
        assert!(configs[0].extras.is_empty());
    }

    #[test]
    #[should_panic(expected = "posterior configurations")]
    fn rejects_empty_configs() {
        let data = region();
        PredictionWorkflow::default().run(&data, &[]);
    }
}
