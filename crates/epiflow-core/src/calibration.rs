//! The calibration workflow (Fig. 4, case study 3).
//!
//! 1. Generate a prior design (LHS over TAU, SYMP, SH, VHI — case
//!    study 3 uses 100 configurations).
//! 2. Simulate every cell with EpiHiper (one replicate per cell, as in
//!    the paper's calibration designs).
//! 3. Aggregate to the calibration observable: logged cumulative
//!    symptomatic counts.
//! 4. Fit the GP emulator (pη = 5 eigenvector basis) and run the GPMSA
//!    Bayesian calibration against the observed ground truth.
//! 5. Draw posterior configurations for the prediction workflow.

use crate::design::{CellConfig, StudyDesign};
use crate::runner::{CellRunSummary, EnsembleRunner};
use epiflow_calibrate::{Emulator, GpmsaCalibration, GpmsaConfig, Posterior};
use epiflow_synthpop::builder::RegionData;

/// Configuration of a calibration run.
#[derive(Clone, Debug)]
pub struct CalibrationWorkflow {
    /// Prior design size (paper: 100 for the VA case study, 300 for the
    /// national calibration workflow).
    pub n_prior_cells: usize,
    /// Eigenbasis size pη (paper: 5).
    pub p_eta: usize,
    /// GPMSA settings.
    pub gpmsa: GpmsaConfig,
    /// Base cell (mitigation timing, horizon) the design varies around.
    pub base: CellConfig,
    /// Posterior configurations to draw (paper: 100).
    pub n_posterior: usize,
    pub n_partitions: usize,
    pub seed: u64,
}

impl Default for CalibrationWorkflow {
    fn default() -> Self {
        CalibrationWorkflow {
            n_prior_cells: 100,
            p_eta: 5,
            gpmsa: GpmsaConfig::default(),
            base: CellConfig::default(),
            n_posterior: 100,
            n_partitions: 4,
            seed: 0xCA11B,
        }
    }
}

/// Everything a calibration run produces.
pub struct CalibrationResult {
    /// The prior design.
    pub prior: StudyDesign,
    /// θ of each prior cell.
    pub prior_thetas: Vec<Vec<f64>>,
    /// Per-cell simulation summaries.
    pub runs: Vec<CellRunSummary>,
    /// The fitted emulator.
    pub emulator: Emulator,
    /// The calibration posterior.
    pub posterior: Posterior,
    /// Posterior configurations, ready for the prediction workflow.
    pub posterior_configs: Vec<CellConfig>,
}

impl CalibrationResult {
    /// Posterior θ draws (TAU, SYMP, SH, VHI).
    pub fn posterior_thetas(&self) -> Vec<Vec<f64>> {
        self.posterior_configs.iter().map(|c| c.theta().to_vec()).collect()
    }
}

impl CalibrationWorkflow {
    /// Run against one region's data and an observed logged cumulative
    /// case series (length = `base.days`).
    pub fn run(&self, data: &RegionData, observed_log_cum: &[f64]) -> CalibrationResult {
        self.run_with(&EnsembleRunner::new(data, self.n_partitions), observed_log_cum)
    }

    /// [`CalibrationWorkflow::run`] against a pre-built ensemble
    /// context, so a combined nightly (calibrate → predict → what-if on
    /// the same region) builds the network exactly once. The runner's
    /// partitioning takes precedence over `self.n_partitions`.
    pub fn run_with(&self, runner: &EnsembleRunner, observed_log_cum: &[f64]) -> CalibrationResult {
        assert_eq!(
            observed_log_cum.len(),
            self.base.days as usize,
            "observed series must cover the simulation horizon"
        );

        // 1. Prior design.
        let prior = StudyDesign::lhs_prior(self.n_prior_cells, &self.base, self.seed);
        let prior_thetas: Vec<Vec<f64>> = prior.cells.iter().map(|c| c.theta().to_vec()).collect();

        // 2. Simulate.
        let runs = runner.run_design(&prior, self.seed);

        // 3. Aggregate observables in cell order.
        let mut outputs: Vec<Vec<f64>> = vec![Vec::new(); prior.cells.len()];
        for r in &runs {
            outputs[r.cell as usize] = r.log_cum_symptomatic.clone();
        }

        // 4. Emulate + calibrate.
        let emulator = Emulator::fit(
            CellConfig::calibration_space(),
            &prior_thetas,
            &outputs,
            self.p_eta,
            self.seed ^ 0xE40,
        );
        let calibration = GpmsaCalibration::new(&emulator, observed_log_cum, self.gpmsa.clone());
        let posterior = calibration.run();

        // 5. Posterior configurations.
        let draws = posterior.theta.resample(self.n_posterior, self.seed ^ 0x9057);
        let posterior_configs: Vec<CellConfig> = draws
            .iter()
            .enumerate()
            .map(|(i, theta)| CellConfig::from_theta(i as u32, theta, &self.base))
            .collect();

        CalibrationResult { prior, prior_thetas, runs, emulator, posterior, posterior_configs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_cell;
    use epiflow_calibrate::MetropolisConfig;
    use epiflow_surveillance::{RegionRegistry, Scale};
    use epiflow_synthpop::{build_region, BuildConfig};

    /// End-to-end: hide a known θ, calibrate, check recovery. This is
    /// the strongest test the real system could never run.
    #[test]
    fn recovers_hidden_parameters_end_to_end() {
        let reg = RegionRegistry::new();
        let id = reg.by_abbrev("DE").unwrap().id;
        let data = build_region(
            &reg,
            id,
            &BuildConfig { scale: Scale::one_per(4000.0), seed: 1, ..Default::default() },
        );
        let base = CellConfig {
            days: 70,
            sh_start: 40,
            sc_start: 30,
            sh_end: 200,
            initial_infections: 8,
            ..Default::default()
        };
        // Hidden truth.
        let truth = [0.30, 0.65, 0.5, 0.5];
        let truth_cell = CellConfig::from_theta(999, &truth, &base);
        let observed = run_cell(&data, &truth_cell, 7, 2, false, 0xBEEF);

        let wf = CalibrationWorkflow {
            n_prior_cells: 36,
            base: base.clone(),
            n_posterior: 40,
            gpmsa: GpmsaConfig {
                mcmc: MetropolisConfig {
                    iterations: 1500,
                    burn_in: 400,
                    seed: 3,
                    ..Default::default()
                },
                gibbs_sweeps: 2,
                ..Default::default()
            },
            ..Default::default()
        };
        let result = wf.run(&data, &observed.log_cum_symptomatic);

        assert_eq!(result.runs.len(), 36);
        assert_eq!(result.posterior_configs.len(), 40);

        // Posterior mean of TAU should be pulled toward the truth
        // relative to the prior midpoint (0.25).
        let mean = result.posterior.theta.mean();
        assert!(
            (mean[0] - truth[0]).abs() < 0.08,
            "posterior TAU {} vs truth {}",
            mean[0],
            truth[0]
        );
        // Posterior sd of TAU tighter than prior sd (0.30-0.10)/sqrt(12)=0.0866.
        let sd = result.posterior.theta.std_dev();
        assert!(sd[0] < 0.07, "TAU posterior sd {}", sd[0]);
        // Posterior configs must lie in the prior box.
        let space = CellConfig::calibration_space();
        for c in &result.posterior_configs {
            assert!(space.contains(&c.theta()));
        }
    }

    #[test]
    #[should_panic(expected = "cover the simulation horizon")]
    fn rejects_short_observation() {
        let reg = RegionRegistry::new();
        let id = reg.by_abbrev("DE").unwrap().id;
        let data = build_region(
            &reg,
            id,
            &BuildConfig { scale: Scale::one_per(20_000.0), seed: 1, ..Default::default() },
        );
        let wf = CalibrationWorkflow::default();
        wf.run(&data, &[1.0; 10]);
    }
}
