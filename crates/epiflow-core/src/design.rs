//! Cells (model configurations) and study designs.
//!
//! "Both calibration and prediction workflows start by generating
//! simulation configurations, also known as cells. … The model
//! configurations specify which populations and contact networks to
//! use, as well as the disease parameters, interventions,
//! initializations, and the number of days to simulate."

use epiflow_calibrate::ParamSpace;
use serde::{Deserialize, Serialize};

/// Interventions beyond the base VHI+SC+SH stack (the Fig.-7-bottom
/// ladder).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum ExtraIntervention {
    /// Partial reopening at `day` releasing `level` of compliant nodes.
    Ro { day: u32, level: f64 },
    /// Test & isolate asymptomatic from `start` with `detection`/day.
    Ta { start: u32, detection: f64 },
    /// Pulsing shutdown from `start`: `on_days` closed, `off_days` open.
    Ps { start: u32, on_days: u32, off_days: u32 },
    /// Distance-1 contact tracing.
    D1ct { detection: f64, compliance: f64 },
    /// Distance-2 contact tracing.
    D2ct { detection: f64, compliance: f64 },
}

/// One model configuration (cell).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CellConfig {
    /// Cell index within its design.
    pub cell: u32,
    /// Disease transmissibility τ (the calibration's TAU).
    pub transmissibility: f64,
    /// Symptomatic fraction (1 − asymptomatic fraction; the SYMP
    /// parameter of Fig. 15).
    pub symptomatic_fraction: f64,
    /// Stay-at-home compliance (Fig. 15's SH).
    pub sh_compliance: f64,
    /// Voluntary-home-isolation compliance (Fig. 15's VHI).
    pub vhi_compliance: f64,
    /// School closure start day (case study 3: March 16 ≈ day 55).
    pub sc_start: u32,
    /// Stay-at-home window (case study 3: March 31 ≈ day 70 through
    /// June 10 ≈ day 141).
    pub sh_start: u32,
    pub sh_end: u32,
    /// Additional interventions.
    pub extras: Vec<ExtraIntervention>,
    /// Days to simulate.
    pub days: u32,
    /// Initial infections to seed.
    pub initial_infections: usize,
}

impl Default for CellConfig {
    fn default() -> Self {
        CellConfig {
            cell: 0,
            transmissibility: 0.18,
            symptomatic_fraction: 0.65,
            sh_compliance: 0.7,
            vhi_compliance: 0.6,
            sc_start: 55,
            sh_start: 70,
            sh_end: 141,
            extras: Vec::new(),
            days: 120,
            initial_infections: 10,
        }
    }
}

impl CellConfig {
    /// The calibration parameter vector `(TAU, SYMP, SH, VHI)` — the
    /// four varied parameters of case study 3 / Fig. 15.
    pub fn theta(&self) -> [f64; 4] {
        [self.transmissibility, self.symptomatic_fraction, self.sh_compliance, self.vhi_compliance]
    }

    /// Build a cell from a θ vector over the case-study parameter
    /// space.
    pub fn from_theta(cell: u32, theta: &[f64], base: &CellConfig) -> CellConfig {
        assert_eq!(theta.len(), 4, "theta is (TAU, SYMP, SH, VHI)");
        CellConfig {
            cell,
            transmissibility: theta[0],
            symptomatic_fraction: theta[1],
            sh_compliance: theta[2],
            vhi_compliance: theta[3],
            ..base.clone()
        }
    }

    /// The case-study-3 calibration parameter space: disease
    /// transmissibility, symptomatic ratio, and the two compliance
    /// rates.
    pub fn calibration_space() -> ParamSpace {
        ParamSpace::new(&[
            ("TAU", 0.10, 0.40),
            ("SYMP", 0.35, 0.85),
            ("SH", 0.2, 0.9),
            ("VHI", 0.2, 0.9),
        ])
    }
}

/// A study design: a list of cells plus a replicate count per cell.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StudyDesign {
    pub cells: Vec<CellConfig>,
    pub replicates: u32,
}

impl StudyDesign {
    /// Total ⟨cell, region, replicate⟩ simulations over `n_regions`.
    pub fn n_simulations(&self, n_regions: usize) -> usize {
        self.cells.len() * n_regions * self.replicates as usize
    }

    /// Calibration-style design: many cells, one replicate, from LHS
    /// over the calibration space.
    pub fn lhs_prior(n_cells: usize, base: &CellConfig, seed: u64) -> StudyDesign {
        let space = CellConfig::calibration_space();
        let cells = space
            .sample_lhs(n_cells, seed)
            .iter()
            .enumerate()
            .map(|(i, theta)| CellConfig::from_theta(i as u32, theta, base))
            .collect();
        StudyDesign { cells, replicates: 1 }
    }

    /// Posterior design: cells from posterior θ draws, replicated.
    pub fn from_posterior(draws: &[Vec<f64>], base: &CellConfig, replicates: u32) -> StudyDesign {
        let cells = draws
            .iter()
            .enumerate()
            .map(|(i, theta)| CellConfig::from_theta(i as u32, theta, base))
            .collect();
        StudyDesign { cells, replicates }
    }
}

/// The economic study's factorial design (Fig. 3): VHI compliances ×
/// lockdown (SH) durations × lockdown compliances.
#[derive(Clone, Debug)]
pub struct FactorialDesign {
    pub vhi_compliances: Vec<f64>,
    pub sh_durations: Vec<u32>,
    pub sh_compliances: Vec<f64>,
}

impl FactorialDesign {
    /// The paper's 2 × 3 × 2 = 12-cell design.
    pub fn paper_economic() -> Self {
        FactorialDesign {
            vhi_compliances: vec![0.5, 0.8],
            sh_durations: vec![30, 60, 90],
            sh_compliances: vec![0.5, 0.8],
        }
    }

    /// Expand to cells over a base configuration.
    pub fn expand(&self, base: &CellConfig) -> Vec<CellConfig> {
        let mut cells = Vec::new();
        let mut id = 0u32;
        for &vhi in &self.vhi_compliances {
            for &dur in &self.sh_durations {
                for &sh in &self.sh_compliances {
                    cells.push(CellConfig {
                        cell: id,
                        vhi_compliance: vhi,
                        sh_compliance: sh,
                        sh_end: base.sh_start + dur,
                        ..base.clone()
                    });
                    id += 1;
                }
            }
        }
        cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_factorial_is_12_cells() {
        let cells = FactorialDesign::paper_economic().expand(&CellConfig::default());
        assert_eq!(cells.len(), 12);
        // All distinct.
        for (i, a) in cells.iter().enumerate() {
            for b in &cells[i + 1..] {
                assert!(
                    a.vhi_compliance != b.vhi_compliance
                        || a.sh_compliance != b.sh_compliance
                        || a.sh_end != b.sh_end
                );
            }
        }
    }

    #[test]
    fn table_i_economic_simulation_count() {
        let design = StudyDesign {
            cells: FactorialDesign::paper_economic().expand(&CellConfig::default()),
            replicates: 15,
        };
        assert_eq!(design.n_simulations(51), 9180);
    }

    #[test]
    fn table_i_calibration_simulation_count() {
        let design = StudyDesign::lhs_prior(300, &CellConfig::default(), 1);
        assert_eq!(design.n_simulations(51), 15_300);
    }

    #[test]
    fn theta_round_trip() {
        let base = CellConfig::default();
        let theta = [0.22, 0.6, 0.5, 0.7];
        let cell = CellConfig::from_theta(3, &theta, &base);
        assert_eq!(cell.theta(), theta);
        assert_eq!(cell.cell, 3);
        assert_eq!(cell.days, base.days);
    }

    #[test]
    fn lhs_prior_spans_space() {
        let d = StudyDesign::lhs_prior(100, &CellConfig::default(), 9);
        assert_eq!(d.cells.len(), 100);
        assert_eq!(d.replicates, 1);
        let taus: Vec<f64> = d.cells.iter().map(|c| c.transmissibility).collect();
        let min = taus.iter().cloned().fold(f64::MAX, f64::min);
        let max = taus.iter().cloned().fold(f64::MIN, f64::max);
        assert!(min < 0.13 && max > 0.37, "LHS must span TAU range: {min}..{max}");
    }

    #[test]
    fn posterior_design_replicates() {
        let draws = vec![vec![0.2, 0.6, 0.5, 0.5]; 8];
        let d = StudyDesign::from_posterior(&draws, &CellConfig::default(), 15);
        assert_eq!(d.cells.len(), 8);
        assert_eq!(d.n_simulations(1), 120);
    }

    #[test]
    fn cell_serializes() {
        let mut c = CellConfig::default();
        c.extras.push(ExtraIntervention::D2ct { detection: 0.5, compliance: 0.8 });
        let json = serde_json::to_string(&c).unwrap();
        let back: CellConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
