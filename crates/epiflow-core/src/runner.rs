//! Executing ⟨cell, region, replicate⟩ grids of EpiHiper simulations.

use crate::design::{CellConfig, ExtraIntervention, StudyDesign};
use epiflow_epihiper::covid::{covid19_model, states};
use epiflow_epihiper::disease::N_AGE_GROUPS;
use epiflow_epihiper::interventions::{
    ContactTracing, PartialReopening, PulsingShutdown, SchoolClosure, StayAtHome, TestAndIsolate,
    VoluntaryHomeIsolation,
};
use epiflow_epihiper::{DiseaseModel, InterventionSet, SimConfig, SimOutput, Simulation};
use epiflow_surveillance::RegionId;
use epiflow_synthpop::builder::RegionData;
use rayon::prelude::*;

/// Summary of one simulation run (the "summary output" shipped back to
/// the home cluster — aggregates, not raw transitions).
#[derive(Clone, Debug)]
pub struct CellRunSummary {
    pub region: RegionId,
    pub cell: u32,
    pub replicate: u32,
    /// log(1 + cumulative symptomatic) per day — the calibration
    /// observable.
    pub log_cum_symptomatic: Vec<f64>,
    /// Daily new symptomatic cases.
    pub daily_cases: Vec<f64>,
    /// The full aggregate output (no transition log unless requested).
    pub output: SimOutput,
    /// Wall-clock runtime of the tick loop.
    pub elapsed_secs: f64,
    /// Peak estimated resident memory in bytes.
    pub peak_memory_bytes: u64,
}

/// Apply a cell's disease-parameter overrides to the COVID-19 model.
pub fn configure_model(cell: &CellConfig) -> DiseaseModel {
    let mut model = covid19_model();
    model.transmissibility = cell.transmissibility;
    // Symptomatic fraction: rebalance the Exposed branch.
    let symp = cell.symptomatic_fraction.clamp(0.0, 1.0);
    for p in &mut model.progressions {
        if p.from == states::EXPOSED {
            let target = if p.to == states::ASYMPTOMATIC { 1.0 - symp } else { symp };
            p.prob = [target; N_AGE_GROUPS];
        }
    }
    debug_assert!(model.validate().is_ok());
    model
}

/// Build the intervention stack for a cell: the base VHI+SC+SH plus any
/// extras.
pub fn configure_interventions(cell: &CellConfig) -> InterventionSet {
    let mut set = InterventionSet::new()
        .with(Box::new(VoluntaryHomeIsolation {
            symptomatic: states::SYMPTOMATIC,
            compliance: cell.vhi_compliance,
            duration: 14,
        }))
        .with(Box::new(SchoolClosure { start: cell.sc_start, end: u32::MAX }))
        .with(Box::new(StayAtHome::new(cell.sh_start, cell.sh_end, cell.sh_compliance)));
    for extra in &cell.extras {
        match *extra {
            ExtraIntervention::Ro { day, level } => {
                set.push(Box::new(PartialReopening { day, level }));
            }
            ExtraIntervention::Ta { start, detection } => {
                set.push(Box::new(TestAndIsolate {
                    asymptomatic: states::ASYMPTOMATIC,
                    detection,
                    duration: 14,
                    start,
                }));
            }
            ExtraIntervention::Ps { start, on_days, off_days } => {
                set.push(Box::new(PulsingShutdown::new(
                    start,
                    on_days,
                    off_days,
                    cell.sh_compliance,
                )));
            }
            ExtraIntervention::D1ct { detection, compliance } => {
                set.push(Box::new(ContactTracing {
                    symptomatic: states::SYMPTOMATIC,
                    detection,
                    compliance,
                    duration: 14,
                    distance: 1,
                }));
            }
            ExtraIntervention::D2ct { detection, compliance } => {
                set.push(Box::new(ContactTracing {
                    symptomatic: states::SYMPTOMATIC,
                    detection,
                    compliance,
                    duration: 14,
                    distance: 2,
                }));
            }
        }
    }
    set
}

/// Run one ⟨cell, region, replicate⟩ simulation.
pub fn run_cell(
    data: &RegionData,
    cell: &CellConfig,
    replicate: u32,
    n_partitions: usize,
    record_transitions: bool,
    base_seed: u64,
) -> CellRunSummary {
    let model = configure_model(cell);
    let interventions = configure_interventions(cell);
    let age_group: Vec<u8> =
        data.population.persons.iter().map(|p| p.age_group().index() as u8).collect();
    let county: Vec<u16> = data.population.persons.iter().map(|p| p.county).collect();

    let seed = base_seed ^ (data.region as u64) << 40 ^ (cell.cell as u64) << 16 ^ replicate as u64;
    let mut sim = Simulation::new(
        &data.network,
        model,
        age_group,
        county,
        interventions,
        SimConfig {
            ticks: cell.days,
            seed,
            n_partitions,
            epsilon: 16,
            initial_infections: cell.initial_infections,
            record_transitions,
            reference_scan: false,
        },
    );
    let result = sim.run();

    let cum = result.output.cumulative(states::SYMPTOMATIC);
    let log_cum: Vec<f64> = cum.iter().map(|&c| (c as f64 + 1.0).ln()).collect();
    let daily: Vec<f64> =
        result.output.daily_new(states::SYMPTOMATIC).iter().map(|&x| x as f64).collect();
    let peak_mem = result.output.memory_bytes.iter().copied().max().unwrap_or(0);

    CellRunSummary {
        region: data.region,
        cell: cell.cell,
        replicate,
        log_cum_symptomatic: log_cum,
        daily_cases: daily,
        output: result.output,
        elapsed_secs: result.elapsed.as_secs_f64(),
        peak_memory_bytes: peak_mem,
    }
}

/// Run a full design on one region, parallel over ⟨cell, replicate⟩.
pub fn run_design(
    data: &RegionData,
    design: &StudyDesign,
    n_partitions: usize,
    base_seed: u64,
) -> Vec<CellRunSummary> {
    let jobs: Vec<(u32, u32)> = design
        .cells
        .iter()
        .flat_map(|c| (0..design.replicates).map(move |r| (c.cell, r)))
        .collect();
    jobs.par_iter()
        .map(|&(cell_id, rep)| {
            let cell =
                design.cells.iter().find(|c| c.cell == cell_id).expect("cell id belongs to design");
            run_cell(data, cell, rep, n_partitions, false, base_seed)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use epiflow_surveillance::{RegionRegistry, Scale};
    use epiflow_synthpop::{build_region, BuildConfig};

    fn small_region() -> RegionData {
        let reg = RegionRegistry::new();
        let id = reg.by_abbrev("DE").unwrap().id;
        build_region(
            &reg,
            id,
            &BuildConfig { scale: Scale::one_per(4000.0), seed: 3, ..Default::default() },
        )
    }

    #[test]
    fn configure_model_rebalances_symptomatic_fraction() {
        let cell = CellConfig { symptomatic_fraction: 0.8, ..Default::default() };
        let m = configure_model(&cell);
        m.validate().unwrap();
        let asym =
            m.progressions_from(states::EXPOSED).find(|p| p.to == states::ASYMPTOMATIC).unwrap();
        assert!((asym.prob[0] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn configure_interventions_base_plus_extras() {
        let mut cell = CellConfig::default();
        cell.extras.push(ExtraIntervention::Ro { day: 100, level: 0.5 });
        cell.extras.push(ExtraIntervention::D2ct { detection: 0.5, compliance: 0.5 });
        let set = configure_interventions(&cell);
        assert_eq!(set.names(), vec!["VHI", "SC", "SH", "RO", "D2CT"]);
    }

    #[test]
    fn run_cell_produces_epidemic_and_observables() {
        let data = small_region();
        let cell = CellConfig {
            days: 80,
            transmissibility: 0.35,
            sh_start: 200, // no SH within horizon
            sc_start: 200,
            initial_infections: 8,
            ..Default::default()
        };
        let s = run_cell(&data, &cell, 0, 2, true, 7);
        assert_eq!(s.log_cum_symptomatic.len(), 80);
        // Monotone log-cumulative.
        assert!(s.log_cum_symptomatic.windows(2).all(|w| w[1] >= w[0]));
        assert!(
            *s.log_cum_symptomatic.last().unwrap() > (5.0f64).ln(),
            "epidemic too small: {:?}",
            s.log_cum_symptomatic.last()
        );
        assert!(s.peak_memory_bytes > 0);
    }

    #[test]
    fn replicates_differ_cells_reproducible() {
        let data = small_region();
        let cell = CellConfig { days: 60, ..Default::default() };
        let a = run_cell(&data, &cell, 0, 2, false, 11);
        let a2 = run_cell(&data, &cell, 0, 2, false, 11);
        let b = run_cell(&data, &cell, 1, 2, false, 11);
        assert_eq!(a.log_cum_symptomatic, a2.log_cum_symptomatic);
        assert_ne!(a.log_cum_symptomatic, b.log_cum_symptomatic);
    }

    #[test]
    fn higher_transmissibility_more_cases() {
        let data = small_region();
        let lo = CellConfig {
            days: 90,
            transmissibility: 0.08,
            sh_start: 300,
            sc_start: 300,
            ..Default::default()
        };
        let hi = CellConfig { transmissibility: 0.4, ..lo.clone() };
        let a = run_cell(&data, &lo, 0, 2, false, 5);
        let b = run_cell(&data, &hi, 0, 2, false, 5);
        assert!(
            b.log_cum_symptomatic.last().unwrap() > a.log_cum_symptomatic.last().unwrap(),
            "hi tau {:?} vs lo tau {:?}",
            b.log_cum_symptomatic.last(),
            a.log_cum_symptomatic.last()
        );
    }

    #[test]
    fn run_design_full_grid() {
        let data = small_region();
        let design = StudyDesign {
            cells: vec![
                CellConfig { cell: 0, days: 40, ..Default::default() },
                CellConfig { cell: 1, days: 40, transmissibility: 0.3, ..Default::default() },
            ],
            replicates: 3,
        };
        let runs = run_design(&data, &design, 2, 1);
        assert_eq!(runs.len(), 6);
        // Every (cell, replicate) pair present.
        for c in 0..2u32 {
            for r in 0..3u32 {
                assert!(runs.iter().any(|s| s.cell == c && s.replicate == r));
            }
        }
    }
}
