//! Executing ⟨cell, region, replicate⟩ grids of EpiHiper simulations.
//!
//! The nightly production shape is *many runs, one model*: thousands of
//! replicates against the same immutable contact network. The
//! [`EnsembleRunner`] exploits that by building one shared
//! [`SimContext`] per ⟨region, partition count⟩ — CSR network,
//! partitioning, per-node attributes — and fanning the cells×replicates
//! grid out over rayon with one pooled [`SimScratch`] per worker, so
//! per-replicate cost is the tick loop and nothing else. The
//! free-standing [`run_cell`] keeps the fresh-build path (one context
//! per call); both paths are byte-identical for the same seeds.

use crate::design::{CellConfig, ExtraIntervention, StudyDesign};
use epiflow_epihiper::covid::{covid19_model, states};
use epiflow_epihiper::disease::N_AGE_GROUPS;
use epiflow_epihiper::interventions::{
    ContactTracing, PartialReopening, PulsingShutdown, SchoolClosure, StayAtHome, TestAndIsolate,
    VoluntaryHomeIsolation,
};
use epiflow_epihiper::{
    DiseaseModel, InterventionSet, SimConfig, SimContext, SimOutput, SimResult, SimScratch,
    Simulation,
};
use epiflow_surveillance::RegionId;
use epiflow_synthpop::builder::RegionData;
use epiflow_synthpop::ContactNetwork;
use rayon::prelude::*;
use std::sync::Arc;

/// Partitioning tolerance ε used by every workflow runner.
const EPSILON: usize = 16;

/// Summary of one simulation run (the "summary output" shipped back to
/// the home cluster — aggregates, not raw transitions).
#[derive(Clone, Debug)]
pub struct CellRunSummary {
    pub region: RegionId,
    pub cell: u32,
    pub replicate: u32,
    /// log(1 + cumulative symptomatic) per day — the calibration
    /// observable.
    pub log_cum_symptomatic: Vec<f64>,
    /// Daily new symptomatic cases.
    pub daily_cases: Vec<f64>,
    /// The full aggregate output (no transition log unless requested).
    pub output: SimOutput,
    /// Wall-clock runtime of the tick loop.
    pub elapsed_secs: f64,
    /// Peak estimated resident memory in bytes.
    pub peak_memory_bytes: u64,
}

/// Apply a cell's disease-parameter overrides to the COVID-19 model.
pub fn configure_model(cell: &CellConfig) -> DiseaseModel {
    let mut model = covid19_model();
    model.transmissibility = cell.transmissibility;
    // Symptomatic fraction: rebalance the Exposed branch.
    let symp = cell.symptomatic_fraction.clamp(0.0, 1.0);
    for p in &mut model.progressions {
        if p.from == states::EXPOSED {
            let target = if p.to == states::ASYMPTOMATIC { 1.0 - symp } else { symp };
            p.prob = [target; N_AGE_GROUPS];
        }
    }
    debug_assert!(model.validate().is_ok());
    model
}

/// Build the intervention stack for a cell: the base VHI+SC+SH plus any
/// extras.
pub fn configure_interventions(cell: &CellConfig) -> InterventionSet {
    let mut set = InterventionSet::new()
        .with(Box::new(VoluntaryHomeIsolation {
            symptomatic: states::SYMPTOMATIC,
            compliance: cell.vhi_compliance,
            duration: 14,
        }))
        .with(Box::new(SchoolClosure { start: cell.sc_start, end: u32::MAX }))
        .with(Box::new(StayAtHome::new(cell.sh_start, cell.sh_end, cell.sh_compliance)));
    for extra in &cell.extras {
        match *extra {
            ExtraIntervention::Ro { day, level } => {
                set.push(Box::new(PartialReopening { day, level }));
            }
            ExtraIntervention::Ta { start, detection } => {
                set.push(Box::new(TestAndIsolate {
                    asymptomatic: states::ASYMPTOMATIC,
                    detection,
                    duration: 14,
                    start,
                }));
            }
            ExtraIntervention::Ps { start, on_days, off_days } => {
                set.push(Box::new(PulsingShutdown::new(
                    start,
                    on_days,
                    off_days,
                    cell.sh_compliance,
                )));
            }
            ExtraIntervention::D1ct { detection, compliance } => {
                set.push(Box::new(ContactTracing {
                    symptomatic: states::SYMPTOMATIC,
                    detection,
                    compliance,
                    duration: 14,
                    distance: 1,
                }));
            }
            ExtraIntervention::D2ct { detection, compliance } => {
                set.push(Box::new(ContactTracing {
                    symptomatic: states::SYMPTOMATIC,
                    detection,
                    compliance,
                    duration: 14,
                    distance: 2,
                }));
            }
        }
    }
    set
}

/// Derive the static per-node attribute vectors from a region's
/// synthetic population — done once per ensemble, not per replicate.
fn derive_attributes(data: &RegionData) -> (Vec<u8>, Vec<u16>) {
    let age_group = data.population.persons.iter().map(|p| p.age_group().index() as u8).collect();
    let county = data.population.persons.iter().map(|p| p.county).collect();
    (age_group, county)
}

/// The per-replicate [`SimConfig`], shared by the fresh-build and
/// shared-context paths so their seeds and knobs can never drift.
fn cell_sim_config(
    cell: &CellConfig,
    seed: u64,
    n_partitions: usize,
    record_transitions: bool,
) -> SimConfig {
    SimConfig {
        ticks: cell.days,
        seed,
        n_partitions,
        epsilon: EPSILON,
        initial_infections: cell.initial_infections,
        record_transitions,
        ..Default::default()
    }
}

/// The replicate seed: region, cell, and replicate occupy disjoint bit
/// ranges so every job in a national nightly design draws an
/// independent counter-RNG stream.
fn replicate_seed(base_seed: u64, region: RegionId, cell: u32, replicate: u32) -> u64 {
    base_seed ^ (region as u64) << 40 ^ (cell as u64) << 16 ^ replicate as u64
}

/// Aggregate one finished run into the summary shipped back to the
/// home cluster.
fn summarize(
    region: RegionId,
    cell: &CellConfig,
    replicate: u32,
    result: SimResult,
) -> CellRunSummary {
    let cum = result.output.cumulative(states::SYMPTOMATIC);
    let log_cum: Vec<f64> = cum.iter().map(|&c| (c as f64 + 1.0).ln()).collect();
    let daily: Vec<f64> =
        result.output.daily_new(states::SYMPTOMATIC).iter().map(|&x| x as f64).collect();
    let peak_mem = result.output.memory_bytes.iter().copied().max().unwrap_or(0);

    CellRunSummary {
        region,
        cell: cell.cell,
        replicate,
        log_cum_symptomatic: log_cum,
        daily_cases: daily,
        output: result.output,
        elapsed_secs: result.elapsed.as_secs_f64(),
        peak_memory_bytes: peak_mem,
    }
}

/// Run one ⟨cell, region, replicate⟩ simulation, building the network
/// from scratch — the reference path. Ensemble traffic should go
/// through [`EnsembleRunner`], which amortizes the network build across
/// replicates and produces byte-identical results.
pub fn run_cell(
    data: &RegionData,
    cell: &CellConfig,
    replicate: u32,
    n_partitions: usize,
    record_transitions: bool,
    base_seed: u64,
) -> CellRunSummary {
    let model = configure_model(cell);
    let interventions = configure_interventions(cell);
    let (age_group, county) = derive_attributes(data);

    let seed = replicate_seed(base_seed, data.region, cell.cell, replicate);
    let mut sim = Simulation::new(
        &data.network,
        model,
        age_group,
        county,
        interventions,
        cell_sim_config(cell, seed, n_partitions, record_transitions),
    );
    let result = sim.run();
    summarize(data.region, cell, replicate, result)
}

/// Executes the simulations of one region's nightly design against a
/// single shared immutable [`SimContext`].
///
/// Construction pays the O(V + E) network build, partitioning, and
/// attribute derivation exactly once; every [`EnsembleRunner::run_cell`]
/// after that only allocates the per-replicate mutable state, and
/// [`EnsembleRunner::run_design`] additionally pools one [`SimScratch`]
/// per rayon worker so steady-state replicates reuse event buffers and
/// output rows across runs. All of it is byte-identical to the
/// fresh-build [`run_cell`] for the same seeds — the context and the
/// scratch carry no state that can influence results.
pub struct EnsembleRunner {
    region: RegionId,
    n_partitions: usize,
    ctx: Arc<SimContext>,
}

impl EnsembleRunner {
    /// Build the shared context for ⟨region, `n_partitions`⟩.
    pub fn new(data: &RegionData, n_partitions: usize) -> Self {
        let (age_group, county) = derive_attributes(data);
        Self::from_parts(data.region, &data.network, age_group, county, n_partitions)
    }

    /// Build from raw parts (synthetic networks, benches, tests).
    /// `age_group` and `county` must have one entry per node.
    pub fn from_parts(
        region: RegionId,
        network: &ContactNetwork,
        age_group: Vec<u8>,
        county: Vec<u16>,
        n_partitions: usize,
    ) -> Self {
        let ctx = Arc::new(SimContext::build(network, age_group, county, n_partitions, EPSILON));
        EnsembleRunner { region, n_partitions, ctx }
    }

    /// The shared context (e.g. for [`Simulation::resume_with_context`]).
    pub fn context(&self) -> &Arc<SimContext> {
        &self.ctx
    }

    /// The partition count the context was built for.
    pub fn n_partitions(&self) -> usize {
        self.n_partitions
    }

    /// Run one ⟨cell, replicate⟩ against the shared context.
    pub fn run_cell(
        &self,
        cell: &CellConfig,
        replicate: u32,
        record_transitions: bool,
        base_seed: u64,
    ) -> CellRunSummary {
        let mut scratch = SimScratch::new();
        self.run_cell_pooled(cell, replicate, record_transitions, base_seed, &mut scratch)
    }

    /// [`EnsembleRunner::run_cell`] with caller-pooled scratch: the
    /// buffers are moved into the simulation for the run and moved back
    /// out afterwards, so a worker looping over replicates reuses its
    /// event vectors and output rows across runs.
    pub fn run_cell_pooled(
        &self,
        cell: &CellConfig,
        replicate: u32,
        record_transitions: bool,
        base_seed: u64,
        scratch: &mut SimScratch,
    ) -> CellRunSummary {
        let model = configure_model(cell);
        let interventions = configure_interventions(cell);
        let seed = replicate_seed(base_seed, self.region, cell.cell, replicate);
        let mut sim = Simulation::new_with_context(
            self.ctx.clone(),
            model,
            interventions,
            cell_sim_config(cell, seed, self.n_partitions, record_transitions),
        );
        sim.install_scratch(std::mem::take(scratch));
        let result = sim.run();
        *scratch = sim.take_scratch();
        summarize(self.region, cell, replicate, result)
    }

    /// Run a full design, parallel over ⟨cell, replicate⟩ with pooled
    /// per-worker scratch. Jobs carry the cell's *index*, so dispatch
    /// is O(1) per job regardless of design size.
    pub fn run_design(&self, design: &StudyDesign, base_seed: u64) -> Vec<CellRunSummary> {
        let jobs: Vec<(usize, u32)> = design
            .cells
            .iter()
            .enumerate()
            .flat_map(|(i, _)| (0..design.replicates).map(move |r| (i, r)))
            .collect();
        jobs.par_iter()
            .map_init(SimScratch::new, |scratch, &(ci, rep)| {
                self.run_cell_pooled(&design.cells[ci], rep, false, base_seed, scratch)
            })
            .collect()
    }
}

/// Run a full design on one region, parallel over ⟨cell, replicate⟩ —
/// one shared context for the whole grid.
pub fn run_design(
    data: &RegionData,
    design: &StudyDesign,
    n_partitions: usize,
    base_seed: u64,
) -> Vec<CellRunSummary> {
    EnsembleRunner::new(data, n_partitions).run_design(design, base_seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epiflow_surveillance::{RegionRegistry, Scale};
    use epiflow_synthpop::{build_region, BuildConfig};

    fn small_region() -> RegionData {
        let reg = RegionRegistry::new();
        let id = reg.by_abbrev("DE").unwrap().id;
        build_region(
            &reg,
            id,
            &BuildConfig { scale: Scale::one_per(4000.0), seed: 3, ..Default::default() },
        )
    }

    #[test]
    fn configure_model_rebalances_symptomatic_fraction() {
        let cell = CellConfig { symptomatic_fraction: 0.8, ..Default::default() };
        let m = configure_model(&cell);
        m.validate().unwrap();
        let asym =
            m.progressions_from(states::EXPOSED).find(|p| p.to == states::ASYMPTOMATIC).unwrap();
        assert!((asym.prob[0] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn configure_interventions_base_plus_extras() {
        let mut cell = CellConfig::default();
        cell.extras.push(ExtraIntervention::Ro { day: 100, level: 0.5 });
        cell.extras.push(ExtraIntervention::D2ct { detection: 0.5, compliance: 0.5 });
        let set = configure_interventions(&cell);
        assert_eq!(set.names(), vec!["VHI", "SC", "SH", "RO", "D2CT"]);
    }

    #[test]
    fn run_cell_produces_epidemic_and_observables() {
        let data = small_region();
        let cell = CellConfig {
            days: 80,
            transmissibility: 0.35,
            sh_start: 200, // no SH within horizon
            sc_start: 200,
            initial_infections: 8,
            ..Default::default()
        };
        let s = run_cell(&data, &cell, 0, 2, true, 7);
        assert_eq!(s.log_cum_symptomatic.len(), 80);
        // Monotone log-cumulative.
        assert!(s.log_cum_symptomatic.windows(2).all(|w| w[1] >= w[0]));
        assert!(
            *s.log_cum_symptomatic.last().unwrap() > (5.0f64).ln(),
            "epidemic too small: {:?}",
            s.log_cum_symptomatic.last()
        );
        assert!(s.peak_memory_bytes > 0);
    }

    #[test]
    fn replicates_differ_cells_reproducible() {
        let data = small_region();
        let cell = CellConfig { days: 60, ..Default::default() };
        let a = run_cell(&data, &cell, 0, 2, false, 11);
        let a2 = run_cell(&data, &cell, 0, 2, false, 11);
        let b = run_cell(&data, &cell, 1, 2, false, 11);
        assert_eq!(a.log_cum_symptomatic, a2.log_cum_symptomatic);
        assert_ne!(a.log_cum_symptomatic, b.log_cum_symptomatic);
    }

    #[test]
    fn higher_transmissibility_more_cases() {
        let data = small_region();
        let lo = CellConfig {
            days: 90,
            transmissibility: 0.08,
            sh_start: 300,
            sc_start: 300,
            ..Default::default()
        };
        let hi = CellConfig { transmissibility: 0.4, ..lo.clone() };
        let a = run_cell(&data, &lo, 0, 2, false, 5);
        let b = run_cell(&data, &hi, 0, 2, false, 5);
        assert!(
            b.log_cum_symptomatic.last().unwrap() > a.log_cum_symptomatic.last().unwrap(),
            "hi tau {:?} vs lo tau {:?}",
            b.log_cum_symptomatic.last(),
            a.log_cum_symptomatic.last()
        );
    }

    #[test]
    fn run_design_full_grid() {
        let data = small_region();
        let design = StudyDesign {
            cells: vec![
                CellConfig { cell: 0, days: 40, ..Default::default() },
                CellConfig { cell: 1, days: 40, transmissibility: 0.3, ..Default::default() },
            ],
            replicates: 3,
        };
        let runs = run_design(&data, &design, 2, 1);
        assert_eq!(runs.len(), 6);
        // Every (cell, replicate) pair present.
        for c in 0..2u32 {
            for r in 0..3u32 {
                assert!(runs.iter().any(|s| s.cell == c && s.replicate == r));
            }
        }
    }

    /// The headline ensemble invariant at the workflow layer: a shared
    /// context (with pooled scratch carried across replicates) produces
    /// byte-identical output to the fresh-build path on every
    /// ⟨cell, replicate⟩ — aggregates *and* transition logs.
    #[test]
    fn ensemble_runner_byte_identical_to_fresh_build() {
        let data = small_region();
        let cells = [
            CellConfig { cell: 0, days: 50, sh_start: 30, ..Default::default() },
            CellConfig { cell: 1, days: 50, transmissibility: 0.3, ..Default::default() },
        ];
        for parts in [1usize, 4] {
            let runner = EnsembleRunner::new(&data, parts);
            let mut scratch = epiflow_epihiper::SimScratch::new();
            for cell in &cells {
                for rep in 0..2u32 {
                    let fresh = run_cell(&data, cell, rep, parts, true, 11);
                    let shared = runner.run_cell_pooled(cell, rep, true, 11, &mut scratch);
                    assert_eq!(
                        shared.output, fresh.output,
                        "cell {} rep {rep} parts {parts} diverged",
                        cell.cell
                    );
                    assert_eq!(shared.log_cum_symptomatic, fresh.log_cum_symptomatic);
                    assert_eq!(shared.peak_memory_bytes, fresh.peak_memory_bytes);
                }
            }
        }
    }

    /// run_design (now a thin wrapper over the ensemble runner) keeps
    /// the exact pre-refactor per-job outputs.
    #[test]
    fn run_design_matches_per_job_fresh_builds() {
        let data = small_region();
        let design = StudyDesign {
            cells: vec![
                CellConfig { cell: 0, days: 40, ..Default::default() },
                CellConfig { cell: 1, days: 40, transmissibility: 0.3, ..Default::default() },
            ],
            replicates: 2,
        };
        let runs = run_design(&data, &design, 2, 7);
        assert_eq!(runs.len(), 4);
        for s in &runs {
            let cell = &design.cells[s.cell as usize];
            let fresh = run_cell(&data, cell, s.replicate, 2, false, 7);
            assert_eq!(s.output, fresh.output, "cell {} rep {}", s.cell, s.replicate);
        }
    }

    /// A snapshot taken mid-run on a context-backed simulation resumes
    /// through the same shared context to a byte-identical finish.
    #[test]
    fn context_backed_snapshot_resumes_through_shared_context() {
        use epiflow_epihiper::{SimConfig, Simulation};
        let data = small_region();
        let cell = CellConfig { cell: 3, days: 40, ..Default::default() };
        let runner = EnsembleRunner::new(&data, 2);
        let baseline = runner.run_cell(&cell, 0, true, 5);

        let seed = replicate_seed(5, data.region, cell.cell, 0);
        let interrupted_cfg = SimConfig { ticks: 17, ..cell_sim_config(&cell, seed, 2, true) };
        let mut interrupted = Simulation::new_with_context(
            runner.context().clone(),
            configure_model(&cell),
            configure_interventions(&cell),
            interrupted_cfg,
        );
        interrupted.run();
        let snap = interrupted.snapshot();
        let mut resumed = Simulation::resume_with_context(
            runner.context().clone(),
            configure_model(&cell),
            configure_interventions(&cell),
            cell_sim_config(&cell, seed, 2, true),
            &snap,
        )
        .expect("context-backed snapshot resumes");
        assert_eq!(resumed.run().output, baseline.output);
    }
}
