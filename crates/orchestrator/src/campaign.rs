//! Chaos-campaign harness: many seeded nightly cycles in parallel
//! under sampled fault plans.
//!
//! A campaign sweeps a grid of *fault intensities* (0 = quiet night,
//! 1 = everything that can break, breaks). For each intensity it runs
//! `nights_per_intensity` independent nights, each under a
//! [`FaultPlan`] sampled as a pure function of `(base_seed, night,
//! intensity)` — so a campaign is deterministic for a fixed seed
//! regardless of how many rayon workers execute it — and aggregates the
//! within-window success rate, failover / hedge / re-route / retry
//! counts, and the shed-cell distribution per intensity. This is the
//! simulated analogue of the fault-injection campaigns used to qualify
//! production workflow stacks before the nightly cadence goes live.

use crate::engine::{DeadlinePolicy, EventCounters};
use crate::faults::{fault_unit, FaultPlan};
use crate::nightly::{nightly_engine, NightlySpec};
use epiflow_hpcsim::cluster::ClusterSpec;
use epiflow_hpcsim::globus::LinkFaults;
use epiflow_hpcsim::slurm::NodeFailure;
use epiflow_hpcsim::task::Task;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Sample the fault plan for one campaign night. Pure in
/// `(base_seed, night, intensity)`: every probability and magnitude is
/// a `fault_unit` draw scaled by the intensity, so two campaigns with
/// the same seed sample identical plans in any execution order.
///
/// At high intensity (≥ 0.75) there is a growing chance of a *total
/// remote-cluster loss* mid-window — the scenario cross-cluster
/// failover exists for.
pub fn sample_fault_plan(
    base_seed: u64,
    night: u64,
    intensity: f64,
    remote: &ClusterSpec,
) -> FaultPlan {
    let intensity = intensity.clamp(0.0, 1.0);
    let seed = base_seed ^ night.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    if intensity <= 0.0 {
        return FaultPlan { seed, ..FaultPlan::default() };
    }
    let draw = |label: &str| fault_unit(base_seed, label, night);

    let mut node_failures = Vec::new();
    if intensity >= 0.75 && draw("c-total-kill") < 0.4 * intensity {
        // Total loss: every remote node, within the first hour of the
        // execute step — cluster-wide losses cluster at window open
        // (maintenance overruns, partition at the batch handoff), and
        // a later kill would land after short nights already finished.
        node_failures
            .push(NodeFailure { at_secs: draw("c-kill-at") * 3600.0, nodes: remote.nodes });
    } else {
        // Partial losses get the same first-hour timing as total ones:
        // a kill only bites while the job array is running, and the
        // execute step is a small fraction of the ten-hour window.
        let n = (3.0 * intensity * draw("c-node-count")) as usize;
        for k in 0..n {
            node_failures.push(NodeFailure {
                at_secs: draw(&format!("c-node-at-{k}")) * 3600.0,
                nodes: 1
                    + (0.2 * remote.nodes as f64 * intensity * draw(&format!("c-node-n-{k}")))
                        as usize,
            });
        }
    }

    FaultPlan {
        seed,
        link: LinkFaults::new(0.6 * intensity * draw("c-link-fail"), seed)
            .with_slowdown(0.5 * intensity * draw("c-link-slow"), 2.0 + 6.0 * intensity),
        node_failures,
        db_exhaust_prob: 0.6 * intensity * draw("c-db-exhaust"),
        db_keep_fraction: 1.0 - 0.75 * intensity * draw("c-db-keep"),
        straggler_prob: 0.3 * intensity * draw("c-straggler"),
        straggler_factor: 2.0 + 4.0 * intensity,
        db_slow_prob: 0.5 * intensity * draw("c-db-slow"),
        db_slow_factor: 2.0 + 8.0 * intensity,
    }
}

/// Sample a *preemption-heavy* fault plan: links, databases, and task
/// runtimes stay quiet, and all the injected chaos is partial node
/// losses — several per night at full intensity, each killing 5–25 % of
/// the machine. Kills land within the first hour of the execute step,
/// for the same reason `sample_fault_plan` times total losses there: a
/// preemption only matters while the job array is actually running,
/// and a draw spread over the whole ten-hour window would mostly fire
/// after short nights already finished. This is the profile that
/// isolates what tick-level checkpointing buys: every node-second a
/// night loses here is recomputed simulation work (or checkpoint-write
/// overhead), not transfer retries or database stalls.
///
/// Pure in `(base_seed, night, intensity)`, like [`sample_fault_plan`].
pub fn sample_fault_plan_preempt_heavy(
    base_seed: u64,
    night: u64,
    intensity: f64,
    remote: &ClusterSpec,
) -> FaultPlan {
    let intensity = intensity.clamp(0.0, 1.0);
    let seed = base_seed ^ night.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    if intensity <= 0.0 {
        return FaultPlan { seed, ..FaultPlan::default() };
    }
    let draw = |label: &str| fault_unit(base_seed, label, night);
    let mut node_failures = Vec::new();
    let n = 1 + (5.0 * intensity * draw("p-count")) as usize;
    for k in 0..n {
        let frac = 0.05 + 0.20 * intensity * draw(&format!("p-frac-{k}"));
        node_failures.push(NodeFailure {
            at_secs: draw(&format!("p-at-{k}")) * 3600.0,
            nodes: (1 + (frac * remote.nodes as f64) as usize).min(remote.nodes),
        });
    }
    FaultPlan { seed, node_failures, ..FaultPlan::default() }
}

/// Which fault mix a campaign samples each night from.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultProfile {
    /// The full chaos mix of [`sample_fault_plan`]: link faults, DB
    /// exhaustion and slowdowns, stragglers, node losses, and (at high
    /// intensity) total cluster kills.
    #[default]
    Mixed,
    /// Node preemptions only ([`sample_fault_plan_preempt_heavy`]) —
    /// the checkpoint/restart qualification profile.
    PreemptHeavy,
}

/// Configuration of a chaos campaign over the nightly workflow.
#[derive(Clone, Debug)]
pub struct CampaignSpec {
    /// Nightly-cycle configuration, including the failover policy and
    /// breaker tuning under test.
    pub nightly: NightlySpec,
    /// The night's task list (same workload every night; only the
    /// faults vary).
    pub tasks: Vec<Task>,
    pub region_rows: Vec<(usize, u64)>,
    pub deadline: DeadlinePolicy,
    /// Fault intensities to sweep, each in `[0, 1]`.
    pub intensities: Vec<f64>,
    pub nights_per_intensity: usize,
    pub base_seed: u64,
    /// Fault mix sampled each night ([`FaultProfile::Mixed`] unless
    /// the campaign targets a specific failure domain).
    pub profile: FaultProfile,
}

/// One night's result.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NightOutcome {
    pub intensity: f64,
    pub night: u64,
    pub within_window: bool,
    pub counters: EventCounters,
    pub cycle_secs: f64,
}

/// Aggregates for one fault intensity.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IntensityStats {
    pub intensity: f64,
    pub nights: usize,
    pub successes: usize,
    pub success_rate: f64,
    pub failovers: u32,
    pub hedges: u32,
    pub reroutes: u32,
    pub retries: u32,
    pub shed_cells_total: u32,
    /// `(cells shed in a night, number of such nights)`, ascending.
    pub shed_distribution: Vec<(u32, usize)>,
    pub mean_cycle_hours: f64,
    /// Executions killed by node failures across the intensity's nights.
    #[serde(default)]
    pub preemptions: usize,
    /// Node-seconds of recomputed work (and checkpoint-write overhead)
    /// across the intensity's nights.
    #[serde(default)]
    pub node_seconds_lost: f64,
    /// Node-seconds preserved across preemptions by checkpoints.
    #[serde(default)]
    pub node_seconds_recovered: f64,
}

/// Full campaign result: per-night outcomes (in deterministic
/// `(intensity, night)` order) and per-intensity aggregates.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    pub outcomes: Vec<NightOutcome>,
    pub per_intensity: Vec<IntensityStats>,
}

impl CampaignReport {
    /// Render the per-intensity aggregates as a fixed-width table.
    pub fn table_text(&self) -> String {
        let mut s = String::new();
        s.push_str(
            "intensity  nights  success  failovers  hedges  reroutes  retries  shed  \
             mean-hours  preempt  lost-nh  saved-nh\n",
        );
        for i in &self.per_intensity {
            s.push_str(&format!(
                "{:>9.2}  {:>6}  {:>6.0}%  {:>9}  {:>6}  {:>8}  {:>7}  {:>4}  {:>10.2}  \
                 {:>7}  {:>7.1}  {:>8.1}\n",
                i.intensity,
                i.nights,
                100.0 * i.success_rate,
                i.failovers,
                i.hedges,
                i.reroutes,
                i.retries,
                i.shed_cells_total,
                i.mean_cycle_hours,
                i.preemptions,
                i.node_seconds_lost / 3600.0,
                i.node_seconds_recovered / 3600.0,
            ));
        }
        s
    }
}

impl CampaignSpec {
    /// Run one night of the campaign. Pure in `(self, intensity_idx,
    /// night)` — this is what [`CampaignSpec::run`] fans out over
    /// rayon, and what determinism tests call sequentially to check the
    /// parallel fan-out against.
    pub fn run_night(&self, intensity_idx: usize, night: u64) -> NightOutcome {
        let intensity = self.intensities[intensity_idx];
        let faults = match self.profile {
            FaultProfile::Mixed => {
                sample_fault_plan(self.base_seed, night, intensity, &self.nightly.remote)
            }
            FaultProfile::PreemptHeavy => sample_fault_plan_preempt_heavy(
                self.base_seed,
                night,
                intensity,
                &self.nightly.remote,
            ),
        };
        let engine = nightly_engine(
            &self.nightly,
            self.tasks.clone(),
            self.region_rows.clone(),
            faults,
            self.deadline,
        );
        let result = engine.run();
        NightOutcome {
            intensity,
            night,
            within_window: result.report.within_window,
            counters: result.report.counters(),
            cycle_secs: result.report.cycle_secs,
        }
    }

    /// Run the full campaign, nights fanned out across rayon workers.
    /// Output order (and content) is independent of worker count.
    pub fn run(&self) -> CampaignReport {
        let jobs: Vec<(usize, u64)> = self
            .intensities
            .iter()
            .enumerate()
            .flat_map(|(ii, _)| (0..self.nights_per_intensity as u64).map(move |n| (ii, n)))
            .collect();
        let outcomes: Vec<NightOutcome> =
            jobs.par_iter().map(|&(ii, night)| self.run_night(ii, night)).collect();

        let per_intensity = self
            .intensities
            .iter()
            .enumerate()
            .map(|(ii, &intensity)| {
                let nights: Vec<&NightOutcome> = outcomes
                    [ii * self.nights_per_intensity..(ii + 1) * self.nights_per_intensity]
                    .iter()
                    .collect();
                let successes = nights.iter().filter(|o| o.within_window).count();
                let mut shed: Vec<u32> = nights.iter().map(|o| o.counters.shed_cells).collect();
                shed.sort_unstable();
                let mut shed_distribution: Vec<(u32, usize)> = Vec::new();
                for &c in &shed {
                    match shed_distribution.last_mut() {
                        Some((v, n)) if *v == c => *n += 1,
                        _ => shed_distribution.push((c, 1)),
                    }
                }
                let n = nights.len().max(1);
                IntensityStats {
                    intensity,
                    nights: nights.len(),
                    successes,
                    success_rate: successes as f64 / n as f64,
                    failovers: nights.iter().map(|o| o.counters.failovers).sum(),
                    hedges: nights.iter().map(|o| o.counters.hedges).sum(),
                    reroutes: nights.iter().map(|o| o.counters.reroutes).sum(),
                    retries: nights.iter().map(|o| o.counters.retries).sum(),
                    shed_cells_total: nights.iter().map(|o| o.counters.shed_cells).sum(),
                    shed_distribution,
                    mean_cycle_hours: nights.iter().map(|o| o.cycle_secs).sum::<f64>()
                        / 3600.0
                        / n as f64,
                    preemptions: nights.iter().map(|o| o.counters.preemptions).sum(),
                    node_seconds_lost: nights.iter().map(|o| o.counters.node_seconds_lost).sum(),
                    node_seconds_recovered: nights
                        .iter()
                        .map(|o| o.counters.node_seconds_recovered)
                        .sum(),
                }
            })
            .collect();
        CampaignReport { outcomes, per_intensity }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_plans_are_deterministic_and_scale_with_intensity() {
        let remote = ClusterSpec::bridges();
        let a = sample_fault_plan(11, 3, 0.8, &remote);
        let b = sample_fault_plan(11, 3, 0.8, &remote);
        assert_eq!(a, b);
        assert_ne!(a, sample_fault_plan(11, 4, 0.8, &remote), "nights decorrelate");
        assert_ne!(a, sample_fault_plan(12, 3, 0.8, &remote), "seeds decorrelate");
        assert!(sample_fault_plan(11, 3, 0.0, &remote).is_quiet());
        // Intensity bounds every probability.
        for night in 0..32 {
            let p = sample_fault_plan(7, night, 1.0, &remote);
            assert!((0.0..=0.6).contains(&p.link.fail_prob));
            assert!((0.0..=0.6).contains(&p.db_exhaust_prob));
            assert!((0.25..=1.0).contains(&p.db_keep_fraction));
            assert!((0.0..=0.3).contains(&p.straggler_prob));
            for f in &p.node_failures {
                assert!(f.nodes <= remote.nodes);
                assert!(f.at_secs <= remote.window_secs() as f64);
            }
        }
    }

    #[test]
    fn ckpt_preempt_heavy_profile_is_preemptions_only() {
        let remote = ClusterSpec::bridges();
        let a = sample_fault_plan_preempt_heavy(11, 3, 0.8, &remote);
        assert_eq!(a, sample_fault_plan_preempt_heavy(11, 3, 0.8, &remote), "deterministic");
        assert!(sample_fault_plan_preempt_heavy(11, 3, 0.0, &remote).is_quiet());
        for night in 0..32 {
            let p = sample_fault_plan_preempt_heavy(7, night, 1.0, &remote);
            // Everything but node failures stays quiet.
            assert_eq!(p.link.fail_prob, 0.0);
            assert_eq!(p.db_exhaust_prob, 0.0);
            assert_eq!(p.straggler_prob, 0.0);
            assert_eq!(p.db_slow_prob, 0.0);
            assert!(!p.node_failures.is_empty(), "night {night} injected no preemptions");
            for f in &p.node_failures {
                assert!(f.nodes >= 1 && f.nodes < remote.nodes, "partial losses only");
                assert!((0.0..=3600.0).contains(&f.at_secs), "kills land in the first hour");
            }
        }
    }

    #[test]
    fn total_kill_appears_at_high_intensity() {
        let remote = ClusterSpec::bridges();
        let kills = (0..64)
            .filter(|&n| {
                sample_fault_plan(5, n, 1.0, &remote)
                    .node_failures
                    .iter()
                    .any(|f| f.nodes == remote.nodes)
            })
            .count();
        assert!(kills > 5, "p=0.4 over 64 nights: got {kills} total kills");
        let low_kills = (0..64)
            .filter(|&n| {
                sample_fault_plan(5, n, 0.5, &remote)
                    .node_failures
                    .iter()
                    .any(|f| f.nodes == remote.nodes)
            })
            .count();
        assert_eq!(low_kills, 0, "no total kills below intensity 0.75");
    }
}
