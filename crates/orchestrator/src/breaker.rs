//! Per-resource circuit breakers with health tracking.
//!
//! Each breaker-guarded resource (the inter-site Globus link, the
//! remote cluster, the population-database fleet) carries a three-state
//! breaker: **closed** (calls flow, outcomes tracked in a sliding
//! window), **open** (calls are refused until a cool-down elapses —
//! the engine re-routes them to the alternate resource instead), and
//! **half-open** (after the cool-down, probe calls are admitted; enough
//! successes close the breaker, one failure re-opens it).
//!
//! Determinism contract: [`CircuitBreaker::admits`] is a *pure* check —
//! it never mutates state — and every state transition happens inside
//! [`CircuitBreaker::record`] as a function of the recorded call stream
//! `(at_secs, success)…`. The engine journals each step's
//! [`ResourceCall`]s, so replaying a journal prefix feeds the breakers
//! the exact call stream the interrupted run saw and reconstructs
//! breaker state bit-for-bit; this is what keeps checkpoint-resume
//! byte-identical with the resilience layer on.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A breaker-guarded resource of the nightly cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Resource {
    /// The inter-site Globus link (alternate: the slow fallback path).
    GlobusLink,
    /// The remote cluster's nightly window (alternate: the home cluster).
    RemoteCluster,
    /// The per-region population databases (alternate: cold standbys).
    PopulationDb,
}

impl Resource {
    pub const ALL: [Resource; 3] =
        [Resource::GlobusLink, Resource::RemoteCluster, Resource::PopulationDb];

    pub fn name(self) -> &'static str {
        match self {
            Resource::GlobusLink => "globus-link",
            Resource::RemoteCluster => "remote-cluster",
            Resource::PopulationDb => "population-db",
        }
    }
}

/// Breaker state machine states.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

/// Breaker tuning knobs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Sliding window of most recent call outcomes evaluated.
    pub window: usize,
    /// Minimum outcomes in the window before the failure rate is acted
    /// on (a single early failure must not trip the breaker).
    pub min_calls: usize,
    /// Failure rate (failures / window outcomes) at or above which a
    /// closed breaker opens.
    pub failure_threshold: f64,
    /// Seconds an open breaker refuses calls before admitting a
    /// half-open probe.
    pub cooldown_secs: f64,
    /// Consecutive half-open probe successes required to close.
    pub probe_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 8,
            min_calls: 3,
            failure_threshold: 0.5,
            cooldown_secs: 300.0,
            probe_successes: 1,
        }
    }
}

/// One call to a breaker-guarded resource during a step's execution.
/// The engine journals these per step; resume replays them into the
/// breakers instead of re-executing the step.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResourceCall {
    pub resource: Resource,
    /// Workflow-clock time of the call.
    pub at_secs: f64,
    pub success: bool,
}

/// The circuit breaker for one resource.
#[derive(Clone, Debug)]
pub struct CircuitBreaker {
    pub config: BreakerConfig,
    state: BreakerState,
    /// Sliding window of outcomes (true = success).
    outcomes: VecDeque<bool>,
    /// Time the breaker last entered `Open`.
    opened_at: f64,
    /// Consecutive probe successes while half-open.
    probe_ok: u32,
    /// Times the breaker transitioned into `Open`.
    pub times_opened: u32,
}

impl CircuitBreaker {
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            outcomes: VecDeque::new(),
            opened_at: 0.0,
            probe_ok: 0,
            times_opened: 0,
        }
    }

    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Would a call at `now_secs` be admitted? Pure — consulting the
    /// breaker never changes it, so live execution and journal replay
    /// cannot drift.
    pub fn admits(&self, now_secs: f64) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => now_secs - self.opened_at >= self.config.cooldown_secs,
        }
    }

    /// Record a call outcome and run the state machine. Returns the
    /// transition `(from, to)` if the state changed. An admitted call
    /// against an open-but-cooled-down breaker is the half-open probe;
    /// the transition to half-open happens here, not in [`Self::admits`],
    /// so replayed call streams drive identical transitions.
    pub fn record(&mut self, now_secs: f64, success: bool) -> Option<(BreakerState, BreakerState)> {
        let from = self.state;
        if self.state == BreakerState::Open
            && now_secs - self.opened_at >= self.config.cooldown_secs
        {
            self.state = BreakerState::HalfOpen;
            self.probe_ok = 0;
        }
        self.outcomes.push_back(success);
        while self.outcomes.len() > self.config.window.max(1) {
            self.outcomes.pop_front();
        }
        match self.state {
            BreakerState::Closed => {
                if self.outcomes.len() >= self.config.min_calls.max(1) {
                    let failures = self.outcomes.iter().filter(|&&ok| !ok).count();
                    let rate = failures as f64 / self.outcomes.len() as f64;
                    if rate >= self.config.failure_threshold {
                        self.trip(now_secs);
                    }
                }
            }
            BreakerState::HalfOpen => {
                if success {
                    self.probe_ok += 1;
                    if self.probe_ok >= self.config.probe_successes.max(1) {
                        self.state = BreakerState::Closed;
                        self.outcomes.clear();
                    }
                } else {
                    self.trip(now_secs);
                }
            }
            // Unreachable for admitted calls: the cool-down check above
            // moved the breaker to half-open. A caller recording an
            // un-admitted call is a bug; stay open.
            BreakerState::Open => {}
        }
        (from != self.state).then_some((from, self.state))
    }

    fn trip(&mut self, now_secs: f64) {
        self.state = BreakerState::Open;
        self.opened_at = now_secs;
        self.times_opened += 1;
        self.probe_ok = 0;
        self.outcomes.clear();
    }
}

/// The engine's breaker per guarded resource.
#[derive(Clone, Debug)]
pub struct BreakerSet {
    link: CircuitBreaker,
    remote: CircuitBreaker,
    db: CircuitBreaker,
}

impl BreakerSet {
    pub fn new(config: BreakerConfig) -> Self {
        BreakerSet {
            link: CircuitBreaker::new(config),
            remote: CircuitBreaker::new(config),
            db: CircuitBreaker::new(config),
        }
    }

    pub fn get(&self, resource: Resource) -> &CircuitBreaker {
        match resource {
            Resource::GlobusLink => &self.link,
            Resource::RemoteCluster => &self.remote,
            Resource::PopulationDb => &self.db,
        }
    }

    pub fn get_mut(&mut self, resource: Resource) -> &mut CircuitBreaker {
        match resource {
            Resource::GlobusLink => &mut self.link,
            Resource::RemoteCluster => &mut self.remote,
            Resource::PopulationDb => &mut self.db,
        }
    }

    /// Replay a journaled call stream into the breakers (transitions
    /// discarded — replay emits no events).
    pub fn replay(&mut self, calls: &[ResourceCall]) {
        for c in calls {
            self.get_mut(c.resource).record(c.at_secs, c.success);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            window: 4,
            min_calls: 3,
            failure_threshold: 0.5,
            cooldown_secs: 100.0,
            probe_successes: 2,
        }
    }

    #[test]
    fn stays_closed_below_min_calls() {
        let mut b = CircuitBreaker::new(cfg());
        assert!(b.record(0.0, false).is_none());
        assert!(b.record(1.0, false).is_none(), "2 < min_calls: no trip yet");
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admits(1.0));
    }

    #[test]
    fn opens_at_failure_threshold_and_refuses_until_cooldown() {
        let mut b = CircuitBreaker::new(cfg());
        b.record(0.0, true);
        b.record(1.0, false);
        let t = b.record(2.0, false);
        assert_eq!(t, Some((BreakerState::Closed, BreakerState::Open)), "2/3 ≥ 0.5 trips");
        assert_eq!(b.times_opened, 1);
        assert!(!b.admits(2.0));
        assert!(!b.admits(101.9), "still inside the cool-down");
        assert!(b.admits(102.0), "cool-down elapsed: probe admitted");
        assert_eq!(b.state(), BreakerState::Open, "admits() is pure — no transition");
    }

    #[test]
    fn half_open_probe_closes_after_enough_successes() {
        let mut b = CircuitBreaker::new(cfg());
        for i in 0..3 {
            b.record(i as f64, false);
        }
        assert_eq!(b.state(), BreakerState::Open);
        let t = b.record(200.0, true);
        assert_eq!(t, Some((BreakerState::Open, BreakerState::HalfOpen)));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        let t = b.record(201.0, true);
        assert_eq!(t, Some((BreakerState::HalfOpen, BreakerState::Closed)), "2 probes close");
    }

    #[test]
    fn half_open_failure_reopens_and_restarts_cooldown() {
        let mut b = CircuitBreaker::new(cfg());
        for i in 0..3 {
            b.record(i as f64, false);
        }
        b.record(150.0, true); // probe 1 of 2
        let t = b.record(151.0, false);
        assert_eq!(t, Some((BreakerState::HalfOpen, BreakerState::Open)));
        assert_eq!(b.times_opened, 2);
        assert!(!b.admits(200.0), "cool-down restarts from the re-open time");
        assert!(b.admits(251.0));
    }

    #[test]
    fn closing_clears_history() {
        let mut b = CircuitBreaker::new(cfg());
        for i in 0..3 {
            b.record(i as f64, false);
        }
        b.record(200.0, true);
        b.record(201.0, true); // closed again
        assert_eq!(b.state(), BreakerState::Closed);
        // One fresh failure must not trip on stale window contents.
        b.record(202.0, false);
        b.record(203.0, true);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn replayed_call_stream_reconstructs_state() {
        let calls = vec![
            ResourceCall { resource: Resource::GlobusLink, at_secs: 0.0, success: false },
            ResourceCall { resource: Resource::GlobusLink, at_secs: 5.0, success: false },
            ResourceCall { resource: Resource::GlobusLink, at_secs: 9.0, success: false },
            ResourceCall { resource: Resource::PopulationDb, at_secs: 9.5, success: true },
            ResourceCall { resource: Resource::GlobusLink, at_secs: 120.0, success: true },
        ];
        let mut live = BreakerSet::new(cfg());
        for c in &calls {
            live.get_mut(c.resource).record(c.at_secs, c.success);
        }
        let mut replayed = BreakerSet::new(cfg());
        replayed.replay(&calls);
        for r in Resource::ALL {
            assert_eq!(replayed.get(r).state(), live.get(r).state(), "{}", r.name());
            assert_eq!(replayed.get(r).times_opened, live.get(r).times_opened);
            assert_eq!(replayed.get(r).admits(121.0), live.get(r).admits(121.0));
        }
        assert_eq!(live.get(Resource::GlobusLink).state(), BreakerState::HalfOpen);
    }
}
