//! Step taxonomy and the workflow DAG.
//!
//! The nightly cycle (Fig. 2) is generalized into *typed* steps with
//! explicit dependency edges. A step's type tells the engine how to
//! execute one attempt of it against the cycle environment; the edges
//! tell it when the step may start. Steps must be added after every
//! step they depend on, so the graph is acyclic by construction.

use epiflow_hpcsim::cluster::Site;
use serde::{Deserialize, Serialize};

/// Index of a step within its [`Dag`].
pub type StepId = usize;

/// Per-step retry policy: exponential backoff between attempts plus an
/// optional per-attempt timeout.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Retries allowed after the first attempt (total attempts =
    /// `max_retries + 1`).
    pub max_retries: u32,
    /// Wait before the first retry.
    pub base_backoff_secs: f64,
    /// Multiplier applied to the wait for each subsequent retry.
    pub backoff_factor: f64,
    /// Per-attempt wall-clock cap: an attempt that would run longer is
    /// aborted at the cap and counted as a failure.
    pub timeout_secs: Option<f64>,
}

impl RetryPolicy {
    /// No retries, no timeout: the step gets exactly one attempt.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff_secs: 0.0,
            backoff_factor: 2.0,
            timeout_secs: None,
        }
    }

    /// `max_retries` retries with exponential backoff from `base_secs`.
    pub fn retries(max_retries: u32, base_secs: f64) -> Self {
        RetryPolicy {
            max_retries,
            base_backoff_secs: base_secs,
            backoff_factor: 2.0,
            timeout_secs: None,
        }
    }

    /// Total attempts the policy allows.
    pub fn max_attempts(&self) -> u32 {
        self.max_retries + 1
    }

    /// Backoff wait after failed attempt `attempt` (0-based).
    pub fn backoff_secs(&self, attempt: u32) -> f64 {
        self.base_backoff_secs * self.backoff_factor.powi(attempt as i32)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

/// Payload size of a transfer step.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum BytesSpec {
    /// Known up front (e.g. the night's configuration bundle).
    Const { bytes: u64 },
    /// The summary volume produced by the execute step — resolved at
    /// run time from cycle state.
    Summaries,
}

/// What one attempt of a step does.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum StepKind {
    /// Fixed-duration work (config generation, analytics).
    Fixed { secs: f64 },
    /// Synthetic step for tests and benches: the first `fail_attempts`
    /// attempts fail after wasting `wasted_secs` each, then one
    /// succeeds in `secs`.
    Flaky { secs: f64, fail_attempts: u32, wasted_secs: f64 },
    /// A Globus transfer between the sites, subject to link faults.
    Transfer { from: Site, to: Site, bytes: BytesSpec, label: String },
    /// Instantiate per-region population-database snapshots (parallel
    /// across regions, bounded by the slowest); DB-exhaustion faults
    /// fire here and shrink the per-region task bounds downstream.
    DbRestore,
    /// Pack the night's tasks and execute them under Slurm inside the
    /// window, with node-failure faults and deadline-aware shedding.
    SlurmExecute,
    /// Post-simulation aggregation, scaled to the completed work.
    Collect,
}

/// One step of the workflow.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StepSpec {
    pub name: String,
    pub site: Site,
    /// Orange (automated) vs human-in-the-loop boxes of Fig. 2.
    pub automated: bool,
    pub kind: StepKind,
    /// Steps that must complete before this one starts.
    pub deps: Vec<StepId>,
    pub retry: RetryPolicy,
}

/// A dependency DAG of steps, acyclic by construction (every edge
/// points to an earlier id).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Dag {
    pub steps: Vec<StepSpec>,
}

impl Dag {
    /// Add a step; its dependencies must already be present.
    ///
    /// # Panics
    /// Panics if a dependency id has not been added yet.
    pub fn add(&mut self, spec: StepSpec) -> StepId {
        for &d in &spec.deps {
            assert!(
                d < self.steps.len(),
                "step `{}` depends on {d}, which has not been added yet",
                spec.name
            );
        }
        self.steps.push(spec);
        self.steps.len() - 1
    }

    pub fn len(&self) -> usize {
        self.steps.len()
    }

    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential() {
        let p = RetryPolicy {
            base_backoff_secs: 10.0,
            backoff_factor: 2.0,
            ..RetryPolicy::retries(3, 10.0)
        };
        assert_eq!(p.backoff_secs(0), 10.0);
        assert_eq!(p.backoff_secs(1), 20.0);
        assert_eq!(p.backoff_secs(2), 40.0);
        assert_eq!(p.max_attempts(), 4);
    }

    #[test]
    #[should_panic(expected = "has not been added yet")]
    fn forward_edges_rejected() {
        let mut dag = Dag::default();
        dag.add(StepSpec {
            name: "bad".into(),
            site: Site::Home,
            automated: true,
            kind: StepKind::Fixed { secs: 1.0 },
            deps: vec![3],
            retry: RetryPolicy::none(),
        });
    }
}
