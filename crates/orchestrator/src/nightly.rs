//! Builder for the paper's nightly combined-workflow DAG (Fig. 2).
//!
//! The cycle is config-gen → Globus transfer → DB snapshot-restore →
//! pack + Slurm execute → collect → return transfer → analytics. The
//! dependency edges form the same chain the hand-rolled
//! `CombinedWorkflow` sequence encoded implicitly; expressing them as a
//! DAG is what lets the engine retry, journal, and degrade each step
//! independently.

use crate::breaker::BreakerConfig;
use crate::engine::{CycleEnv, DeadlinePolicy, Engine, FailoverPolicy};
use crate::faults::FaultPlan;
use crate::step::{BytesSpec, Dag, RetryPolicy, StepKind, StepSpec};
use epiflow_hpcsim::cluster::{ClusterSpec, Site};
use epiflow_hpcsim::globus::GlobusLink;
use epiflow_hpcsim::schedule::PackAlgo;
use epiflow_hpcsim::slurm::CheckpointPolicy;
use epiflow_hpcsim::task::Task;

/// Static configuration of the nightly cycle (everything except the
/// night's task list).
#[derive(Clone, Debug)]
pub struct NightlySpec {
    pub link: GlobusLink,
    pub remote: ClusterSpec,
    /// The home cluster — failover target when the remote night is
    /// lost.
    pub home: ClusterSpec,
    /// Slow secondary route used when the primary link's breaker is
    /// open, and as the hedge target.
    pub fallback_link: GlobusLink,
    pub algo: PackAlgo,
    /// Per-region database connection bound B(r).
    pub db_max_connections: usize,
    pub conns_per_task: usize,
    /// Seconds of analyst + tooling time to generate configurations.
    pub config_gen_secs: f64,
    /// Seconds of analytics time on the home cluster after return.
    pub analysis_secs: f64,
    /// Retry policy for the two Globus transfers (the other steps run
    /// in-cluster and are not retried at this level).
    pub transfer_retry: RetryPolicy,
    /// Cross-cluster failover + hedging (off by default — the classic
    /// engine).
    pub failover: FailoverPolicy,
    /// Circuit-breaker tuning for the guarded resources.
    pub breaker: BreakerConfig,
    /// Tick-level checkpoint/restart for the Slurm execution (off by
    /// default — preempted tasks restart from scratch).
    pub checkpoint: CheckpointPolicy,
}

impl Default for NightlySpec {
    fn default() -> Self {
        NightlySpec {
            link: GlobusLink::default(),
            remote: ClusterSpec::bridges(),
            home: ClusterSpec::rivanna(),
            fallback_link: GlobusLink { bandwidth_bps: 50e6, overhead_secs: 60.0 },
            algo: PackAlgo::FfdtDc,
            db_max_connections: 64,
            conns_per_task: 4,
            config_gen_secs: 2.0 * 3600.0,
            analysis_secs: 3.0 * 3600.0,
            // The operations team re-submitted dropped transfers; five
            // tries with two-minute exponential backoff comfortably
            // covers the observed drop rates without breaking the
            // window.
            transfer_retry: RetryPolicy::retries(4, 120.0),
            failover: FailoverPolicy::default(),
            breaker: BreakerConfig::default(),
            checkpoint: CheckpointPolicy::default(),
        }
    }
}

/// Build the nightly DAG and wrap it in an engine.
///
/// `region_rows` maps each region appearing in `tasks` to its
/// person-trait row count (drives snapshot-restore time and output
/// volumes).
pub fn nightly_engine(
    spec: &NightlySpec,
    tasks: Vec<Task>,
    region_rows: Vec<(usize, u64)>,
    faults: FaultPlan,
    deadline: DeadlinePolicy,
) -> Engine {
    let config_bytes = tasks.len() as u64 * 500_000; // ~0.5 MB per simulation config
    let mut dag = Dag::default();
    let gen = dag.add(StepSpec {
        name: "generate simulation configurations".into(),
        site: Site::Home,
        automated: false,
        kind: StepKind::Fixed { secs: spec.config_gen_secs },
        deps: vec![],
        retry: RetryPolicy::none(),
    });
    let xfer = dag.add(StepSpec {
        name: "Globus: configs home → remote".into(),
        site: Site::Home,
        automated: false, // "started manually using the Globus platform"
        kind: StepKind::Transfer {
            from: Site::Home,
            to: Site::Remote,
            bytes: BytesSpec::Const { bytes: config_bytes },
            label: "daily configs".into(),
        },
        deps: vec![gen],
        retry: spec.transfer_retry,
    });
    let db = dag.add(StepSpec {
        name: "instantiate population database snapshots".into(),
        site: Site::Remote,
        automated: true,
        kind: StepKind::DbRestore,
        deps: vec![xfer],
        retry: RetryPolicy::none(),
    });
    let slurm = dag.add(StepSpec {
        name: "Slurm job arrays".into(), // label rewritten with counts at completion
        site: Site::Remote,
        automated: true,
        kind: StepKind::SlurmExecute,
        deps: vec![db],
        retry: RetryPolicy::none(),
    });
    let collect = dag.add(StepSpec {
        name: "post-simulation aggregation".into(),
        site: Site::Remote,
        automated: true,
        kind: StepKind::Collect,
        deps: vec![slurm],
        retry: RetryPolicy::none(),
    });
    let back = dag.add(StepSpec {
        name: "Globus: summaries remote → home".into(),
        site: Site::Remote,
        automated: true,
        kind: StepKind::Transfer {
            from: Site::Remote,
            to: Site::Home,
            bytes: BytesSpec::Summaries,
            label: "summaries".into(),
        },
        deps: vec![collect],
        retry: spec.transfer_retry,
    });
    dag.add(StepSpec {
        name: "analytics, projections, briefing products".into(),
        site: Site::Home,
        automated: false,
        kind: StepKind::Fixed { secs: spec.analysis_secs },
        deps: vec![back],
        retry: RetryPolicy::none(),
    });

    let env = CycleEnv {
        link: spec.link.clone(),
        remote: spec.remote.clone(),
        home: spec.home.clone(),
        fallback_link: spec.fallback_link.clone(),
        algo: spec.algo,
        db_max_connections: spec.db_max_connections,
        conns_per_task: spec.conns_per_task,
        tasks,
        region_rows,
    };
    Engine {
        dag,
        env,
        faults,
        deadline,
        failover: spec.failover,
        breaker: spec.breaker,
        checkpoint: spec.checkpoint,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_tasks() -> (Vec<Task>, Vec<(usize, u64)>) {
        let tasks: Vec<Task> = (0..6)
            .map(|i| Task {
                id: i,
                region: (i as usize) % 2,
                cell: i / 2,
                replicate: i % 2,
                nodes: 2,
                est_secs: 1800.0,
                actual_secs: 1800.0,
                db_connections: 4,
            })
            .collect();
        (tasks, vec![(0, 5_000_000), (1, 8_000_000)])
    }

    #[test]
    fn nightly_dag_has_the_seven_fig2_steps() {
        let (tasks, rows) = tiny_tasks();
        let engine = nightly_engine(
            &NightlySpec::default(),
            tasks,
            rows,
            FaultPlan::default(),
            DeadlinePolicy::default(),
        );
        assert_eq!(engine.dag.len(), 7);
        let result = engine.run();
        assert_eq!(result.report.timeline.len(), 7);
        assert!(result.report.within_window);
        assert_eq!(result.report.transfers.len(), 2);
        assert!(result.report.timeline_text().contains("Slurm job arrays: 6 simulations"));
    }

    #[test]
    fn quiet_run_is_reproducible() {
        let (tasks, rows) = tiny_tasks();
        let spec = NightlySpec::default();
        let a = nightly_engine(
            &spec,
            tasks.clone(),
            rows.clone(),
            FaultPlan::default(),
            DeadlinePolicy::default(),
        )
        .run();
        let b = nightly_engine(&spec, tasks, rows, FaultPlan::default(), DeadlinePolicy::default())
            .run();
        assert_eq!(a.report, b.report);
        assert_eq!(
            serde_json::to_string(&a.report).unwrap(),
            serde_json::to_string(&b.report).unwrap()
        );
    }
}
