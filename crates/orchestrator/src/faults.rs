//! The seeded fault model layered over the hpcsim substrate.
//!
//! Every fault draw is a *pure function* of `(seed, label, key)` — no
//! RNG stream state — so a cycle resumed from its journal replays
//! exactly the faults the interrupted run saw. This is what makes
//! checkpoint/resume byte-identical to an uninterrupted run.

pub use epiflow_hpcsim::globus::LinkFaults;
use epiflow_hpcsim::slurm::NodeFailure;
use serde::{Deserialize, Serialize};

/// All fault injection for one cycle. [`FaultPlan::default`] is quiet:
/// no faults, reproducing the happy-path workflow exactly.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the stateless draws (stragglers, DB exhaustion).
    pub seed: u64,
    /// Mid-flight transfer drops on the inter-site link.
    pub link: LinkFaults,
    /// Compute nodes lost during the execution window.
    pub node_failures: Vec<NodeFailure>,
    /// Probability a region's database suffers connection exhaustion
    /// at snapshot-restore time.
    pub db_exhaust_prob: f64,
    /// Fraction of the connection bound an exhausted database keeps.
    pub db_keep_fraction: f64,
    /// Probability a task straggles.
    pub straggler_prob: f64,
    /// Runtime multiplier applied to straggler tasks.
    pub straggler_factor: f64,
    /// Probability a region's snapshot restore straggles (I/O
    /// contention on the database nodes), stretching its startup time.
    pub db_slow_prob: f64,
    /// Startup-time multiplier for straggling restores.
    pub db_slow_factor: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            link: LinkFaults::default(),
            node_failures: Vec::new(),
            db_exhaust_prob: 0.0,
            db_keep_fraction: 1.0,
            straggler_prob: 0.0,
            straggler_factor: 1.0,
            db_slow_prob: 0.0,
            db_slow_factor: 1.0,
        }
    }
}

impl FaultPlan {
    /// True when no fault source is active.
    pub fn is_quiet(&self) -> bool {
        self.link.fail_prob <= 0.0
            && self.link.slow_prob <= 0.0
            && self.node_failures.is_empty()
            && self.db_exhaust_prob <= 0.0
            && self.straggler_prob <= 0.0
            && self.db_slow_prob <= 0.0
    }
}

/// Deterministic draw in `[0, 1)` from `(seed, label, key)`: FNV-1a
/// over the label mixed with the key, finished with the SplitMix64
/// avalanche.
pub fn fault_unit(seed: u64, label: &str, key: u64) -> f64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for b in label.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h = h.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(key.wrapping_add(1)));
    let mut z = h;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_quiet() {
        assert!(FaultPlan::default().is_quiet());
    }

    #[test]
    fn fault_unit_is_deterministic_and_spread() {
        let a: Vec<f64> = (0..100).map(|k| fault_unit(7, "straggler", k)).collect();
        let b: Vec<f64> = (0..100).map(|k| fault_unit(7, "straggler", k)).collect();
        assert_eq!(a, b);
        assert!(a.iter().all(|&u| (0.0..1.0).contains(&u)));
        let mean = a.iter().sum::<f64>() / a.len() as f64;
        assert!((0.35..0.65).contains(&mean), "mean {mean} far from uniform");
        // Different labels and seeds decorrelate.
        assert_ne!(fault_unit(7, "straggler", 0), fault_unit(7, "db-exhaust", 0));
        assert_ne!(fault_unit(7, "straggler", 0), fault_unit(8, "straggler", 0));
    }
}
