//! `epiflow-orchestrator`: a deterministic, fault-tolerant workflow
//! DAG engine for the nightly combined workflow.
//!
//! The paper's primary contribution is the *workflow layer* — nightly
//! production orchestration of thousands of simulations across two
//! clusters under a hard 10 pm–8 am window — and the real system had to
//! survive transfer drops, node loss, and database exhaustion night
//! after night. This crate generalizes the nightly cycle into a DAG of
//! typed steps and adds the operational machinery the happy path
//! lacks:
//!
//! * [`step`] — the step taxonomy (config-gen, Globus transfer, DB
//!   snapshot-restore, pack + Slurm execute, collect, analytics), retry
//!   policies with exponential backoff and timeouts, and the
//!   acyclic-by-construction [`Dag`](step::Dag).
//! * [`faults`] — the seeded fault plan layered over the hpcsim
//!   substrate: mid-flight transfer drops, mid-level node crashes, DB
//!   connection exhaustion, straggler tasks. All draws are stateless
//!   functions of `(seed, label, key)`.
//! * [`engine`] — the discrete-event executor: per-step retries, an
//!   observability event stream, deadline-aware degradation that sheds
//!   lowest-priority cells (and names them) when the 8 am deadline is
//!   at risk.
//! * [`journal`] — the write-ahead journal of step completions; a
//!   killed cycle resumes from it without redoing finished steps, and
//!   the resumed report is byte-identical to an uninterrupted run.
//! * [`breaker`] — per-resource circuit breakers (closed / open /
//!   half-open) over the Globus link, the remote cluster, and the
//!   population-database fleet, with replay-exact state reconstruction
//!   from journaled call streams.
//! * [`nightly`] — the builder mapping the Fig.-2 cycle onto the DAG;
//!   `epiflow-core`'s `CombinedWorkflow` runs on top of it.
//! * [`campaign`] — the chaos-campaign harness: many seeded nights in
//!   parallel under sampled fault plans, reporting within-window
//!   success rates and failover/hedge/shed distributions per fault
//!   intensity.

pub mod breaker;
pub mod campaign;
pub mod engine;
pub mod faults;
pub mod journal;
pub mod nightly;
pub mod step;

pub use breaker::{
    BreakerConfig, BreakerSet, BreakerState, CircuitBreaker, Resource, ResourceCall,
};
pub use campaign::{
    sample_fault_plan, sample_fault_plan_preempt_heavy, CampaignReport, CampaignSpec, FaultProfile,
    IntensityStats, NightOutcome,
};
pub use engine::{
    timeline_text, CycleEnv, CycleReport, DeadlinePolicy, DroppedCell, Engine, EngineEvent,
    EventCounters, FailoverPolicy, HedgePolicy, RunResult, TimelineEvent,
};
pub use faults::{fault_unit, FaultPlan, LinkFaults};
pub use journal::{Journal, JournalEntry, JournalWriter, StepEffect};
pub use nightly::{nightly_engine, NightlySpec};
pub use step::{BytesSpec, Dag, RetryPolicy, StepId, StepKind, StepSpec};
