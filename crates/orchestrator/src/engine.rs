//! The deterministic discrete-event workflow engine.
//!
//! Steps execute in dependency order on a simulated wall clock: a step
//! starts at the latest end time of its dependencies, runs one or more
//! attempts under its retry policy (failed attempts cost their wasted
//! time plus an exponential backoff wait), and on completion appends a
//! write-ahead [`Journal`] entry and applies its [`StepEffect`] to the
//! cycle state. Everything is a pure function of the DAG, environment,
//! and fault plan, so two runs — or a run and its journal-resumed
//! continuation — produce identical reports.

use crate::faults::{fault_unit, FaultPlan};
use crate::journal::{Journal, JournalEntry, StepEffect};
use crate::step::{BytesSpec, Dag, StepId, StepKind, StepSpec};
use epiflow_hpcsim::cluster::{ClusterSpec, Site};
use epiflow_hpcsim::globus::{GlobusLink, Transfer};
use epiflow_hpcsim::schedule::{pack, PackAlgo};
use epiflow_hpcsim::slurm::{SlurmSim, SlurmStats};
use epiflow_hpcsim::task::Task;
use epiflow_hpcsim::PopulationDb;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One timeline entry (Fig. 2's boxes).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimelineEvent {
    pub label: String,
    pub site: Site,
    /// Seconds on the workflow clock (0 = cycle start).
    pub start_secs: f64,
    pub duration_secs: f64,
    /// Whether the step is automated (orange boxes in Fig. 2) or needs
    /// a human in the loop.
    pub automated: bool,
}

/// Render a Fig.-2-style timeline as text.
pub fn timeline_text(events: &[TimelineEvent]) -> String {
    let mut s = String::new();
    for e in events {
        let site = match e.site {
            Site::Home => "HOME  ",
            Site::Remote => "REMOTE",
        };
        let kind = if e.automated { "auto  " } else { "manual" };
        s.push_str(&format!(
            "[{site}] [{kind}] t+{:>7.0}s  ({:>7.0}s)  {}\n",
            e.start_secs, e.duration_secs, e.label
        ));
    }
    s
}

/// A cell shed by deadline-aware degradation, with exactly what was
/// dropped.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DroppedCell {
    pub cell: u32,
    /// Simulation tasks dropped with the cell.
    pub tasks: usize,
}

/// Deadline policy for the execute step. When shedding is on and the
/// packed workload cannot finish inside the remote window (counting
/// database startup and the projected aggregation time), the engine
/// sheds whole cells — highest cell index first, i.e. lowest priority —
/// until the remainder fits, and reports every shed cell by name.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DeadlinePolicy {
    pub shed_cells: bool,
}

/// Execution environment the typed steps run against.
#[derive(Clone, Debug)]
pub struct CycleEnv {
    pub link: GlobusLink,
    pub remote: ClusterSpec,
    pub algo: PackAlgo,
    /// Per-region database connection bound B(r).
    pub db_max_connections: usize,
    pub conns_per_task: usize,
    /// The night's task list.
    pub tasks: Vec<Task>,
    /// `(region, person-trait rows)` for every region in `tasks`.
    pub region_rows: Vec<(usize, u64)>,
}

impl CycleEnv {
    /// An environment for synthetic DAGs (tests, benches) that use no
    /// nightly-specific steps.
    pub fn synthetic() -> Self {
        CycleEnv {
            link: GlobusLink::default(),
            remote: ClusterSpec::bridges(),
            algo: PackAlgo::FfdtDc,
            db_max_connections: 64,
            conns_per_task: 4,
            tasks: Vec::new(),
            region_rows: Vec::new(),
        }
    }
}

/// Observability stream: everything the engine does, in order. The
/// timeline and journal are both derived from these.
#[derive(Clone, Debug, PartialEq)]
pub enum EngineEvent {
    StepStarted {
        step: StepId,
        name: String,
        at_secs: f64,
    },
    AttemptFailed {
        step: StepId,
        attempt: u32,
        wasted_secs: f64,
        backoff_secs: f64,
    },
    StepCompleted {
        step: StepId,
        attempts: u32,
        start_secs: f64,
        end_secs: f64,
    },
    StepFailed {
        step: StepId,
        attempts: u32,
        at_secs: f64,
    },
    /// Step restored from the journal without re-execution.
    StepReplayed {
        step: StepId,
        end_secs: f64,
    },
    CellsShed {
        step: StepId,
        dropped: Vec<DroppedCell>,
    },
}

/// Final report of one cycle.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CycleReport {
    pub timeline: Vec<TimelineEvent>,
    /// Transfers in completion order (the Table-II ledger rows).
    pub transfers: Vec<Transfer>,
    pub slurm: Option<SlurmStats>,
    /// Tasks in the night's workload before any shedding.
    pub n_tasks: usize,
    pub raw_output_bytes: u64,
    pub summary_bytes: u64,
    /// Cells shed by deadline degradation, in shed order.
    pub dropped_cells: Vec<DroppedCell>,
    /// Steps that exhausted their retry policy.
    pub failed_steps: Vec<String>,
    /// Steps never run because an upstream step failed.
    pub blocked_steps: Vec<String>,
    /// Failed attempts across all steps (replayed ones included).
    pub total_retries: u32,
    /// Whether the remote-side work fit the nightly window (and no
    /// step failed outright).
    pub within_window: bool,
    /// End-to-end cycle duration in seconds.
    pub cycle_secs: f64,
}

impl CycleReport {
    pub fn timeline_text(&self) -> String {
        timeline_text(&self.timeline)
    }
}

/// Outcome of [`Engine::run`] / [`Engine::resume`].
#[derive(Clone, Debug)]
pub struct RunResult {
    pub report: CycleReport,
    /// Write-ahead journal of the full run (replayed prefix included),
    /// ready to persist.
    pub journal: Journal,
    pub events: Vec<EngineEvent>,
    /// Steps executed live this run — journal replays are excluded,
    /// which is how tests prove resume does not redo finished work.
    pub live_steps: Vec<StepId>,
}

/// Mutable cycle state the step effects build up.
#[derive(Default)]
struct CycleState {
    transfers: Vec<Transfer>,
    db_secs: f64,
    db_bounds: HashMap<usize, usize>,
    slurm: Option<SlurmStats>,
    agg_secs: f64,
    raw_output_bytes: u64,
    summary_bytes: u64,
    dropped: Vec<DroppedCell>,
}

/// One successful attempt.
struct AttemptOk {
    duration_secs: f64,
    effect: StepEffect,
    /// Completion-time label override (e.g. the execute step reports
    /// its completed-task count).
    label: Option<String>,
}

/// The workflow engine: DAG + environment + fault plan + deadline
/// policy.
#[derive(Clone, Debug)]
pub struct Engine {
    pub dag: Dag,
    pub env: CycleEnv,
    pub faults: FaultPlan,
    pub deadline: DeadlinePolicy,
}

impl Engine {
    /// A quiet engine (no faults, no shedding) over a DAG.
    pub fn new(dag: Dag, env: CycleEnv) -> Self {
        Engine { dag, env, faults: FaultPlan::default(), deadline: DeadlinePolicy::default() }
    }

    /// Run the cycle from scratch.
    pub fn run(&self) -> RunResult {
        self.resume(&Journal::default())
    }

    /// Run the cycle, replaying completed steps from `journal` instead
    /// of re-executing them, then continuing live.
    pub fn resume(&self, journal: &Journal) -> RunResult {
        let replayed: HashMap<StepId, &JournalEntry> =
            journal.entries.iter().map(|e| (e.step, e)).collect();
        let mut state = CycleState::default();
        let mut events: Vec<EngineEvent> = Vec::new();
        let mut out = Journal::default();
        let mut live_steps: Vec<StepId> = Vec::new();
        let mut timeline: Vec<TimelineEvent> = Vec::new();
        let mut end_times: Vec<Option<f64>> = vec![None; self.dag.len()];
        let mut failed_steps: Vec<String> = Vec::new();
        let mut blocked_steps: Vec<String> = Vec::new();
        let mut total_retries = 0u32;

        for (id, spec) in self.dag.steps.iter().enumerate() {
            if spec.deps.iter().any(|&d| end_times[d].is_none()) {
                blocked_steps.push(spec.name.clone());
                continue;
            }
            let start =
                spec.deps.iter().map(|&d| end_times[d].expect("dep end")).fold(0.0, f64::max);

            if let Some(entry) = replayed.get(&id) {
                // Checkpoint replay: apply the recorded effect, skip
                // execution entirely.
                apply_effect(&entry.effect, &mut state);
                let end = entry.event.start_secs + entry.event.duration_secs;
                end_times[id] = Some(end);
                total_retries += entry.attempts.saturating_sub(1);
                timeline.push(entry.event.clone());
                out.entries.push((*entry).clone());
                events.push(EngineEvent::StepReplayed { step: id, end_secs: end });
                continue;
            }

            events.push(EngineEvent::StepStarted {
                step: id,
                name: spec.name.clone(),
                at_secs: start,
            });
            let mut attempt = 0u32;
            let mut elapsed = 0.0f64;
            let mut wasted_total = 0.0f64;
            let outcome = loop {
                match self.exec_attempt(spec, attempt, start + elapsed, &state) {
                    Ok(ok) => break Some((ok, attempt + 1)),
                    Err(wasted) => {
                        wasted_total += wasted;
                        elapsed += wasted;
                        total_retries += 1;
                        let last = attempt + 1 >= spec.retry.max_attempts();
                        let backoff = if last { 0.0 } else { spec.retry.backoff_secs(attempt) };
                        events.push(EngineEvent::AttemptFailed {
                            step: id,
                            attempt,
                            wasted_secs: wasted,
                            backoff_secs: backoff,
                        });
                        if last {
                            break None;
                        }
                        elapsed += backoff;
                        attempt += 1;
                    }
                }
            };

            match outcome {
                None => {
                    failed_steps.push(spec.name.clone());
                    events.push(EngineEvent::StepFailed {
                        step: id,
                        attempts: spec.retry.max_attempts(),
                        at_secs: start + elapsed,
                    });
                }
                Some((ok, attempts)) => {
                    apply_effect(&ok.effect, &mut state);
                    if let StepEffect::Execution { dropped, .. } = &ok.effect {
                        if !dropped.is_empty() {
                            events.push(EngineEvent::CellsShed {
                                step: id,
                                dropped: dropped.clone(),
                            });
                        }
                    }
                    let duration = elapsed + ok.duration_secs;
                    let event = TimelineEvent {
                        label: ok.label.unwrap_or_else(|| spec.name.clone()),
                        site: spec.site,
                        start_secs: start,
                        duration_secs: duration,
                        automated: spec.automated,
                    };
                    end_times[id] = Some(start + duration);
                    timeline.push(event.clone());
                    out.entries.push(JournalEntry {
                        step: id,
                        attempts,
                        wasted_secs: wasted_total,
                        event,
                        effect: ok.effect,
                    });
                    events.push(EngineEvent::StepCompleted {
                        step: id,
                        attempts,
                        start_secs: start,
                        end_secs: start + duration,
                    });
                    live_steps.push(id);
                }
            }
        }

        // Stable sort: ties keep step-id order, so a pure chain matches
        // the hand-rolled sequence exactly.
        timeline.sort_by(|a, b| a.start_secs.partial_cmp(&b.start_secs).expect("NaN start"));
        let cycle_secs = end_times.iter().flatten().fold(0.0f64, |a, &b| a.max(b));
        let window = self.env.remote.window_secs() as f64;
        let within_window = failed_steps.is_empty()
            && blocked_steps.is_empty()
            && match &state.slurm {
                Some(s) => {
                    s.unstarted == 0 && state.db_secs + s.makespan_secs + state.agg_secs <= window
                }
                None => true,
            };
        RunResult {
            report: CycleReport {
                timeline,
                transfers: state.transfers,
                slurm: state.slurm,
                n_tasks: self.env.tasks.len(),
                raw_output_bytes: state.raw_output_bytes,
                summary_bytes: state.summary_bytes,
                dropped_cells: state.dropped,
                failed_steps,
                blocked_steps,
                total_retries,
                within_window,
                cycle_secs,
            },
            journal: out,
            events,
            live_steps,
        }
    }

    /// Execute one attempt of a step. `Ok` carries the attempt duration
    /// and effect; `Err` carries the wasted seconds.
    fn exec_attempt(
        &self,
        spec: &StepSpec,
        attempt: u32,
        attempt_start: f64,
        state: &CycleState,
    ) -> Result<AttemptOk, f64> {
        match &spec.kind {
            StepKind::Fixed { secs } => {
                Ok(AttemptOk { duration_secs: *secs, effect: StepEffect::None, label: None })
            }
            StepKind::Flaky { secs, fail_attempts, wasted_secs } => {
                if attempt < *fail_attempts {
                    Err(*wasted_secs)
                } else {
                    Ok(AttemptOk { duration_secs: *secs, effect: StepEffect::None, label: None })
                }
            }
            StepKind::Transfer { from, to, bytes, label } => {
                let n = match bytes {
                    BytesSpec::Const { bytes } => *bytes,
                    BytesSpec::Summaries => state.summary_bytes,
                };
                match self.env.link.attempt(&self.faults.link, label, attempt, n) {
                    Ok(duration) => {
                        if let Some(cap) = spec.retry.timeout_secs {
                            if duration > cap {
                                return Err(cap);
                            }
                        }
                        Ok(AttemptOk {
                            duration_secs: duration,
                            effect: StepEffect::Transfer {
                                transfer: Transfer {
                                    from: *from,
                                    to: *to,
                                    bytes: n,
                                    label: label.clone(),
                                    start_secs: attempt_start,
                                    duration_secs: duration,
                                },
                            },
                            label: None,
                        })
                    }
                    Err(wasted) => Err(match spec.retry.timeout_secs {
                        Some(cap) => wasted.min(cap),
                        None => wasted,
                    }),
                }
            }
            StepKind::DbRestore => {
                let mut bounds = Vec::with_capacity(self.env.region_rows.len());
                let mut secs = 0.0f64;
                for &(region, rows) in &self.env.region_rows {
                    let mut db = PopulationDb::new(region, rows, self.env.db_max_connections);
                    if self.faults.db_exhaust_prob > 0.0
                        && fault_unit(self.faults.seed, "db-exhaust", region as u64)
                            < self.faults.db_exhaust_prob
                    {
                        db.exhaust(self.faults.db_keep_fraction);
                    }
                    secs = secs.max(db.startup_secs(true));
                    bounds.push((region, db.task_bound(self.env.conns_per_task)));
                }
                Ok(AttemptOk {
                    duration_secs: secs,
                    effect: StepEffect::DbRestore { startup_secs: secs, bounds },
                    label: None,
                })
            }
            StepKind::SlurmExecute => Ok(self.exec_slurm(state)),
            StepKind::Collect => {
                let busy = state.slurm.as_ref().map(|s| s.busy_node_secs).unwrap_or(0.0);
                let agg = (busy * 0.02 / self.env.remote.nodes as f64).max(60.0);
                Ok(AttemptOk {
                    duration_secs: agg,
                    effect: StepEffect::Collect { agg_secs: agg },
                    label: None,
                })
            }
        }
    }

    /// Pack + execute under Slurm, with straggler and node-failure
    /// faults and the deadline-degradation loop.
    fn exec_slurm(&self, state: &CycleState) -> AttemptOk {
        let default_bound = self.env.db_max_connections / self.env.conns_per_task.max(1);
        let bound_of = |r: usize| state.db_bounds.get(&r).copied().unwrap_or(default_bound).max(1);
        let window = self.env.remote.window_secs() as f64;

        let mut kept: Vec<Task> = self.env.tasks.clone();
        if self.faults.straggler_prob > 0.0 {
            for t in &mut kept {
                if fault_unit(self.faults.seed, "straggler", t.id as u64)
                    < self.faults.straggler_prob
                {
                    t.actual_secs *= self.faults.straggler_factor;
                }
            }
        }

        let mut dropped: Vec<DroppedCell> = Vec::new();
        let (stats, agg) = loop {
            let plan = pack(&kept, self.env.remote.nodes, bound_of, self.env.algo);
            let order: Vec<usize> =
                plan.levels.iter().flat_map(|l| l.tasks.iter().copied()).collect();
            let stats = SlurmSim::new(self.env.remote.clone()).run_with_faults(
                &kept,
                &order,
                bound_of,
                &self.faults.node_failures,
            );
            let agg = (stats.busy_node_secs * 0.02 / self.env.remote.nodes as f64).max(60.0);
            let fits = stats.unstarted == 0 && state.db_secs + stats.makespan_secs + agg <= window;
            if fits || !self.deadline.shed_cells {
                break (stats, agg);
            }
            // Shed the lowest-priority (highest-index) remaining cell.
            let Some(shed) = kept.iter().map(|t| t.cell).max() else {
                break (stats, agg);
            };
            let n_before = kept.len();
            kept.retain(|t| t.cell != shed);
            dropped.push(DroppedCell { cell: shed, tasks: n_before - kept.len() });
        };
        let _ = agg; // projected aggregation; the Collect step recomputes it

        // Output volumes over tasks that ran (per completed simulation:
        // ~25% attack over the population, ~6 transitions/case, 24 B per
        // line; summaries per Table I shape).
        let region_pop: HashMap<usize, u64> = self.env.region_rows.iter().copied().collect();
        let mut raw_output_bytes = 0u64;
        let mut summary_bytes = 0u64;
        for (ti, t) in kept.iter().enumerate() {
            if stats.start_times[ti].is_none() {
                continue;
            }
            let pop = region_pop.get(&t.region).copied().unwrap_or(0);
            raw_output_bytes += (pop as f64 * 0.25 * 6.0 * 24.0) as u64;
            summary_bytes += 365 * 90 * 3 * 4;
        }

        let label =
            format!("Slurm job arrays: {} simulations ({} completed)", kept.len(), stats.completed);
        AttemptOk {
            duration_secs: stats.makespan_secs,
            effect: StepEffect::Execution {
                slurm: stats,
                raw_output_bytes,
                summary_bytes,
                dropped,
            },
            label: Some(label),
        }
    }
}

fn apply_effect(effect: &StepEffect, state: &mut CycleState) {
    match effect {
        StepEffect::None => {}
        StepEffect::Transfer { transfer } => state.transfers.push(transfer.clone()),
        StepEffect::DbRestore { startup_secs, bounds } => {
            state.db_secs = *startup_secs;
            state.db_bounds = bounds.iter().copied().collect();
        }
        StepEffect::Execution { slurm, raw_output_bytes, summary_bytes, dropped } => {
            state.slurm = Some(slurm.clone());
            state.raw_output_bytes = *raw_output_bytes;
            state.summary_bytes = *summary_bytes;
            state.dropped = dropped.clone();
        }
        StepEffect::Collect { agg_secs } => state.agg_secs = *agg_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step::RetryPolicy;

    fn fixed(name: &str, secs: f64, deps: Vec<StepId>) -> StepSpec {
        StepSpec {
            name: name.into(),
            site: Site::Home,
            automated: true,
            kind: StepKind::Fixed { secs },
            deps,
            retry: RetryPolicy::none(),
        }
    }

    #[test]
    fn chain_runs_sequentially() {
        let mut dag = Dag::default();
        let a = dag.add(fixed("a", 10.0, vec![]));
        let b = dag.add(fixed("b", 5.0, vec![a]));
        dag.add(fixed("c", 1.0, vec![b]));
        let result = Engine::new(dag, CycleEnv::synthetic()).run();
        assert_eq!(result.report.cycle_secs, 16.0);
        assert_eq!(result.report.timeline.len(), 3);
        assert_eq!(result.journal.entries.len(), 3);
        assert!(result.report.within_window);
    }

    #[test]
    fn diamond_starts_join_at_slowest_branch() {
        let mut dag = Dag::default();
        let a = dag.add(fixed("a", 10.0, vec![]));
        let fast = dag.add(fixed("fast", 1.0, vec![a]));
        let slow = dag.add(fixed("slow", 100.0, vec![a]));
        dag.add(fixed("join", 1.0, vec![fast, slow]));
        let result = Engine::new(dag, CycleEnv::synthetic()).run();
        let join = result.journal.entries.iter().find(|e| e.event.label == "join").unwrap();
        assert_eq!(join.event.start_secs, 110.0);
        assert_eq!(result.report.cycle_secs, 111.0);
    }

    #[test]
    fn flaky_step_retries_with_backoff() {
        let mut dag = Dag::default();
        dag.add(StepSpec {
            name: "flaky".into(),
            site: Site::Remote,
            automated: true,
            kind: StepKind::Flaky { secs: 10.0, fail_attempts: 2, wasted_secs: 3.0 },
            deps: vec![],
            retry: RetryPolicy::retries(3, 4.0),
        });
        let result = Engine::new(dag, CycleEnv::synthetic()).run();
        let entry = &result.journal.entries[0];
        assert_eq!(entry.attempts, 3);
        assert_eq!(entry.wasted_secs, 6.0);
        // elapsed = 3 + 4 (backoff) + 3 + 8 (backoff) + 10
        assert_eq!(result.report.cycle_secs, 28.0);
        assert_eq!(result.report.total_retries, 2);
    }

    #[test]
    fn exhausted_retries_fail_and_block_dependents() {
        let mut dag = Dag::default();
        let f = dag.add(StepSpec {
            name: "doomed".into(),
            site: Site::Remote,
            automated: true,
            kind: StepKind::Flaky { secs: 10.0, fail_attempts: 99, wasted_secs: 1.0 },
            deps: vec![],
            retry: RetryPolicy::retries(2, 1.0),
        });
        dag.add(fixed("downstream", 1.0, vec![f]));
        let result = Engine::new(dag, CycleEnv::synthetic()).run();
        assert_eq!(result.report.failed_steps, vec!["doomed".to_string()]);
        assert_eq!(result.report.blocked_steps, vec!["downstream".to_string()]);
        assert_eq!(result.report.total_retries, 3);
        assert!(!result.report.within_window);
        assert!(result.journal.entries.is_empty());
    }

    #[test]
    fn resume_skips_completed_steps() {
        let mut dag = Dag::default();
        let a = dag.add(fixed("a", 10.0, vec![]));
        let b = dag.add(fixed("b", 5.0, vec![a]));
        dag.add(fixed("c", 1.0, vec![b]));
        let engine = Engine::new(dag, CycleEnv::synthetic());
        let full = engine.run();
        for k in 0..=full.journal.entries.len() {
            let resumed = engine.resume(&full.journal.prefix(k));
            assert_eq!(resumed.report, full.report, "prefix {k}");
            assert_eq!(resumed.journal, full.journal, "prefix {k}");
            assert_eq!(resumed.live_steps.len(), 3 - k, "prefix {k} must not redo work");
        }
    }

    #[test]
    fn timeout_caps_attempt_cost() {
        // A transfer whose duration exceeds the timeout fails every
        // attempt at the cap.
        let mut dag = Dag::default();
        dag.add(StepSpec {
            name: "too slow".into(),
            site: Site::Home,
            automated: true,
            kind: StepKind::Transfer {
                from: Site::Home,
                to: Site::Remote,
                bytes: BytesSpec::Const { bytes: 250_000_000_000 }, // 1000 s at 250 MB/s
                label: "huge".into(),
            },
            deps: vec![],
            retry: RetryPolicy { timeout_secs: Some(100.0), ..RetryPolicy::retries(1, 0.0) },
        });
        let result = Engine::new(dag, CycleEnv::synthetic()).run();
        assert_eq!(result.report.failed_steps.len(), 1);
        let failed_at = result
            .events
            .iter()
            .find_map(|e| match e {
                EngineEvent::StepFailed { at_secs, .. } => Some(*at_secs),
                _ => None,
            })
            .unwrap();
        assert_eq!(failed_at, 200.0, "two attempts, each capped at 100 s");
    }
}
