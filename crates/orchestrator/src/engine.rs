//! The deterministic discrete-event workflow engine.
//!
//! Steps execute in dependency order on a simulated wall clock: a step
//! starts at the latest end time of its dependencies, runs one or more
//! attempts under its retry policy (failed attempts cost their wasted
//! time plus an exponential backoff wait), and on completion appends a
//! write-ahead [`Journal`] entry and applies its [`StepEffect`] to the
//! cycle state. Everything is a pure function of the DAG, environment,
//! and fault plan, so two runs — or a run and its journal-resumed
//! continuation — produce identical reports.

use crate::breaker::{BreakerConfig, BreakerSet, BreakerState, Resource, ResourceCall};
use crate::faults::{fault_unit, FaultPlan};
use crate::journal::{Journal, JournalEntry, StepEffect};
use crate::step::{BytesSpec, Dag, StepId, StepKind, StepSpec};
use epiflow_hpcsim::cluster::{ClusterSpec, Site};
use epiflow_hpcsim::globus::{GlobusLink, Transfer};
use epiflow_hpcsim::schedule::{pack, PackAlgo};
use epiflow_hpcsim::slurm::{CheckpointPolicy, SlurmSim, SlurmStats};
use epiflow_hpcsim::task::Task;
use epiflow_hpcsim::PopulationDb;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One timeline entry (Fig. 2's boxes).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimelineEvent {
    pub label: String,
    pub site: Site,
    /// Seconds on the workflow clock (0 = cycle start).
    pub start_secs: f64,
    pub duration_secs: f64,
    /// Whether the step is automated (orange boxes in Fig. 2) or needs
    /// a human in the loop.
    pub automated: bool,
}

/// Render a Fig.-2-style timeline as text.
pub fn timeline_text(events: &[TimelineEvent]) -> String {
    let mut s = String::new();
    for e in events {
        let site = match e.site {
            Site::Home => "HOME  ",
            Site::Remote => "REMOTE",
        };
        let kind = if e.automated { "auto  " } else { "manual" };
        s.push_str(&format!(
            "[{site}] [{kind}] t+{:>7.0}s  ({:>7.0}s)  {}\n",
            e.start_secs, e.duration_secs, e.label
        ));
    }
    s
}

/// A cell shed by deadline-aware degradation, with exactly what was
/// dropped.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DroppedCell {
    pub cell: u32,
    /// Simulation tasks dropped with the cell.
    pub tasks: usize,
}

/// Deadline policy for the execute step. When shedding is on and the
/// packed workload cannot finish inside the remote window (counting
/// database startup and the projected aggregation time), the engine
/// sheds whole cells — highest cell index first, i.e. lowest priority —
/// until the remainder fits, and reports every shed cell by name.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DeadlinePolicy {
    pub shed_cells: bool,
}

/// Hedged-execution policy for transfer and database-restore steps:
/// when an attempt is observed running past `latency_factor ×` its
/// quiet-path expected duration, a speculative duplicate is launched on
/// the alternate resource (the fallback link, a standby replica) and
/// the step completes at whichever finishes first.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HedgePolicy {
    /// Multiple of the quiet expected duration at which the hedge
    /// fires (a cheap stand-in for the p99-latency triggers used by
    /// production hedged-request schemes).
    pub latency_factor: f64,
}

impl Default for HedgePolicy {
    fn default() -> Self {
        HedgePolicy { latency_factor: 3.0 }
    }
}

/// Cross-cluster failover policy. Disabled (the default) reproduces the
/// classic engine exactly — every code path that consults breakers,
/// re-plans steps, or hedges is gated on `enabled`, so reports and
/// journals with the policy off are byte-identical to the pre-failover
/// engine's.
///
/// Enabled, the engine degrades by *relocating* instead of shedding:
/// - an execute step that cannot finish inside the remote window (node
///   failures, or the remote breaker already open) is re-planned onto
///   the home cluster at `home_slowdown ×` task runtimes, and its
///   downstream collect/transfer steps follow it there;
/// - transfer and restore calls against a resource whose breaker is
///   open are re-routed to the fallback link / standby replicas;
/// - slow attempts are hedged per [`HedgePolicy`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FailoverPolicy {
    pub enabled: bool,
    /// Task-runtime multiplier on the home cluster. `None` derives it
    /// from the cluster specs via
    /// [`ClusterSpec::failover_slowdown`].
    pub home_slowdown: Option<f64>,
    /// Hedged execution for transfer/restore steps; `None` disables
    /// hedging.
    pub hedge: Option<HedgePolicy>,
}

impl FailoverPolicy {
    /// Failover on, slowdown derived from the cluster specs, hedging at
    /// the default latency factor.
    pub fn on() -> Self {
        FailoverPolicy { enabled: true, home_slowdown: None, hedge: Some(HedgePolicy::default()) }
    }
}

/// Execution environment the typed steps run against.
#[derive(Clone, Debug)]
pub struct CycleEnv {
    pub link: GlobusLink,
    pub remote: ClusterSpec,
    /// The home cluster — failover target for execute steps.
    pub home: ClusterSpec,
    /// Slower secondary path between the sites (a commodity route used
    /// when the primary link's breaker is open, and as the hedge
    /// target). Assumed fault-free: the injected link faults model the
    /// primary research-network path.
    pub fallback_link: GlobusLink,
    pub algo: PackAlgo,
    /// Per-region database connection bound B(r).
    pub db_max_connections: usize,
    pub conns_per_task: usize,
    /// The night's task list.
    pub tasks: Vec<Task>,
    /// `(region, person-trait rows)` for every region in `tasks`.
    pub region_rows: Vec<(usize, u64)>,
}

impl CycleEnv {
    /// An environment for synthetic DAGs (tests, benches) that use no
    /// nightly-specific steps.
    pub fn synthetic() -> Self {
        CycleEnv {
            link: GlobusLink::default(),
            remote: ClusterSpec::bridges(),
            home: ClusterSpec::rivanna(),
            fallback_link: GlobusLink { bandwidth_bps: 50e6, overhead_secs: 60.0 },
            algo: PackAlgo::FfdtDc,
            db_max_connections: 64,
            conns_per_task: 4,
            tasks: Vec::new(),
            region_rows: Vec::new(),
        }
    }
}

/// Observability stream: everything the engine does, in order. The
/// timeline and journal are both derived from these. Serializes to one
/// JSON object per event (see [`RunResult::events_jsonl`]).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum EngineEvent {
    StepStarted {
        step: StepId,
        name: String,
        at_secs: f64,
    },
    AttemptFailed {
        step: StepId,
        attempt: u32,
        wasted_secs: f64,
        backoff_secs: f64,
    },
    StepCompleted {
        step: StepId,
        attempts: u32,
        start_secs: f64,
        end_secs: f64,
    },
    StepFailed {
        step: StepId,
        attempts: u32,
        at_secs: f64,
    },
    /// Step restored from the journal without re-execution.
    StepReplayed {
        step: StepId,
        end_secs: f64,
    },
    CellsShed {
        step: StepId,
        dropped: Vec<DroppedCell>,
    },
    /// A resource's circuit breaker changed state.
    BreakerTransition {
        resource: Resource,
        at_secs: f64,
        from: BreakerState,
        to: BreakerState,
    },
    /// A step was re-planned onto the other cluster.
    FailedOver {
        step: StepId,
        from: Site,
        to: Site,
        at_secs: f64,
    },
    /// A call was sent to the alternate resource because the primary's
    /// breaker was open.
    Rerouted {
        step: StepId,
        resource: Resource,
        at_secs: f64,
    },
    /// A speculative duplicate attempt was launched on the alternate
    /// resource; `won` is whether it beat the primary.
    HedgeFired {
        step: StepId,
        resource: Resource,
        at_secs: f64,
        won: bool,
    },
}

/// Final report of one cycle.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CycleReport {
    pub timeline: Vec<TimelineEvent>,
    /// Transfers in completion order (the Table-II ledger rows).
    pub transfers: Vec<Transfer>,
    pub slurm: Option<SlurmStats>,
    /// Tasks in the night's workload before any shedding.
    pub n_tasks: usize,
    pub raw_output_bytes: u64,
    pub summary_bytes: u64,
    /// Cells shed by deadline degradation, in shed order.
    pub dropped_cells: Vec<DroppedCell>,
    /// Steps that exhausted their retry policy.
    pub failed_steps: Vec<String>,
    /// Steps never run because an upstream step failed.
    pub blocked_steps: Vec<String>,
    /// Failed attempts across all steps (replayed ones included).
    pub total_retries: u32,
    /// Steps the failover policy re-planned onto the other cluster, in
    /// completion order (derived from the journal, so resumed runs
    /// report identically).
    pub failover_steps: Vec<String>,
    /// Speculative duplicate attempts launched by the hedge policy.
    pub hedges: u32,
    /// Calls re-routed to alternate resources by open breakers.
    pub reroutes: u32,
    /// Whether the remote-side work fit the nightly window (and no
    /// step failed outright).
    pub within_window: bool,
    /// End-to-end cycle duration in seconds.
    pub cycle_secs: f64,
}

impl CycleReport {
    pub fn timeline_text(&self) -> String {
        timeline_text(&self.timeline)
    }

    /// Resilience/robustness counters for the cycle, all derived from
    /// journaled state (identical for a run and any of its resumes).
    pub fn counters(&self) -> EventCounters {
        EventCounters {
            retries: self.total_retries,
            preemptions: self.slurm.as_ref().map(|s| s.preempted).unwrap_or(0),
            failovers: self.failover_steps.len() as u32,
            hedges: self.hedges,
            reroutes: self.reroutes,
            shed_cells: self.dropped_cells.len() as u32,
            failed_steps: self.failed_steps.len() as u32,
            node_seconds_lost: self.slurm.as_ref().map(|s| s.lost_node_secs).unwrap_or(0.0),
            node_seconds_recovered: self
                .slurm
                .as_ref()
                .map(|s| s.recovered_node_secs)
                .unwrap_or(0.0),
        }
    }
}

/// Summary counters appended to the JSONL event export.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EventCounters {
    pub retries: u32,
    pub preemptions: usize,
    pub failovers: u32,
    pub hedges: u32,
    pub reroutes: u32,
    pub shed_cells: u32,
    pub failed_steps: u32,
    /// Node-seconds destroyed by preemption (recomputed work plus any
    /// final checkpoint-write overhead).
    #[serde(default)]
    pub node_seconds_lost: f64,
    /// Node-seconds preserved across preemptions by tick-level
    /// checkpoints (0 with checkpointing disabled).
    #[serde(default)]
    pub node_seconds_recovered: f64,
}

/// Outcome of [`Engine::run`] / [`Engine::resume`].
#[derive(Clone, Debug)]
pub struct RunResult {
    pub report: CycleReport,
    /// Write-ahead journal of the full run (replayed prefix included),
    /// ready to persist.
    pub journal: Journal,
    pub events: Vec<EngineEvent>,
    /// Steps executed live this run — journal replays are excluded,
    /// which is how tests prove resume does not redo finished work.
    pub live_steps: Vec<StepId>,
}

impl RunResult {
    /// The event stream as JSON lines — one object per [`EngineEvent`]
    /// tagged by `type`, closed by a `type: "counters"` summary record
    /// (retries, preemptions, failovers, hedges, re-routes, shed
    /// cells). This is the machine-readable observability feed a
    /// monitoring stack would tail.
    pub fn events_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&serde_json::to_string(e).expect("event serializes infallibly"));
            out.push('\n');
        }
        let counters =
            serde_json::to_string(&self.report.counters()).expect("counters serialize infallibly");
        // Splice the tag into the counters object so every line in the
        // stream is dispatchable on "type".
        out.push_str(&format!("{{\"type\":\"counters\",{}\n", &counters[1..]));
        out
    }
}

/// Mutable cycle state the step effects build up.
#[derive(Default)]
struct CycleState {
    transfers: Vec<Transfer>,
    db_secs: f64,
    db_bounds: HashMap<usize, usize>,
    slurm: Option<SlurmStats>,
    agg_secs: f64,
    raw_output_bytes: u64,
    summary_bytes: u64,
    dropped: Vec<DroppedCell>,
    /// Site the execute step actually ran on; downstream collect and
    /// transfer steps re-plan from this after a failover.
    exec_site: Option<Site>,
}

/// One successful attempt.
struct AttemptOk {
    duration_secs: f64,
    effect: StepEffect,
    /// Completion-time label override (e.g. the execute step reports
    /// its completed-task count).
    label: Option<String>,
}

/// Per-step accumulator for the resilience layer: resource calls (for
/// the journal and breaker replay), failover/hedge/reroute outcomes,
/// and the events they raised — carried across the step's attempts.
struct StepCtx {
    step: StepId,
    calls: Vec<ResourceCall>,
    failover: Option<Site>,
    hedges: u32,
    reroutes: u32,
    events: Vec<EngineEvent>,
}

impl StepCtx {
    fn new(step: StepId) -> Self {
        StepCtx {
            step,
            calls: Vec::new(),
            failover: None,
            hedges: 0,
            reroutes: 0,
            events: Vec::new(),
        }
    }

    /// Record a call against a guarded resource: journal it, feed the
    /// breaker, and surface any breaker transition as an event.
    fn record_call(
        &mut self,
        breakers: &mut BreakerSet,
        resource: Resource,
        at_secs: f64,
        success: bool,
    ) {
        self.calls.push(ResourceCall { resource, at_secs, success });
        if let Some((from, to)) = breakers.get_mut(resource).record(at_secs, success) {
            self.events.push(EngineEvent::BreakerTransition { resource, at_secs, from, to });
        }
    }
}

/// The workflow engine: DAG + environment + fault plan + deadline and
/// failover policies.
#[derive(Clone, Debug)]
pub struct Engine {
    pub dag: Dag,
    pub env: CycleEnv,
    pub faults: FaultPlan,
    pub deadline: DeadlinePolicy,
    pub failover: FailoverPolicy,
    pub breaker: BreakerConfig,
    /// Tick-level checkpoint/restart policy applied to every Slurm
    /// execution (disabled by default — preempted tasks restart from
    /// scratch, the classic behaviour).
    pub checkpoint: CheckpointPolicy,
}

impl Engine {
    /// A quiet engine (no faults, no shedding, no failover) over a DAG.
    pub fn new(dag: Dag, env: CycleEnv) -> Self {
        Engine {
            dag,
            env,
            faults: FaultPlan::default(),
            deadline: DeadlinePolicy::default(),
            failover: FailoverPolicy::default(),
            breaker: BreakerConfig::default(),
            checkpoint: CheckpointPolicy::default(),
        }
    }

    /// A Slurm simulator on `cluster` carrying this engine's checkpoint
    /// policy.
    fn slurm_sim(&self, cluster: ClusterSpec) -> SlurmSim {
        let mut sim = SlurmSim::new(cluster);
        sim.checkpoint = self.checkpoint;
        sim
    }

    /// Run the cycle from scratch.
    pub fn run(&self) -> RunResult {
        self.resume(&Journal::default())
    }

    /// Run the cycle, replaying completed steps from `journal` instead
    /// of re-executing them, then continuing live.
    pub fn resume(&self, journal: &Journal) -> RunResult {
        let replayed: HashMap<StepId, &JournalEntry> =
            journal.entries.iter().map(|e| (e.step, e)).collect();
        let mut state = CycleState::default();
        let mut breakers = BreakerSet::new(self.breaker);
        let mut events: Vec<EngineEvent> = Vec::new();
        let mut out = Journal::default();
        let mut live_steps: Vec<StepId> = Vec::new();
        let mut timeline: Vec<TimelineEvent> = Vec::new();
        let mut end_times: Vec<Option<f64>> = vec![None; self.dag.len()];
        let mut failed_steps: Vec<String> = Vec::new();
        let mut blocked_steps: Vec<String> = Vec::new();
        let mut total_retries = 0u32;

        for (id, spec) in self.dag.steps.iter().enumerate() {
            if spec.deps.iter().any(|&d| end_times[d].is_none()) {
                blocked_steps.push(spec.name.clone());
                continue;
            }
            let start =
                spec.deps.iter().map(|&d| end_times[d].expect("dep end")).fold(0.0, f64::max);

            if let Some(entry) = replayed.get(&id) {
                // Checkpoint replay: apply the recorded effect and feed
                // the recorded resource calls to the breakers (so
                // breaker state at the first live step matches the
                // uninterrupted run), skipping execution entirely.
                apply_effect(&entry.effect, &mut state);
                breakers.replay(&entry.calls);
                let end = entry.event.start_secs + entry.event.duration_secs;
                end_times[id] = Some(end);
                total_retries += entry.attempts.saturating_sub(1);
                timeline.push(entry.event.clone());
                out.entries.push((*entry).clone());
                events.push(EngineEvent::StepReplayed { step: id, end_secs: end });
                continue;
            }

            events.push(EngineEvent::StepStarted {
                step: id,
                name: spec.name.clone(),
                at_secs: start,
            });
            let mut ctx = StepCtx::new(id);
            let mut attempt = 0u32;
            let mut elapsed = 0.0f64;
            let mut wasted_total = 0.0f64;
            let outcome = loop {
                let res = self.exec_attempt(
                    spec,
                    attempt,
                    start + elapsed,
                    &state,
                    &mut breakers,
                    &mut ctx,
                );
                events.append(&mut ctx.events);
                match res {
                    Ok(ok) => break Some((ok, attempt + 1)),
                    Err(wasted) => {
                        wasted_total += wasted;
                        elapsed += wasted;
                        total_retries += 1;
                        let last = attempt + 1 >= spec.retry.max_attempts();
                        let backoff = if last { 0.0 } else { spec.retry.backoff_secs(attempt) };
                        events.push(EngineEvent::AttemptFailed {
                            step: id,
                            attempt,
                            wasted_secs: wasted,
                            backoff_secs: backoff,
                        });
                        if last {
                            break None;
                        }
                        elapsed += backoff;
                        attempt += 1;
                    }
                }
            };

            match outcome {
                None => {
                    failed_steps.push(spec.name.clone());
                    events.push(EngineEvent::StepFailed {
                        step: id,
                        attempts: spec.retry.max_attempts(),
                        at_secs: start + elapsed,
                    });
                }
                Some((ok, attempts)) => {
                    apply_effect(&ok.effect, &mut state);
                    if let StepEffect::Execution { dropped, .. } = &ok.effect {
                        if !dropped.is_empty() {
                            events.push(EngineEvent::CellsShed {
                                step: id,
                                dropped: dropped.clone(),
                            });
                        }
                    }
                    let duration = elapsed + ok.duration_secs;
                    let event = TimelineEvent {
                        label: ok.label.unwrap_or_else(|| spec.name.clone()),
                        site: ctx.failover.unwrap_or(spec.site),
                        start_secs: start,
                        duration_secs: duration,
                        automated: spec.automated,
                    };
                    end_times[id] = Some(start + duration);
                    timeline.push(event.clone());
                    // Snapshot lineage for the step attempt: which
                    // tasks were preempted and the tick each resumes
                    // from (empty unless checkpointing recovered work).
                    let snapshots = match &ok.effect {
                        StepEffect::Execution { slurm, .. } => slurm.resume_log.clone(),
                        _ => Vec::new(),
                    };
                    out.entries.push(JournalEntry {
                        step: id,
                        attempts,
                        wasted_secs: wasted_total,
                        event,
                        effect: ok.effect,
                        calls: ctx.calls,
                        failover: ctx.failover,
                        hedges: ctx.hedges,
                        reroutes: ctx.reroutes,
                        snapshots,
                    });
                    events.push(EngineEvent::StepCompleted {
                        step: id,
                        attempts,
                        start_secs: start,
                        end_secs: start + duration,
                    });
                    live_steps.push(id);
                }
            }
        }

        // Stable sort: ties keep step-id order, so a pure chain matches
        // the hand-rolled sequence exactly.
        timeline.sort_by(|a, b| a.start_secs.partial_cmp(&b.start_secs).expect("NaN start"));
        let cycle_secs = end_times.iter().flatten().fold(0.0f64, |a, &b| a.max(b));
        let window = self.env.remote.window_secs() as f64;
        let within_window = failed_steps.is_empty()
            && blocked_steps.is_empty()
            && match &state.slurm {
                Some(s) => {
                    s.unstarted == 0 && state.db_secs + s.makespan_secs + state.agg_secs <= window
                }
                None => true,
            };
        // Resilience tallies come from the journal, not the event
        // stream, so a resumed run (whose replayed steps emit no
        // failover/hedge events) reports identically to the full run.
        let failover_steps: Vec<String> = out
            .entries
            .iter()
            .filter(|e| e.failover.is_some())
            .map(|e| self.dag.steps[e.step].name.clone())
            .collect();
        let hedges = out.entries.iter().map(|e| e.hedges).sum();
        let reroutes = out.entries.iter().map(|e| e.reroutes).sum();
        RunResult {
            report: CycleReport {
                timeline,
                transfers: state.transfers,
                slurm: state.slurm,
                n_tasks: self.env.tasks.len(),
                raw_output_bytes: state.raw_output_bytes,
                summary_bytes: state.summary_bytes,
                dropped_cells: state.dropped,
                failed_steps,
                blocked_steps,
                total_retries,
                failover_steps,
                hedges,
                reroutes,
                within_window,
                cycle_secs,
            },
            journal: out,
            events,
            live_steps,
        }
    }

    /// Execute one attempt of a step. `Ok` carries the attempt duration
    /// and effect; `Err` carries the wasted seconds. With the failover
    /// policy disabled this is exactly the classic engine; enabled, the
    /// transfer / restore / execute kinds route through the
    /// breaker-aware variants.
    fn exec_attempt(
        &self,
        spec: &StepSpec,
        attempt: u32,
        attempt_start: f64,
        state: &CycleState,
        breakers: &mut BreakerSet,
        ctx: &mut StepCtx,
    ) -> Result<AttemptOk, f64> {
        match &spec.kind {
            StepKind::Fixed { secs } => {
                Ok(AttemptOk { duration_secs: *secs, effect: StepEffect::None, label: None })
            }
            StepKind::Flaky { secs, fail_attempts, wasted_secs } => {
                if attempt < *fail_attempts {
                    Err(*wasted_secs)
                } else {
                    Ok(AttemptOk { duration_secs: *secs, effect: StepEffect::None, label: None })
                }
            }
            StepKind::Transfer { from, to, bytes, label } => {
                let n = match bytes {
                    BytesSpec::Const { bytes } => *bytes,
                    BytesSpec::Summaries => state.summary_bytes,
                };
                if self.failover.enabled {
                    return self.exec_transfer_failover(
                        spec,
                        (*from, *to, n, label),
                        attempt,
                        attempt_start,
                        state,
                        breakers,
                        ctx,
                    );
                }
                match self.env.link.attempt(&self.faults.link, label, attempt, n) {
                    Ok(duration) => {
                        if let Some(cap) = spec.retry.timeout_secs {
                            if duration > cap {
                                return Err(cap);
                            }
                        }
                        Ok(AttemptOk {
                            duration_secs: duration,
                            effect: StepEffect::Transfer {
                                transfer: Transfer {
                                    from: *from,
                                    to: *to,
                                    bytes: n,
                                    label: label.clone(),
                                    start_secs: attempt_start,
                                    duration_secs: duration,
                                },
                            },
                            label: None,
                        })
                    }
                    Err(wasted) => Err(match spec.retry.timeout_secs {
                        Some(cap) => wasted.min(cap),
                        None => wasted,
                    }),
                }
            }
            StepKind::DbRestore => {
                if self.failover.enabled {
                    return Ok(self.exec_db_failover(attempt_start, breakers, ctx));
                }
                let mut bounds = Vec::with_capacity(self.env.region_rows.len());
                let mut secs = 0.0f64;
                for &(region, rows) in &self.env.region_rows {
                    let mut db = PopulationDb::new(region, rows, self.env.db_max_connections);
                    if self.faults.db_exhaust_prob > 0.0
                        && fault_unit(self.faults.seed, "db-exhaust", region as u64)
                            < self.faults.db_exhaust_prob
                    {
                        db.exhaust(self.faults.db_keep_fraction);
                    }
                    secs = secs.max(db.startup_secs(true));
                    bounds.push((region, db.task_bound(self.env.conns_per_task)));
                }
                Ok(AttemptOk {
                    duration_secs: secs,
                    effect: StepEffect::DbRestore { startup_secs: secs, bounds },
                    label: None,
                })
            }
            StepKind::SlurmExecute => {
                if self.failover.enabled {
                    Ok(self.exec_slurm_failover(attempt_start, state, breakers, ctx))
                } else {
                    Ok(self.exec_slurm(state))
                }
            }
            StepKind::Collect => {
                // Aggregation runs where the outputs are; after an
                // execute failover that is the home cluster (classic
                // runs always see Remote here, so nothing changes).
                let nodes = match state.exec_site {
                    Some(Site::Home) => {
                        if spec.site == Site::Remote {
                            ctx.failover = Some(Site::Home);
                        }
                        self.env.home.nodes
                    }
                    _ => self.env.remote.nodes,
                };
                let busy = state.slurm.as_ref().map(|s| s.busy_node_secs).unwrap_or(0.0);
                let agg = (busy * 0.02 / nodes as f64).max(60.0);
                Ok(AttemptOk {
                    duration_secs: agg,
                    effect: StepEffect::Collect { agg_secs: agg },
                    label: None,
                })
            }
        }
    }

    /// Breaker-aware transfer attempt with re-routing, localization,
    /// and hedging.
    #[allow(clippy::too_many_arguments)]
    fn exec_transfer_failover(
        &self,
        spec: &StepSpec,
        (from, to, n, label): (Site, Site, u64, &str),
        attempt: u32,
        attempt_start: f64,
        state: &CycleState,
        breakers: &mut BreakerSet,
        ctx: &mut StepCtx,
    ) -> Result<AttemptOk, f64> {
        // Localization: after an execute failover the outputs are
        // already on the home cluster, so the return transfer collapses
        // to a local staging copy (disk-to-disk, no WAN, no WAN
        // faults).
        if from == Site::Remote && state.exec_site == Some(Site::Home) {
            let local = GlobusLink { bandwidth_bps: 1.0e9, overhead_secs: 5.0 };
            let duration = local.duration_secs(n);
            ctx.failover = Some(Site::Home);
            return Ok(AttemptOk {
                duration_secs: duration,
                effect: StepEffect::Transfer {
                    transfer: Transfer {
                        from: Site::Home,
                        to: Site::Home,
                        bytes: n,
                        label: format!("{label} (local staging)"),
                        start_secs: attempt_start,
                        duration_secs: duration,
                    },
                },
                label: None,
            });
        }

        if !breakers.get(Resource::GlobusLink).admits(attempt_start) {
            // Primary path's breaker open: take the slow-but-reliable
            // fallback route. No breaker call is recorded — the
            // fallback says nothing about the primary's health.
            ctx.reroutes += 1;
            ctx.events.push(EngineEvent::Rerouted {
                step: ctx.step,
                resource: Resource::GlobusLink,
                at_secs: attempt_start,
            });
            let duration = self.env.fallback_link.duration_secs(n);
            if let Some(cap) = spec.retry.timeout_secs {
                if duration > cap {
                    return Err(cap);
                }
            }
            return Ok(AttemptOk {
                duration_secs: duration,
                effect: StepEffect::Transfer {
                    transfer: Transfer {
                        from,
                        to,
                        bytes: n,
                        label: format!("{label} (fallback route)"),
                        start_secs: attempt_start,
                        duration_secs: duration,
                    },
                },
                label: None,
            });
        }

        match self.env.link.attempt(&self.faults.link, label, attempt, n) {
            Ok(duration) => {
                ctx.record_call(breakers, Resource::GlobusLink, attempt_start + duration, true);
                let mut effective = duration;
                let mut hedge_won = false;
                if let Some(h) = self.failover.hedge {
                    let trigger = h.latency_factor * self.env.link.duration_secs(n);
                    if duration > trigger {
                        // The attempt is straggling: duplicate it on
                        // the fallback route and take the earlier
                        // finisher.
                        ctx.hedges += 1;
                        let hedged = trigger + self.env.fallback_link.duration_secs(n);
                        hedge_won = hedged < duration;
                        ctx.events.push(EngineEvent::HedgeFired {
                            step: ctx.step,
                            resource: Resource::GlobusLink,
                            at_secs: attempt_start + trigger,
                            won: hedge_won,
                        });
                        effective = effective.min(hedged);
                    }
                }
                if let Some(cap) = spec.retry.timeout_secs {
                    if effective > cap {
                        return Err(cap);
                    }
                }
                let xfer_label =
                    if hedge_won { format!("{label} (hedged)") } else { label.to_string() };
                Ok(AttemptOk {
                    duration_secs: effective,
                    effect: StepEffect::Transfer {
                        transfer: Transfer {
                            from,
                            to,
                            bytes: n,
                            label: xfer_label,
                            start_secs: attempt_start,
                            duration_secs: effective,
                        },
                    },
                    label: None,
                })
            }
            Err(wasted) => {
                let wasted = match spec.retry.timeout_secs {
                    Some(cap) => wasted.min(cap),
                    None => wasted,
                };
                ctx.record_call(breakers, Resource::GlobusLink, attempt_start + wasted, false);
                Err(wasted)
            }
        }
    }

    /// Breaker-aware snapshot restore: per-region health calls, standby
    /// replicas when the database breaker is open, hedged restores for
    /// stragglers.
    fn exec_db_failover(
        &self,
        attempt_start: f64,
        breakers: &mut BreakerSet,
        ctx: &mut StepCtx,
    ) -> AttemptOk {
        let conns = self.env.conns_per_task;
        let mut bounds = Vec::with_capacity(self.env.region_rows.len());
        let mut secs = 0.0f64;
        for &(region, rows) in &self.env.region_rows {
            let standby = PopulationDb::standby(region, rows, self.env.db_max_connections);
            if !breakers.get(Resource::PopulationDb).admits(attempt_start) {
                // Fleet breaker open: restore this region on its cold
                // standby from the start. The standby has a clean
                // connection bound and is off the faulted nodes.
                ctx.reroutes += 1;
                ctx.events.push(EngineEvent::Rerouted {
                    step: ctx.step,
                    resource: Resource::PopulationDb,
                    at_secs: attempt_start,
                });
                secs = secs.max(standby.startup_secs(true));
                bounds.push((region, standby.task_bound(conns)));
                continue;
            }
            let mut db = PopulationDb::new(region, rows, self.env.db_max_connections);
            let exhausted = self.faults.db_exhaust_prob > 0.0
                && fault_unit(self.faults.seed, "db-exhaust", region as u64)
                    < self.faults.db_exhaust_prob;
            if exhausted {
                db.exhaust(self.faults.db_keep_fraction);
            }
            ctx.record_call(breakers, Resource::PopulationDb, attempt_start, !exhausted);
            let nominal = db.startup_secs(true);
            let mut restore = nominal;
            if self.faults.db_slow_prob > 0.0
                && fault_unit(self.faults.seed, "db-slow", region as u64) < self.faults.db_slow_prob
            {
                restore *= self.faults.db_slow_factor;
            }
            let mut bound = db.task_bound(conns);
            if let Some(h) = self.failover.hedge {
                let trigger = h.latency_factor * nominal;
                if restore > trigger {
                    // Straggling restore: race a standby restore
                    // started at the trigger point.
                    ctx.hedges += 1;
                    let hedged = trigger + standby.startup_secs(true);
                    let won = hedged < restore;
                    ctx.events.push(EngineEvent::HedgeFired {
                        step: ctx.step,
                        resource: Resource::PopulationDb,
                        at_secs: attempt_start + trigger,
                        won,
                    });
                    if won {
                        restore = hedged;
                        bound = standby.task_bound(conns);
                    }
                }
            }
            secs = secs.max(restore);
            bounds.push((region, bound));
        }
        AttemptOk {
            duration_secs: secs,
            effect: StepEffect::DbRestore { startup_secs: secs, bounds },
            label: None,
        }
    }

    /// The night's tasks with straggler faults applied.
    fn night_tasks(&self) -> Vec<Task> {
        let mut tasks: Vec<Task> = self.env.tasks.clone();
        if self.faults.straggler_prob > 0.0 {
            for t in &mut tasks {
                if fault_unit(self.faults.seed, "straggler", t.id as u64)
                    < self.faults.straggler_prob
                {
                    t.actual_secs *= self.faults.straggler_factor;
                }
            }
        }
        tasks
    }

    /// Pack + execute under Slurm, with straggler and node-failure
    /// faults and the deadline-degradation loop.
    fn exec_slurm(&self, state: &CycleState) -> AttemptOk {
        let default_bound = self.env.db_max_connections / self.env.conns_per_task.max(1);
        let bound_of = |r: usize| state.db_bounds.get(&r).copied().unwrap_or(default_bound).max(1);
        let window = self.env.remote.window_secs() as f64;

        let mut kept: Vec<Task> = self.night_tasks();
        let mut dropped: Vec<DroppedCell> = Vec::new();
        let (stats, agg) = loop {
            let plan = pack(&kept, self.env.remote.nodes, bound_of, self.env.algo);
            let order: Vec<usize> =
                plan.levels.iter().flat_map(|l| l.tasks.iter().copied()).collect();
            let stats = self.slurm_sim(self.env.remote.clone()).run_with_faults(
                &kept,
                &order,
                bound_of,
                &self.faults.node_failures,
            );
            let agg = (stats.busy_node_secs * 0.02 / self.env.remote.nodes as f64).max(60.0);
            let fits = stats.unstarted == 0 && state.db_secs + stats.makespan_secs + agg <= window;
            if fits || !self.deadline.shed_cells {
                break (stats, agg);
            }
            // Shed the lowest-priority (highest-index) remaining cell.
            let Some(shed) = kept.iter().map(|t| t.cell).max() else {
                break (stats, agg);
            };
            let n_before = kept.len();
            kept.retain(|t| t.cell != shed);
            dropped.push(DroppedCell { cell: shed, tasks: n_before - kept.len() });
        };
        let _ = agg; // projected aggregation; the Collect step recomputes it

        self.finish_slurm(stats, &kept, dropped, Site::Remote, 0.0)
    }

    /// Breaker-aware execute step. Tries the remote window first (when
    /// its breaker admits), and instead of shedding cells on a miss,
    /// re-plans the whole night onto the home cluster at failover
    /// slowdown — shedding there only as a last resort.
    fn exec_slurm_failover(
        &self,
        step_start: f64,
        state: &CycleState,
        breakers: &mut BreakerSet,
        ctx: &mut StepCtx,
    ) -> AttemptOk {
        let default_bound = self.env.db_max_connections / self.env.conns_per_task.max(1);
        let bound_of = |r: usize| state.db_bounds.get(&r).copied().unwrap_or(default_bound).max(1);
        let window = self.env.remote.window_secs() as f64;
        let base = self.night_tasks();

        // Detection latency charged to a failover after a mid-window
        // loss: the operator notices at the first node failure.
        let mut wasted = 0.0f64;
        if breakers.get(Resource::RemoteCluster).admits(step_start) {
            let plan = pack(&base, self.env.remote.nodes, bound_of, self.env.algo);
            let order: Vec<usize> =
                plan.levels.iter().flat_map(|l| l.tasks.iter().copied()).collect();
            let stats = self.slurm_sim(self.env.remote.clone()).run_with_faults(
                &base,
                &order,
                bound_of,
                &self.faults.node_failures,
            );
            let agg = (stats.busy_node_secs * 0.02 / self.env.remote.nodes as f64).max(60.0);
            let fits = stats.finished_all() && state.db_secs + stats.makespan_secs + agg <= window;
            ctx.record_call(
                breakers,
                Resource::RemoteCluster,
                step_start + stats.makespan_secs.min(window),
                fits && stats.preempted == 0,
            );
            if fits {
                return self.finish_slurm(stats, &base, Vec::new(), Site::Remote, 0.0);
            }
            if stats.preempted > 0 {
                wasted = self
                    .faults
                    .node_failures
                    .iter()
                    .map(|f| f.at_secs)
                    .fold(f64::INFINITY, f64::min)
                    .clamp(0.0, stats.makespan_secs);
            }
        }
        // Otherwise (breaker already open, or the remote night is
        // lost): re-plan on home. Node failures are not carried over —
        // they modeled the remote cluster's hardware.
        ctx.failover = Some(Site::Home);
        ctx.events.push(EngineEvent::FailedOver {
            step: ctx.step,
            from: Site::Remote,
            to: Site::Home,
            at_secs: step_start + wasted,
        });
        let slowdown = self
            .failover
            .home_slowdown
            .unwrap_or_else(|| self.env.home.failover_slowdown(&self.env.remote));
        let mut kept: Vec<Task> = base;
        for t in &mut kept {
            t.actual_secs *= slowdown;
        }
        let mut dropped: Vec<DroppedCell> = Vec::new();
        let stats = loop {
            let plan = pack(&kept, self.env.home.nodes, bound_of, self.env.algo);
            let order: Vec<usize> =
                plan.levels.iter().flat_map(|l| l.tasks.iter().copied()).collect();
            let stats =
                self.slurm_sim(self.env.home.clone()).run_with_faults(&kept, &order, bound_of, &[]);
            let agg = (stats.busy_node_secs * 0.02 / self.env.home.nodes as f64).max(60.0);
            let fits = stats.finished_all()
                && state.db_secs + wasted + stats.makespan_secs + agg <= window;
            if fits || !self.deadline.shed_cells {
                break stats;
            }
            let Some(shed) = kept.iter().map(|t| t.cell).max() else {
                break stats;
            };
            let n_before = kept.len();
            kept.retain(|t| t.cell != shed);
            dropped.push(DroppedCell { cell: shed, tasks: n_before - kept.len() });
        };
        self.finish_slurm(stats, &kept, dropped, Site::Home, wasted)
    }

    /// Shared execute-step epilogue: output volumes over the tasks that
    /// ran, the timeline label, and the journalable effect. `wasted` is
    /// folded into the reported makespan so the window check and the
    /// timeline agree on the night's true span.
    fn finish_slurm(
        &self,
        mut stats: SlurmStats,
        kept: &[Task],
        dropped: Vec<DroppedCell>,
        site: Site,
        wasted: f64,
    ) -> AttemptOk {
        stats.makespan_secs += wasted;

        // Output volumes over tasks that ran (per completed simulation:
        // ~25% attack over the population, ~6 transitions/case, 24 B per
        // line; summaries per Table I shape).
        let region_pop: HashMap<usize, u64> = self.env.region_rows.iter().copied().collect();
        let mut raw_output_bytes = 0u64;
        let mut summary_bytes = 0u64;
        for (ti, t) in kept.iter().enumerate() {
            if stats.start_times[ti].is_none() {
                continue;
            }
            let pop = region_pop.get(&t.region).copied().unwrap_or(0);
            raw_output_bytes += (pop as f64 * 0.25 * 6.0 * 24.0) as u64;
            summary_bytes += 365 * 90 * 3 * 4;
        }

        let label =
            format!("Slurm job arrays: {} simulations ({} completed)", kept.len(), stats.completed);
        AttemptOk {
            duration_secs: stats.makespan_secs,
            effect: StepEffect::Execution {
                slurm: stats,
                raw_output_bytes,
                summary_bytes,
                dropped,
                site,
            },
            label: Some(label),
        }
    }
}

fn apply_effect(effect: &StepEffect, state: &mut CycleState) {
    match effect {
        StepEffect::None => {}
        StepEffect::Transfer { transfer } => state.transfers.push(transfer.clone()),
        StepEffect::DbRestore { startup_secs, bounds } => {
            state.db_secs = *startup_secs;
            state.db_bounds = bounds.iter().copied().collect();
        }
        StepEffect::Execution { slurm, raw_output_bytes, summary_bytes, dropped, site } => {
            state.slurm = Some(slurm.clone());
            state.raw_output_bytes = *raw_output_bytes;
            state.summary_bytes = *summary_bytes;
            state.dropped = dropped.clone();
            state.exec_site = Some(*site);
        }
        StepEffect::Collect { agg_secs } => state.agg_secs = *agg_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step::RetryPolicy;

    fn fixed(name: &str, secs: f64, deps: Vec<StepId>) -> StepSpec {
        StepSpec {
            name: name.into(),
            site: Site::Home,
            automated: true,
            kind: StepKind::Fixed { secs },
            deps,
            retry: RetryPolicy::none(),
        }
    }

    #[test]
    fn chain_runs_sequentially() {
        let mut dag = Dag::default();
        let a = dag.add(fixed("a", 10.0, vec![]));
        let b = dag.add(fixed("b", 5.0, vec![a]));
        dag.add(fixed("c", 1.0, vec![b]));
        let result = Engine::new(dag, CycleEnv::synthetic()).run();
        assert_eq!(result.report.cycle_secs, 16.0);
        assert_eq!(result.report.timeline.len(), 3);
        assert_eq!(result.journal.entries.len(), 3);
        assert!(result.report.within_window);
    }

    #[test]
    fn diamond_starts_join_at_slowest_branch() {
        let mut dag = Dag::default();
        let a = dag.add(fixed("a", 10.0, vec![]));
        let fast = dag.add(fixed("fast", 1.0, vec![a]));
        let slow = dag.add(fixed("slow", 100.0, vec![a]));
        dag.add(fixed("join", 1.0, vec![fast, slow]));
        let result = Engine::new(dag, CycleEnv::synthetic()).run();
        let join = result.journal.entries.iter().find(|e| e.event.label == "join").unwrap();
        assert_eq!(join.event.start_secs, 110.0);
        assert_eq!(result.report.cycle_secs, 111.0);
    }

    #[test]
    fn flaky_step_retries_with_backoff() {
        let mut dag = Dag::default();
        dag.add(StepSpec {
            name: "flaky".into(),
            site: Site::Remote,
            automated: true,
            kind: StepKind::Flaky { secs: 10.0, fail_attempts: 2, wasted_secs: 3.0 },
            deps: vec![],
            retry: RetryPolicy::retries(3, 4.0),
        });
        let result = Engine::new(dag, CycleEnv::synthetic()).run();
        let entry = &result.journal.entries[0];
        assert_eq!(entry.attempts, 3);
        assert_eq!(entry.wasted_secs, 6.0);
        // elapsed = 3 + 4 (backoff) + 3 + 8 (backoff) + 10
        assert_eq!(result.report.cycle_secs, 28.0);
        assert_eq!(result.report.total_retries, 2);
    }

    #[test]
    fn exhausted_retries_fail_and_block_dependents() {
        let mut dag = Dag::default();
        let f = dag.add(StepSpec {
            name: "doomed".into(),
            site: Site::Remote,
            automated: true,
            kind: StepKind::Flaky { secs: 10.0, fail_attempts: 99, wasted_secs: 1.0 },
            deps: vec![],
            retry: RetryPolicy::retries(2, 1.0),
        });
        dag.add(fixed("downstream", 1.0, vec![f]));
        let result = Engine::new(dag, CycleEnv::synthetic()).run();
        assert_eq!(result.report.failed_steps, vec!["doomed".to_string()]);
        assert_eq!(result.report.blocked_steps, vec!["downstream".to_string()]);
        assert_eq!(result.report.total_retries, 3);
        assert!(!result.report.within_window);
        assert!(result.journal.entries.is_empty());
    }

    #[test]
    fn resume_skips_completed_steps() {
        let mut dag = Dag::default();
        let a = dag.add(fixed("a", 10.0, vec![]));
        let b = dag.add(fixed("b", 5.0, vec![a]));
        dag.add(fixed("c", 1.0, vec![b]));
        let engine = Engine::new(dag, CycleEnv::synthetic());
        let full = engine.run();
        for k in 0..=full.journal.entries.len() {
            let resumed = engine.resume(&full.journal.prefix(k));
            assert_eq!(resumed.report, full.report, "prefix {k}");
            assert_eq!(resumed.journal, full.journal, "prefix {k}");
            assert_eq!(resumed.live_steps.len(), 3 - k, "prefix {k} must not redo work");
        }
    }

    #[test]
    fn timeout_caps_attempt_cost() {
        // A transfer whose duration exceeds the timeout fails every
        // attempt at the cap.
        let mut dag = Dag::default();
        dag.add(StepSpec {
            name: "too slow".into(),
            site: Site::Home,
            automated: true,
            kind: StepKind::Transfer {
                from: Site::Home,
                to: Site::Remote,
                bytes: BytesSpec::Const { bytes: 250_000_000_000 }, // 1000 s at 250 MB/s
                label: "huge".into(),
            },
            deps: vec![],
            retry: RetryPolicy { timeout_secs: Some(100.0), ..RetryPolicy::retries(1, 0.0) },
        });
        let result = Engine::new(dag, CycleEnv::synthetic()).run();
        assert_eq!(result.report.failed_steps.len(), 1);
        let failed_at = result
            .events
            .iter()
            .find_map(|e| match e {
                EngineEvent::StepFailed { at_secs, .. } => Some(*at_secs),
                _ => None,
            })
            .unwrap();
        assert_eq!(failed_at, 200.0, "two attempts, each capped at 100 s");
    }
}
