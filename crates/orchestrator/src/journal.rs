//! Write-ahead journal of step completions.
//!
//! The engine appends one [`JournalEntry`] per *completed* step — the
//! timeline event it produced and the effect it had on cycle state —
//! before moving on. A cycle interrupted at any point can be resumed
//! from the journal: completed steps are replayed by applying their
//! recorded effects (no re-execution), and the run continues from the
//! first missing step. Because all fault draws are stateless (see
//! [`crate::faults`]), the resumed run's final report is byte-identical
//! to the report an uninterrupted run would have produced.
//!
//! The journal serializes to JSON via `to_json`/`from_json`, and to an
//! append-friendly JSON-lines form via `to_jsonl`/`recover_jsonl`,
//! which is how a real deployment persists it between the 10 pm kickoff
//! and an operator restart. On-disk writes go through
//! [`Journal::save_atomic`] (temp file + fsync + rename) or the
//! incremental [`JournalWriter`] (one fsynced line per commit record),
//! so a crash can tear at most the trailing line — which
//! [`Journal::recover_jsonl`] drops, exactly as if the step had never
//! committed.

use crate::breaker::ResourceCall;
use crate::engine::{DroppedCell, TimelineEvent};
use crate::step::StepId;
use epiflow_hpcsim::cluster::Site;
use epiflow_hpcsim::globus::Transfer;
use epiflow_hpcsim::slurm::{ResumePoint, SlurmStats};
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

/// The state delta a completed step contributed, sufficient to replay
/// the step without re-executing it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum StepEffect {
    /// No state beyond the timeline event (fixed-duration steps).
    None,
    /// A completed transfer, appended to the cycle ledger.
    Transfer { transfer: Transfer },
    /// Database snapshots instantiated; per-region concurrent-task
    /// bounds (shrunk by any exhaustion faults) feed the execute step.
    DbRestore { startup_secs: f64, bounds: Vec<(usize, usize)> },
    /// The night's Slurm execution: stats, output volumes, any cells
    /// shed to protect the deadline, and the site it ultimately ran on
    /// (differs from the spec's site after a cross-cluster failover —
    /// downstream collect/transfer steps re-plan from this on resume).
    Execution {
        slurm: SlurmStats,
        raw_output_bytes: u64,
        summary_bytes: u64,
        dropped: Vec<DroppedCell>,
        site: Site,
    },
    /// Post-simulation aggregation time.
    Collect { agg_secs: f64 },
}

/// One completed step.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JournalEntry {
    pub step: StepId,
    /// Attempts the step took (1 = first try succeeded).
    pub attempts: u32,
    /// Seconds lost to failed attempts (excluding backoff waits).
    pub wasted_secs: f64,
    pub event: TimelineEvent,
    pub effect: StepEffect,
    /// Calls the step made to breaker-guarded resources, in order.
    /// Resume replays these into the breakers so breaker state at the
    /// first live step matches the uninterrupted run.
    #[serde(default)]
    pub calls: Vec<ResourceCall>,
    /// Site the step was failed over to, if the failover policy moved
    /// it off its planned site.
    #[serde(default)]
    pub failover: Option<Site>,
    /// Speculative duplicate attempts the hedging policy launched.
    #[serde(default)]
    pub hedges: u32,
    /// Calls re-routed to the alternate resource because a breaker was
    /// open (fallback link, standby database).
    #[serde(default)]
    pub reroutes: u32,
    /// Snapshot lineage for the step's execution: each preemption that
    /// retained a tick-level checkpoint, with the tick the requeued
    /// attempt resumed from. Empty for non-execute steps and whenever
    /// checkpointing is disabled.
    #[serde(default)]
    pub snapshots: Vec<ResumePoint>,
}

/// The write-ahead journal: completions in execution order.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Journal {
    pub entries: Vec<JournalEntry>,
}

impl Journal {
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("journal serializes infallibly")
    }

    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// The journal as it stood after the first `n` completions — what a
    /// crash at that point would have left on disk.
    pub fn prefix(&self, n: usize) -> Journal {
        Journal { entries: self.entries[..n.min(self.entries.len())].to_vec() }
    }

    /// One JSON object per line, one line per commit record — the
    /// on-disk append format ([`JournalWriter`] produces the same
    /// bytes incrementally).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&serde_json::to_string(e).expect("entry serializes infallibly"));
            out.push('\n');
        }
        out
    }

    /// Parse a JSON-lines journal, rejecting any malformed line.
    pub fn from_jsonl(s: &str) -> Result<Self, serde_json::Error> {
        let mut entries = Vec::new();
        for line in s.lines() {
            if line.trim().is_empty() {
                continue;
            }
            entries.push(serde_json::from_str(line)?);
        }
        Ok(Journal { entries })
    }

    /// Crash recovery: parse every intact line and report whether a torn
    /// trailing record was dropped. Because [`JournalWriter`] fsyncs each
    /// complete line before the step is considered committed, a tear can
    /// only be the final record mid-write; dropping it leaves the journal
    /// exactly as if the crash had hit one step earlier, which resume
    /// already handles. A malformed line *before* an intact one means
    /// real corruption, and that is still an error.
    pub fn recover_jsonl(s: &str) -> Result<(Self, bool), serde_json::Error> {
        let lines: Vec<&str> = s.lines().filter(|l| !l.trim().is_empty()).collect();
        let mut entries = Vec::with_capacity(lines.len());
        for (i, line) in lines.iter().enumerate() {
            match serde_json::from_str(line) {
                Ok(e) => entries.push(e),
                Err(_) if i + 1 == lines.len() => return Ok((Journal { entries }, true)),
                Err(err) => return Err(err),
            }
        }
        Ok((Journal { entries }, false))
    }

    /// Persist atomically: write a temp file alongside `path`, fsync it,
    /// then rename over the destination (and fsync the directory so the
    /// rename itself survives power loss). Readers never observe a
    /// half-written journal.
    pub fn save_atomic(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(self.to_jsonl().as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                File::open(dir)?.sync_all()?;
            }
        }
        Ok(())
    }
}

/// Incremental write-ahead persistence: append one fsynced JSON line
/// per commit record. The fsync *before* returning is the write-ahead
/// guarantee — a step only counts as committed once its record is
/// durable, so recovery sees either the whole record or (for a tear
/// mid-line during the crash itself) a trailing fragment that
/// [`Journal::recover_jsonl`] drops.
pub struct JournalWriter {
    file: File,
}

impl JournalWriter {
    /// Create (truncating) the journal file, durably: the empty file is
    /// fsynced and so is its parent directory, so the journal's
    /// directory entry survives a crash between creation and the first
    /// commit. (`save_atomic` already fsyncs the directory after its
    /// rename; without this, the incremental path's first commit could
    /// be fsynced into a file that power loss then unlinks.)
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = File::create(path)?;
        file.sync_all()?;
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                File::open(dir)?.sync_all()?;
            }
        }
        Ok(JournalWriter { file })
    }

    /// Durably append one commit record.
    pub fn commit(&mut self, entry: &JournalEntry) -> io::Result<()> {
        let mut line = serde_json::to_string(entry).expect("entry serializes infallibly");
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::Resource;

    fn entry(step: StepId) -> JournalEntry {
        JournalEntry {
            step,
            attempts: 1,
            wasted_secs: 0.0,
            event: TimelineEvent {
                label: format!("step {step}"),
                site: Site::Remote,
                start_secs: step as f64,
                duration_secs: 1.0,
                automated: true,
            },
            effect: StepEffect::None,
            calls: Vec::new(),
            failover: None,
            hedges: 0,
            reroutes: 0,
            snapshots: Vec::new(),
        }
    }

    #[test]
    fn journal_round_trips_through_json() {
        let journal = Journal {
            entries: vec![JournalEntry {
                step: 1,
                attempts: 3,
                wasted_secs: 41.5,
                event: TimelineEvent {
                    label: "Globus: configs home → remote".into(),
                    site: Site::Home,
                    start_secs: 7200.0,
                    duration_secs: 123.456,
                    automated: false,
                },
                effect: StepEffect::Transfer {
                    transfer: Transfer {
                        from: Site::Home,
                        to: Site::Remote,
                        bytes: 4_590_000_000,
                        label: "daily configs".into(),
                        start_secs: 7241.5,
                        duration_secs: 123.456,
                    },
                },
                calls: vec![
                    ResourceCall {
                        resource: Resource::GlobusLink,
                        at_secs: 7200.0,
                        success: false,
                    },
                    ResourceCall { resource: Resource::GlobusLink, at_secs: 7241.5, success: true },
                ],
                failover: Some(Site::Home),
                hedges: 1,
                reroutes: 2,
                snapshots: vec![
                    ResumePoint { task: 3, tick: 48 },
                    ResumePoint { task: 3, tick: 112 },
                ],
            }],
        };
        let json = journal.to_json();
        let back = Journal::from_json(&json).expect("parse own journal");
        assert_eq!(back, journal);
    }

    #[test]
    fn prefix_truncates() {
        let mut journal = Journal::default();
        for step in 0..4 {
            journal.entries.push(entry(step));
        }
        assert_eq!(journal.prefix(2).entries.len(), 2);
        assert_eq!(journal.prefix(99), journal);
    }

    #[test]
    fn jsonl_round_trips() {
        let journal = Journal { entries: (0..3).map(entry).collect() };
        let jsonl = journal.to_jsonl();
        assert_eq!(jsonl.lines().count(), 3, "one line per commit record");
        let back = Journal::from_jsonl(&jsonl).expect("parse own jsonl");
        assert_eq!(back, journal);
        let (recovered, torn) = Journal::recover_jsonl(&jsonl).expect("recover intact jsonl");
        assert_eq!(recovered, journal);
        assert!(!torn);
    }

    #[test]
    fn recovery_drops_torn_trailing_record() {
        let journal = Journal { entries: (0..3).map(entry).collect() };
        let jsonl = journal.to_jsonl();
        // Crash mid-write of the final record: keep the first two lines
        // plus half of the third.
        let split = jsonl.lines().take(2).map(|l| l.len() + 1).sum::<usize>();
        let torn_text = &jsonl[..split + jsonl.lines().nth(2).unwrap().len() / 2];
        let (recovered, torn) = Journal::recover_jsonl(torn_text).expect("recover torn jsonl");
        assert!(torn);
        assert_eq!(recovered, journal.prefix(2));
        // …but a torn line in the *middle* is corruption, not a tear.
        let mut lines: Vec<String> = jsonl.lines().map(String::from).collect();
        let half = lines[1].len() / 2;
        lines[1].truncate(half);
        assert!(Journal::recover_jsonl(&lines.join("\n")).is_err());
        // Strict parsing refuses torn journals outright.
        assert!(Journal::from_jsonl(torn_text).is_err());
    }

    #[test]
    fn writer_bytes_match_to_jsonl_and_atomic_save_round_trips() {
        let journal = Journal { entries: (0..3).map(entry).collect() };
        let dir = std::env::temp_dir().join(format!("epiflow-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let inc = dir.join("incremental.jsonl");
        let mut w = JournalWriter::create(&inc).unwrap();
        for e in &journal.entries {
            w.commit(e).unwrap();
        }
        drop(w);
        assert_eq!(std::fs::read_to_string(&inc).unwrap(), journal.to_jsonl());
        let atomic = dir.join("atomic.jsonl");
        journal.save_atomic(&atomic).unwrap();
        let (back, torn) =
            Journal::recover_jsonl(&std::fs::read_to_string(&atomic).unwrap()).unwrap();
        assert_eq!(back, journal);
        assert!(!torn);
        assert!(!atomic.with_extension("tmp").exists(), "temp file renamed away");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_without_resilience_fields_still_parses() {
        // A PR-1-era record has no calls/failover/hedges/reroutes keys;
        // `#[serde(default)]` must fill them in.
        let line = concat!(
            r#"{"step":0,"attempts":1,"wasted_secs":0.0,"#,
            r#""event":{"label":"step 0","site":"Remote","start_secs":0.0,"#,
            r#""duration_secs":1.0,"automated":true},"effect":{"type":"none"}}"#,
        );
        let journal = Journal::from_jsonl(line).expect("legacy record parses");
        assert_eq!(journal.entries.len(), 1);
        assert_eq!(journal.entries[0], entry(0));
    }

    #[test]
    fn ckpt_writer_create_is_durable_and_tolerates_bare_paths() {
        // Regression for the create-durability fix: creation in a fresh
        // directory must succeed (file + parent-dir fsync path), and a
        // parentless relative path must not error on the directory
        // fsync (the empty-parent guard).
        let dir = std::env::temp_dir().join(format!("epiflow-jwriter-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let nested = dir.join("night.jsonl");
        let mut w = JournalWriter::create(&nested).expect("create with parent dir");
        w.commit(&entry(0)).unwrap();
        drop(w);
        let (back, torn) =
            Journal::recover_jsonl(&std::fs::read_to_string(&nested).unwrap()).unwrap();
        assert!(!torn);
        assert_eq!(back.entries, vec![entry(0)]);
        // Re-creating truncates, as before the fix.
        let w2 = JournalWriter::create(&nested).expect("re-create truncates");
        drop(w2);
        assert_eq!(std::fs::read_to_string(&nested).unwrap(), "");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ckpt_snapshot_lineage_round_trips_and_defaults() {
        let mut e = entry(2);
        e.snapshots = vec![ResumePoint { task: 0, tick: 16 }, ResumePoint { task: 4, tick: 32 }];
        let journal = Journal { entries: vec![e.clone()] };
        let back = Journal::from_jsonl(&journal.to_jsonl()).expect("lineage round-trips");
        assert_eq!(back.entries[0].snapshots, e.snapshots);
        // Pre-checkpoint records carry no snapshots key.
        let line = concat!(
            r#"{"step":2,"attempts":1,"wasted_secs":0.0,"#,
            r#""event":{"label":"step 2","site":"Remote","start_secs":2.0,"#,
            r#""duration_secs":1.0,"automated":true},"effect":{"type":"none"}}"#,
        );
        let old = Journal::from_jsonl(line).expect("pre-checkpoint record parses");
        assert!(old.entries[0].snapshots.is_empty());
    }
}
