//! Write-ahead journal of step completions.
//!
//! The engine appends one [`JournalEntry`] per *completed* step — the
//! timeline event it produced and the effect it had on cycle state —
//! before moving on. A cycle interrupted at any point can be resumed
//! from the journal: completed steps are replayed by applying their
//! recorded effects (no re-execution), and the run continues from the
//! first missing step. Because all fault draws are stateless (see
//! [`crate::faults`]), the resumed run's final report is byte-identical
//! to the report an uninterrupted run would have produced.
//!
//! The journal serializes to JSON via `to_json`/`from_json`, which is
//! how a real deployment would persist it between the 10 pm kickoff and
//! an operator restart.

use crate::engine::{DroppedCell, TimelineEvent};
use crate::step::StepId;
use epiflow_hpcsim::globus::Transfer;
use epiflow_hpcsim::slurm::SlurmStats;
use serde::{Deserialize, Serialize};

/// The state delta a completed step contributed, sufficient to replay
/// the step without re-executing it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum StepEffect {
    /// No state beyond the timeline event (fixed-duration steps).
    None,
    /// A completed transfer, appended to the cycle ledger.
    Transfer { transfer: Transfer },
    /// Database snapshots instantiated; per-region concurrent-task
    /// bounds (shrunk by any exhaustion faults) feed the execute step.
    DbRestore { startup_secs: f64, bounds: Vec<(usize, usize)> },
    /// The night's Slurm execution: stats, output volumes, and any
    /// cells shed to protect the deadline.
    Execution {
        slurm: SlurmStats,
        raw_output_bytes: u64,
        summary_bytes: u64,
        dropped: Vec<DroppedCell>,
    },
    /// Post-simulation aggregation time.
    Collect { agg_secs: f64 },
}

/// One completed step.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JournalEntry {
    pub step: StepId,
    /// Attempts the step took (1 = first try succeeded).
    pub attempts: u32,
    /// Seconds lost to failed attempts (excluding backoff waits).
    pub wasted_secs: f64,
    pub event: TimelineEvent,
    pub effect: StepEffect,
}

/// The write-ahead journal: completions in execution order.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Journal {
    pub entries: Vec<JournalEntry>,
}

impl Journal {
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("journal serializes infallibly")
    }

    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// The journal as it stood after the first `n` completions — what a
    /// crash at that point would have left on disk.
    pub fn prefix(&self, n: usize) -> Journal {
        Journal { entries: self.entries[..n.min(self.entries.len())].to_vec() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epiflow_hpcsim::cluster::Site;

    #[test]
    fn journal_round_trips_through_json() {
        let journal = Journal {
            entries: vec![JournalEntry {
                step: 1,
                attempts: 3,
                wasted_secs: 41.5,
                event: TimelineEvent {
                    label: "Globus: configs home → remote".into(),
                    site: Site::Home,
                    start_secs: 7200.0,
                    duration_secs: 123.456,
                    automated: false,
                },
                effect: StepEffect::Transfer {
                    transfer: Transfer {
                        from: Site::Home,
                        to: Site::Remote,
                        bytes: 4_590_000_000,
                        label: "daily configs".into(),
                        start_secs: 7241.5,
                        duration_secs: 123.456,
                    },
                },
            }],
        };
        let json = journal.to_json();
        let back = Journal::from_json(&json).expect("parse own journal");
        assert_eq!(back, journal);
    }

    #[test]
    fn prefix_truncates() {
        let mut journal = Journal::default();
        for step in 0..4 {
            journal.entries.push(JournalEntry {
                step,
                attempts: 1,
                wasted_secs: 0.0,
                event: TimelineEvent {
                    label: format!("step {step}"),
                    site: Site::Remote,
                    start_secs: step as f64,
                    duration_secs: 1.0,
                    automated: true,
                },
                effect: StepEffect::None,
            });
        }
        assert_eq!(journal.prefix(2).entries.len(), 2);
        assert_eq!(journal.prefix(99), journal);
    }
}
