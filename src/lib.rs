//! # epiflow — Scalable Epidemiological Workflows
//!
//! A Rust reproduction of *"Scalable Epidemiological Workflows to Support
//! COVID-19 Planning and Response"* (Machi et al., IEEE IPDPS 2021): the
//! HPC workflow system that ran nightly national-scale COVID-19
//! calibration, prediction, and counterfactual analyses across two
//! supercomputing clusters.
//!
//! This facade crate re-exports all member crates under one namespace:
//!
//! * [`synthpop`] — synthetic populations and contact networks (Appendix C)
//! * [`epihiper`] — the agent-based network epidemic simulator (Appendix D)
//! * [`metapop`] — county-level SEIR metapopulation model (case study 2)
//! * [`surveillance`] — region registry and ground-truth case data
//! * [`linalg`] — the dense linear algebra under the calibration stack
//! * [`calibrate`] — GP-emulator Bayesian calibration (Appendix E)
//! * [`hpcsim`] — two-cluster HPC environment + WMP scheduling heuristics (§V)
//! * [`analytics`] — aggregation, ensembles, forecast targets, cost model
//! * [`orchestrator`] — fault-tolerant DAG workflow engine: retries,
//!   write-ahead journal checkpoint/resume, deadline-aware degradation
//! * [`core`] — the workflow layer tying everything together (§II, §IV)
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use epiflow_analytics as analytics;
pub use epiflow_calibrate as calibrate;
pub use epiflow_core as core;
pub use epiflow_epihiper as epihiper;
pub use epiflow_hpcsim as hpcsim;
pub use epiflow_linalg as linalg;
pub use epiflow_metapop as metapop;
pub use epiflow_orchestrator as orchestrator;
pub use epiflow_surveillance as surveillance;
pub use epiflow_synthpop as synthpop;
