//! Seeded fault-injection acceptance scenario for the orchestrator.
//!
//! One nightly cycle is hit with a Globus transfer drop, a mid-level
//! node crash, stragglers, and DB connection exhaustion. The engine
//! must retry the transfer per policy, absorb the crash via Slurm
//! requeue, and either finish inside the 10-hour window or degrade by
//! shedding named cells. Killing the cycle at any completed step and
//! resuming from the persisted journal must yield a byte-identical
//! final report to the uninterrupted run.

use epiflow::core::CombinedWorkflow;
use epiflow::hpcsim::slurm::NodeFailure;
use epiflow::hpcsim::task::WorkloadSpec;
use epiflow::orchestrator::{DeadlinePolicy, EngineEvent, FaultPlan, Journal, LinkFaults};
use epiflow::surveillance::{RegionRegistry, Scale};

/// A 204-task night with every fault source active. The link seed is
/// searched (deterministically) so the config transfer drops on its
/// first attempt but recovers inside the retry budget.
fn faulty_workflow() -> CombinedWorkflow {
    let link_seed = (0u64..)
        .find(|&s| {
            let f = LinkFaults::new(0.5, s);
            f.attempt_fails("daily configs", 0)
                && !f.attempt_fails("daily configs", 1)
                && !f.attempt_fails("summaries", 0)
        })
        .expect("such a seed exists");
    CombinedWorkflow {
        workload: WorkloadSpec { cells: 2, replicates: 2, ..WorkloadSpec::prediction() },
        faults: FaultPlan {
            seed: 42,
            link: LinkFaults::new(0.5, link_seed),
            // Early and large: the packed machine cannot absorb it from
            // the idle pool, so running jobs die and requeue.
            node_failures: vec![NodeFailure { at_secs: 60.0, nodes: 600 }],
            db_exhaust_prob: 0.2,
            db_keep_fraction: 0.5,
            straggler_prob: 0.05,
            straggler_factor: 3.0,
            ..FaultPlan::default()
        },
        deadline: DeadlinePolicy { shed_cells: true },
        ..Default::default()
    }
}

#[test]
fn faulty_cycle_retries_and_completes_or_sheds() {
    let reg = RegionRegistry::new();
    let run = faulty_workflow().engine(&reg, Scale::default()).run();

    // The Globus drop was retried per policy (exactly one failed
    // attempt for this seed), not fatal.
    let failed_attempts =
        run.events.iter().filter(|e| matches!(e, EngineEvent::AttemptFailed { .. })).count();
    assert_eq!(failed_attempts, 1, "the injected transfer drop, retried");
    assert!(run.report.failed_steps.is_empty());
    assert!(run.report.blocked_steps.is_empty());

    // The mid-level node crash killed running jobs, which were
    // requeued and redone.
    let slurm = run.report.slurm.as_ref().expect("execute step ran");
    assert!(slurm.preempted > 0, "crash must preempt running jobs");
    assert!(slurm.lost_node_secs > 0.0);

    // The cycle finishes inside the window, or names what it shed.
    assert!(
        run.report.within_window || !run.report.dropped_cells.is_empty(),
        "no silent overrun: within_window={} dropped={:?}",
        run.report.within_window,
        run.report.dropped_cells
    );
}

#[test]
fn kill_and_resume_from_journal_is_byte_identical() {
    let reg = RegionRegistry::new();
    let engine = faulty_workflow().engine(&reg, Scale::default());
    let full = engine.run();
    let full_json = serde_json::to_string(&full.report).unwrap();
    assert_eq!(full.journal.entries.len(), 7, "all seven Fig.-2 steps completed");

    for k in 0..=full.journal.entries.len() {
        // "Kill" the cycle after k completions: only the write-ahead
        // journal prefix survives, as persisted JSON.
        let persisted = full.journal.prefix(k).to_json();
        let recovered = Journal::from_json(&persisted).expect("journal parses back");
        let resumed = engine.resume(&recovered);
        assert_eq!(
            serde_json::to_string(&resumed.report).unwrap(),
            full_json,
            "resume after {k} completions must be byte-identical"
        );
        assert_eq!(
            resumed.live_steps.len(),
            full.journal.entries.len() - k,
            "resume after {k} completions must not redo finished steps"
        );
    }
}

#[test]
fn degradation_sheds_lowest_priority_cells_first() {
    let reg = RegionRegistry::new();
    // A deliberately impossible night: a double-size cell sweep on a
    // fifth of the machine. Shedding must kick in and drop cells from
    // the highest index (lowest priority) downward.
    let mut wf = faulty_workflow();
    wf.workload = WorkloadSpec { cells: 16, replicates: 8, ..WorkloadSpec::prediction() };
    wf.faults.node_failures = vec![NodeFailure { at_secs: 60.0, nodes: 576 }];
    let run = wf.engine(&reg, Scale::default()).run();
    assert!(!run.report.dropped_cells.is_empty(), "this night cannot fit without shedding");
    let cells: Vec<u32> = run.report.dropped_cells.iter().map(|d| d.cell).collect();
    let mut sorted = cells.clone();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    assert_eq!(cells, sorted, "shed highest cell index first: {cells:?}");
    assert!(run.report.dropped_cells.iter().all(|d| d.tasks > 0), "each shed names its tasks");
    // What was kept ran to completion.
    let slurm = run.report.slurm.as_ref().unwrap();
    assert_eq!(slurm.unstarted, 0, "after shedding, the kept workload fits");
}
