//! Cross-crate integration tests: the full pipelines, end to end.

use epiflow::calibrate::{calibrate_direct, MetropolisConfig, ParamSpace};
use epiflow::core::runner::run_cell;
use epiflow::core::{CalibrationWorkflow, CellConfig, EnsembleRunner, PredictionWorkflow};
use epiflow::epihiper::covid::states;
use epiflow::metapop::{MetapopModel, Mixing, Scenario, SeirParams};
use epiflow::surveillance::{GroundTruth, GroundTruthConfig, RegionRegistry, Scale};
use epiflow::synthpop::{build_region, BuildConfig};

fn small_region(abbrev: &str, per: f64, seed: u64) -> epiflow::synthpop::builder::RegionData {
    let reg = RegionRegistry::new();
    let id = reg.by_abbrev(abbrev).unwrap().id;
    build_region(&reg, id, &BuildConfig { scale: Scale::one_per(per), seed, ..Default::default() })
}

/// Synthetic population → contact network → agent-based epidemic:
/// the epidemic must respect network structure (only contacted nodes
/// get infected) and produce a consistent transmission forest.
#[test]
fn synthpop_feeds_epihiper_consistently() {
    let data = small_region("RI", 4000.0, 3);
    let cell = CellConfig {
        days: 90,
        transmissibility: 0.35,
        sh_start: 300,
        sc_start: 300,
        initial_infections: 6,
        ..Default::default()
    };
    let run = run_cell(&data, &cell, 0, 4, true, 99);
    let infections = run.output.total_infections();
    assert!(infections > 10, "epidemic expected, got {infections}");
    // Every transmission edge of the dendogram is a real contact edge.
    let mut contact_pairs = std::collections::HashSet::new();
    for e in &data.network.edges {
        contact_pairs.insert((e.u.min(e.v), e.u.max(e.v)));
    }
    for t in run.output.transitions.iter().filter(|t| t.cause.is_some()) {
        let c = t.cause.unwrap();
        let key = (t.person.min(c), t.person.max(c));
        assert!(contact_pairs.contains(&key), "transmission along non-edge {key:?}");
    }
}

/// Calibration → prediction hand-off: posterior configurations exist,
/// lie in the prior box, and drive a prediction whose band is coherent.
#[test]
fn calibration_to_prediction_pipeline() {
    let data = small_region("DE", 6000.0, 5);
    let base = CellConfig {
        days: 60,
        sh_start: 35,
        sc_start: 25,
        initial_infections: 8,
        ..Default::default()
    };
    let truth = CellConfig::from_theta(900, &[0.32, 0.6, 0.4, 0.4], &base);
    let observed = run_cell(&data, &truth, 2, 4, false, 0xAB);

    // One shared ensemble context for the whole nightly pipeline:
    // calibration and prediction run against the same network build.
    let runner = EnsembleRunner::new(&data, 4);

    let cal = CalibrationWorkflow {
        n_prior_cells: 24,
        n_posterior: 12,
        base: base.clone(),
        gpmsa: epiflow::calibrate::GpmsaConfig {
            mcmc: MetropolisConfig { iterations: 800, burn_in: 200, seed: 1, ..Default::default() },
            gibbs_sweeps: 1,
            ..Default::default()
        },
        ..Default::default()
    };
    let result = cal.run_with(&runner, &observed.log_cum_symptomatic);
    assert_eq!(result.posterior_configs.len(), 12);
    let space = CellConfig::calibration_space();
    for c in &result.posterior_configs {
        assert!(space.contains(&c.theta()), "posterior config escaped the prior box");
    }

    let pred = PredictionWorkflow { replicates: 3, horizon_days: 80, n_partitions: 4, seed: 2 };
    let configs: Vec<CellConfig> = result.posterior_configs.iter().take(5).cloned().collect();
    let res = pred.run_with(&runner, &configs);
    assert_eq!(res.runs.len(), 15);
    assert_eq!(res.cumulative_band.median.len(), 80);
    for t in 0..80 {
        assert!(res.cumulative_band.lo[t] <= res.cumulative_band.hi[t] + 1e-9);
    }
}

/// Ground truth generator → metapopulation direct calibration: the MCMC
/// must recover a growth-relevant parameter from observed county data.
#[test]
fn groundtruth_feeds_metapop_calibration() {
    let reg = RegionRegistry::new();
    let de = reg.by_abbrev("DE").unwrap().id;
    let counties: Vec<f64> = reg.counties(de).iter().map(|c| c.population as f64).collect();
    let pops: Vec<u64> = counties.iter().map(|&c| c as u64).collect();
    let seeds: Vec<f64> = counties.iter().map(|p| (p / 1e5).clamp(1.0, 20.0)).collect();

    let simulate = |theta: &[f64]| -> Vec<Vec<f64>> {
        let params = SeirParams { beta: theta[0], ..SeirParams::default() };
        let model = MetapopModel::new(params, Mixing::gravity(&pops, 0.85), counties.clone());
        let out = model.run_deterministic(
            80,
            &seeds,
            &Scenario {
                name: "none".into(),
                distancing_start: None,
                distancing_end: 0,
                beta_multiplier: 1.0,
            },
            2,
        );
        (0..counties.len()).map(|c| out.new_cases.iter().map(|d| d[c] * 0.25).collect()).collect()
    };
    let observed = simulate(&[0.55]);
    let space = ParamSpace::new(&[("beta", 0.2, 0.9)]);
    let post = calibrate_direct(
        &space,
        simulate,
        &observed,
        0.2,
        &MetropolisConfig { iterations: 1200, burn_in: 300, seed: 7, ..Default::default() },
    );
    let mean = post.theta.mean();
    assert!((mean[0] - 0.55).abs() < 0.05, "recovered beta {}", mean[0]);
}

/// The hidden-truth surveillance data is structurally compatible with
/// the registry everywhere.
#[test]
fn groundtruth_covers_every_county() {
    let reg = RegionRegistry::new();
    let gt = GroundTruth::generate(&reg, &GroundTruthConfig { days: 80, ..Default::default() });
    for r in reg.regions() {
        let cases = gt.region(r.id);
        assert_eq!(cases.counties.len(), r.n_counties, "{}", r.abbrev);
        for (county, series) in reg.counties(r.id).iter().zip(&cases.counties) {
            assert_eq!(county.fips, series.fips);
        }
    }
}

/// Determinism across the whole stack: identical seeds ⇒ identical
/// results, including through the facade crate.
#[test]
fn full_stack_determinism() {
    let a = small_region("VT", 6000.0, 11);
    let b = small_region("VT", 6000.0, 11);
    assert_eq!(a.network.edges, b.network.edges);
    let cell = CellConfig { days: 50, ..Default::default() };
    let ra = run_cell(&a, &cell, 1, 3, true, 77);
    let rb = run_cell(&b, &cell, 1, 7, true, 77); // different partition count!
    assert_eq!(ra.output.transitions, rb.output.transitions);
}

/// Interventions actually change epidemic outcomes through the whole
/// pipeline (not just unit-level behavior).
#[test]
fn npi_dose_response_through_pipeline() {
    let data = small_region("NH", 4000.0, 13);
    let run_with = |sh_compliance: f64, vhi: f64| {
        let cell = CellConfig {
            days: 100,
            transmissibility: 0.32,
            sh_start: 25,
            sh_end: 100,
            sc_start: 20,
            sh_compliance,
            vhi_compliance: vhi,
            initial_infections: 8,
            ..Default::default()
        };
        let r = run_cell(&data, &cell, 0, 4, false, 21);
        r.log_cum_symptomatic.last().unwrap().exp() - 1.0
    };
    let lax = run_with(0.05, 0.05);
    let strict = run_with(0.95, 0.95);
    assert!(strict < lax, "strict NPIs must reduce cases: strict {strict} vs lax {lax}");
}

/// The COVID model's severity pipeline survives aggregation: deaths
/// come only from the death path, and hospital occupancy integrates to
/// the bed-day count used by the cost model.
#[test]
fn severity_pipeline_consistency() {
    let data = small_region("CT", 2000.0, 17);
    let cell = CellConfig {
        days: 150,
        transmissibility: 0.4,
        sh_start: 400,
        sc_start: 400,
        initial_infections: 10,
        ..Default::default()
    };
    let run = run_cell(&data, &cell, 0, 4, true, 5);
    let deaths: u64 = run.output.daily_new(states::DEATH).iter().map(|&x| x as u64).sum();
    let death_path_entries: u64 =
        run.output.daily_new(states::ATTENDED_D).iter().map(|&x| x as u64).sum();
    // Everyone who dies entered the death path (AttendedD) first.
    assert!(deaths <= death_path_entries, "deaths {deaths} vs path entries {death_path_entries}");
    // Hospitalization targets consistent with the cost model's inputs.
    let report = epiflow::analytics::CostModel::default().evaluate(&run.output);
    let hosp_new: u64 = run
        .output
        .daily_new(states::HOSPITALIZED)
        .iter()
        .zip(run.output.daily_new(states::HOSPITALIZED_D).iter())
        .map(|(a, b)| (a + b) as u64)
        .sum();
    assert_eq!(report.n_hospitalized, hosp_new);
}
